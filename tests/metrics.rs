//! Metrics contract: aggregation observes, never changes.
//!
//! * Enabling the [`qdk::MetricsSink`] — and arming slow-query capture,
//!   which installs a collector on *every* query — must not change any
//!   answer, row order, completeness tag, downgrade note or `Exhausted`
//!   diagnostic, for all five strategies at 1, 2, 4 and 8 workers.
//! * The Prometheus text exposition is deterministic and pinned by a
//!   golden snapshot.
//! * Counters stay monotone and converge to exact totals under 4
//!   concurrent snapshot readers and a publishing writer.
//! * Slow-query capture writes one attributable JSON line per query over
//!   the threshold and counts them in `slow_queries`.

use proptest::prelude::*;
use qdk::{MetricsRegistry, Parallelism, Request, ResourceLimits, Session, Strategy};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write + Send` sink backed by a shared buffer, so a test can hand
/// the writer to `capture_slow_queries` and still read the log lines.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Builds the recursive `prior` closure over the given prerequisite
/// edges — the same program the observability suite uses.
fn chain_session(edges: &[(u8, u8)]) -> Session {
    let mut s = Session::new();
    s.load(
        "predicate prereq(C, P).\n\
         prior(X, Y) :- prereq(X, Y).\n\
         prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
    )
    .unwrap();
    for (a, b) in edges {
        s.run(&format!("prereq(c{a}, c{b}).")).unwrap();
    }
    s
}

/// One evaluation's observable outcome: rows in order, downgrade notes,
/// and the diagnostic if the query exhausted a limit.
fn retrieve_outcome(
    s: &Session,
    subject: &str,
    strategy: Strategy,
    workers: usize,
) -> (Vec<String>, Vec<String>, Option<String>) {
    let req = Request::subject(subject)
        .strategy(strategy)
        .parallelism(Parallelism::workers(workers));
    match s.retrieve(req) {
        Ok(resp) => {
            let d = resp.as_data().unwrap();
            (
                d.rows.iter().map(ToString::to_string).collect(),
                d.downgrades.iter().map(ToString::to_string).collect(),
                None,
            )
        }
        Err(e) => (
            Vec::new(),
            Vec::new(),
            Some(
                e.exhausted()
                    .map_or_else(|| e.to_string(), |x| x.to_string()),
            ),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A metrics-enabled session with slow-query capture armed at 1 µs
    /// (so every query takes the capture path, collector and all) gives
    /// byte-identical outcomes to a plain session, for every strategy at
    /// every worker count.
    #[test]
    fn metrics_change_nothing_observable(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 1..14),
    ) {
        let plain = chain_session(&edges);
        let mut metered = chain_session(&edges);
        let buf = SharedBuf::default();
        metered.capture_slow_queries(1, buf.clone());
        for strategy in [Strategy::Naive, Strategy::SemiNaive, Strategy::TopDown, Strategy::Magic, Strategy::Qsq] {
            for workers in [1usize, 2, 4, 8] {
                let a = retrieve_outcome(&plain, "prior(X, Y)", strategy, workers);
                let b = retrieve_outcome(&metered, "prior(X, Y)", strategy, workers);
                prop_assert_eq!(&a, &b, "{:?} at {} workers", strategy, workers);
            }
        }
        // Aggregation saw every query; each one that crossed the 1 µs
        // threshold (all but possibly sub-microsecond outliers) logged
        // exactly one JSON line.
        let snap = metered.metrics_snapshot().unwrap();
        prop_assert_eq!(snap.counter("retrieves"), Some(20));
        prop_assert_eq!(snap.histogram("retrieve_micros").unwrap().count, 20);
        let slow = snap.counter("slow_queries").unwrap_or(0);
        prop_assert!(slow >= 1, "no query reached 1 µs of wall time");
        prop_assert_eq!(buf.contents().lines().count() as u64, slow);
    }

    /// Same for describe under a work budget: answers, completeness tag
    /// and the diagnostic of a truncated enumeration are identical with
    /// metrics on or off, at every worker count.
    #[test]
    fn metrics_preserve_describe_truncation(budget in 50u64..2000) {
        let build = || {
            let mut s = Session::new();
            s.load(
                "predicate prereq(C, P).\n\
                 prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            ).unwrap();
            s
        };
        let plain = build();
        let mut metered = build();
        metered.capture_slow_queries(1, SharedBuf::default());
        let outcome = |s: &Session, workers: usize| {
            let resp = s.describe(
                Request::subject("prior(X, Y)")
                    .where_clause("prior(databases, Y)")
                    .limits(ResourceLimits::default().with_work_budget(budget))
                    .parallelism(Parallelism::workers(workers)),
            ).unwrap();
            let k = resp.into_knowledge().unwrap();
            (k.rendered(), format!("{:?}", k.completeness))
        };
        for workers in [1usize, 2, 4, 8] {
            prop_assert_eq!(
                &outcome(&plain, workers),
                &outcome(&metered, workers),
                "{} workers",
                workers
            );
        }
    }
}

/// The Prometheus text format is deterministic — name-sorted within each
/// kind, types declared, histogram summaries with quantile labels and an
/// exact `_max` gauge. Pinned so dashboards don't silently break.
#[test]
fn prometheus_rendering_is_pinned() {
    let reg = MetricsRegistry::new();
    reg.counter_add("retrieves", 3);
    reg.counter_add("rule_firings", 120);
    reg.gauge_set("edb_facts", 42);
    for v in [100, 200, 300, 400] {
        reg.histogram_record("retrieve_micros", v);
    }
    let snap = reg.snapshot();
    assert_eq!(
        snap.render_prometheus(),
        "\
# TYPE qdk_retrieves_total counter
qdk_retrieves_total 3
# TYPE qdk_rule_firings_total counter
qdk_rule_firings_total 120
# TYPE qdk_edb_facts gauge
qdk_edb_facts 42
# TYPE qdk_retrieve_micros summary
qdk_retrieve_micros{quantile=\"0.5\"} 207
qdk_retrieve_micros{quantile=\"0.9\"} 400
qdk_retrieve_micros{quantile=\"0.99\"} 400
qdk_retrieve_micros_sum 1000
qdk_retrieve_micros_count 4
# TYPE qdk_retrieve_micros_max gauge
qdk_retrieve_micros_max 400
"
    );
    // The JSON rendering carries the same aggregates.
    let json = snap.render_json();
    assert!(json.contains("\"retrieves\":3"), "{json}");
    assert!(json.contains("\"edb_facts\":42"), "{json}");
    assert!(
        json.contains("\"retrieve_micros\":{\"count\":4,\"sum\":1000,\"max\":400"),
        "{json}"
    );
}

/// A session-level smoke of the full pipeline: queries feed counters,
/// histograms and subsystem gauges, and the snapshot renders.
#[test]
fn session_metrics_aggregate_queries_and_gauges() {
    let mut s = chain_session(&[(1, 0), (2, 1), (3, 2)]);
    s.enable_metrics();
    for _ in 0..5 {
        s.retrieve(Request::subject("prior(X, Y)")).unwrap();
    }
    s.describe(Request::subject("prior(X, Y)").where_clause("prior(c3, Y)"))
        .unwrap();
    let snap = s.metrics_snapshot().unwrap();
    assert_eq!(snap.counter("retrieves"), Some(5));
    assert_eq!(snap.counter("describes"), Some(1));
    // Engine counters flowed through the sink into the registry.
    assert!(snap.counter("rule_firings").unwrap_or(0) > 0);
    assert!(snap.counter("index_probes").unwrap_or(0) > 0);
    // Plan-cache behaviour: first retrieve compiles, the rest hit.
    assert_eq!(snap.counter("plan_cache_miss"), Some(1));
    assert_eq!(snap.counter("plan_cache_hit"), Some(4));
    // Subsystem gauges were polled at snapshot time.
    assert_eq!(snap.gauge("edb_facts"), Some(3));
    assert_eq!(snap.gauge("idb_rules"), Some(2));
    // Wall-time histograms recorded one observation per query.
    assert_eq!(snap.histogram("retrieve_micros").unwrap().count, 5);
    assert_eq!(snap.histogram("describe_micros").unwrap().count, 1);
    // And the evaluation spans aggregated into latency histograms.
    assert!(snap.histogram("execute_span_micros").unwrap().count >= 6);
    // No slow-query capture armed: nothing counted slow.
    assert_eq!(snap.counter("slow_queries"), None);
}

/// Slow-query lines are self-contained JSON with monotonically
/// increasing run ids, and only queries over the threshold log one.
#[test]
fn slow_query_capture_logs_json_lines() {
    let mut s = chain_session(&[(1, 0), (2, 1), (3, 2), (4, 3)]);
    let buf = SharedBuf::default();
    s.capture_slow_queries(1, buf.clone());
    s.retrieve(Request::subject("prior(X, Y)")).unwrap();
    s.retrieve(Request::subject("prior(c4, Y)")).unwrap();
    let text = buf.contents();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    assert!(
        lines[0].starts_with("{\"run_id\":1,\"statement\":"),
        "{}",
        lines[0]
    );
    assert!(lines[1].starts_with("{\"run_id\":2,"), "{}", lines[1]);
    for line in &lines {
        assert!(line.ends_with('}'), "{line}");
        assert!(line.contains("\"wall_micros\":"), "{line}");
        assert!(line.contains("\"spans\":["), "{line}");
        assert!(line.contains("\"execute\""), "{line}");
        assert!(line.contains("\"dropped_events\":0"), "{line}");
    }
    assert_eq!(
        s.metrics_snapshot().unwrap().counter("slow_queries"),
        Some(2)
    );
    // Disarming stops the log but keeps aggregating.
    s.capture_slow_queries(0, SharedBuf::default());
    s.retrieve(Request::subject("prior(X, Y)")).unwrap();
    let snap = s.metrics_snapshot().unwrap();
    assert_eq!(snap.counter("slow_queries"), Some(2));
    assert_eq!(snap.counter("retrieves"), Some(3));
}

/// Four snapshot readers querying concurrently with a publishing writer:
/// every interim snapshot shows monotonically non-decreasing counters,
/// and the final totals are exact — the sharded counters lose nothing.
#[test]
fn counters_stay_monotone_under_concurrent_readers() {
    const READERS: usize = 4;
    const QUERIES_PER_READER: u64 = 25;
    const PUBLISHES: u64 = 10;

    let mut s = chain_session(&[(1, 0), (2, 1), (3, 2)]);
    s.enable_metrics();
    s.publish().unwrap();
    let mut handles = Vec::new();
    for _ in 0..READERS {
        let mut snap = s.snapshot().unwrap();
        handles.push(std::thread::spawn(move || {
            let mut last_retrieves = 0u64;
            for _ in 0..QUERIES_PER_READER {
                snap.refresh();
                snap.retrieve(Request::subject("prior(X, Y)")).unwrap();
                // The shared hub's counters never go backwards.
                let m = snap.metrics_snapshot().unwrap();
                let seen = m.counter("retrieves").unwrap_or(0);
                assert!(
                    seen >= last_retrieves,
                    "retrieves went backwards: {seen} < {last_retrieves}"
                );
                last_retrieves = seen;
            }
        }));
    }
    for next in 4..4 + PUBLISHES {
        s.run(&format!("prereq(c{}, c{}).", next, next - 1))
            .unwrap();
        s.publish().unwrap();
    }
    for h in handles {
        h.join().unwrap();
    }
    let snap = s.metrics_snapshot().unwrap();
    // Exact totals: every reader retrieve and every publish was counted.
    assert_eq!(
        snap.counter("retrieves"),
        Some(READERS as u64 * QUERIES_PER_READER)
    );
    // Each `snapshot()` call republishes, then the writer loop publishes
    // PUBLISHES more; only the very first publish (publisher creation)
    // goes uncounted.
    assert_eq!(
        snap.counter("epoch_publish"),
        Some(READERS as u64 + PUBLISHES)
    );
    assert_eq!(
        snap.histogram("retrieve_micros").unwrap().count,
        READERS as u64 * QUERIES_PER_READER
    );
    // The epoch gauge reflects the writer's latest publish.
    assert_eq!(
        snap.gauge("epoch_version"),
        Some(1 + READERS as u64 + PUBLISHES)
    );
}
