//! Edge cases across the whole stack: degenerate subjects, constants and
//! repeated variables in queries, empty databases, deep recursion through
//! multiple SCCs, and unusual-but-legal IDB shapes.

use qdk::logic::parser::{parse_atom, parse_body};
use qdk::{Describe, DescribeOptions, KnowledgeBase, Retrieve, Strategy};

fn kb_from(src: &str) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.load(src).unwrap();
    kb
}

#[test]
fn describe_with_constant_subject_argument() {
    // The subject can carry constants (Example 3 binds Y to databases);
    // here the whole subject is ground.
    let mut kb = kb_from(
        "predicate student(S, M, G) key 1.
         student(ann, math, 3.9).
         honor(X) :- student(X, Y, Z), Z > 3.7.",
    );
    let a = kb.run("describe honor(ann).").unwrap();
    let k = a.as_knowledge().unwrap();
    assert_eq!(
        k.rendered(),
        vec!["honor(ann) ← student(ann, X, Y) ∧ (Y > 3.7)"]
    );
}

#[test]
fn describe_with_repeated_subject_variable() {
    let mut kb = kb_from("likes(X, Y) :- knows(X, Y), fun(Y).");
    let a = kb.run("describe likes(X, X).").unwrap();
    let k = a.as_knowledge().unwrap();
    assert_eq!(k.rendered(), vec!["likes(X, X) ← knows(X, X) ∧ fun(X)"]);
}

#[test]
fn zero_ary_predicates_work_end_to_end() {
    let mut kb = kb_from(
        "predicate switch(State).
         switch(on).
         alarm :- switch(on).",
    );
    let data = kb.run("retrieve alarm.").unwrap();
    assert_eq!(data.as_data().unwrap().len(), 1); // one empty row = true
    let knowledge = kb.run("describe alarm.").unwrap();
    assert_eq!(
        knowledge.as_knowledge().unwrap().rendered(),
        vec!["alarm ← switch(on)"]
    );
}

#[test]
fn empty_database_answers_are_empty_not_errors() {
    let mut kb = kb_from(
        "predicate e(A, B).
         tc(X, Y) :- e(X, Y).
         tc(X, Y) :- e(X, Z), tc(Z, Y).",
    );
    for strategy in [
        Strategy::Naive,
        Strategy::SemiNaive,
        Strategy::TopDown,
        Strategy::Magic,
        Strategy::Qsq,
    ] {
        let kb2 = kb.clone().with_strategy(strategy);
        let q = Retrieve::new(parse_atom("tc(X, Y)").unwrap(), vec![]);
        assert!(kb2.retrieve(&q).unwrap().is_empty(), "{strategy:?}");
    }
    // Describe works without any facts at all (knowledge ≠ data).
    let a = kb.run("describe tc(X, Y).").unwrap();
    assert!(!a.as_knowledge().unwrap().is_empty());
}

#[test]
fn recursion_through_two_sccs() {
    // p's closure feeds q's closure: the describe engine transforms both.
    let mut kb = kb_from(
        "p(X, Y) :- e(X, Y).
         p(X, Y) :- e(X, Z), p(Z, Y).
         q(X, Y) :- p(X, Y).
         q(X, Y) :- f(X, Z), q(Z, Y).",
    );
    let a = kb.run("describe q(X, Y) where q(a, Y).").unwrap();
    let k = a.as_knowledge().unwrap();
    assert!(k.contains_rendered("q(X, Y) ← (X = a)"), "{k}");
}

#[test]
fn describe_same_predicate_hypothesis_and_subject() {
    // Hypothesis and subject share the predicate but differ in shape.
    let mut kb = kb_from(
        "p(X, Y) :- e(X, Y).
         p(X, Y) :- e(X, Z), p(Z, Y).",
    );
    let a = kb.run("describe p(X, c) where p(a, c).").unwrap();
    let k = a.as_knowledge().unwrap();
    assert!(k.contains_rendered("p(X, c) ← (X = a)"), "{k}");
}

#[test]
fn duplicate_rules_are_deduplicated_in_answers() {
    let mut kb = kb_from(
        "h(X) :- s(X, G), G > 3.
         h(X) :- s(X, G), G > 3.",
    );
    let a = kb.run("describe h(X).").unwrap();
    assert_eq!(a.as_knowledge().unwrap().len(), 1);
}

#[test]
fn hypothesis_identifying_twice_in_one_tree() {
    // One hypothesis formula may identify several leaves.
    let mut kb = kb_from("sib(X, Y) :- par(Z, X), par(Z, Y).");
    let a = kb.run("describe sib(X, Y) where par(P, C).").unwrap();
    let k = a.as_knowledge().unwrap();
    // Some theorem identified both par leaves: body empty except an
    // equality chain, or one leaf left — at minimum the answer set is
    // non-empty and sound.
    assert!(!k.is_empty());
}

#[test]
fn retrieve_with_numeric_edge_values() {
    let mut kb = kb_from(
        "predicate m(A, V).
         m(x, -3).
         m(y, 0).
         m(z, 4).",
    );
    let a = kb
        .run("retrieve answer(A) where m(A, V) and V >= 0.")
        .unwrap();
    let d = a.as_data().unwrap();
    assert_eq!(d.len(), 2);
    assert!(d.contains_row(&["y"]) && d.contains_row(&["z"]));
    // Int/float mixing: 4 >= 3.5.
    let b = kb
        .run("retrieve answer(A) where m(A, V) and V > 3.5.")
        .unwrap();
    assert!(b.as_data().unwrap().contains_row(&["z"]));
}

#[test]
fn self_join_in_rule_body() {
    let mut kb = kb_from(
        "predicate e(A, B).
         e(a, b). e(b, c). e(a, c).
         triangle(X, Y, Z) :- e(X, Y), e(Y, Z), e(X, Z).",
    );
    let a = kb.run("retrieve triangle(X, Y, Z).").unwrap();
    let d = a.as_data().unwrap();
    assert_eq!(d.len(), 1);
    assert!(d.contains_row(&["a", "b", "c"]));
}

#[test]
fn long_chain_recursion_depths() {
    // 200-deep chain: bottom-up evaluation is iteration-bounded by the
    // chain, not stack-bounded.
    let mut kb = KnowledgeBase::new();
    kb.run("predicate e(A, B).").unwrap();
    for i in 0..200 {
        kb.run(&format!("e(n{i}, n{})", i + 1).replace(')', ")."))
            .unwrap();
    }
    kb.load(
        "tc(X, Y) :- e(X, Y).
         tc(X, Y) :- e(X, Z), tc(Z, Y).",
    )
    .unwrap();
    let q = Retrieve::new(parse_atom("tc(n0, Y)").unwrap(), vec![]);
    for strategy in [
        Strategy::SemiNaive,
        Strategy::TopDown,
        Strategy::Magic,
        Strategy::Qsq,
    ] {
        let kb2 = kb.clone().with_strategy(strategy);
        assert_eq!(kb2.retrieve(&q).unwrap().len(), 200, "{strategy:?}");
    }
}

#[test]
fn describe_options_budget_is_respected_on_conforming_idb() {
    // A generous budget on a conforming IDB changes nothing.
    let kb = kb_from(
        "prior(X, Y) :- prereq(X, Y).
         prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
    );
    let q = Describe::new(
        parse_atom("prior(X, Y)").unwrap(),
        parse_body("prior(databases, Y)").unwrap(),
    );
    let unlimited = qdk::core::describe::describe(kb.idb(), &q, &DescribeOptions::paper()).unwrap();
    let budgeted = qdk::core::describe::describe(
        kb.idb(),
        &q,
        &DescribeOptions::paper().with_work_budget(1_000_000),
    )
    .unwrap();
    assert_eq!(unlimited.rendered(), budgeted.rendered());
}

#[test]
fn unicode_and_quoted_strings_in_facts() {
    let mut kb = kb_from("predicate note(Id, Text).");
    kb.run(r#"note(n1, "G\u{0}..."#.replace(r"\u{0}", "ö").as_str())
        .err(); // any parse failure must be an Err, not a panic
    kb.run(r#"note(n1, "hello world")."#).unwrap();
    let a = kb.run("retrieve note(n1, T).").unwrap();
    assert_eq!(a.as_data().unwrap().len(), 1);
}

#[test]
fn comparisons_between_symbols_in_describe() {
    let mut kb = kb_from("early(X) :- course(X, S), S < m.");
    let a = kb
        .run("describe early(X) where course(X, S) and S < f.")
        .unwrap();
    // (S < f) implies (S < m) lexicographically: the body comparison is
    // dropped.
    assert_eq!(a.as_knowledge().unwrap().rendered(), vec!["early(X)"]);
}
