//! Cross-strategy agreement: naive, semi-naive and goal-directed
//! evaluation must return identical answers for every `retrieve` query —
//! on the paper's database and on randomized workloads.

use proptest::prelude::*;
use qdk::{datasets, Request, Session, Strategy};

fn rows(session: &Session, subject: &str, qualifier: &str, strategy: Strategy) -> Vec<String> {
    let mut request = Request::subject(subject).strategy(strategy);
    if !qualifier.is_empty() {
        request = request.where_clause(qualifier);
    }
    let a = session.retrieve(request).unwrap().into_data().unwrap();
    let mut rows: Vec<String> = a.sorted().iter().map(ToString::to_string).collect();
    rows.dedup();
    rows
}

fn assert_agree(kb: &qdk::KnowledgeBase, subject: &str, qualifier: &str) {
    let session = Session::over(kb.clone());
    let naive = rows(&session, subject, qualifier, Strategy::Naive);
    let semi = rows(&session, subject, qualifier, Strategy::SemiNaive);
    let top = rows(&session, subject, qualifier, Strategy::TopDown);
    let magic = rows(&session, subject, qualifier, Strategy::Magic);
    let qsq = rows(&session, subject, qualifier, Strategy::Qsq);
    assert_eq!(
        naive, semi,
        "naive vs semi-naive on {subject} / {qualifier}"
    );
    assert_eq!(
        semi, top,
        "semi-naive vs top-down on {subject} / {qualifier}"
    );
    assert_eq!(
        semi, magic,
        "semi-naive vs magic on {subject} / {qualifier}"
    );
    assert_eq!(semi, qsq, "semi-naive vs qsq on {subject} / {qualifier}");
}

#[test]
fn university_queries_agree() {
    let kb = datasets::university_extended();
    for (s, q) in [
        ("honor(X)", ""),
        ("honor(X)", "enroll(X, databases)"),
        ("can_ta(X, Y)", ""),
        ("can_ta(X, databases)", "student(X, math, V), V > 3.7"),
        ("prior(X, Y)", ""),
        ("prior(databases, Y)", ""),
        ("prior(X, programming)", ""),
        ("foreign(X)", ""),
        ("answer(X)", "enroll(X, databases), not honor(X)"),
    ] {
        assert_agree(&kb, s, q);
    }
}

#[test]
fn routing_queries_agree() {
    let kb = datasets::routing(false);
    for (s, q) in [
        ("reachable(X, Y)", ""),
        ("reachable(lax, Y)", ""),
        ("reachable(X, jfk)", ""),
        ("answer(X, Y)", "reachable(X, Y), flight(Y, Z)"),
    ] {
        assert_agree(&kb, s, q);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized graphs: transitive closure agrees across strategies,
    /// including constant-bound queries.
    #[test]
    fn random_graphs_agree(
        edges in proptest::collection::vec((0u8..7, 0u8..7), 1..16),
        probe in 0u8..7,
    ) {
        let mut kb = qdk::KnowledgeBase::new();
        kb.load(
            "predicate edge(A, B).\n\
             tc(X, Y) :- edge(X, Y).\n\
             tc(X, Y) :- edge(X, Z), tc(Z, Y).",
        ).unwrap();
        for (a, b) in &edges {
            kb.run(&format!("edge(n{a}, n{b}).")).unwrap();
        }
        assert_agree(&kb, "tc(X, Y)", "");
        assert_agree(&kb, &format!("tc(n{probe}, Y)"), "");
        assert_agree(&kb, &format!("tc(X, n{probe})"), "");
        assert_agree(&kb, "answer(X)", &format!("tc(X, n{probe}), edge(n{probe}, X)"));
    }

    /// Randomized stratified-negation workloads agree too.
    #[test]
    fn random_negation_agrees(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 1..12),
        probe in 0u8..6,
    ) {
        let mut kb = qdk::KnowledgeBase::new();
        kb.load(
            "predicate edge(A, B).\n\
             reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).",
        ).unwrap();
        for (a, b) in &edges {
            kb.run(&format!("edge(n{a}, n{b}).")).unwrap();
        }
        assert_agree(
            &kb,
            "answer(X, Y)",
            &format!("edge(X, Y), not reach(Y, n{probe})"),
        );
    }
}
