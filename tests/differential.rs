//! Differential testing of the compiled query core.
//!
//! The compile-then-execute refactor replaced the per-recursion-step
//! scheduler with plans computed once per (rule, adornment). These tests
//! pin its semantics against an independent reference:
//!
//! * a tiny substitution-based naive evaluator (the pre-refactor
//!   semantics, reimplemented here with nothing but `unify_atoms` and
//!   `Subst`) must derive exactly the facts the five compiled strategies
//!   derive, on randomly generated safe programs and random EDBs;
//! * `describe`'s derivation-tree enumeration renames rules through the
//!   compiled slot maps — standardizing apart via
//!   [`qdk::logic::CompiledRule::rename_apart`] must be indistinguishable
//!   from the substitution-based [`qdk::logic::rename_rule_apart`], and
//!   one-level theorems must mirror the textual rules they came from.

use proptest::prelude::*;
use qdk::core::{describe, Describe, DescribeOptions};
use qdk::engine::{query, retrieve_with, EngineError, EvalOptions, Idb};
use qdk::logic::parser::parse_atom;
use qdk::logic::{
    rename_rule_apart, unify_atoms, Atom, CompiledRule, Interner, Rule, Subst, Term, VarGen,
};
use qdk::storage::Edb;
use qdk::{Parallelism, ResourceLimits, Retrieve, Strategy};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// Reference semantics: naive fixpoint with substitution-based matching.
// ---------------------------------------------------------------------

/// Enumerates every substitution that grounds `goals` against `facts`.
fn join(goals: &[Atom], facts: &[Atom], subst: &Subst, out: &mut Vec<Subst>) {
    let Some((goal, rest)) = goals.split_first() else {
        out.push(subst.clone());
        return;
    };
    let goal_now = subst.apply_atom(goal);
    for fact in facts {
        if let Some(mgu) = unify_atoms(&goal_now, fact) {
            join(rest, facts, &subst.compose(&mgu), out);
        }
    }
}

/// Naive bottom-up fixpoint over positive rules, returning every fact
/// (EDB and derived) as its rendered string.
fn reference_eval(edb_facts: &[Atom], rules: &[Rule]) -> BTreeSet<String> {
    let mut facts: Vec<Atom> = edb_facts.to_vec();
    let mut seen: BTreeSet<String> = facts.iter().map(ToString::to_string).collect();
    loop {
        let mut fresh = Vec::new();
        for rule in rules {
            let goals: Vec<Atom> = rule.body.iter().map(|l| l.atom.clone()).collect();
            let mut substs = Vec::new();
            join(&goals, &facts, &Subst::new(), &mut substs);
            for s in substs {
                let head = s.apply_atom(&rule.head);
                if seen.insert(head.to_string()) {
                    fresh.push(head);
                }
            }
        }
        if fresh.is_empty() {
            return seen;
        }
        facts.extend(fresh);
    }
}

// ---------------------------------------------------------------------
// Random safe programs.
// ---------------------------------------------------------------------

/// Predicate universe: fixed arities so every occurrence agrees with the
/// declaration. e* are extensional, p* intensional candidates.
const PREDS: [(&str, usize); 5] = [("e0", 2), ("e1", 1), ("p0", 2), ("p1", 1), ("p2", 2)];

fn term_for(spec: u8, pool: &[&str]) -> Term {
    if (spec as usize) < 5 && !pool.is_empty() {
        Term::var(pool[spec as usize % pool.len()])
    } else {
        Term::sym(&format!("c{}", spec % 5))
    }
}

/// Builds a safe rule from raw specs: body first, then a head whose
/// variable arguments are drawn only from variables the body binds.
fn build_rule(head_pred: u8, head_args: &[u8], body: &[(u8, Vec<u8>)]) -> Rule {
    let vars = ["V0", "V1", "V2", "V3", "V4"];
    let mut atoms = Vec::new();
    let mut bound: Vec<&str> = Vec::new();
    for (p, args) in body {
        let (name, arity) = PREDS[*p as usize % PREDS.len()];
        let args: Vec<Term> = args
            .iter()
            .take(arity)
            .map(|a| {
                let t = term_for(*a, &vars);
                if let Term::Var(v) = &t {
                    if !bound.contains(&v.name()) {
                        bound.push(vars[*a as usize % vars.len()]);
                    }
                }
                t
            })
            .collect();
        atoms.push(Atom::new(name, args));
    }
    let (head_name, head_arity) = PREDS[2 + (head_pred as usize % 3)];
    let head_args: Vec<Term> = head_args
        .iter()
        .take(head_arity)
        .map(|a| {
            if bound.is_empty() || *a >= 5 {
                Term::sym(&format!("c{}", a % 5))
            } else {
                Term::var(bound[*a as usize % bound.len()])
            }
        })
        .collect();
    Rule::new(Atom::new(head_name, head_args), atoms)
}

/// Declares every predicate the program mentions that no rule defines,
/// and loads the random facts.
fn build_edb(rules: &[Rule], e0: &[(u8, u8)], e1: &[u8]) -> Edb {
    let defined: BTreeSet<&str> = rules.iter().map(|r| r.head.pred.as_str()).collect();
    let mut edb = Edb::new();
    for (name, arity) in PREDS {
        if !defined.contains(name) {
            let attrs: Vec<String> = (0..arity).map(|i| format!("A{i}")).collect();
            let attrs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            edb.declare(name, &attrs).unwrap();
        }
    }
    for (a, b) in e0 {
        let _ = edb.insert_fact(&parse_atom(&format!("e0(c{}, c{})", a % 5, b % 5)).unwrap());
    }
    for a in e1 {
        let _ = edb.insert_fact(&parse_atom(&format!("e1(c{})", a % 5)).unwrap());
    }
    edb
}

/// The extension of `pred` according to a compiled strategy, rendered.
fn strategy_rows(
    edb: &Edb,
    idb: &Idb,
    pred: &str,
    arity: usize,
    strategy: Strategy,
) -> BTreeSet<String> {
    let vars: Vec<&str> = ["X", "Y", "Z"][..arity].to_vec();
    let subject = parse_atom(&format!("{pred}({})", vars.join(", "))).unwrap();
    let answer = query::retrieve(edb, idb, &Retrieve::new(subject, vec![]), strategy).unwrap();
    answer
        .rows
        .iter()
        .map(|row| {
            let vals: Vec<String> = row.values().iter().map(ToString::to_string).collect();
            format!("{pred}({})", vals.join(", "))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random safe programs + random EDBs: all five compiled strategies
    /// derive exactly the facts the substitution-based reference derives.
    #[test]
    fn compiled_strategies_match_reference_semantics(
        specs in proptest::collection::vec(
            (
                0u8..3,
                proptest::collection::vec(0u8..10, 2..3),
                proptest::collection::vec(
                    (0u8..5, proptest::collection::vec(0u8..10, 2..3)),
                    1..3,
                ),
            ),
            1..5,
        ),
        e0 in proptest::collection::vec((0u8..5, 0u8..5), 0..10),
        e1 in proptest::collection::vec(0u8..5, 0..5),
    ) {
        let rules: Vec<Rule> = specs
            .iter()
            .map(|(h, ha, body)| build_rule(*h, ha, body))
            .collect();
        let idb = Idb::from_rules(rules.clone()).unwrap();
        let edb = build_edb(&rules, &e0, &e1);

        let edb_facts: Vec<Atom> = e0
            .iter()
            .filter(|_| !idb.defines("e0"))
            .map(|(a, b)| parse_atom(&format!("e0(c{}, c{})", a % 5, b % 5)).unwrap())
            .chain(
                e1.iter()
                    .filter(|_| !idb.defines("e1"))
                    .map(|a| parse_atom(&format!("e1(c{})", a % 5)).unwrap()),
            )
            .collect();
        let reference = reference_eval(&edb_facts, idb.rules());

        for (pred, arity) in PREDS.iter().skip(2) {
            if !idb.defines(pred) {
                continue;
            }
            let expected: BTreeSet<String> = reference
                .iter()
                .filter(|f| f.starts_with(&format!("{pred}(")))
                .cloned()
                .collect();
            for strategy in [Strategy::Naive, Strategy::SemiNaive, Strategy::Magic, Strategy::TopDown, Strategy::Qsq] {
                let got = strategy_rows(&edb, &idb, pred, *arity, strategy);
                prop_assert_eq!(
                    &got,
                    &expected,
                    "{:?} disagrees with the reference on {} over {:?}",
                    strategy,
                    pred,
                    idb.rules()
                );
            }
        }
    }

    /// Standardizing apart through the compiled slot maps is byte-for-byte
    /// the substitution-based renaming — `describe`'s theorems (whose
    /// rendering depends on fresh-name assignment order) cannot drift.
    #[test]
    fn compiled_rename_matches_substitution_rename(
        specs in proptest::collection::vec(
            (
                0u8..3,
                proptest::collection::vec(0u8..10, 2..3),
                proptest::collection::vec(
                    (0u8..5, proptest::collection::vec(0u8..10, 2..3)),
                    1..4,
                ),
            ),
            1..6,
        ),
    ) {
        let mut interner = Interner::new();
        let mut gen_ref = VarGen::new();
        let mut gen_ir = VarGen::new();
        for (h, ha, body) in &specs {
            let rule = build_rule(*h, ha, body);
            let compiled = CompiledRule::compile(&rule, &mut interner);
            let (reference, _) = rename_rule_apart(&rule, &mut gen_ref);
            prop_assert_eq!(compiled.rename_apart(&mut gen_ir), reference);
        }
    }

    /// One-level `describe` theorems mirror the textual rules: on random
    /// non-recursive programs with an empty hypothesis, each subject rule
    /// yields one theorem whose body predicates are the rule's own.
    #[test]
    fn describe_one_level_theorems_mirror_rules(
        specs in proptest::collection::vec(
            (
                proptest::collection::vec(0u8..10, 2..3),
                proptest::collection::vec(
                    (0u8..2, proptest::collection::vec(0u8..10, 2..3)),
                    1..3,
                ),
            ),
            1..4,
        ),
    ) {
        // Head fixed to p0; bodies restricted to EDB predicates, so the
        // program is trivially non-recursive and every derivation is
        // one-level.
        let rules: Vec<Rule> = specs
            .iter()
            .map(|(ha, body)| build_rule(0, ha, body))
            .collect();
        let idb = Idb::from_rules(rules.clone()).unwrap();
        let q = Describe::new(parse_atom("p0(X, Y)").unwrap(), vec![]);
        let mut opts = DescribeOptions::paper();
        opts.remove_redundant = false;
        let answer = describe::describe(&idb, &q, &opts).unwrap();
        prop_assert_eq!(answer.theorems.len(), rules.len());
        for theorem in &answer.theorems {
            let ri = theorem.root_rule.expect("one-level theorems carry their rule");
            // Theorem bodies drop exact-duplicate conjuncts; mirror that.
            let mut seen_atoms = BTreeSet::new();
            let mut expected: Vec<&str> = rules[ri]
                .body
                .iter()
                .filter(|l| seen_atoms.insert(l.atom.to_string()))
                .map(|l| l.atom.pred.as_str())
                .collect();
            let mut got: Vec<&str> = theorem
                .rule
                .body
                .iter()
                .filter(|l| l.atom.pred.as_str() != "=")
                .map(|l| l.atom.pred.as_str())
                .collect();
            expected.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, expected, "theorem {} vs rule {}", theorem.rule, rules[ri]);
        }
    }

    /// Worker-count invariance for `retrieve`: on random safe programs,
    /// every strategy is observationally identical at 1, 2, 4 and 8
    /// workers — same ordered answer rows when the evaluation completes,
    /// and the same structured [`Exhausted`] diagnostic when a work
    /// budget trips it mid-fixpoint.
    #[test]
    fn retrieve_workers_match_sequential(
        specs in proptest::collection::vec(
            (
                0u8..3,
                proptest::collection::vec(0u8..10, 2..3),
                proptest::collection::vec(
                    (0u8..5, proptest::collection::vec(0u8..10, 2..3)),
                    1..3,
                ),
            ),
            1..5,
        ),
        e0 in proptest::collection::vec((0u8..5, 0u8..5), 0..10),
        e1 in proptest::collection::vec(0u8..5, 0..5),
        // 0 means unbounded; anything else is a work budget, often small
        // enough to trip mid-fixpoint.
        budget in 0u64..60,
    ) {
        let rules: Vec<Rule> = specs
            .iter()
            .map(|(h, ha, body)| build_rule(*h, ha, body))
            .collect();
        let idb = Idb::from_rules(rules.clone()).unwrap();
        let edb = build_edb(&rules, &e0, &e1);
        let mut limits = ResourceLimits::default();
        if budget > 0 {
            limits = limits.with_work_budget(budget);
        }

        for (pred, arity) in PREDS.iter().skip(2) {
            if !idb.defines(pred) {
                continue;
            }
            let vars: Vec<&str> = ["X", "Y", "Z"][..*arity].to_vec();
            let q = Retrieve::new(
                parse_atom(&format!("{pred}({})", vars.join(", "))).unwrap(),
                vec![],
            );
            for strategy in [Strategy::Naive, Strategy::SemiNaive, Strategy::Magic, Strategy::TopDown, Strategy::Qsq] {
                let outcome = |workers: usize| -> Result<Vec<String>, EngineError> {
                    let opts = EvalOptions::with_limits(limits)
                        .with_parallelism(Parallelism::workers(workers));
                    let answer = retrieve_with(&edb, &idb, &q, strategy, opts)?;
                    Ok(answer.rows.iter().map(ToString::to_string).collect())
                };
                let sequential = outcome(1);
                for workers in [2, 4, 8] {
                    prop_assert_eq!(
                        &outcome(workers),
                        &sequential,
                        "{:?} at {} workers drifts from sequential over {:?}",
                        strategy,
                        workers,
                        idb.rules()
                    );
                }
            }
        }
    }

    /// Worker-count invariance for `describe`: the enumerated theorems,
    /// their order, and the completeness tag are identical at every
    /// worker count — both unbounded and under a work budget (which pins
    /// the exact sequential truncation point).
    #[test]
    fn describe_workers_match_sequential(
        specs in proptest::collection::vec(
            (
                proptest::collection::vec(0u8..10, 2..3),
                proptest::collection::vec(
                    (0u8..2, proptest::collection::vec(0u8..10, 2..3)),
                    1..3,
                ),
            ),
            1..4,
        ),
        // 0 means unbounded; anything else is a work budget.
        budget in 0u64..40,
    ) {
        let rules: Vec<Rule> = specs
            .iter()
            .map(|(ha, body)| build_rule(0, ha, body))
            .collect();
        let idb = Idb::from_rules(rules.clone()).unwrap();
        let q = Describe::new(parse_atom("p0(X, Y)").unwrap(), vec![]);
        let outcome = |workers: usize| {
            let mut opts =
                DescribeOptions::paper().with_parallelism(Parallelism::workers(workers));
            if budget > 0 {
                opts = opts.with_work_budget(budget);
            }
            let answer = describe::describe(&idb, &q, &opts).unwrap();
            (answer.rendered(), answer.completeness)
        };
        let sequential = outcome(1);
        for workers in [2, 4, 8] {
            prop_assert_eq!(
                &outcome(workers),
                &sequential,
                "describe at {} workers drifts from sequential over {:?}",
                workers,
                idb.rules()
            );
        }
    }
}
