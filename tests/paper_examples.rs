//! End-to-end reproduction of every worked example and motivating query
//! in the paper, through the unified language. Each test is one row of
//! EXPERIMENTS.md.

use qdk::{datasets, KnowledgeBase};

fn kb() -> KnowledgeBase {
    datasets::university_extended()
}

#[test]
fn e1_retrieve_honor_enrolled_in_databases() {
    // "Retrieve the honor students enrolled in the databases course."
    let mut kb = kb();
    let a = kb
        .run("retrieve honor(X) where enroll(X, databases).")
        .unwrap();
    let d = a.as_data().unwrap();
    assert_eq!(d.len(), 2);
    assert!(d.contains_row(&["ann"]));
    assert!(d.contains_row(&["eve"]));
}

#[test]
fn e2_retrieve_with_fresh_answer_predicate() {
    // "Retrieve the math students whose GPA are above 3.7 and who are
    // eligible for teaching assistantship in the databases course."
    let mut kb = kb();
    let a = kb
        .run("retrieve answer(X) where can_ta(X, databases) and student(X, math, V) and V > 3.7.")
        .unwrap();
    let d = a.as_data().unwrap();
    assert_eq!(d.len(), 2);
    assert!(d.contains_row(&["ann"]) && d.contains_row(&["bob"]));
}

#[test]
fn e3_describe_can_ta_for_qualified_math_students() {
    // Paper's stated answer: completed the course under the professor
    // currently teaching it with grade over 3.3, or completed it with 4.0.
    let mut kb = kb();
    let a = kb
        .run("describe can_ta(X, databases) where student(X, math, V) and V > 3.7.")
        .unwrap();
    let k = a.as_knowledge().unwrap();
    assert_eq!(
        k.rendered(),
        vec![
            "can_ta(X, databases) ← complete(X, databases, Y, 4.0)",
            "can_ta(X, databases) ← complete(X, databases, Y, Z) ∧ (Z > 3.3) ∧ taught(U, databases, Y, V) ∧ teach(U, databases)",
        ]
    );
}

#[test]
fn e4_describe_honor() {
    // Paper's stated answer: honor(X) ← student(X, Y, Z) ∧ (Z > 3.7).
    let mut kb = kb();
    let a = kb.run("describe honor(X).").unwrap();
    assert_eq!(
        a.as_knowledge().unwrap().rendered(),
        vec!["honor(X) ← student(X, Y, Z) ∧ (Z > 3.7)"]
    );
}

#[test]
fn e5_describe_can_ta_taught_by_susan() {
    // Paper's stated answer: completed the course with 4.0, or took it
    // from susan with more than 3.3.
    let mut kb = kb();
    let a = kb
        .run("describe can_ta(X, Y) where honor(X) and teach(susan, Y).")
        .unwrap();
    assert_eq!(
        a.as_knowledge().unwrap().rendered(),
        vec![
            "can_ta(X, Y) ← complete(X, Y, Z, 4.0)",
            "can_ta(X, Y) ← complete(X, Y, Z, U) ∧ (U > 3.3) ∧ taught(susan, Y, Z, V)",
        ]
    );
}

#[test]
fn e6_recursive_describe_finite_answer() {
    // Paper §5.3's preferred finite answer via the modified
    // transformation: (X = databases) or prior(X, databases).
    let mut kb = kb();
    let a = kb
        .run("describe prior(X, Y) where prior(databases, Y).")
        .unwrap();
    assert_eq!(
        a.as_knowledge().unwrap().rendered(),
        vec![
            "prior(X, Y) ← (X = databases)",
            "prior(X, Y) ← prior(X, databases)",
        ]
    );
}

#[test]
fn e7_typing_restriction_blocks_unsound_loops() {
    // Paper §5.1: the naive algorithm emits prereq "loops"
    // (prereq(X, X), prereq(X, Z1) ∧ prereq(Z1, X), …). Algorithm 2's
    // typing-preserving substitutions reject them.
    let mut kb = kb();
    let a = kb
        .run("describe prior(X, Y) where prior(X, databases).")
        .unwrap();
    let k = a.as_knowledge().unwrap();
    for t in &k.theorems {
        for l in &t.rule.body {
            if l.atom.pred == "prereq" {
                assert_ne!(l.atom.args[0], l.atom.args[1], "unsound loop: {}", t.rule);
            }
        }
    }
    // The sound root identification is present.
    assert!(k.contains_rendered("prior(X, Y) ← (Y = databases)"));
}

#[test]
fn e8_indirectly_recursive_subject_terminates() {
    // Paper §5.1 Example 8: p depends on recursive q; Algorithm 1 hangs,
    // Algorithm 2 terminates.
    let mut kb = KnowledgeBase::new();
    kb.load(
        "p(X, Y) :- q(X, Z), r(Z, Y).\n\
         q(X, Y) :- q(X, Z), s(Z, Y).\n\
         q(X, Y) :- r(X, Y).",
    )
    .unwrap();
    let a = kb.run("describe p(X, Y) where r(a, Y).").unwrap();
    assert!(!a.as_knowledge().unwrap().theorems.is_empty());
}

#[test]
fn q1_are_vs_must_foreign_students_married() {
    // "Are all foreign students married?" — data: yes, none unmarried.
    let mut kb = kb();
    let are = kb
        .run("retrieve answer(X) where foreign(X) and unmarried(X).")
        .unwrap();
    assert!(are.as_data().unwrap().is_empty());
    // "Must all foreign students be married?" — knowledge: yes, the
    // integrity constraint forbids the alternative.
    let must = kb
        .run("describe where foreign(X) and unmarried(X).")
        .unwrap();
    assert_eq!(must.as_bool(), Some(false)); // the situation is impossible
}

#[test]
fn q2_could_an_honor_student_be_foreign() {
    let mut kb = kb();
    let a = kb.run("describe where honor(X) and foreign(X).").unwrap();
    assert_eq!(a.as_bool(), Some(true));
    // But an honor student with GPA under 3.5 is impossible (functional
    // dependency on student's key).
    let b = kb
        .run("describe where student(X, Y, Z) and Z < 3.5 and can_ta(X, U).")
        .unwrap();
    assert_eq!(b.as_bool(), Some(false));
}

#[test]
fn q3_difference_between_honor_and_deans_list() {
    let mut kb = kb();
    let a = kb
        .run("compare (describe honor(X)) with (describe deans_list(X)).")
        .unwrap();
    let c = a.as_comparison().unwrap();
    assert_eq!(
        c.relationship,
        qdk::core::compare::Relationship::FirstSubsumesSecond
    );
    let display = c.to_string();
    assert!(display.contains("student(X, Y, Z)"), "{display}");
    assert!(display.contains("(Z > 3.7)"), "{display}");
    assert!(display.contains("(Z > 3.9)"), "{display}");
}

#[test]
fn q4_is_reachability_symmetric() {
    // Asymmetric network: no unconditional theorem.
    let mut plain = datasets::routing(false);
    let a = plain
        .run("describe reachable(X, Y) where reachable(Y, X).")
        .unwrap();
    assert!(!a
        .as_knowledge()
        .unwrap()
        .theorems
        .iter()
        .any(|t| t.rule.body.is_empty()));
    // With the symmetric rule: the guarantee is derived.
    let mut symmetric = datasets::routing(true);
    let b = symmetric
        .run("describe reachable(X, Y) where reachable(Y, X).")
        .unwrap();
    assert!(b
        .as_knowledge()
        .unwrap()
        .theorems
        .iter()
        .any(|t| t.rule.body.is_empty()));
}

#[test]
fn x1_where_necessary_filters() {
    // §6 extension 1: describe honor where necessary complete(...) —
    // empty, since honor's derivation never needs complete.
    let mut kb = kb();
    let a = kb
        .run("describe honor(X) where necessary complete(X, Y, Z, U) and U > 3.3.")
        .unwrap();
    assert!(a.as_knowledge().unwrap().theorems.is_empty());
    // Plain describe answers regardless.
    let plain = kb
        .run("describe honor(X) where complete(X, Y, Z, U) and U > 3.3.")
        .unwrap();
    assert!(!plain.as_knowledge().unwrap().theorems.is_empty());
}

#[test]
fn x2_negated_hypothesis() {
    // §6 extension 2: honor is necessary for can_ta; teach is not.
    let mut kb = kb();
    let honor = kb.run("describe can_ta(X, Y) where not honor(X).").unwrap();
    assert_eq!(honor.as_bool(), Some(false));
    let teach = kb
        .run("describe can_ta(X, Y) where not teach(P, C).")
        .unwrap();
    assert_eq!(teach.as_bool(), Some(true));
}

#[test]
fn x3_wildcard_subject() {
    // §6 extension 4: what is derivable from honor status?
    let mut kb = kb();
    let a = kb.run("describe * where honor(X).").unwrap();
    let qdk::Answer::Wildcard(entries) = a else {
        panic!("expected wildcard answer");
    };
    let preds: Vec<String> = entries.iter().map(|(p, _)| p.to_string()).collect();
    assert!(preds.contains(&"can_ta".to_string()), "{preds:?}");
}

#[test]
fn reachability_recursive_describe() {
    // Algorithm 2 on the routing schema: describe reachable(X, Y) where
    // reachable(sfo, Y) — finite, phrased over reachable itself.
    let mut kb = datasets::routing(false);
    let a = kb
        .run("describe reachable(X, Y) where reachable(sfo, Y).")
        .unwrap();
    let k = a.as_knowledge().unwrap();
    assert!(k.contains_rendered("reachable(X, Y) ← (X = sfo)"), "{k}");
    assert!(
        k.contains_rendered("reachable(X, Y) ← reachable(X, sfo)"),
        "{k}"
    );
}
