//! Property-based verification of the paper's (omitted) formal claims:
//!
//! * **Soundness** (§3.2/§4): every `describe` theorem `p ← φ` is
//!   logically derived under the hypothesis ψ — on any EDB, every ground
//!   instance satisfying `φ ∧ ψ` in the least model has `p` in the least
//!   model.
//! * **Transformation equivalence** (§5.2): the Imielinski transformation
//!   (and the modified one) preserves the extension of the transformed
//!   predicate.
//! * **Termination** (§5.3): Algorithm 2 terminates on conforming IDBs
//!   without budgets.

use proptest::prelude::*;
use qdk::core::transform::{transform_idb, TransformedIdb};
use qdk::core::{describe, Describe, DescribeOptions, TransformPolicy};
use qdk::engine::{seminaive, Idb};
use qdk::logic::parser::{parse_atom, parse_body, parse_program};
use qdk::logic::{Literal, Subst, Term};
use qdk::storage::Edb;

/// Builds a random prereq graph EDB.
fn graph_edb(edges: &[(u8, u8)]) -> Edb {
    let mut edb = Edb::new();
    edb.declare("prereq", &["C", "P"]).unwrap();
    for (a, b) in edges {
        edb.insert_fact(&parse_atom(&format!("prereq(n{a}, n{b})")).unwrap())
            .unwrap();
    }
    edb
}

fn prior_idb() -> Idb {
    Idb::from_rules(
        parse_program(
            "prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
        )
        .unwrap()
        .rules,
    )
    .unwrap()
}

/// Checks the soundness of every theorem of `describe subject where hyp`
/// against a materialized model.
fn check_soundness(edb: &Edb, idb: &Idb, subject: &str, hypothesis: &str, opts: &DescribeOptions) {
    let query = Describe::new(
        parse_atom(subject).unwrap(),
        if hypothesis.is_empty() {
            vec![]
        } else {
            parse_body(hypothesis).unwrap()
        },
    );
    let answer = match describe::describe(idb, &query, opts) {
        Ok(a) => a,
        Err(e) => panic!("describe failed: {e}"),
    };

    // Materialize the model over the *transformed* IDB so step predicates
    // appearing in answers have extensions too.
    let tidb: TransformedIdb = transform_idb(idb, opts.transform).unwrap();
    let model = seminaive::eval(edb, &tidb.idb).unwrap();

    for theorem in &answer.theorems {
        // Solve body ∧ hypothesis against the model.
        let mut goals: Vec<Literal> = theorem.rule.body.clone();
        goals.extend(query.hypothesis.iter().cloned());
        let solutions = solve_against_model(edb, &model, &goals);
        for s in solutions {
            let head = s.apply_atom(&theorem.rule.head);
            if !head.is_ground() {
                continue; // claim ranges over unconstrained values
            }
            let holds = atom_in_model(edb, &model, &head);
            assert!(
                holds,
                "unsound theorem {} (instance {head}) for describe {subject} where {hypothesis}",
                theorem.rule
            );
        }
    }
}

fn solve_against_model(
    edb: &Edb,
    model: &qdk::engine::DerivedFacts,
    goals: &[Literal],
) -> Vec<Subst> {
    // Order goals: database atoms first, then builtins (the naive
    // scheduler in the engine handles this; here a simple reorder works
    // because all database atoms are materialized).
    let mut substs = vec![Subst::new()];
    let (db, builtins): (Vec<&Literal>, Vec<&Literal>) =
        goals.iter().partition(|l| !l.is_builtin());
    for lit in db.iter().chain(&builtins) {
        let mut next = Vec::new();
        for s in &substs {
            if lit.is_builtin() {
                match qdk::storage::builtins::eval_atom(&lit.atom, s) {
                    Ok(Some(true)) => next.push(s.clone()),
                    Ok(Some(false)) | Ok(None) => {
                        if lit.atom.pred.as_str() == "=" {
                            // Equality may bind.
                            let l = s.apply_term(&lit.atom.args[0]);
                            let r = s.apply_term(&lit.atom.args[1]);
                            if let Some(u) = qdk::logic::unify(&l, &r) {
                                next.push(s.compose(&u));
                            }
                        }
                    }
                    Err(_) => {}
                }
                continue;
            }
            if !lit.positive {
                continue; // no negative literals in these tests
            }
            if let Some(rel) = edb.relation(lit.atom.pred.as_str()) {
                let mut out = Vec::new();
                edb.match_atom(&lit.atom, s, &mut out).unwrap();
                next.extend(out);
                let _ = rel;
            } else if let Some(rel) = model.relation(lit.atom.pred.as_str()) {
                let mut out = Vec::new();
                qdk_match_relation(rel, &lit.atom, s, &mut out);
                next.extend(out);
            }
        }
        substs = next;
    }
    substs
}

fn qdk_match_relation(
    rel: &qdk::storage::Relation,
    atom: &qdk::logic::Atom,
    subst: &Subst,
    out: &mut Vec<Subst>,
) {
    // Match by scanning (test-only; relations are small).
    'tuples: for tuple in rel.iter() {
        let mut s = subst.clone();
        if atom.arity() != tuple.arity() {
            return;
        }
        for (term, value) in atom.args.iter().zip(tuple.values()) {
            match s.apply_term(term) {
                Term::Const(c) => {
                    if &c != value {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => {
                    s.bind(v, Term::Const(value.clone()));
                }
            }
        }
        out.push(s);
    }
}

fn atom_in_model(edb: &Edb, model: &qdk::engine::DerivedFacts, atom: &qdk::logic::Atom) -> bool {
    let tuple: qdk::storage::Tuple = atom
        .args
        .iter()
        .map(|t| t.as_const().unwrap().clone())
        .collect();
    if let Some(rel) = edb.relation(atom.pred.as_str()) {
        return rel.contains(&tuple);
    }
    model
        .relation(atom.pred.as_str())
        .is_some_and(|r| r.contains(&tuple))
}

fn arb_edges() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..6, 0u8..6), 1..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Describe answers for the recursive prior predicate are sound on
    /// arbitrary graphs, under both transformations.
    #[test]
    fn recursive_describe_sound(edges in arb_edges(), c in 0u8..6) {
        let edb = graph_edb(&edges);
        let idb = prior_idb();
        for policy in [TransformPolicy::PreferModified, TransformPolicy::AlwaysArtificial] {
            let opts = DescribeOptions::paper().with_transform(policy);
            check_soundness(&edb, &idb, "prior(X, Y)", &format!("prior(n{c}, Y)"), &opts);
            check_soundness(&edb, &idb, "prior(X, Y)", &format!("prior(X, n{c})"), &opts);
            check_soundness(&edb, &idb, "prior(X, Y)", "prereq(X, Z)", &opts);
        }
    }

    /// The transformation preserves the extension of the recursive
    /// predicate (the §5.2 equivalence claim).
    #[test]
    fn transformation_preserves_extension(edges in arb_edges()) {
        let edb = graph_edb(&edges);
        let idb = prior_idb();
        let original = seminaive::eval(&edb, &idb).unwrap();
        for policy in [TransformPolicy::PreferModified, TransformPolicy::AlwaysArtificial] {
            let tidb = transform_idb(&idb, policy).unwrap();
            let transformed = seminaive::eval(&edb, &tidb.idb).unwrap();
            let a = original.relation("prior").map(|r| {
                let mut v: Vec<String> = r.iter().map(ToString::to_string).collect();
                v.sort();
                v
            });
            let b = transformed.relation("prior").map(|r| {
                let mut v: Vec<String> = r.iter().map(ToString::to_string).collect();
                v.sort();
                v
            });
            prop_assert_eq!(a, b, "policy {:?}", policy);
        }
    }

    /// Algorithm 2 terminates (no budget) on conforming IDBs with random
    /// hypotheses — the finiteness claim of §5.
    #[test]
    fn algorithm2_terminates(edges in arb_edges(), a in 0u8..6, b in 0u8..6) {
        let _ = graph_edb(&edges); // EDB irrelevant to describe
        let idb = prior_idb();
        let opts = DescribeOptions::paper();
        let hyps = [
            format!("prior(n{a}, Y)"),
            format!("prior(X, n{b})"),
            format!("prereq(n{a}, n{b})"),
            String::new(),
        ];
        for h in &hyps {
            let q = Describe::new(
                parse_atom("prior(X, Y)").unwrap(),
                if h.is_empty() { vec![] } else { parse_body(h).unwrap() },
            );
            let out = describe::describe(&idb, &q, &opts);
            prop_assert!(out.is_ok(), "diverged on hypothesis {h}: {:?}", out.err());
        }
    }

    /// Nonrecursive describe (Algorithm 1) is sound on the university IDB
    /// with randomized fact populations.
    #[test]
    fn nonrecursive_describe_sound(gpas in proptest::collection::vec(30u8..42, 1..6)) {
        let mut edb = Edb::new();
        edb.declare("student", &["S", "M", "G"]).unwrap();
        edb.declare("complete", &["S", "C", "Sem", "G"]).unwrap();
        edb.declare("taught", &["P", "C", "Sem", "E"]).unwrap();
        edb.declare("teach", &["P", "C"]).unwrap();
        for (i, g) in gpas.iter().enumerate() {
            let gpa = *g as f64 / 10.0;
            edb.insert_fact(&parse_atom(&format!("student(s{i}, math, {gpa:.1})")).unwrap())
                .unwrap();
            edb.insert_fact(&parse_atom(&format!("complete(s{i}, databases, f88, {gpa:.1})")).unwrap())
                .unwrap();
        }
        edb.insert_fact(&parse_atom("taught(susan, databases, f88, 3.5)").unwrap()).unwrap();
        edb.insert_fact(&parse_atom("teach(susan, databases)").unwrap()).unwrap();
        let idb = Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
                 can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).\n\
                 can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4.0).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let opts = DescribeOptions::paper();
        check_soundness(&edb, &idb, "can_ta(X, databases)", "student(X, math, V), V > 3.7", &opts);
        check_soundness(&edb, &idb, "can_ta(X, Y)", "honor(X), teach(susan, Y)", &opts);
        check_soundness(&edb, &idb, "honor(X)", "", &opts);
    }
}
