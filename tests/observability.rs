//! Observability contract: tracing observes, never changes.
//!
//! * A [`qdk::CollectSink`] installed for a query must not change any
//!   answer, row order, completeness tag, or `Exhausted` diagnostic — for
//!   all five strategies at 1, 2, 4 and 8 workers.
//! * Span streams nest correctly (every end matches the innermost open
//!   start), because spans are only emitted from coordinator code paths.
//! * `Response::trace()` returns a structured profile whose stage
//!   timings tile the query's wall time, on the paper's Example 8
//!   describe and a chain-128 retrieve.
//! * Silent strategy downgrades (magic → semi-naive) surface on the
//!   response and in the trace.

use proptest::prelude::*;
use qdk::obs::check_nesting;
use qdk::{
    datasets, CollectSink, DescribeOptions, ObsSink, Parallelism, Request, ResourceLimits, Session,
    Strategy,
};
use std::sync::Arc;

/// A 128-edge prerequisite chain with the recursive `prior` closure —
/// the chain-128 benchmark workload, in script form.
fn chain_session(n: usize) -> Session {
    let mut s = Session::new();
    s.load(
        "predicate prereq(Ctitle, Ptitle).\n\
         prior(X, Y) :- prereq(X, Y).\n\
         prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
    )
    .unwrap();
    for i in 0..n {
        s.run(&format!("prereq(c{}, c{}).", i + 1, i)).unwrap();
    }
    s
}

/// The paper's Example 8 program (§5.3): mutually dependent `p`/`q` over
/// parallel `r`/`s` chains.
fn example8_session(n: usize) -> Session {
    let mut s = Session::new();
    s.load(
        "predicate r(From, To).\n\
         predicate s(From, To).\n\
         p(X, Y) :- q(X, Z), r(Z, Y).\n\
         q(X, Y) :- q(X, Z), s(Z, Y).\n\
         q(X, Y) :- r(X, Y).",
    )
    .unwrap();
    for i in 0..n {
        s.run(&format!("r(n{i}, n{}).", i + 1)).unwrap();
        s.run(&format!("s(n{i}, n{}).", i + 1)).unwrap();
    }
    s
}

/// Asserts the depth-0 stage spans tile the trace's wall time: their sum
/// accounts for at least 90% of it (the acceptance bound), and no stage
/// exceeds the wall.
fn assert_stages_tile_wall(trace: &qdk::QueryTrace) {
    let wall = trace.wall_micros;
    let sum: u64 = trace.stages().map(|s| s.micros).sum();
    assert!(
        sum >= wall - wall / 10,
        "stage sum {sum} µs below 90% of wall {wall} µs: {trace}"
    );
    for s in trace.stages() {
        assert!(s.micros <= wall, "stage {} exceeds wall: {trace}", s.name);
    }
}

#[test]
fn chain128_retrieve_trace_profiles_the_evaluation() {
    let s = chain_session(128);
    let resp = s
        .retrieve(Request::subject("prior(X, Y)").with_trace(true))
        .unwrap();
    assert_eq!(resp.as_data().unwrap().len(), 128 * 129 / 2);
    let trace = resp.trace().expect("trace requested");
    assert!(!trace.spans.is_empty());
    assert_stages_tile_wall(trace);
    // The stages are parse, plan, execute, in that order.
    let stages: Vec<&str> = trace.stages().map(|s| s.name).collect();
    assert_eq!(stages, vec!["parse", "plan", "execute"]);
    // The default strategy's span tree and counters are present.
    assert!(trace.span_micros("seminaive").is_some(), "{trace}");
    assert!(trace.span_micros("stratum").is_some(), "{trace}");
    assert!(trace.span_micros("iteration").is_some(), "{trace}");
    assert!(trace.counter("rule_firings").unwrap_or(0) > 0, "{trace}");
    assert!(trace.counter("delta_facts").unwrap_or(0) > 0, "{trace}");
    assert!(trace.counter("index_probes").unwrap_or(0) > 0, "{trace}");
    // First query on a fresh session compiles; a second traced query hits
    // the cache.
    assert_eq!(trace.counter("plan_cache_miss"), Some(1));
    let again = s
        .retrieve(Request::subject("prior(X, Y)").with_trace(true))
        .unwrap();
    assert_eq!(again.trace().unwrap().counter("plan_cache_hit"), Some(1));
}

#[test]
fn example8_describe_trace_profiles_the_enumeration() {
    let s = example8_session(8);
    let resp = s
        .describe(
            Request::subject("p(X, Y)")
                .where_clause("q(X, n3)")
                .with_trace(true),
        )
        .unwrap();
    assert!(!resp.as_knowledge().unwrap().theorems.is_empty());
    let trace = resp.trace().expect("trace requested");
    assert!(!trace.spans.is_empty());
    assert_stages_tile_wall(trace);
    let stages: Vec<&str> = trace.stages().map(|s| s.name).collect();
    assert_eq!(stages, vec!["parse", "execute"]);
    // Algorithm 2's phases and counters are recorded.
    assert!(trace.span_micros("transform").is_some(), "{trace}");
    assert!(trace.span_micros("enumerate").is_some(), "{trace}");
    assert!(trace.span_micros("assemble").is_some(), "{trace}");
    assert!(trace.counter("trees_expanded").unwrap_or(0) > 0, "{trace}");
    assert!(
        trace.counter("leaves_identified").unwrap_or(0) > 0,
        "{trace}"
    );
}

#[test]
fn magic_downgrade_is_surfaced_on_response_and_trace() {
    // The magic rewrite cannot handle negation in the relevant slice: it
    // degrades to semi-naive. The response and its trace both say so.
    let kb = datasets::university_extended();
    let s = Session::over(kb);
    let req = || {
        Request::subject("answer(X)")
            .where_clause("enroll(X, databases), not honor(X)")
            .strategy(Strategy::Magic)
    };
    let resp = s.retrieve(req()).unwrap();
    assert_eq!(resp.downgrades().len(), 1, "downgrade must be surfaced");
    let d = &resp.downgrades()[0];
    assert_eq!(d.from, Strategy::Magic);
    assert_eq!(d.to, Strategy::SemiNaive);

    let traced = s.retrieve(req().with_trace(true)).unwrap();
    let trace = traced.trace().unwrap();
    assert_eq!(trace.downgrades, resp.downgrades().to_vec());
    assert_eq!(trace.counter("downgrade"), Some(1));
    // The rendered trace carries the note.
    assert!(trace.to_string().contains("degraded to"), "{trace}");

    // A query the rewrite handles records no downgrade.
    let clean = s
        .retrieve(Request::subject("honor(X)").strategy(Strategy::Magic))
        .unwrap();
    assert!(clean.downgrades().is_empty());
}

#[test]
fn spans_nest_correctly_across_both_statements() {
    let collector = Arc::new(CollectSink::new());
    let kb = datasets::university_extended()
        .with_describe_options(DescribeOptions::paper().with_sink(ObsSink::new(collector.clone())));
    let s = Session::over(kb);
    for strategy in [
        Strategy::Naive,
        Strategy::SemiNaive,
        Strategy::TopDown,
        Strategy::Magic,
        Strategy::Qsq,
    ] {
        s.retrieve(Request::subject("prior(X, Y)").strategy(strategy))
            .unwrap();
    }
    s.describe(Request::subject("prior(X, Y)").where_clause("prior(databases, Y)"))
        .unwrap();
    let events = collector.events();
    assert!(!events.is_empty());
    check_nesting(&events).unwrap();
    assert_eq!(collector.dropped(), 0);
}

/// One evaluation's observable outcome: rows in order, downgrade notes,
/// and the diagnostic if the query exhausted a limit.
fn retrieve_outcome(
    s: &Session,
    subject: &str,
    strategy: Strategy,
    workers: usize,
    trace: bool,
) -> (Vec<String>, Vec<String>, Option<String>) {
    let req = Request::subject(subject)
        .strategy(strategy)
        .parallelism(Parallelism::workers(workers))
        .with_trace(trace);
    match s.retrieve(req) {
        Ok(resp) => {
            let d = resp.as_data().unwrap();
            (
                d.rows.iter().map(ToString::to_string).collect(),
                d.downgrades.iter().map(ToString::to_string).collect(),
                None,
            )
        }
        Err(e) => (
            Vec::new(),
            Vec::new(),
            Some(
                e.exhausted()
                    .map_or_else(|| e.to_string(), |x| x.to_string()),
            ),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Installing a collector changes no answer, order, or downgrade for
    /// any strategy at any worker count.
    #[test]
    fn tracing_changes_nothing_observable(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 1..14),
    ) {
        let mut s = Session::new();
        s.load(
            "predicate prereq(C, P).\n\
             prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
        ).unwrap();
        for (a, b) in &edges {
            s.run(&format!("prereq(c{a}, c{b}).")).unwrap();
        }
        for strategy in [Strategy::Naive, Strategy::SemiNaive, Strategy::TopDown, Strategy::Magic, Strategy::Qsq] {
            for workers in [1usize, 2, 4, 8] {
                let plain = retrieve_outcome(&s, "prior(X, Y)", strategy, workers, false);
                let traced = retrieve_outcome(&s, "prior(X, Y)", strategy, workers, true);
                prop_assert_eq!(&plain, &traced, "{:?} at {} workers", strategy, workers);
            }
        }
    }

    /// Same for describe: answers, completeness tag and the `Exhausted`
    /// diagnostic of a truncated enumeration are identical with tracing
    /// on or off, at every worker count.
    #[test]
    fn tracing_preserves_describe_truncation(budget in 50u64..2000) {
        let mut s = Session::new();
        s.load(
            "predicate prereq(C, P).\n\
             prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
        ).unwrap();
        let outcome = |workers: usize, trace: bool| {
            let resp = s.describe(
                Request::subject("prior(X, Y)")
                    .where_clause("prior(databases, Y)")
                    .limits(ResourceLimits::default().with_work_budget(budget))
                    .parallelism(Parallelism::workers(workers))
                    .with_trace(trace),
            ).unwrap();
            let k = resp.into_knowledge().unwrap();
            (k.rendered(), format!("{:?}", k.completeness))
        };
        for workers in [1usize, 2, 4, 8] {
            let plain = outcome(workers, false);
            let traced = outcome(workers, true);
            prop_assert_eq!(&plain, &traced, "{} workers", workers);
        }
    }
}
