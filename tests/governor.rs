//! The unified resource governor, end to end: the same [`ResourceLimits`]
//! vocabulary bounds both evaluation stacks — every `retrieve` strategy
//! aborts a runaway program with the same structured [`Exhausted`]
//! diagnostic, and `describe` degrades gracefully into a
//! [`Completeness::Truncated`] answer instead of erroring or silently
//! under-answering.

use qdk::logic::parser::{parse_atom, parse_body, parse_program};
use qdk::{
    CancelToken, Completeness, Describe, DescribeOptions, KnowledgeBase, Parallelism, Request,
    Resource, ResourceLimits, Retrieve, Session, Strategy,
};
use std::time::Duration;

fn kb_from(src: &str) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.load(src).unwrap();
    kb
}

/// A transitive-closure workload whose fixpoint needs far more rule
/// firings than the budget allows.
fn chain_kb(n: usize) -> KnowledgeBase {
    let mut src = String::from(
        "predicate edge(From, To).\n\
         reach(X, Y) :- edge(X, Y).\n\
         reach(X, Y) :- edge(X, Z), reach(Z, Y).\n",
    );
    for i in 0..n {
        src.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
    }
    kb_from(&src)
}

#[test]
fn all_five_strategies_report_the_same_exhaustion_diagnostic() {
    let session = Session::over(chain_kb(40));
    let limits = ResourceLimits::default().with_work_budget(25);
    let mut seen = Vec::new();
    for strategy in [
        Strategy::Naive,
        Strategy::SemiNaive,
        Strategy::Magic,
        Strategy::TopDown,
        Strategy::Qsq,
    ] {
        let err = session
            .retrieve(
                Request::subject("reach(X, Y)")
                    .strategy(strategy)
                    .limits(limits),
            )
            .expect_err("budget must trip");
        let e = err
            .exhausted()
            .unwrap_or_else(|| panic!("{strategy:?}: expected Exhausted, got {err:?}"));
        assert_eq!(e.resource, Resource::WorkBudget, "{strategy:?}");
        assert_eq!(e.limit, 25, "{strategy:?}");
        assert!(e.spent > e.limit, "{strategy:?}");
        seen.push(e.resource);
    }
    // One diagnostic vocabulary across all five engines.
    assert!(seen.iter().all(|r| *r == seen[0]));
}

#[test]
fn fact_limit_bounds_bottom_up_strategies() {
    let session = Session::over(chain_kb(40));
    let limits = ResourceLimits::default().with_max_facts(10);
    for strategy in [Strategy::Naive, Strategy::SemiNaive] {
        let err = session
            .retrieve(
                Request::subject("reach(X, Y)")
                    .strategy(strategy)
                    .limits(limits),
            )
            .expect_err("fact limit must trip");
        let e = err
            .exhausted()
            .unwrap_or_else(|| panic!("{strategy:?}: expected Exhausted, got {err:?}"));
        assert_eq!(e.resource, Resource::Facts, "{strategy:?}");
    }
}

#[test]
fn cancellation_aborts_retrieve() {
    let session = Session::over(chain_kb(40));
    let token = CancelToken::new();
    token.cancel();
    let err = session
        .retrieve(
            Request::subject("reach(X, Y)")
                .strategy(Strategy::SemiNaive)
                .cancel(token),
        )
        .expect_err("pre-cancelled token must abort");
    let e = err.exhausted().expect("expected Exhausted");
    assert_eq!(e.resource, Resource::Cancelled);
}

/// Cancellation arriving *mid-fixpoint* from another thread stops the
/// parallel workers promptly: the shared governor trips once, every
/// worker observes it at its next poll, and the evaluation returns the
/// Cancelled diagnostic long before the workload could have finished.
#[test]
fn mid_fixpoint_cancel_stops_parallel_workers() {
    // Naive evaluation of a 400-node transitive closure re-derives the
    // whole relation every iteration — seconds of work when left alone.
    let session = Session::over(chain_kb(400));
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            token.cancel();
        })
    };
    let start = std::time::Instant::now();
    let err = session
        .retrieve(
            Request::subject("reach(X, Y)")
                .strategy(Strategy::Naive)
                .parallelism(Parallelism::workers(4))
                .cancel(token),
        )
        .expect_err("mid-flight cancellation must abort the fixpoint");
    canceller.join().unwrap();
    let e = err.exhausted().expect("expected Exhausted");
    assert_eq!(e.resource, Resource::Cancelled);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "workers kept running for {:?} after the cancel",
        start.elapsed()
    );
}

/// Example 8's workload (§5.1): the indirectly recursive subject that made
/// Algorithm 1 "hang". Under a 50ms deadline the describe returns promptly
/// with a truncated answer and a populated diagnostic — no panic, no
/// silent empty answer, no error.
#[test]
fn example8_describe_under_deadline_returns_truncated() {
    let idb = qdk::engine::Idb::from_rules(
        parse_program(
            "p(X, Y) :- q(X, Z), r(Z, Y).\n\
             q(X, Y) :- q(X, Z), s(Z, Y).\n\
             q(X, Y) :- r(X, Y).",
        )
        .unwrap()
        .rules,
    )
    .unwrap();
    let query = Describe::new(
        parse_atom("p(X, Y)").unwrap(),
        parse_body("r(a, Y)").unwrap(),
    );
    let opts = DescribeOptions::paper().with_deadline(Duration::from_millis(50));
    let start = std::time::Instant::now();
    let answer = qdk::core::algo1::run_unchecked(&idb, &query, &opts)
        .expect("deadline must truncate, not error");
    // Prompt: the divergent walk is cut by the deadline or by the built-in
    // recursion guard, whichever bites first — never a hang.
    assert!(start.elapsed() < Duration::from_secs(5));
    let e = answer
        .completeness
        .exhausted()
        .expect("answer must be tagged truncated");
    assert!(
        matches!(e.resource, Resource::Deadline | Resource::Depth),
        "unexpected diagnostic: {e}"
    );
    assert!(e.limit > 0, "diagnostic must be populated: {e}");
    // Not silence: the theorems found before the cut are returned.
    assert!(!answer.is_empty(), "{answer}");
    // The rendering announces the truncation.
    assert!(answer.to_string().contains("truncat"), "{answer}");
}

/// A doubling recursion (`p(X,Y) ← p(X,Z) ∧ p(Z,Y)`) enumerated
/// untransformed has a walk far wider than any clock allows: the deadline
/// itself trips, mid-walk, and the answer says so.
#[test]
fn deadline_trips_mid_walk_on_doubling_recursion() {
    let idb = qdk::engine::Idb::from_rules(
        parse_program(
            "p(X, Y) :- e(X, Y).\n\
             p(X, Y) :- p(X, Z), p(Z, Y).",
        )
        .unwrap()
        .rules,
    )
    .unwrap();
    let query = Describe::new(
        parse_atom("p(X, Y)").unwrap(),
        parse_body("p(a, Y)").unwrap(),
    );
    let opts = DescribeOptions::paper().with_deadline(Duration::from_millis(50));
    let answer = qdk::core::algo1::run_unchecked(&idb, &query, &opts)
        .expect("deadline must truncate, not error");
    let e = answer
        .completeness
        .exhausted()
        .expect("answer must be tagged truncated");
    assert_eq!(e.resource, Resource::Deadline);
    assert_eq!(e.limit, 50);
    assert!(e.spent >= e.limit, "diagnostic must be populated: {e}");
}

#[test]
fn example6_describe_budget_limited_returns_truncated_not_silent() {
    let mut kb = kb_from(
        "prior(X, Y) :- prereq(X, Y).\n\
         prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
    );
    // Algorithm 1's divergence, bounded by a work budget: kb-level
    // describe uses Algorithm 2 (terminating), so drive algo1 directly.
    let idb = kb.idb().clone();
    let query = Describe::new(
        parse_atom("prior(X, Y)").unwrap(),
        parse_body("prior(databases, Y)").unwrap(),
    );
    let budgeted = DescribeOptions::paper().with_work_budget(500);
    let answer = qdk::core::algo1::run_unchecked(&idb, &query, &budgeted).unwrap();
    assert!(answer.is_truncated());
    assert_eq!(
        answer.completeness.exhausted().unwrap().resource,
        Resource::WorkBudget
    );

    // Depth-limited: the finite chain-family prefix, tagged truncated,
    // with the theorems still present (not silence).
    let deep = DescribeOptions::paper().with_max_depth(8);
    let answer = qdk::core::algo1::run_unchecked(&idb, &query, &deep).unwrap();
    assert!(answer.is_truncated());
    assert!(answer.len() >= 3, "{answer}");
    assert_eq!(
        answer.completeness.exhausted().unwrap().resource,
        Resource::Depth
    );

    // The terminating Algorithm 2 path stays Complete.
    let full = kb
        .run("describe prior(X, Y) where prior(databases, Y).")
        .unwrap();
    let k = full.as_knowledge().unwrap();
    assert_eq!(k.completeness, Completeness::Complete);
    assert!(!k.is_truncated());
}

#[test]
fn kb_describe_options_thread_limits_into_retrieve() {
    // The facade's one options struct governs both statements: a
    // work-budget too small for the transitive closure trips retrieve.
    let kb = chain_kb(40).with_describe_options(
        DescribeOptions::paper().with_limits(ResourceLimits::default().with_work_budget(25)),
    );
    let query = Retrieve::new(parse_atom("reach(X, Y)").unwrap(), vec![]);
    let err = kb.retrieve(&query).expect_err("budget must trip");
    assert!(err.to_string().contains("work budget"), "{err}");
}

#[test]
fn qsq_downgrade_to_semi_naive_is_surfaced() {
    // The QSQ net cannot handle negation in the relevant slice: the
    // request still succeeds, answers match semi-naive, and the response
    // records the Qsq -> SemiNaive downgrade.
    let kb = kb_from(
        "predicate edge(From, To).
         predicate sink(N).
         reach(X, Y) :- edge(X, Y).
         reach(X, Y) :- edge(X, Z), reach(Z, Y).
         safe(X, Y) :- reach(X, Y), not sink(Y).
         edge(a, b). edge(b, c). edge(c, d). sink(c).",
    );
    let s = Session::over(kb);
    let resp = s
        .retrieve(Request::subject("safe(a, Y)").strategy(Strategy::Qsq))
        .unwrap();
    let downgrades = resp.downgrades().to_vec();
    assert_eq!(downgrades.len(), 1, "downgrade must be surfaced");
    assert_eq!(downgrades[0].from, Strategy::Qsq);
    assert_eq!(downgrades[0].to, Strategy::SemiNaive);
    let rows: Vec<String> = resp
        .into_data()
        .unwrap()
        .sorted()
        .iter()
        .map(ToString::to_string)
        .collect();
    let reference: Vec<String> = s
        .retrieve(Request::subject("safe(a, Y)").strategy(Strategy::SemiNaive))
        .unwrap()
        .into_data()
        .unwrap()
        .sorted()
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(rows, reference);
    // A purely positive bound query runs on the net with no downgrade.
    let clean = s
        .retrieve(Request::subject("reach(a, Y)").strategy(Strategy::Qsq))
        .unwrap();
    assert!(clean.downgrades().is_empty());
}
