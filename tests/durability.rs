//! Kill-and-reopen durability: a process that drops its session without
//! any shutdown protocol must get the same knowledge base back on
//! reopen — byte-identical answers (including completeness tags) from
//! both recovery paths (pure WAL replay and checkpoint + tail), at one
//! worker and at four.

use qdk::durability::DurabilityOptions;
use qdk::{datasets, FsyncPolicy, KnowledgeBase, Parallelism, Request, Session};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qdk-durability-{tag}-{}-{n}", std::process::id()))
}

/// Fast options for tests: no fsync, no automatic checkpoints.
fn wal_only() -> DurabilityOptions {
    DurabilityOptions {
        fsync: FsyncPolicy::Never,
        checkpoint_every_ops: None,
    }
}

/// The paper's worked examples (3–8), asked through the session facade.
const PAPER_QUERIES: &[(&str, &str, bool)] = &[
    // (subject, where-clause, is_describe)
    ("can_ta(X, databases)", "student(X, math, V), V > 3.7", true),
    ("honor(X)", "", true),
    ("honor(X)", "student(X, math, Z)", true),
    ("can_ta(X, Y)", "honor(X), teach(susan, Y)", true),
    ("prior(X, databases)", "", true),
    ("honor(X)", "enroll(X, databases)", false),
    ("prior(X, Y)", "", false),
];

/// Renders every paper query's full answer (rows / theorems, tags and
/// all) at the given worker count.
fn answers(session: &Session, workers: usize) -> Vec<String> {
    PAPER_QUERIES
        .iter()
        .map(|&(subject, hyp, is_describe)| {
            let mut req = Request::subject(subject).parallelism(Parallelism::workers(workers));
            if !hyp.is_empty() {
                req = req.where_clause(hyp);
            }
            let resp = if is_describe {
                session.describe(req).unwrap()
            } else {
                session.retrieve(req).unwrap()
            };
            resp.to_string()
        })
        .collect()
}

#[test]
fn kill_and_reopen_replays_pure_wal() {
    let dir = temp_dir("pure-wal");
    let script = datasets::university_extended().dump();

    let (reference, dump_before) = {
        let mut s = Session::open_with(&dir, wal_only()).unwrap();
        s.load(&script).unwrap();
        assert!(s.knowledge_base().is_durable());
        (answers(&s, 1), s.knowledge_base().dump())
        // Dropped here mid-stream: no checkpoint, no shutdown protocol.
    };

    let s = Session::open_with(&dir, wal_only()).unwrap();
    let report = s.recovery_report().unwrap();
    assert_eq!(report.checkpointed, 0, "no checkpoint was ever taken");
    assert!(report.replayed > 0, "the WAL tail must replay");
    assert_eq!(report.discarded_tail_bytes, 0, "clean shutdown of the OS");
    // The dump is byte-identical: schemas, keys, per-relation fact order,
    // rules and constraints all recovered exactly.
    assert_eq!(s.knowledge_base().dump(), dump_before);
    // Paper examples answer byte-identically at 1 and 4 workers.
    assert_eq!(answers(&s, 1), reference);
    assert_eq!(answers(&s, 4), reference);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_and_reopen_replays_checkpoint_plus_tail() {
    let dir = temp_dir("ckp-tail");
    let script = datasets::university_extended().dump();

    let (reference, dump_before) = {
        let mut s = Session::open_with(&dir, wal_only()).unwrap();
        s.load(&script).unwrap();
        let (lsn, bytes) = s.checkpoint().unwrap().expect("durable session");
        assert!(lsn.0 > 0 && bytes > 0);
        // Mutations after the checkpoint live only in the WAL tail.
        s.run("student(zoe, physics, 3.95).").unwrap();
        s.run("retract enroll(cara, databases).").unwrap();
        s.run("star(X) :- student(X, M, G), G > 3.9.").unwrap();
        s.run(":- star(X), unmarried(X).").unwrap();
        (answers(&s, 1), s.knowledge_base().dump())
    };

    let s = Session::open_with(&dir, wal_only()).unwrap();
    let report = s.recovery_report().unwrap();
    assert!(report.checkpointed > 0, "snapshot restored");
    assert_eq!(report.replayed, 4, "the four post-checkpoint mutations");
    assert_eq!(s.knowledge_base().dump(), dump_before);
    assert_eq!(answers(&s, 1), reference);
    assert_eq!(answers(&s, 4), reference);
    // The tail's own mutations answer correctly too.
    let resp = s.retrieve(Request::subject("star(X)")).unwrap();
    assert!(resp.as_data().unwrap().contains_row(&["zoe"]));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chain_64_recursive_reachability_survives_reopen() {
    let dir = temp_dir("chain64");
    let reference = {
        let mut s = Session::open_with(&dir, wal_only()).unwrap();
        s.run("predicate edge(F, T).").unwrap();
        for i in 0..64 {
            s.run(&format!("edge(n{i}, n{}).", i + 1)).unwrap();
        }
        s.load(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).",
        )
        .unwrap();
        let resp = s.retrieve(Request::subject("reach(n0, Y)")).unwrap();
        assert_eq!(resp.as_data().unwrap().len(), 64);
        resp.to_string()
    };

    let s = Session::open_with(&dir, wal_only()).unwrap();
    assert_eq!(s.recovery_report().unwrap().replayed, 67);
    for workers in [1, 4] {
        let resp = s
            .retrieve(Request::subject("reach(n0, Y)").parallelism(Parallelism::workers(workers)))
            .unwrap();
        assert_eq!(resp.to_string(), reference, "workers={workers}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_validation_leaves_kb_wal_and_plan_cache_unchanged() {
    let dir = temp_dir("atomicity");
    let mut s = Session::open_with(&dir, wal_only()).unwrap();
    s.load(
        "predicate student(Sname, Major, Gpa) key 1.\n\
         student(ann, math, 3.9).\n\
         honor(X) :- student(X, Y, Z), Z > 3.7.",
    )
    .unwrap();
    s.knowledge_base_mut().sync().unwrap();
    let kb_dump = s.knowledge_base().dump();
    let metrics = s.knowledge_base().durability_metrics().unwrap();
    let wal_bytes = std::fs::read(dir.join("wal.log")).unwrap();

    // Warm the plan cache so we can observe it surviving the failures.
    let warm = s
        .retrieve(Request::subject("honor(X)").with_trace(true))
        .unwrap();
    assert_eq!(warm.trace().unwrap().counter("plan_cache_miss"), Some(1));

    let kb = s.knowledge_base_mut();
    // Reserved predicate name.
    assert!(kb.declare("<", &["A", "B"], None).is_err());
    // Unknown predicate, arity mismatch, non-ground fact.
    assert!(kb
        .add_fact(&qdk::logic::parser::parse_atom("nosuch(1)").unwrap())
        .is_err());
    assert!(kb.run("student(ann, math).").is_err());
    assert!(kb
        .add_fact(&qdk::logic::parser::parse_atom("student(X, math, 3.0)").unwrap())
        .is_err());
    // Rule with a built-in head.
    let bad_rule = qdk::logic::Rule::new(
        qdk::logic::Atom::new(
            "=",
            vec![qdk::logic::Term::var("A"), qdk::logic::Term::var("B")],
        ),
        vec![],
    );
    assert!(kb.add_rule(bad_rule).is_err());
    // Retract of an unknown predicate.
    assert!(kb.run("retract nosuch(1).").is_err());

    // Nothing changed: not the KB, not the WAL, not the metrics.
    assert_eq!(s.knowledge_base().dump(), kb_dump);
    assert_eq!(s.knowledge_base().durability_metrics().unwrap(), metrics);
    assert_eq!(std::fs::read(dir.join("wal.log")).unwrap(), wal_bytes);
    // And the plan cache was not invalidated by any failed mutation.
    let again = s
        .retrieve(Request::subject("honor(X)").with_trace(true))
        .unwrap();
    assert_eq!(again.trace().unwrap().counter("plan_cache_hit"), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_rebuilds_indexes_and_meters_through_the_same_paths() {
    let dir = temp_dir("replay-paths");
    let script = "predicate edge(F, T).\n\
         predicate label(N, Kind, Weight).\n\
         linked(X, Y) :- edge(X, Y), label(X, hub, W), label(Y, hub, V).\n";
    let mut setup: Vec<String> = Vec::new();
    for i in 0..40 {
        setup.push(format!("edge(n{i}, n{}).", (i * 7) % 40));
        setup.push(format!(
            "label(n{i}, {}, {}).",
            if i % 3 == 0 { "hub" } else { "leaf" },
            i
        ));
    }
    // Retractions interleaved into the log: replay must drive the same
    // Relation::remove path (indexes and meters updated, not rebuilt via
    // some bypass constructor).
    for i in (0..40).step_by(5) {
        setup.push(format!("retract edge(n{i}, n{}).", (i * 7) % 40));
    }

    // Reference: the same history applied purely in memory.
    let mut reference = KnowledgeBase::new();
    reference.load(script).unwrap();
    for stmt in &setup {
        reference.run(stmt).unwrap();
    }

    {
        let mut s = Session::open_with(&dir, wal_only()).unwrap();
        s.load(script).unwrap();
        for stmt in &setup {
            s.run(stmt).unwrap();
        }
    }
    let mut replayed = Session::open_with(&dir, wal_only()).unwrap();

    // Same state, same per-relation insertion order (fact ids included).
    assert_eq!(replayed.knowledge_base().dump(), reference.dump());

    // Run the identical query on both; the access meters must agree —
    // identical index probes, full scans and composite-index probes mean
    // replay rebuilt the same access structures live mutation built.
    let q = "retrieve linked(X, Y).";
    let a = reference.run(q).unwrap();
    let b = replayed.run(q).unwrap();
    assert_eq!(a.to_string(), b.to_string());
    assert_eq!(
        reference.edb().access_stats(),
        replayed.knowledge_base().edb().access_stats()
    );
    assert_eq!(
        reference.edb().composite_probes(),
        replayed.knowledge_base().edb().composite_probes()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_final_record_is_healed_on_open() {
    let dir = temp_dir("torn-open");
    {
        let mut s = Session::open_with(&dir, wal_only()).unwrap();
        s.load(
            "predicate edge(F, T).\n\
             edge(a, b). edge(b, c). edge(c, d).",
        )
        .unwrap();
        s.knowledge_base_mut().sync().unwrap();
    }
    // Tear the last record, as a crash mid-append would.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();

    let s = Session::open_with(&dir, wal_only()).unwrap();
    let report = s.recovery_report().unwrap();
    assert_eq!(report.replayed, 3, "declare + first two facts");
    assert!(report.discarded_tail_bytes > 0);
    let resp = s.retrieve(Request::subject("edge(X, Y)")).unwrap();
    let d = resp.as_data().unwrap();
    assert_eq!(d.len(), 2);
    assert!(d.contains_row(&["a", "b"]) && d.contains_row(&["b", "c"]));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn automatic_checkpoints_fire_on_the_configured_cadence() {
    let dir = temp_dir("auto-ckp");
    let opts = DurabilityOptions {
        fsync: FsyncPolicy::Never,
        checkpoint_every_ops: Some(10),
    };
    {
        let mut s = Session::open_with(&dir, opts).unwrap();
        s.run("predicate tick(N).").unwrap();
        for i in 0..25 {
            s.run(&format!("tick({i}).")).unwrap();
        }
        let m = s.knowledge_base().durability_metrics().unwrap();
        assert_eq!(m.checkpoints, 2, "26 ops at a 10-op cadence");
        assert!(m.last_checkpoint_bytes > 0);
    }
    let s = Session::open_with(&dir, opts).unwrap();
    let report = s.recovery_report().unwrap();
    assert!(report.checkpointed >= 20, "most state is in the snapshot");
    assert!(report.replayed <= 6, "only the tail replays");
    let resp = s.retrieve(Request::subject("tick(N)")).unwrap();
    assert_eq!(resp.as_data().unwrap().len(), 25);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clones_share_one_log() {
    let dir = temp_dir("clone");
    let mut s = Session::open_with(&dir, wal_only()).unwrap();
    s.run("predicate p(A).").unwrap();
    let mut clone = s.clone();
    clone.run("p(1).").unwrap();
    s.run("p(2).").unwrap();
    drop((s, clone));
    // Both clones' mutations are in the one log; the declared predicate
    // replays once, and both facts are recovered.
    let s = Session::open_with(&dir, wal_only()).unwrap();
    assert_eq!(s.recovery_report().unwrap().replayed, 3);
    let resp = s.retrieve(Request::subject("p(A)")).unwrap();
    assert_eq!(resp.as_data().unwrap().len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transaction_commits_as_one_wal_record() {
    let dir = temp_dir("txn-commit");
    {
        let mut s = Session::open_with(&dir, wal_only()).unwrap();
        s.run("predicate acct(Id, Bal).").unwrap();
        // Three mutations inside the transaction, one record in the log.
        s.knowledge_base_mut()
            .transaction(|kb| {
                kb.run("acct(a, 100).")?;
                kb.run("acct(b, 50).")?;
                kb.run("retract acct(a, 100).")?;
                kb.run("acct(a, 70).").map(|_| ())
            })
            .unwrap();
        s.knowledge_base_mut().sync().unwrap();
    }
    let s = Session::open_with(&dir, wal_only()).unwrap();
    let report = s.recovery_report().unwrap();
    assert_eq!(report.replayed, 2, "declare + one batch record");
    let d = s.retrieve(Request::subject("acct(Id, Bal)")).unwrap();
    let d = d.as_data().unwrap();
    assert_eq!(d.len(), 2);
    assert!(d.contains_row(&["a", "70"]) && d.contains_row(&["b", "50"]));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rolled_back_transaction_leaves_no_trace_in_the_wal() {
    let dir = temp_dir("txn-rollback");
    {
        let mut s = Session::open_with(&dir, wal_only()).unwrap();
        s.run("predicate acct(Id, Bal).").unwrap();
        s.run("acct(a, 100).").unwrap();
        let err = s.knowledge_base_mut().transaction(|kb| {
            kb.run("acct(b, 50).")?;
            kb.run("this is not a statement.")?;
            Ok(())
        });
        assert!(err.is_err());
        // The failed batch rolled back in memory too.
        let d = s.retrieve(Request::subject("acct(Id, Bal)")).unwrap();
        assert_eq!(d.as_data().unwrap().len(), 1);
        s.knowledge_base_mut().sync().unwrap();
    }
    let s = Session::open_with(&dir, wal_only()).unwrap();
    assert_eq!(s.recovery_report().unwrap().replayed, 2, "declare + fact");
    let d = s.retrieve(Request::subject("acct(Id, Bal)")).unwrap();
    let d = d.as_data().unwrap();
    assert_eq!(d.len(), 1);
    assert!(d.contains_row(&["a", "100"]));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_batch_record_never_half_applies() {
    let dir = temp_dir("torn-batch");
    {
        let mut s = Session::open_with(&dir, wal_only()).unwrap();
        s.run("predicate acct(Id, Bal).").unwrap();
        s.run("acct(a, 100).").unwrap();
        // A transfer: both legs must land together or not at all.
        s.knowledge_base_mut()
            .transaction(|kb| {
                kb.run("retract acct(a, 100).")?;
                kb.run("acct(a, 30).")?;
                kb.run("acct(b, 70).").map(|_| ())
            })
            .unwrap();
        s.knowledge_base_mut().sync().unwrap();
    }
    // Tear into the middle of the batch record, as a crash mid-append
    // would: the record-level CRC must reject the whole batch.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 4]).unwrap();

    let s = Session::open_with(&dir, wal_only()).unwrap();
    let report = s.recovery_report().unwrap();
    assert!(report.discarded_tail_bytes > 0);
    let d = s.retrieve(Request::subject("acct(Id, Bal)")).unwrap();
    let d = d.as_data().unwrap();
    // Pre-batch state exactly: the transfer vanished as a unit.
    assert_eq!(d.len(), 1);
    assert!(d.contains_row(&["a", "100"]), "half-applied batch: {d}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_lands_on_the_last_published_epoch_despite_held_snapshots() {
    let dir = temp_dir("epoch-recovery");
    let old_reader;
    let last_answer;
    {
        let mut s = Session::open_with(&dir, wal_only()).unwrap();
        s.load(
            "predicate edge(F, T).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).\n\
             edge(a, b).",
        )
        .unwrap();
        // Epoch 1 pinned by a long-lived reader.
        old_reader = s.snapshot().unwrap();
        // Two more published epochs, the second via an atomic batch.
        s.run("edge(b, c).").unwrap();
        s.publish().unwrap();
        s.batch(|kb| {
            kb.run("edge(c, d).")?;
            kb.run("edge(d, e).").map(|_| ())
        })
        .unwrap();
        last_answer = s
            .retrieve(Request::subject("path(X, Y)"))
            .unwrap()
            .to_string();
        // Process dies here: no shutdown, reader still holding epoch 1.
    }
    let s = Session::open_with(&dir, wal_only()).unwrap();
    // Recovery lands on the last *published* state — publish forces the
    // WAL down before the epoch becomes visible — never a half batch.
    assert_eq!(
        s.retrieve(Request::subject("path(X, Y)"))
            .unwrap()
            .to_string(),
        last_answer
    );
    assert_eq!(s.knowledge_base().edb().fact_count(), 4);
    // The survivor handle still answers from its own frozen epoch,
    // fully isolated from the recovered store.
    assert_eq!(old_reader.knowledge_base().edb().fact_count(), 1);
    let d = old_reader.retrieve(Request::subject("path(X, Y)")).unwrap();
    assert_eq!(d.as_data().unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}
