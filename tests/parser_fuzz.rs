//! Parser robustness: the logic and language parsers must never panic —
//! any input, including arbitrary byte soup, yields `Ok` or a structured
//! `Err`, never an abort. (A REPL that dies on a typo is not "one coherent
//! instrument".)

use proptest::prelude::*;
use qdk::lang::parser::{parse_script, parse_statement};
use qdk::logic::parser::{parse_atom, parse_body, parse_program, parse_rule, parse_term};

/// Raw bytes, decoded lossily: exercises invalid UTF-8 boundaries turned
/// into replacement characters, control characters, and embedded NULs.
fn arb_byte_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..80)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Printable soup biased toward the grammar's own punctuation, so the
/// generated strings get past the tokenizer and stress the parser proper.
fn arb_token_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("describe ".to_string()),
            Just("retrieve ".to_string()),
            Just("predicate ".to_string()),
            Just("where ".to_string()),
            Just("and ".to_string()),
            Just("or ".to_string()),
            Just("not ".to_string()),
            Just(":-".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just(",".to_string()),
            Just(".".to_string()),
            Just("=".to_string()),
            Just(">".to_string()),
            Just("<".to_string()),
            Just("!".to_string()),
            Just("\"".to_string()),
            Just("3.7".to_string()),
            Just("X".to_string()),
            Just("prior".to_string()),
            "[ -~]{0,6}",
        ],
        0..24,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    /// The logic-layer parsers survive arbitrary byte soup.
    #[test]
    fn logic_parsers_never_panic_on_bytes(src in arb_byte_soup()) {
        let _ = parse_program(&src);
        let _ = parse_rule(&src);
        let _ = parse_atom(&src);
        let _ = parse_body(&src);
        let _ = parse_term(&src);
    }

    /// The language-layer parsers survive arbitrary byte soup.
    #[test]
    fn lang_parsers_never_panic_on_bytes(src in arb_byte_soup()) {
        let _ = parse_statement(&src);
        let _ = parse_script(&src);
    }

    /// Near-grammatical token soup: past the tokenizer, into the grammar.
    #[test]
    fn parsers_never_panic_on_token_soup(src in arb_token_soup()) {
        let _ = parse_program(&src);
        let _ = parse_rule(&src);
        let _ = parse_body(&src);
        let _ = parse_statement(&src);
        let _ = parse_script(&src);
    }
}
