//! The unified language end to end: scripts, statement round-trips, and
//! error reporting through the facade.

use qdk::lang::ast::Statement;
use qdk::lang::parser::{parse_script, parse_statement};
use qdk::KnowledgeBase;

#[test]
fn full_session_script() {
    let mut kb = KnowledgeBase::new();
    let answers = kb
        .load(
            "predicate student(Sname, Major, Gpa) key 1.
             predicate enroll(Sname, Ctitle).
             student(ann, math, 3.9).
             student(bob, math, 3.5).
             enroll(ann, databases).
             honor(X) :- student(X, Y, Z), Z > 3.7.
             retrieve honor(X).
             describe honor(X).
             describe where student(X, Y, Z) and Z > 4.5 and honor(X).",
        )
        .unwrap();
    assert_eq!(answers.len(), 9);
    // The retrieve answer.
    assert!(answers[6].as_data().unwrap().contains_row(&["ann"]));
    // The describe answer.
    assert_eq!(
        answers[7].as_knowledge().unwrap().rendered(),
        vec!["honor(X) ← student(X, Y, Z) ∧ (Z > 3.7)"]
    );
    // GPA > 4.5 > 3.7: possible as far as the knowledge goes (no upper
    // bound is stated in the IDB).
    assert_eq!(answers[8].as_bool(), Some(true));
}

#[test]
fn statement_display_roundtrips() {
    let statements = [
        "predicate student(Sname, Major, Gpa) key 1.",
        "predicate enroll(Sname, Ctitle).",
        "student(ann, math, 3.9).",
        "honor(X) :- student(X, Y, Z), (Z > 3.7).",
        ":- foreign(X), unmarried(X).",
        "retrieve honor(X) where enroll(X, databases).",
        "describe honor(X).",
        "describe can_ta(X, databases) where student(X, math, V) and (V > 3.7).",
        "describe can_ta(X, Y) where not honor(X).",
        "describe where foreign(X) and unmarried(X).",
        "describe * where honor(X).",
        "compare (describe honor(X)) with (describe deans_list(X)).",
    ];
    for src in statements {
        let parsed = parse_statement(src).unwrap();
        let printed = parsed.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(parsed, reparsed, "round-trip of {src}");
    }
}

#[test]
fn necessary_statement_roundtrips() {
    let src = "describe honor(X) where necessary complete(X, Y, Z, U) and (U > 3.3).";
    let parsed = parse_statement(src).unwrap();
    assert!(matches!(parsed, Statement::DescribeNecessary(_)));
    let reparsed = parse_statement(&parsed.to_string()).unwrap();
    assert_eq!(parsed, reparsed);
}

#[test]
fn scripts_report_positions_on_error() {
    let err = parse_script("student(ann, math, 3.9).\nretrieve honor(X where q.").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("parse error"), "{msg}");
    assert!(msg.contains("2:"), "line number missing: {msg}");
}

#[test]
fn execution_errors_are_informative() {
    let mut kb = KnowledgeBase::new();
    kb.load("predicate student(Sname, Major, Gpa).").unwrap();
    // Declared predicate, wrong arity.
    let e = kb.run("student(ann).").unwrap_err();
    assert!(e.to_string().contains("arity"), "{e}");
    // Describe of an EDB predicate.
    let e = kb.run("describe student(X, Y, Z).").unwrap_err();
    assert!(e.to_string().contains("IDB"), "{e}");
    // Unsafe retrieve.
    kb.run("honor(X) :- student(X, Y, Z), Z > 3.7.").unwrap();
    let e = kb.run("retrieve answer(W) where honor(X).").unwrap_err();
    assert!(
        e.to_string().contains("unsafe") || e.to_string().contains("W"),
        "{e}"
    );
}

#[test]
fn ack_messages_describe_the_action() {
    let mut kb = KnowledgeBase::new();
    let a = kb.run("predicate student(Sname, Major, Gpa).").unwrap();
    assert!(a.to_string().contains("declared student/3"));
    let a = kb.run("student(ann, math, 3.9).").unwrap();
    assert!(a.to_string().contains("stored"));
    let a = kb.run("honor(X) :- student(X, Y, Z), Z > 3.7.").unwrap();
    assert!(a.to_string().contains("defined rule"));
}
