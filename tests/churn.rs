//! Differential testing of incremental view maintenance under churn.
//!
//! The maintained store answers bottom-up retrieves from derived state
//! that is patched in place on every mutation — semi-naive delta
//! propagation on insert, delete-and-rederive on retract, scoped
//! re-derivation on rule changes. These tests pin that state against the
//! only authority there is: a knowledge base rebuilt from scratch after
//! every mutation, evaluated by the full fixpoint.
//!
//! * random interleavings of insert / retract / rule-add / query over
//!   random safe programs (the `differential.rs` generator) must leave
//!   the maintained session observationally identical to the rebuilt
//!   one, at 1, 2, 4 and 8 workers;
//! * describe answers depend only on the IDB and constraints, so the
//!   describe cache must keep serving hits across fact churn, evict on
//!   rule and constraint changes, and survive rules that existing rules
//!   θ-subsume;
//! * maintenance fallbacks must surface as recorded [`qdk::Downgrade`]s
//!   on the applied report and on the next retrieve — never silently.

use proptest::prelude::*;
use qdk::logic::parser::parse_atom;
use qdk::logic::{Atom, Rule, Term};
use qdk::{KnowledgeBase, Mutation, Parallelism, Request, Session, Strategy};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// Random safe programs (same universe as tests/differential.rs).
// ---------------------------------------------------------------------

/// Predicate universe: fixed arities so every occurrence agrees with the
/// declaration. e* are extensional, p* intensional candidates.
const PREDS: [(&str, usize); 5] = [("e0", 2), ("e1", 1), ("p0", 2), ("p1", 1), ("p2", 2)];

fn term_for(spec: u8, pool: &[&str]) -> Term {
    if (spec as usize) < 5 && !pool.is_empty() {
        Term::var(pool[spec as usize % pool.len()])
    } else {
        Term::sym(&format!("c{}", spec % 5))
    }
}

/// Builds a safe rule from raw specs: body first, then a head whose
/// variable arguments are drawn only from variables the body binds.
fn build_rule(head_pred: u8, head_args: &[u8], body: &[(u8, Vec<u8>)]) -> Rule {
    let vars = ["V0", "V1", "V2", "V3", "V4"];
    let mut atoms = Vec::new();
    let mut bound: Vec<&str> = Vec::new();
    for (p, args) in body {
        let (name, arity) = PREDS[*p as usize % PREDS.len()];
        let args: Vec<Term> = args
            .iter()
            .take(arity)
            .map(|a| {
                let t = term_for(*a, &vars);
                if let Term::Var(v) = &t {
                    if !bound.contains(&v.name()) {
                        bound.push(vars[*a as usize % vars.len()]);
                    }
                }
                t
            })
            .collect();
        atoms.push(Atom::new(name, args));
    }
    let (head_name, head_arity) = PREDS[2 + (head_pred as usize % 3)];
    let head_args: Vec<Term> = head_args
        .iter()
        .take(head_arity)
        .map(|a| {
            if bound.is_empty() || *a >= 5 {
                Term::sym(&format!("c{}", a % 5))
            } else {
                Term::var(bound[*a as usize % bound.len()])
            }
        })
        .collect();
    Rule::new(Atom::new(head_name, head_args), atoms)
}

/// A session over a knowledge base built from scratch: the declared
/// schema, then the rules in arrival order, then the surviving facts.
/// Never materialized — every retrieve runs the full fixpoint.
fn rebuilt_session(
    declared: &[(&str, usize)],
    rules: &[Rule],
    facts: &BTreeSet<String>,
) -> Session {
    let mut kb = KnowledgeBase::new();
    for (name, arity) in declared {
        let attrs: Vec<String> = (0..*arity).map(|i| format!("A{i}")).collect();
        let attrs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        kb.declare(name, &attrs, None).unwrap();
    }
    for rule in rules {
        kb.add_rule(rule.clone()).unwrap();
    }
    for fact in facts {
        kb.add_fact(&parse_atom(fact).unwrap()).unwrap();
    }
    Session::over(kb)
}

/// The extension of `pred` through the session facade, sorted.
fn pred_rows(session: &Session, pred: &str, arity: usize, workers: usize) -> Vec<String> {
    let vars: Vec<&str> = ["X", "Y", "Z"][..arity].to_vec();
    let request = Request::subject(format!("{pred}({})", vars.join(", ")))
        .parallelism(Parallelism::workers(workers));
    let response = session.retrieve(request).unwrap();
    let mut rows: Vec<String> = response
        .as_data()
        .unwrap()
        .rows
        .iter()
        .map(|row| format!("{pred}{row}"))
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random safe programs under random churn scripts: after every
    /// mutation the maintained session derives exactly what a knowledge
    /// base rebuilt from the surviving facts derives, and the final
    /// state agrees at 1, 2, 4 and 8 workers.
    #[test]
    fn maintained_session_matches_rebuilt_from_scratch(
        specs in proptest::collection::vec(
            (
                0u8..3,
                proptest::collection::vec(0u8..10, 2..3),
                proptest::collection::vec(
                    (0u8..5, proptest::collection::vec(0u8..10, 2..3)),
                    1..3,
                ),
            ),
            1..4,
        ),
        e0 in proptest::collection::vec((0u8..5, 0u8..5), 0..8),
        e1 in proptest::collection::vec(0u8..5, 0..4),
        script in proptest::collection::vec((0u8..8, 0u8..5, 0u8..5), 1..12),
    ) {
        let mut rules: Vec<Rule> = specs
            .iter()
            .map(|(h, ha, body)| build_rule(*h, ha, body))
            .collect();
        // The declared schema is fixed up front: every predicate the
        // initial program leaves extensional. A churned rule may later
        // define a declared predicate — maintenance must stay correct
        // even then (the EDB side simply has no facts for it).
        let defined: BTreeSet<&str> = rules.iter().map(|r| r.head.pred.as_str()).collect();
        let declared: Vec<(&str, usize)> = PREDS
            .iter()
            .filter(|(name, _)| !defined.contains(name))
            .copied()
            .collect();

        let mut shadow: BTreeSet<String> = BTreeSet::new();
        for (a, b) in &e0 {
            shadow.insert(format!("e0(c{}, c{})", a % 5, b % 5));
        }
        for a in &e1 {
            shadow.insert(format!("e1(c{})", a % 5));
        }

        let mut live = rebuilt_session(&declared, &rules, &shadow);
        live.knowledge_base_mut().materialize_maintained().unwrap();

        for (op, a, b) in script {
            match op {
                // Insert (the common case) and retract, through the
                // unified mutation builder.
                0..=5 => {
                    let fact = match op % 3 {
                        0 | 1 => format!("e0(c{a}, c{b})"),
                        _ => format!("e1(c{a})"),
                    };
                    let insert = op < 4;
                    let mutation = if insert {
                        Mutation::new().insert(fact.as_str())
                    } else {
                        Mutation::new().retract(fact.as_str())
                    };
                    let applied = live.apply(mutation).unwrap();
                    if insert {
                        if shadow.insert(fact) {
                            prop_assert_eq!(applied.inserted, 1);
                        } else {
                            prop_assert_eq!(applied.duplicates, 1);
                        }
                    } else if shadow.remove(&fact) {
                        prop_assert_eq!(applied.retracted, 1);
                    } else {
                        prop_assert_eq!(applied.missing, 1);
                    }
                }
                // Rule churn: the maintained store re-derives the
                // affected region in place.
                _ => {
                    let rule = build_rule(a, &[b, a], &[(b, vec![a, b])]);
                    live.knowledge_base_mut().add_rule(rule.clone()).unwrap();
                    rules.push(rule);
                }
            }

            let rebuilt = rebuilt_session(&declared, &rules, &shadow);
            let idb_preds: BTreeSet<&str> =
                rules.iter().map(|r| r.head.pred.as_str()).collect();
            for (pred, arity) in PREDS.iter().skip(2) {
                if !idb_preds.contains(pred) {
                    continue;
                }
                prop_assert_eq!(
                    pred_rows(&live, pred, *arity, 1),
                    pred_rows(&rebuilt, pred, *arity, 1),
                    "maintained {} drifts from rebuilt over {:?}",
                    pred,
                    rules
                );
            }
        }

        // The final state agrees at every worker count; the maintained
        // store survived the whole script (no silent loss).
        let rebuilt = rebuilt_session(&declared, &rules, &shadow);
        let idb_preds: BTreeSet<&str> = rules.iter().map(|r| r.head.pred.as_str()).collect();
        for (pred, arity) in PREDS.iter().skip(2) {
            if !idb_preds.contains(pred) {
                continue;
            }
            for workers in [1usize, 2, 4, 8] {
                prop_assert_eq!(
                    pred_rows(&live, pred, *arity, workers),
                    pred_rows(&rebuilt, pred, *arity, workers),
                    "maintained {} at {} workers drifts from rebuilt",
                    pred,
                    workers
                );
            }
        }
        prop_assert!(live.knowledge_base().is_maintained());
    }
}

// ---------------------------------------------------------------------
// Deterministic coverage: DRed, describe-cache policy, downgrades.
// ---------------------------------------------------------------------

const UNIVERSITY: &str = "predicate student(Sname, Major, Gpa) key 1.
     predicate enroll(Sname, Ctitle).
     student(ann, math, 3.9).
     student(bob, physics, 3.5).
     student(cara, math, 3.8).
     enroll(ann, databases).
     enroll(bob, databases).
     honor(X) :- student(X, Y, Z), Z > 3.7.";

fn university_session() -> Session {
    let mut session = Session::new();
    session.load(UNIVERSITY).unwrap();
    session
}

/// Retracting one support of a doubly-derivable fact exercises the full
/// delete-and-rederive cycle: the overestimate dooms it, the rederive
/// sweep puts it back, and serving stays exact.
#[test]
fn retract_rederives_alternative_derivations() {
    let mut session = Session::new();
    session
        .load(
            "predicate edge(F, T).
             edge(a, b). edge(b, c). edge(a, c).
             reach(X, Y) :- edge(X, Y).
             reach(X, Y) :- edge(X, Z), reach(Z, Y).",
        )
        .unwrap();
    let applied = session
        .apply(Mutation::new().retract("edge(b, c)"))
        .unwrap();
    assert_eq!(applied.retracted, 1);
    assert_eq!(applied.recomputes(), 0, "{:?}", applied.maintenance);
    // reach(b, c) dies with its only support; reach(a, c) is doomed by
    // the overestimate but rederived from the direct edge.
    assert!(applied.maintenance.derived_deleted >= 1);
    assert!(applied.maintenance.rederived >= 1);
    assert_eq!(
        pred_rows(&session, "reach", 2, 1),
        vec!["reach(a, b)", "reach(a, c)"]
    );
    assert!(session.knowledge_base().is_maintained());
}

/// Describe answers depend only on the IDB and constraints — fact churn
/// must not touch the cache, so the third describe is still a hit.
#[test]
fn describe_cache_serves_hits_across_fact_churn() {
    let mut session = university_session();
    let first = session.describe(Request::subject("honor(X)")).unwrap();
    session.describe(Request::subject("honor(X)")).unwrap();
    let stats = session.knowledge_base().describe_cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    let applied = session
        .apply(
            Mutation::new()
                .insert("student(dana, math, 3.95)")
                .retract("student(bob, physics, 3.5)"),
        )
        .unwrap();
    assert_eq!(applied.describe_cache.evicted, 0);

    let third = session.describe(Request::subject("honor(X)")).unwrap();
    let stats = session.knowledge_base().describe_cache_stats();
    assert_eq!((stats.hits, stats.misses), (2, 1));
    assert_eq!(
        third.as_knowledge().unwrap().rendered(),
        first.as_knowledge().unwrap().rendered()
    );
}

/// A genuinely new rule for a predicate in the cached answer's closure
/// evicts the entry, and the recomputed answer carries the new theorem.
#[test]
fn describe_cache_evicts_on_new_rule_and_recomputes() {
    let mut session = university_session();
    let before = session.describe(Request::subject("honor(X)")).unwrap();
    assert_eq!(before.as_knowledge().unwrap().rendered().len(), 1);

    let applied = session
        .apply(Mutation::new().rule("honor(X) :- enroll(X, chess)"))
        .unwrap();
    assert_eq!(applied.rules_added, 1);
    assert_eq!(applied.describe_cache.evicted, 1);
    assert_eq!(applied.describe_cache.survived, 0);

    let after = session.describe(Request::subject("honor(X)")).unwrap();
    assert_eq!(after.as_knowledge().unwrap().rendered().len(), 2);
    let stats = session.knowledge_base().describe_cache_stats();
    assert_eq!(stats.hits, 0, "stale entry served after rule change");
}

/// A rule θ-subsumed by an existing same-head rule cannot contribute a
/// theorem (redundancy removal prunes it), so cached answers survive and
/// the next describe is a hit with the identical answer.
#[test]
fn describe_cache_survives_subsumed_rule() {
    let mut session = university_session();
    let before = session.describe(Request::subject("honor(X)")).unwrap();

    let applied = session
        .apply(Mutation::new().rule("honor(A) :- student(A, B, C), C > 3.7"))
        .unwrap();
    assert_eq!(applied.rules_added, 1);
    assert_eq!(applied.describe_cache.evicted, 0);
    assert_eq!(applied.describe_cache.survived, 1);

    let after = session.describe(Request::subject("honor(X)")).unwrap();
    let stats = session.knowledge_base().describe_cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(
        after.as_knowledge().unwrap().rendered(),
        before.as_knowledge().unwrap().rendered()
    );
}

/// Constraints shape knowledge answers, so adding one whose predicates
/// intersect a cached closure evicts the entry.
#[test]
fn describe_cache_evicts_on_constraint() {
    let mut session = university_session();
    session.describe(Request::subject("honor(X)")).unwrap();

    let applied = session
        .apply(
            Mutation::new()
                .declare("suspended", &["Sname"], None)
                .constraint("honor(X), suspended(X)"),
        )
        .unwrap();
    assert_eq!(applied.constraints_added, 1);
    assert_eq!(applied.describe_cache.evicted, 1);

    session.describe(Request::subject("honor(X)")).unwrap();
    let stats = session.knowledge_base().describe_cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 2));
}

/// Mutating a negated predicate is non-monotone, so maintenance must
/// fall back to recomputation — and say so: the fallback is recorded on
/// the applied report and surfaces as a downgrade on the next retrieve.
#[test]
fn maintenance_fallback_surfaces_as_downgrade() {
    let mut session = Session::new();
    session
        .load(
            "predicate e(A).
             predicate f(A).
             e(a). e(b). f(b).
             p(X) :- e(X), not f(X).",
        )
        .unwrap();
    let applied = session.apply(Mutation::new().insert("f(a)")).unwrap();
    assert!(applied.recomputes() >= 1, "{:?}", applied.maintenance);
    assert!(!applied.downgrades.is_empty());
    assert!(
        applied.downgrades.iter().any(|d| {
            let rendered = d.to_string();
            rendered.contains("Incremental") && rendered.contains("Recompute")
        }),
        "{:?}",
        applied.downgrades
    );

    // The queued downgrades ride the next answer front, then drain.
    let response = session.retrieve(Request::subject("p(X)")).unwrap();
    assert!(!response.downgrades().is_empty());
    assert_eq!(
        pred_rows(&session, "p", 1, 1),
        Vec::<String>::new(),
        "recompute must reflect the widened negation"
    );
    assert!(session.knowledge_base().is_maintained());
}

/// After a burst of fact churn, every retrieve strategy — including the
/// goal-directed ones that bypass the maintained store — answers bound
/// and open queries identically off the mutated knowledge base.
#[test]
fn all_five_strategies_agree_after_churn() {
    let mut session = Session::new();
    session
        .load(
            "predicate edge(F, T).
             edge(a, b). edge(b, c). edge(c, d).
             reach(X, Y) :- edge(X, Y).
             reach(X, Y) :- edge(X, Z), reach(Z, Y).",
        )
        .unwrap();
    session
        .apply(
            Mutation::new()
                .insert("edge(d, e)")
                .insert("edge(e, a)")
                .retract("edge(b, c)")
                .insert("edge(b, e)"),
        )
        .unwrap();
    for subject in ["reach(a, Y)", "reach(X, Y)"] {
        let mut reference: Option<Vec<String>> = None;
        for strategy in [
            Strategy::Naive,
            Strategy::SemiNaive,
            Strategy::TopDown,
            Strategy::Magic,
            Strategy::Qsq,
        ] {
            let response = session
                .retrieve(Request::subject(subject).strategy(strategy))
                .unwrap();
            let mut rows: Vec<String> = response
                .as_data()
                .unwrap()
                .rows
                .iter()
                .map(ToString::to_string)
                .collect();
            rows.sort();
            rows.dedup();
            match &reference {
                Some(expected) => assert_eq!(expected, &rows, "{strategy:?} on {subject}"),
                None => reference = Some(rows),
            }
        }
    }
}
