//! Snapshot-isolated concurrent serving: one writer publishing epochs,
//! many readers pinning immutable snapshots.
//!
//! The contract under test (DESIGN.md §15):
//!
//! * a [`qdk::SnapshotSession`] is `Send + Sync` and answers queries
//!   against exactly the epoch it pinned — byte-identical to a
//!   sequential run over the same state, at every worker count,
//!   including completeness tags and `Exhausted` diagnostics;
//! * a reader opened before a publish never observes it; `refresh()`
//!   hops to the newest epoch explicitly;
//! * a single writer batching mutations between publishes never blocks
//!   readers, and every reader sees a whole batch or none of it.

use proptest::prelude::*;
use qdk::{EpochId, Parallelism, Request, ResourceLimits, Session, SnapshotSession, Strategy};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// The reader worker counts required by the acceptance criteria.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn routing_session(edges: &[(u32, u32)]) -> Session {
    let mut s = Session::new();
    s.load(
        "predicate edge(F, T).\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- edge(X, Y), path(Y, Z).",
    )
    .unwrap();
    for (f, t) in edges {
        s.run(&format!("edge(n{f}, n{t}).")).unwrap();
    }
    s
}

/// The canonical byte rendering of one retrieve over a snapshot: rows in
/// display order, plus any downgrades. Sorting is *not* applied — the
/// point is that the engine itself is deterministic per snapshot.
fn answer_bytes(snap: &SnapshotSession, request: Request) -> String {
    let resp = snap.retrieve(request).unwrap();
    format!("{resp}|downgrades={:?}", resp.downgrades())
}

#[test]
fn snapshot_handles_are_send_sync_and_clone() {
    fn assert_send_sync<T: Send + Sync + Clone>() {}
    assert_send_sync::<SnapshotSession>();
}

#[test]
fn reader_opened_before_publish_never_observes_it() {
    let mut s = routing_session(&[(1, 2), (2, 3)]);
    let old = s.snapshot().unwrap();
    let before = answer_bytes(&old, Request::subject("path(X, Y)"));
    assert_eq!(old.knowledge_base().edb().fact_count(), 2);

    // Writer keeps mutating and publishing; the pinned handle is frozen.
    s.run("edge(n3, n4).").unwrap();
    let e2 = s.publish().unwrap();
    assert!(e2 > old.epoch());
    assert_eq!(old.knowledge_base().edb().fact_count(), 2);
    assert_eq!(answer_bytes(&old, Request::subject("path(X, Y)")), before);

    // An explicit refresh hops to the new epoch.
    let mut fresh = old.clone();
    assert!(fresh.refresh());
    assert_eq!(fresh.epoch(), e2);
    assert_eq!(fresh.knowledge_base().edb().fact_count(), 3);
    assert!(!fresh.refresh(), "nothing newer published");
    // The original handle still hasn't moved.
    assert_eq!(old.knowledge_base().edb().fact_count(), 2);
}

#[test]
fn answers_are_byte_identical_at_every_worker_count() {
    let mut s = routing_session(&[(1, 2), (2, 3), (3, 4), (4, 5), (2, 5)]);
    let snap = s.snapshot().unwrap();
    for strategy in [
        Strategy::Naive,
        Strategy::SemiNaive,
        Strategy::Magic,
        Strategy::Qsq,
    ] {
        let reference = answer_bytes(
            &snap,
            Request::subject("path(X, Y)")
                .strategy(strategy)
                .parallelism(Parallelism::SEQUENTIAL),
        );
        for workers in WORKER_COUNTS {
            let got = answer_bytes(
                &snap,
                Request::subject("path(X, Y)")
                    .strategy(strategy)
                    .parallelism(Parallelism::workers(workers)),
            );
            assert_eq!(got, reference, "{strategy:?} with {workers} workers");
        }
    }
}

#[test]
fn concurrent_readers_agree_with_the_sequential_run() {
    let mut s = routing_session(&[(1, 2), (2, 3), (3, 4), (4, 5)]);
    let snap = s.snapshot().unwrap();
    let reference = Arc::new(answer_bytes(
        &snap,
        Request::subject("path(X, Y)").parallelism(Parallelism::SEQUENTIAL),
    ));
    let handles: Vec<_> = WORKER_COUNTS
        .into_iter()
        .map(|workers| {
            let snap = snap.clone();
            let reference = Arc::clone(&reference);
            thread::spawn(move || {
                for _ in 0..10 {
                    let got = answer_bytes(
                        &snap,
                        Request::subject("path(X, Y)").parallelism(Parallelism::workers(workers)),
                    );
                    assert_eq!(got, *reference, "{workers} workers");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn exhausted_diagnostics_are_deterministic_across_snapshots() {
    let mut s = routing_session(&[(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
    let snap = s.snapshot().unwrap();
    let tight =
        || Request::subject("path(X, Y)").limits(ResourceLimits::default().with_work_budget(3));
    let reference = format!(
        "{:?}",
        snap.retrieve(tight()).unwrap_err().exhausted().unwrap()
    );
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let snap = snap.clone();
            let reference = reference.clone();
            thread::spawn(move || {
                let got = format!(
                    "{:?}",
                    snap.retrieve(tight()).unwrap_err().exhausted().unwrap()
                );
                assert_eq!(got, reference);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn describe_completeness_tags_survive_the_snapshot_path() {
    let mut s = Session::new();
    s.load(
        "predicate student(Sname, Major, Gpa) key 1.\n\
         student(ann, math, 3.9).\n\
         honor(X) :- student(X, Y, Z), Z > 3.7.",
    )
    .unwrap();
    let snap = s.snapshot().unwrap();
    let direct = s.describe(Request::subject("honor(X)")).unwrap();
    let snapped = snap.describe(Request::subject("honor(X)")).unwrap();
    let render = |r: &qdk::Response| {
        let k = r.as_knowledge().unwrap();
        format!("{:?}|{:?}", k.rendered(), k.completeness)
    };
    assert_eq!(render(&snapped), render(&direct));
}

#[test]
fn batches_publish_atomically_to_refreshing_readers() {
    let mut s = routing_session(&[(0, 1)]);
    let mut reader = s.snapshot().unwrap();
    // Readers refreshing mid-batch must see either the whole batch or
    // none of it: each batch adds a chain link AND its marker fact, so
    // fact_count per epoch is always odd (1 edge + k*(2)).
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let stop = Arc::clone(&stop);
        let reader = reader.clone();
        thread::spawn(move || {
            let mut reader = reader;
            let mut last = EpochId(0);
            while !stop.load(Ordering::Relaxed) {
                reader.refresh();
                let epoch = reader.epoch();
                assert!(epoch >= last, "epochs must be monotonic");
                last = epoch;
                let n = reader.knowledge_base().edb().fact_count();
                assert_eq!(n % 2, 1, "observed a half-applied batch: {n} facts");
            }
        })
    };
    for i in 1..20u32 {
        s.batch(|kb| {
            kb.run(&format!("edge(n{i}, n{j}).", j = i + 1))?;
            kb.run(&format!("edge(m{i}, m{i}).")).map(|_| ())
        })
        .unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
    assert!(reader.refresh());
    assert_eq!(reader.knowledge_base().edb().fact_count(), 39);
}

/// Satellite (c): one writer batching epochs while N readers pin
/// snapshots; every reader's answer must be byte-identical to the
/// sequential answer for the epoch it pinned.
#[test]
fn pinned_readers_match_sequential_answers_per_epoch() {
    let mut s = routing_session(&[(0, 1)]);
    // Build the epoch history up front: epoch -> expected bytes, computed
    // through the ordinary (non-snapshot) sequential path on the writer.
    let mut expected: HashMap<EpochId, String> = HashMap::new();
    let mut record = |s: &mut Session, epoch: EpochId| {
        let snap_free = s
            .retrieve(Request::subject("path(X, Y)").parallelism(Parallelism::SEQUENTIAL))
            .unwrap();
        expected.insert(
            epoch,
            format!("{snap_free}|downgrades={:?}", snap_free.downgrades()),
        );
    };
    let first = s.snapshot().unwrap();
    record(&mut s, first.epoch());
    let mut snapshots = vec![first];
    for i in 1..8u32 {
        s.run(&format!("edge(n{i}, n{j}).", j = i + 1)).unwrap();
        let snap = s.snapshot().unwrap();
        record(&mut s, snap.epoch());
        snapshots.push(snap);
    }
    let expected = Arc::new(expected);
    // Readers at every worker count, each re-checking every pinned epoch.
    let handles: Vec<_> = WORKER_COUNTS
        .into_iter()
        .map(|workers| {
            let snapshots = snapshots.clone();
            let expected = Arc::clone(&expected);
            thread::spawn(move || {
                for snap in &snapshots {
                    let got = answer_bytes(
                        snap,
                        Request::subject("path(X, Y)").parallelism(Parallelism::workers(workers)),
                    );
                    assert_eq!(
                        got,
                        expected[&snap.epoch()],
                        "epoch {} at {workers} workers",
                        snap.epoch()
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomised writer/reader interleavings: arbitrary edge batches
    /// published over a run of epochs; snapshots taken at arbitrary
    /// points answer exactly like a fresh KB holding the same facts.
    #[test]
    fn snapshot_answers_equal_rebuilt_kb_answers(
        batches in proptest::collection::vec(
            proptest::collection::vec((0u32..6, 0u32..6), 1..4),
            1..6,
        ),
    ) {
        let mut s = routing_session(&[]);
        let mut all: Vec<(u32, u32)> = Vec::new();
        let mut pinned: Vec<(SnapshotSession, Vec<(u32, u32)>)> = Vec::new();
        for batch in &batches {
            s.batch(|kb| {
                for (f, t) in batch {
                    kb.run(&format!("edge(n{f}, n{t})."))?;
                }
                Ok(())
            }).unwrap();
            all.extend(batch.iter().copied());
            pinned.push((s.snapshot().unwrap(), all.clone()));
        }
        for (snap, facts) in &pinned {
            // A fresh, never-shared KB with the same facts is ground truth.
            let ground = routing_session(facts);
            let want = ground
                .retrieve(Request::subject("path(X, Y)").parallelism(Parallelism::SEQUENTIAL))
                .unwrap()
                .to_string();
            let got = snap
                .retrieve(Request::subject("path(X, Y)").parallelism(Parallelism::SEQUENTIAL))
                .unwrap()
                .to_string();
            prop_assert_eq!(got, want);
        }
    }
}
