//! Minimal in-tree bounded parallel executor.
//!
//! The build environment has no registry access, so — like the `rand`,
//! `proptest` and `criterion` shims — this crate provides exactly the
//! parallel-execution surface the workspace needs, on `std::thread` alone:
//! no work stealing, no task queues, no unsafe code.
//!
//! The model is *permit-based structured fork/join*: a [`Pool`] holds a
//! fixed number of permits (worker slots). [`Pool::join_all`] runs a batch
//! of closures, spawning a scoped thread for each closure that can acquire
//! a permit and running the rest inline on the calling thread. Results come
//! back in submission order, so callers can merge deterministically. Because
//! a batch that finds no free permits simply runs inline, nested use (a
//! task that itself calls `join_all`) degrades gracefully to sequential
//! execution instead of exploding the thread count.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of worker threads the platform can run concurrently, or 1 when
/// the platform will not say.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A bounded pool of worker permits.
///
/// `Pool` does not own threads: threads are spawned per [`join_all`]
/// (scoped, so borrows of the caller's stack work) and bounded by the
/// permit count. A pool with `workers <= 1` never spawns — every batch
/// runs inline, byte-identical to a plain sequential loop.
#[derive(Clone, Debug)]
pub struct Pool {
    /// Extra threads allowed beyond the calling thread.
    permits: Arc<AtomicUsize>,
    workers: usize,
}

impl Pool {
    /// A pool allowing up to `workers` concurrent threads of execution
    /// (including the calling thread). `0` is treated as `1`.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Pool {
            permits: Arc::new(AtomicUsize::new(workers - 1)),
            workers,
        }
    }

    /// A pool sized to the platform's available parallelism.
    pub fn auto() -> Self {
        Pool::new(available_parallelism())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// True when the pool can never spawn (sequential path).
    pub fn is_sequential(&self) -> bool {
        self.workers <= 1
    }

    fn try_acquire(&self) -> bool {
        self.permits
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| p.checked_sub(1))
            .is_ok()
    }

    fn release(&self) {
        self.permits.fetch_add(1, Ordering::AcqRel);
    }

    /// Runs every closure in `tasks`, returning their results in
    /// submission order. Up to the pool's permit count of tasks run on
    /// spawned scoped threads; the remainder (always at least the final
    /// task) run inline on the calling thread. With one task or a
    /// sequential pool this is exactly a sequential loop — no threads, no
    /// allocation beyond the result vector.
    pub fn join_all<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if self.is_sequential() || tasks.len() <= 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }
        let n = tasks.len();
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        for _ in 0..n {
            slots.push(None);
        }
        std::thread::scope(|scope| {
            let mut inline: Vec<(usize, F)> = Vec::new();
            let mut handles = Vec::new();
            for (i, task) in tasks.into_iter().enumerate() {
                // Keep the last task inline so the calling thread always
                // contributes instead of idling in join().
                if i + 1 < n && self.try_acquire() {
                    let pool = self.clone();
                    handles.push((
                        i,
                        scope.spawn(move || {
                            let r = task();
                            pool.release();
                            r
                        }),
                    ));
                } else {
                    inline.push((i, task));
                }
            }
            for (i, task) in inline {
                slots[i] = Some(task());
            }
            for (i, h) in handles {
                match h.join() {
                    Ok(r) => slots[i] = Some(r),
                    // A panicking task poisons the whole batch: re-raise on
                    // the caller so the failure is not silently dropped.
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled by its task"))
            .collect()
    }

    /// Maps `f` over `items` with bounded parallelism, preserving order.
    pub fn parallel_map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let f = &f;
        self.join_all(items.into_iter().map(|item| move || f(item)).collect())
    }

    /// Splits `len` items into at most `workers` contiguous chunks of
    /// near-equal size, returned as `(start, end)` ranges. Empty when
    /// `len` is 0.
    pub fn chunk_ranges(&self, len: usize) -> Vec<(usize, usize)> {
        chunk_ranges(len, self.workers)
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::auto()
    }
}

/// Splits `len` items into at most `parts` contiguous `(start, end)`
/// ranges of near-equal size (first ranges get the remainder).
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_all_preserves_order() {
        let pool = Pool::new(4);
        let tasks: Vec<_> = (0..32).map(|i| move || i * 2).collect();
        let out = pool.join_all(tasks);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_pool_never_spawns() {
        let pool = Pool::new(1);
        assert!(pool.is_sequential());
        let main_id = std::thread::current().id();
        let tasks: Vec<_> = (0..8)
            .map(|_| move || std::thread::current().id() == main_id)
            .collect();
        assert!(pool.join_all(tasks).into_iter().all(|on_main| on_main));
    }

    #[test]
    fn zero_workers_is_one() {
        assert_eq!(Pool::new(0).workers(), 1);
    }

    #[test]
    fn nested_join_all_degrades_instead_of_exploding() {
        let pool = Pool::new(2);
        let inner = pool.clone();
        let tasks: Vec<_> = (0..4)
            .map(|i| {
                let inner = inner.clone();
                move || {
                    let sub: Vec<_> = (0..4).map(|j| move || i * 10 + j).collect();
                    inner.join_all(sub).iter().sum::<i32>()
                }
            })
            .collect();
        let out = pool.join_all(tasks);
        assert_eq!(out, vec![6, 46, 86, 126]);
    }

    #[test]
    fn permits_are_restored_after_batches() {
        let pool = Pool::new(3);
        for _ in 0..5 {
            let _ = pool.join_all((0..7).map(|i| move || i).collect::<Vec<_>>());
        }
        assert_eq!(pool.permits.load(Ordering::Acquire), 2);
    }

    #[test]
    fn parallel_map_matches_sequential_map() {
        let pool = Pool::new(4);
        let items: Vec<i64> = (0..100).collect();
        let expected: Vec<i64> = items.iter().map(|x| x * x).collect();
        assert_eq!(pool.parallel_map(items, |x| x * x), expected);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 5, 8, 17] {
            for parts in [1usize, 2, 4, 9] {
                let ranges = chunk_ranges(len, parts);
                let mut covered = 0;
                let mut prev_end = 0;
                for (s, e) in &ranges {
                    assert_eq!(*s, prev_end);
                    assert!(e > s);
                    covered += e - s;
                    prev_end = *e;
                }
                assert_eq!(covered, len);
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn results_from_threads_and_inline_agree() {
        let pool = Pool::new(8);
        let tasks: Vec<_> = (0..64)
            .map(|i| {
                move || {
                    // Mix of fast and slow tasks to force interleaving.
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    i + 1
                }
            })
            .collect();
        assert_eq!(pool.join_all(tasks), (1..=64).collect::<Vec<_>>());
    }
}
