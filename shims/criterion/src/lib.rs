//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of criterion's API that the repository's
//! benches use. Measurement is deliberately simple: each benchmark runs a
//! short warm-up plus `sample_size` timed iterations and prints mean
//! wall-clock time per iteration. That is enough for the repo's coarse
//! before/after comparisons; it makes no claim to criterion's statistical
//! rigor (no outlier analysis, no regression detection, no HTML reports).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work alongside
/// `std::hint::black_box` users.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Set the per-benchmark measurement window (upper bound on timing work).
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: None,
        }
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_bench(self.sample_size, self.measurement_time, &mut f);
        report(&id.to_string(), &stats);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Override the measurement window for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Record the logical throughput of each iteration (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let window = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        let stats = run_bench(self.criterion.sample_size, window, &mut f);
        report(&format!("{}/{}", self.name, id), &stats);
        self
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let window = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        let stats = run_bench(
            self.criterion.sample_size,
            window,
            &mut |b: &mut Bencher| f(b, input),
        );
        report(&format!("{}/{}", self.name, id), &stats);
        self
    }

    /// Finish the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Logical work per iteration, for throughput annotations.
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost; only the variants the repo uses.
pub enum BatchSize {
    /// Small per-iteration inputs: setup runs once per timed iteration.
    SmallInput,
    /// Large per-iteration inputs: treated the same as `SmallInput` here.
    LargeInput,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with fresh input from `setup` each iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

struct Stats {
    mean: Duration,
    min: Duration,
    max: Duration,
}

fn run_bench<F>(samples: usize, window: Duration, f: &mut F) -> Stats
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration: find an iteration count that keeps each
    // sample fast while the whole run stays inside the measurement window.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = window
        .checked_div(samples as u32)
        .unwrap_or(Duration::from_millis(10));
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed / iters as u32);
    }
    let total: Duration = times.iter().sum();
    Stats {
        mean: total / samples as u32,
        min: times.iter().min().copied().unwrap_or_default(),
        max: times.iter().max().copied().unwrap_or_default(),
    }
}

fn report(name: &str, stats: &Stats) {
    println!(
        "bench {name:<50} mean {:>12?}  min {:>12?}  max {:>12?}",
        stats.mean, stats.min, stats.max
    );
}

/// Define a benchmark group runner, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(60));
        targets = sample_bench
    );

    criterion_group!(plain, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
        plain();
    }
}
