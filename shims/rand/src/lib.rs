//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the tiny slice of `rand`'s API that the repository
//! actually uses: `StdRng::seed_from_u64` and `Rng::gen_range` over integer
//! ranges. The generator is SplitMix64 — deterministic, seedable, and more
//! than adequate for test-fixture and benchmark-input generation (it is not,
//! and does not need to be, cryptographically secure).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` using the supplied raw source.
    fn sample_range(src: &mut dyn RngCore, range: Range<Self>) -> Self;
}

/// Raw 64-bit entropy source.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(src: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                // u128 arithmetic avoids overflow for the full i64/u64 domain.
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (src.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Convenience methods available on every entropy source.
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open integer range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-99i64..99);
            assert!((-99..99).contains(&w));
        }
    }

    #[test]
    fn covers_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0u8..6) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
