//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset of proptest's API that the repository's
//! property tests use: the [`Strategy`] trait with `prop_map` / `prop_filter`
//! / `boxed`, [`Just`], integer-range and tuple strategies,
//! [`collection::vec`], regex-lite string strategies, the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros, and
//! [`ProptestConfig`].
//!
//! Differences from real proptest: generation is a fixed deterministic seed
//! per test (derived from the test name), and failing cases are reported but
//! not shrunk. Both are acceptable for this repository's use — the tests are
//! soundness and never-panic properties over generated inputs.

#![forbid(unsafe_code)]

use std::fmt;

/// Failure raised by a property body (via `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generation machinery.
pub mod test_runner {
    /// SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded generator.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Stable per-test seed derived from the test's name.
    pub fn rng_for(name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe core (`gen`) plus `Sized`-gated combinators, so
    /// `Box<dyn Strategy<Value = T>>` works.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn gen(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keep only values for which `f` returns true, retrying otherwise.
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(pub Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            self.0.gen(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn gen(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.gen(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter gave up after 1000 rejections: {}", self.reason);
        }
    }

    /// Weighted choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.gen(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Regex-lite string strategy: `&str` patterns support literal
    /// characters, `\n`/`\t`/`\\` escapes, character classes with ranges
    /// (e.g. `[a-z0-9_]`, `[ -~\n]`), and `{m}` / `{m,n}` quantifiers.
    impl Strategy for &str {
        type Value = String;
        fn gen(&self, rng: &mut TestRng) -> String {
            let items = parse_pattern(self);
            let mut out = String::new();
            for (alphabet, lo, hi) in &items {
                let n = if lo == hi {
                    *lo
                } else {
                    *lo + rng.below((hi - lo + 1) as u64) as usize
                };
                for _ in 0..n {
                    let i = rng.below(alphabet.len() as u64) as usize;
                    out.push(alphabet[i]);
                }
            }
            out
        }
    }

    /// One pattern item: candidate characters plus repetition bounds.
    type PatternItem = (Vec<char>, usize, usize);

    fn parse_pattern(pat: &str) -> Vec<PatternItem> {
        let chars: Vec<char> = pat.chars().collect();
        let mut items = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed class in pattern {pat:?}"))
                        + i;
                    let set = parse_class(&chars[i + 1..close], pat);
                    i = close + 1;
                    set
                }
                '\\' => {
                    let c = unescape(chars.get(i + 1).copied(), pat);
                    i += 2;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pat:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "bad quantifier in pattern {pat:?}");
            items.push((alphabet, lo, hi));
        }
        items
    }

    fn parse_class(body: &[char], pat: &str) -> Vec<char> {
        let mut set = Vec::new();
        let mut j = 0;
        while j < body.len() {
            let c = if body[j] == '\\' {
                let c = unescape(body.get(j + 1).copied(), pat);
                j += 2;
                c
            } else {
                let c = body[j];
                j += 1;
                c
            };
            // A `-` with something on both sides forms a range.
            if body.get(j) == Some(&'-') && j + 1 < body.len() {
                let hi = if body[j + 1] == '\\' {
                    let h = unescape(body.get(j + 2).copied(), pat);
                    j += 3;
                    h
                } else {
                    let h = body[j + 1];
                    j += 2;
                    h
                };
                assert!(c <= hi, "inverted range in pattern {pat:?}");
                for code in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        set.push(ch);
                    }
                }
            } else {
                set.push(c);
            }
        }
        assert!(!set.is_empty(), "empty class in pattern {pat:?}");
        set
    }

    fn unescape(c: Option<char>, pat: &str) -> char {
        match c {
            Some('n') => '\n',
            Some('t') => '\t',
            Some('r') => '\r',
            Some(other) => other,
            None => panic!("dangling escape in pattern {pat:?}"),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and length in a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: each value has a length drawn from `len` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range in collection::vec");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Define property tests. Each inner `fn name(arg in strategy, ...)` runs its
/// body for `cases` generated inputs (see [`ProptestConfig`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::gen(&($strat), &mut __rng);
                )*
                let __runner = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                let __outcome = __runner();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

/// Assert a condition inside a property body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)),
            ));
        }
    }};
}

/// Choose among strategies, optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    #[test]
    fn string_pattern_respects_shape() {
        let mut rng = rng_for("string_pattern_respects_shape");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".gen(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "bad len: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn byte_soup_pattern_covers_newline() {
        let mut rng = rng_for("byte_soup_pattern_covers_newline");
        let mut saw_newline = false;
        for _ in 0..300 {
            let s = "[ -~\\n]{0,120}".gen(&mut rng);
            assert!(s.len() <= 120);
            saw_newline |= s.contains('\n');
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        assert!(saw_newline, "newline never generated");
    }

    #[test]
    fn oneof_weights_and_map_filter() {
        let mut rng = rng_for("oneof_weights_and_map_filter");
        let strat = prop_oneof![
            4 => (0i64..10).prop_map(|v| v * 2),
            1 => Just(1i64),
        ];
        let mut odd = 0;
        for _ in 0..500 {
            let v = strat.gen(&mut rng);
            if v == 1 {
                odd += 1;
            } else {
                assert!(v % 2 == 0 && (0..20).contains(&v));
            }
        }
        assert!(odd > 20 && odd < 250, "weighting off: {odd}");
        let filtered = (0u32..50).prop_filter("even only", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(filtered.gen(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, early return works, asserts work.
        #[test]
        fn macro_roundtrip(v in crate::collection::vec((0u8..6, 0u8..6), 1..14)) {
            prop_assert!(!v.is_empty(), "vec len {}", v.len());
            prop_assert_eq!(v.len(), v.len());
            if v.len() > 10 {
                return Ok(());
            }
            prop_assert!(v.iter().all(|(a, b)| *a < 6 && *b < 6));
        }
    }
}
