//! Goal-directed (top-down) evaluation.
//!
//! Bottom-up evaluation computes every derivable fact of every predicate.
//! A `retrieve` query touches only the predicates its subject and qualifier
//! (transitively) depend on, and often only a slice of those. This module
//! implements the goal-directed strategy used by real deductive systems in
//! two parts:
//!
//! 1. **Relevance restriction** — only the rules of predicates reachable
//!    from the query in the dependency graph are evaluated (QSQ's
//!    reachability component);
//! 2. **Constant propagation for non-recursive goals** — resolution that
//!    pushes the query's constant bindings into rule bodies, so e.g.
//!    `enroll(X, databases)` never enumerates other courses. For recursive
//!    predicates the SCC is closed bottom-up (semi-naively) first, which
//!    keeps termination unconditional; resolution then reads the closed
//!    relation.
//!
//! The solver runs the same compiled plans as the bottom-up strategies.
//! A call to a non-recursive IDB predicate specializes the predicate's
//! rule plans to the call's binding pattern — which head argument slots
//! arrive bound — and caches the specialization per (rule, adornment), so
//! repeated calls with the same shape re-run a ready schedule instead of
//! re-deriving literal order.
//!
//! This is the "top-down" comparator of the P1 experiment.

use crate::bindings::{frame_subst, match_cols_into, probe_ids, scan_relation, DerivedFacts};
use crate::error::{EngineError, Result};
use crate::graph::DependencyGraph;
use crate::idb::Idb;
use crate::naive::EvalOptions;
use crate::plan::{Col, ProgramPlan, RulePlan, Step};
use crate::seminaive;
use qdk_logic::governor::Governor;
use qdk_logic::{Frame, Interner, IrTerm, Literal, Parallelism, Subst, Sym, Var};
use qdk_storage::{builtins, Edb, StorageError, Tuple, Value};
use std::collections::HashMap;
use std::rc::Rc;

/// The solver's view of the compiled program: owned when built from the
/// IDB directly, borrowed when the caller (e.g. the knowledge base)
/// already holds a cached compilation.
enum PlanRef<'a> {
    Owned(ProgramPlan),
    Borrowed(&'a ProgramPlan),
}

impl PlanRef<'_> {
    fn get(&self) -> &ProgramPlan {
        match self {
            PlanRef::Owned(p) => p,
            PlanRef::Borrowed(p) => p,
        }
    }
}

/// A goal-directed solver for one (EDB, IDB) pair.
pub struct Solver<'a> {
    edb: &'a Edb,
    idb: &'a Idb,
    graph: DependencyGraph,
    /// Closed relations for recursive SCCs, computed lazily per query.
    closed: DerivedFacts,
    /// The compiled program shared with the bottom-up strategies.
    program: PlanRef<'a>,
    /// Rule indices into the program plan, grouped by head predicate.
    rules_by_head: HashMap<Sym, Vec<usize>>,
    /// Call plans: one specialization per (rule index, head-slot
    /// adornment), reused across calls with the same binding pattern.
    call_plans: HashMap<(usize, Vec<bool>), Rc<RulePlan>>,
    opts: EvalOptions,
    /// Governs resolution steps; the semi-naive pre-closure of recursive
    /// SCCs builds its own governor from the same options, so both phases
    /// answer to the same limits.
    gov: Governor,
}

impl<'a> Solver<'a> {
    /// Creates a solver.
    pub fn new(edb: &'a Edb, idb: &'a Idb) -> Self {
        Solver::with_options(edb, idb, EvalOptions::default())
    }

    /// Creates a solver with evaluation options, compiling the program.
    pub fn with_options(edb: &'a Edb, idb: &'a Idb, opts: EvalOptions) -> Self {
        Solver::build(
            edb,
            idb,
            PlanRef::Owned(ProgramPlan::compile_with_stats(idb, edb.stats())),
            opts,
        )
    }

    /// Creates a solver over an already compiled program. `plan` must be
    /// the compilation of `idb`.
    pub fn with_plan(edb: &'a Edb, idb: &'a Idb, plan: &'a ProgramPlan, opts: EvalOptions) -> Self {
        Solver::build(edb, idb, PlanRef::Borrowed(plan), opts)
    }

    fn build(edb: &'a Edb, idb: &'a Idb, program: PlanRef<'a>, opts: EvalOptions) -> Self {
        let gov = opts.governor();
        let mut rules_by_head: HashMap<Sym, Vec<usize>> = HashMap::new();
        for (i, rp) in program.get().plans().iter().enumerate() {
            rules_by_head
                .entry(rp.compiled.head.pred.clone())
                .or_default()
                .push(i);
        }
        Solver {
            edb,
            idb,
            graph: DependencyGraph::build(idb),
            closed: DerivedFacts::new(),
            program,
            rules_by_head,
            call_plans: HashMap::new(),
            opts,
            gov,
        }
    }

    /// Finds all substitutions (restricted to the goal's variables) that
    /// make the conjunction of `goals` true.
    pub fn solve_all(&mut self, goals: &[Literal]) -> Result<Vec<Subst>> {
        // Pre-close every recursive predicate reachable from the goals.
        for lit in goals {
            if !lit.is_builtin() {
                self.ensure_closed(&lit.atom.pred)?;
            }
        }
        // Variable-disjoint goal groups constrain each other only through
        // their cross product, so with workers available they can be
        // resolved as independent sibling conjunctions.
        if !self.opts.parallelism.is_sequential() {
            let components = connected_components(goals);
            if components.len() > 1 {
                return self.solve_components(goals, &components);
            }
        }
        // Compile the conjunction as a headless query plan: its slots are
        // the goals' distinct variables in first-occurrence order, so each
        // satisfying frame is already restricted to the goal variables.
        let rule_str = goals
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let qplan = RulePlan::for_query(
            goals,
            rule_str,
            &mut Interner::new(),
            self.program.get().stats(),
        );
        let mut frame = Frame::new(qplan.compiled.num_slots());
        let mut out = Vec::new();
        self.exec_plan(&qplan, 0, &mut frame, &mut |f| {
            out.push(frame_subst(&qplan, f));
            Ok(())
        })?;
        Ok(out)
    }

    /// Bounded parallel sibling-goal evaluation: each variable-connected
    /// goal component runs in its own sequential sub-solver (sharing this
    /// solver's governor, so one set of limits and one deadline govern all
    /// workers), and the per-component answers are cross-joined in
    /// component order. Components have disjoint variables, so merging two
    /// substitutions is a plain union. The answer *set* equals the
    /// sequential one; row order follows component order instead of the
    /// scheduler's interleaving.
    fn solve_components(
        &mut self,
        goals: &[Literal],
        components: &[Vec<usize>],
    ) -> Result<Vec<Subst>> {
        let edb = self.edb;
        let idb = self.idb;
        let plan = self.program.get();
        let gov = &self.gov;
        let closed = &self.closed;
        // Sub-solvers are sequential: the component fan-out already uses
        // the configured workers, and nesting would only oversubscribe.
        let mut sub_opts = self.opts.clone();
        sub_opts.parallelism = Parallelism::SEQUENTIAL;
        let pool = self.opts.pool();
        let results: Vec<Result<Vec<Subst>>> = pool.join_all(
            components
                .iter()
                .map(|comp| {
                    let sub_goals: Vec<Literal> = comp.iter().map(|&i| goals[i].clone()).collect();
                    let sub_opts = sub_opts.clone();
                    move || {
                        let mut sub = Solver::with_plan(edb, idb, plan, sub_opts);
                        sub.gov = gov.clone();
                        // Recursive SCCs were closed above; share them so
                        // no worker re-runs the fixpoint.
                        sub.closed = closed.clone();
                        sub.solve_all(&sub_goals)
                    }
                })
                .collect(),
        );
        let mut acc: Vec<Subst> = vec![Subst::new()];
        for rows in results {
            let rows = rows?;
            if rows.is_empty() {
                return Ok(Vec::new());
            }
            let mut joined = Vec::with_capacity(acc.len() * rows.len());
            for a in &acc {
                for b in &rows {
                    let mut merged = a.clone();
                    for (v, t) in b.iter() {
                        merged.bind(v.clone(), t.clone());
                    }
                    joined.push(merged);
                }
            }
            acc = joined;
        }
        Ok(acc)
    }

    /// Closes (computes bottom-up) every recursive SCC that `pred`
    /// transitively reaches, so resolution never descends into a cycle.
    fn ensure_closed(&mut self, pred: &Sym) -> Result<()> {
        let reach = self.graph.reachable_from(pred.as_str());
        let recursive: Vec<Sym> = reach
            .iter()
            .filter(|p| self.graph.is_recursive(p.as_str()) && self.idb.defines(p.as_str()))
            .cloned()
            .collect();
        for p in recursive {
            if self.closed.relation(p.as_str()).is_some() {
                continue;
            }
            // Close the predicate together with everything it depends on
            // (its SCC and anything below it) semi-naively, reusing the
            // compiled program.
            let relevant = self.graph.reachable_from(p.as_str());
            let facts = seminaive::eval_compiled(
                self.edb,
                self.idb,
                self.program.get(),
                Some(&relevant),
                self.opts.clone(),
            )?;
            self.closed.absorb(&facts)?;
        }
        Ok(())
    }

    /// Executes a plan's step schedule, routing each scan to the right
    /// fact source: the EDB, a closed recursive relation, or — for
    /// non-recursive IDB predicates — resolution through call plans.
    fn exec_plan(
        &mut self,
        plan: &RulePlan,
        step: usize,
        frame: &mut Frame,
        emit: &mut dyn FnMut(&Frame) -> Result<()>,
    ) -> Result<()> {
        let Some(s) = plan.steps.get(step) else {
            return emit(frame);
        };
        match s {
            Step::Compare {
                positive,
                op,
                lhs,
                rhs,
                literal,
            } => {
                let truth = match (lhs.resolve(frame), rhs.resolve(frame)) {
                    (Some(l), Some(r)) => builtins::eval(op.as_str(), l, r)?,
                    _ => {
                        return Err(EngineError::UnsafeRule {
                            rule: plan.rule_str.clone(),
                            literal: literal.clone(),
                        })
                    }
                };
                if truth == *positive {
                    self.exec_plan(plan, step + 1, frame, emit)
                } else {
                    Ok(())
                }
            }
            Step::EqBind { lhs, rhs, literal } => {
                match (lhs.resolve(frame).cloned(), rhs.resolve(frame).cloned()) {
                    (Some(l), Some(r)) => {
                        if l == r {
                            self.exec_plan(plan, step + 1, frame, emit)
                        } else {
                            Ok(())
                        }
                    }
                    (Some(l), None) => self.bind_eq(plan, step, rhs, l, frame, emit),
                    (None, Some(r)) => self.bind_eq(plan, step, lhs, r, frame, emit),
                    (None, None) => Err(EngineError::UnsafeRule {
                        rule: plan.rule_str.clone(),
                        literal: literal.clone(),
                    }),
                }
            }
            Step::NegCheck {
                pred,
                args,
                literal,
            } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    match a.resolve(frame) {
                        Some(c) => vals.push(c.clone()),
                        None => {
                            return Err(EngineError::UnsafeRule {
                                rule: plan.rule_str.clone(),
                                literal: literal.clone(),
                            })
                        }
                    }
                }
                if self.neg_holds(pred, &vals)? {
                    Ok(())
                } else {
                    self.exec_plan(plan, step + 1, frame, emit)
                }
            }
            Step::Scan { pred, cols, .. } => self.scan_pred(plan, step, pred, cols, frame, emit),
            Step::Unsafe { literal } => Err(EngineError::UnsafeRule {
                rule: plan.rule_str.clone(),
                literal: literal.clone(),
            }),
        }
    }

    /// Binds the unbound side of an equality and continues, unbinding on
    /// the way out.
    fn bind_eq(
        &mut self,
        plan: &RulePlan,
        step: usize,
        side: &IrTerm,
        value: Value,
        frame: &mut Frame,
        emit: &mut dyn FnMut(&Frame) -> Result<()>,
    ) -> Result<()> {
        let IrTerm::Slot(slot) = side else {
            // A constant always resolves, so an unresolved side is a slot.
            return Ok(());
        };
        frame.set(*slot, value);
        let res = self.exec_plan(plan, step + 1, frame, emit);
        frame.clear(*slot);
        res
    }

    /// A positive scan: enumerate the predicate's extension under the
    /// current frame and recurse into the rest of the plan per match.
    fn scan_pred(
        &mut self,
        plan: &RulePlan,
        step: usize,
        pred: &Sym,
        cols: &[Col],
        frame: &mut Frame,
        emit: &mut dyn FnMut(&Frame) -> Result<()>,
    ) -> Result<()> {
        let pred_str = pred.as_str();
        if self.edb.is_edb_predicate(pred_str) {
            let edb = self.edb;
            let Some(rel) = edb.relation(pred_str) else {
                return Ok(());
            };
            if cols.len() != rel.arity() {
                return Err(StorageError::ArityMismatch {
                    predicate: pred.to_string(),
                    expected: rel.arity(),
                    found: cols.len(),
                }
                .into());
            }
            return scan_relation(rel, cols, frame, &mut |frame| {
                self.exec_plan(plan, step + 1, frame, emit)
            });
        }
        if self.graph.is_recursive(pred_str) {
            // Closed earlier. Materialize the candidate tuples (cheap
            // shared-buffer clones) so the recursion below can borrow the
            // solver mutably.
            let tuples: Vec<Tuple> = match self.closed.relation(pred_str) {
                Some(rel) if rel.arity() == cols.len() => match probe_ids(rel, cols, frame) {
                    Some(ids) => ids.iter().map(|&id| rel.tuple_at(id).clone()).collect(),
                    None => rel.iter().cloned().collect(),
                },
                _ => Vec::new(),
            };
            let mut trail: Vec<u32> = Vec::new();
            for t in tuples {
                trail.clear();
                let res = if match_cols_into(cols, t.values(), frame, &mut trail) {
                    self.exec_plan(plan, step + 1, frame, emit)
                } else {
                    Ok(())
                };
                for &s in &trail {
                    frame.clear(s);
                }
                res?;
            }
            return Ok(());
        }
        if !self.idb.defines(pred_str) {
            // Neither stored nor derived: empty extension.
            return Ok(());
        }
        // Non-recursive IDB predicate: resolve through the predicate's
        // rule plans, specialized to this call's binding pattern.
        let call_vals: Vec<Option<Value>> = cols
            .iter()
            .map(|col| match col {
                Col::Const(v) => Some(v.clone()),
                Col::Slot { slot, .. } => frame.get(*slot).cloned(),
            })
            .collect();
        let rows = self.solve_pred(pred, &call_vals)?;
        let mut trail: Vec<u32> = Vec::new();
        for row in rows {
            trail.clear();
            let mut matched = true;
            for (col, cell) in cols.iter().zip(&row) {
                // A `None` cell is a head variable the rule left unbound;
                // it constrains nothing on the caller's side.
                let Some(value) = cell else { continue };
                let ok = match col {
                    Col::Const(c) => c == value,
                    Col::Slot { slot, .. } => match frame.get(*slot) {
                        Some(bound) => bound == value,
                        None => {
                            frame.set(*slot, value.clone());
                            trail.push(*slot);
                            true
                        }
                    },
                };
                if !ok {
                    matched = false;
                    break;
                }
            }
            let res = if matched {
                self.exec_plan(plan, step + 1, frame, emit)
            } else {
                Ok(())
            };
            for &s in &trail {
                frame.clear(s);
            }
            res?;
        }
        Ok(())
    }

    /// Resolves a call to a non-recursive IDB predicate: for each of its
    /// rules, pre-binds the head slots the call grounds, runs the rule's
    /// call plan, and collects the head rows it emits (`None` marks a
    /// head variable the body left unbound). One governor tick per call,
    /// as the dynamic resolver charged one per goal expansion.
    fn solve_pred(
        &mut self,
        pred: &Sym,
        call_vals: &[Option<Value>],
    ) -> Result<Vec<Vec<Option<Value>>>> {
        self.gov.tick()?;
        let indices = self.rules_by_head.get(pred).cloned().unwrap_or_default();
        let mut rows: Vec<Vec<Option<Value>>> = Vec::new();
        'rules: for idx in indices {
            let head_args = self.program.get().plans()[idx].compiled.head.args.clone();
            if head_args.len() != call_vals.len() {
                continue; // the head cannot unify with the call
            }
            let num_slots = self.program.get().plans()[idx].compiled.num_slots();
            let mut bound = vec![false; num_slots];
            let mut frame = Frame::new(num_slots);
            for (arg, cell) in head_args.iter().zip(call_vals) {
                let Some(v) = cell else { continue };
                match arg {
                    IrTerm::Const(c) => {
                        if c != v {
                            continue 'rules; // head constant conflicts
                        }
                    }
                    IrTerm::Slot(s) => match frame.get(*s) {
                        Some(prev) => {
                            if prev != v {
                                continue 'rules; // repeated head var conflicts
                            }
                        }
                        None => {
                            frame.set(*s, v.clone());
                            bound[*s as usize] = true;
                        }
                    },
                }
            }
            let key = (idx, bound);
            let cplan = match self.call_plans.get(&key) {
                Some(p) => Rc::clone(p),
                None => {
                    let rp = &self.program.get().plans()[idx];
                    let p = Rc::new(RulePlan::with_bound(
                        rp.compiled.clone(),
                        rp.rule_str.clone(),
                        key.1.clone(),
                        self.program.get().stats(),
                    ));
                    self.call_plans.insert(key, Rc::clone(&p));
                    p
                }
            };
            // Collect this rule's emissions eagerly (the dynamic resolver
            // also materialized each expansion level) before the caller's
            // remaining steps run.
            let mut emitted: Vec<Vec<Option<Value>>> = Vec::new();
            self.exec_plan(&cplan, 0, &mut frame, &mut |f| {
                emitted.push(
                    cplan
                        .compiled
                        .head
                        .args
                        .iter()
                        .map(|t| t.resolve(f).cloned())
                        .collect(),
                );
                Ok(())
            })?;
            rows.append(&mut emitted);
        }
        Ok(rows)
    }

    /// Closed-world membership test for a fully ground negated atom.
    fn neg_holds(&mut self, pred: &Sym, vals: &[Value]) -> Result<bool> {
        let pred_str = pred.as_str();
        if self.edb.is_edb_predicate(pred_str) {
            let Some(rel) = self.edb.relation(pred_str) else {
                return Ok(false);
            };
            if vals.len() != rel.arity() {
                return Err(StorageError::ArityMismatch {
                    predicate: pred.to_string(),
                    expected: rel.arity(),
                    found: vals.len(),
                }
                .into());
            }
            let pattern: Vec<Option<&Value>> = vals.iter().map(Some).collect();
            return Ok(rel.select_ref(&pattern).next().is_some());
        }
        if self.graph.is_recursive(pred_str) {
            return Ok(match self.closed.relation(pred_str) {
                Some(rel) if rel.arity() == vals.len() => {
                    let pattern: Vec<Option<&Value>> = vals.iter().map(Some).collect();
                    rel.select_ref(&pattern).next().is_some()
                }
                _ => false,
            });
        }
        if !self.idb.defines(pred_str) {
            return Ok(false);
        }
        let call_vals: Vec<Option<Value>> = vals.iter().cloned().map(Some).collect();
        Ok(!self.solve_pred(pred, &call_vals)?.is_empty())
    }
}

/// Convenience: evaluates the full IDB goal-directedly for a single goal
/// conjunction and returns the satisfying substitutions.
pub fn solve(edb: &Edb, idb: &Idb, goals: &[Literal]) -> Result<Vec<Subst>> {
    Solver::new(edb, idb).solve_all(goals)
}

/// Groups goal indices into variable-connected components (union-find over
/// shared variables), each component listed by ascending first index and
/// listing its goals in source order. Goals with no variables are singleton
/// components.
fn connected_components(goals: &[Literal]) -> Vec<Vec<usize>> {
    fn find(parent: &mut [usize], i: usize) -> usize {
        if parent[i] != i {
            parent[i] = find(parent, parent[i]);
        }
        parent[i]
    }
    let mut parent: Vec<usize> = (0..goals.len()).collect();
    let mut owner: HashMap<Var, usize> = HashMap::new();
    for (i, lit) in goals.iter().enumerate() {
        for v in lit.atom.vars() {
            match owner.get(&v) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    owner.insert(v, i);
                }
            }
        }
    }
    let mut by_root: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut order: Vec<usize> = Vec::new();
    for i in 0..goals.len() {
        let r = find(&mut parent, i);
        let group = by_root.entry(r).or_insert_with(|| {
            order.push(r);
            Vec::new()
        });
        group.push(i);
    }
    order
        .into_iter()
        .map(|r| by_root.remove(&r).unwrap_or_default())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::match_relation;
    use qdk_logic::parser::{parse_atom, parse_body, parse_program};
    use qdk_logic::Term;

    fn setup() -> (Edb, Idb) {
        let mut edb = Edb::new();
        edb.declare("student", &["S", "M", "G"]).unwrap();
        edb.declare("enroll", &["S", "C"]).unwrap();
        edb.declare("prereq", &["C", "P"]).unwrap();
        for f in [
            "student(ann, math, 3.9)",
            "student(bob, physics, 3.5)",
            "student(cara, math, 3.8)",
            "enroll(ann, databases)",
            "enroll(bob, databases)",
            "prereq(databases, datastructures)",
            "prereq(datastructures, programming)",
            "prereq(calculus, algebra)",
        ] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let idb = Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
                 prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        (edb, idb)
    }

    fn names(substs: &[Subst], v: &str) -> Vec<String> {
        let mut n: Vec<String> = substs
            .iter()
            .map(|s| s.apply_term(&Term::var(v)).to_string())
            .collect();
        n.sort();
        n.dedup();
        n
    }

    #[test]
    fn solves_nonrecursive_goal() {
        let (edb, idb) = setup();
        let goals = parse_body("honor(X)").unwrap();
        let substs = solve(&edb, &idb, &goals).unwrap();
        assert_eq!(names(&substs, "X"), ["ann", "cara"]);
    }

    #[test]
    fn conjunction_with_edb_and_comparison() {
        let (edb, idb) = setup();
        let goals = parse_body("honor(X), enroll(X, databases)").unwrap();
        let substs = solve(&edb, &idb, &goals).unwrap();
        assert_eq!(names(&substs, "X"), ["ann"]);
    }

    #[test]
    fn recursive_goal_reads_closed_relation() {
        let (edb, idb) = setup();
        let goals = parse_body("prior(databases, Y)").unwrap();
        let substs = solve(&edb, &idb, &goals).unwrap();
        assert_eq!(names(&substs, "Y"), ["datastructures", "programming"]);
    }

    #[test]
    fn negation_in_goal() {
        let (edb, idb) = setup();
        let goals = parse_body("student(X, M, G), not honor(X)").unwrap();
        let substs = solve(&edb, &idb, &goals).unwrap();
        assert_eq!(names(&substs, "X"), ["bob"]);
    }

    #[test]
    fn agrees_with_seminaive() {
        let (edb, idb) = setup();
        for goal in ["honor(X)", "prior(X, Y)", "prior(X, programming)"] {
            let goals = parse_body(goal).unwrap();
            let td = solve(&edb, &idb, &goals).unwrap();
            // Bottom-up reference.
            let facts = crate::seminaive::eval(&edb, &idb).unwrap();
            let pred = goals[0].atom.pred.as_str();
            let rel = facts.relation(pred).unwrap();
            let mut reference = Vec::new();
            match_relation(rel, &goals[0].atom, &Subst::new(), &mut reference);
            let vars = goals[0].atom.vars();
            let mut td_set: Vec<String> = td
                .iter()
                .map(|s| {
                    vars.iter()
                        .map(|v| s.apply_term(&Term::Var(v.clone())).to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            let mut ref_set: Vec<String> = reference
                .iter()
                .map(|s| {
                    vars.iter()
                        .map(|v| s.apply_term(&Term::Var(v.clone())).to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            td_set.sort();
            td_set.dedup();
            ref_set.sort();
            ref_set.dedup();
            assert_eq!(td_set, ref_set, "goal {goal}");
        }
    }

    #[test]
    fn undefined_predicate_has_empty_extension() {
        let (edb, idb) = setup();
        let goals = parse_body("ghost(X)").unwrap();
        let substs = solve(&edb, &idb, &goals).unwrap();
        assert!(substs.is_empty());
    }

    #[test]
    fn equality_binds_in_goals() {
        let (edb, idb) = setup();
        let goals = parse_body("C = databases, enroll(X, C)").unwrap();
        let substs = solve(&edb, &idb, &goals).unwrap();
        assert_eq!(names(&substs, "X"), ["ann", "bob"]);
    }

    #[test]
    fn call_plans_are_cached_per_adornment() {
        let (edb, idb) = setup();
        let mut solver = Solver::new(&edb, &idb);
        // Two calls with the same binding shape share one specialization.
        for goal in ["honor(ann)", "honor(bob)"] {
            let goals = parse_body(goal).unwrap();
            solver.solve_all(&goals).unwrap();
        }
        assert_eq!(solver.call_plans.len(), 1);
        // A differently adorned call adds a second specialization.
        let goals = parse_body("honor(X)").unwrap();
        solver.solve_all(&goals).unwrap();
        assert_eq!(solver.call_plans.len(), 2);
    }
}
