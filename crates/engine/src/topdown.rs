//! Goal-directed (top-down) evaluation.
//!
//! Bottom-up evaluation computes every derivable fact of every predicate.
//! A `retrieve` query touches only the predicates its subject and qualifier
//! (transitively) depend on, and often only a slice of those. This module
//! implements the goal-directed strategy used by real deductive systems in
//! two parts:
//!
//! 1. **Relevance restriction** — only the rules of predicates reachable
//!    from the query in the dependency graph are evaluated (QSQ's
//!    reachability component);
//! 2. **Constant propagation for non-recursive goals** — a direct SLD-style
//!    resolution that pushes the query's constant bindings into rule bodies,
//!    so e.g. `enroll(X, databases)` never enumerates other courses. For
//!    recursive predicates the SCC is closed bottom-up (semi-naively) first,
//!    which keeps termination unconditional; SLD then reads the closed
//!    relation.
//!
//! This is the "top-down" comparator of the P1 experiment.

use crate::bindings::{match_relation, DerivedFacts};
use crate::error::Result;
use crate::graph::DependencyGraph;
use crate::idb::Idb;
use crate::naive::EvalOptions;
use crate::seminaive;
use qdk_logic::governor::Governor;
use qdk_logic::{Atom, Literal, Rule, Subst, Sym, Term, VarGen};
use qdk_storage::{builtins, Edb};

/// A goal-directed solver for one (EDB, IDB) pair.
pub struct Solver<'a> {
    edb: &'a Edb,
    idb: &'a Idb,
    graph: DependencyGraph,
    /// Closed relations for recursive SCCs, computed lazily per query.
    closed: DerivedFacts,
    gen: VarGen,
    opts: EvalOptions,
    /// Governs SLD resolution steps; the semi-naive pre-closure of
    /// recursive SCCs builds its own governor from the same options, so
    /// both phases answer to the same limits.
    gov: Governor,
}

impl<'a> Solver<'a> {
    /// Creates a solver.
    pub fn new(edb: &'a Edb, idb: &'a Idb) -> Self {
        Solver::with_options(edb, idb, EvalOptions::default())
    }

    /// Creates a solver with evaluation options.
    pub fn with_options(edb: &'a Edb, idb: &'a Idb, opts: EvalOptions) -> Self {
        let gov = opts.governor();
        Solver {
            edb,
            idb,
            graph: DependencyGraph::build(idb),
            closed: DerivedFacts::new(),
            gen: VarGen::new(),
            opts,
            gov,
        }
    }

    /// Finds all substitutions (restricted to the goal's variables) that
    /// make the conjunction of `goals` true.
    pub fn solve_all(&mut self, goals: &[Literal]) -> Result<Vec<Subst>> {
        // Pre-close every recursive predicate reachable from the goals.
        for lit in goals {
            if !lit.is_builtin() {
                self.ensure_closed(&lit.atom.pred)?;
            }
        }
        let mut out = Vec::new();
        let mut vars = Vec::new();
        for g in goals {
            g.atom.collect_vars(&mut vars);
        }
        let mut seen = Vec::new();
        for v in vars {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        self.solve_conj(goals, Subst::new(), &mut |s| {
            out.push(s.restrict(&seen));
        })?;
        Ok(out)
    }

    /// Closes (computes bottom-up) every recursive SCC that `pred`
    /// transitively reaches, so SLD resolution never descends into a cycle.
    fn ensure_closed(&mut self, pred: &Sym) -> Result<()> {
        let reach = self.graph.reachable_from(pred.as_str());
        let recursive: Vec<Sym> = reach
            .iter()
            .filter(|p| self.graph.is_recursive(p.as_str()) && self.idb.defines(p.as_str()))
            .cloned()
            .collect();
        for p in recursive {
            if self.closed.relation(p.as_str()).is_some() {
                continue;
            }
            // Close the predicate together with everything it depends on
            // (its SCC and anything below it) semi-naively.
            let relevant = self.graph.reachable_from(p.as_str());
            let facts =
                seminaive::eval_restricted(self.edb, self.idb, &relevant, self.opts.clone())?;
            self.closed.absorb(&facts);
        }
        Ok(())
    }

    fn solve_conj(
        &mut self,
        goals: &[Literal],
        subst: Subst,
        emit: &mut dyn FnMut(Subst),
    ) -> Result<()> {
        // Pick the next evaluable goal, mirroring the bottom-up scheduler:
        // ground comparisons / bindable equalities first, ground negations
        // next, then the most-bound positive literal. If nothing is
        // evaluable, fall through to goal 0 so the builtin path reports the
        // unsafe conjunction.
        if goals.is_empty() {
            emit(subst);
            return Ok(());
        }
        let i = self.choose_goal(goals, &subst).unwrap_or(0);
        let mut rest: Vec<Literal> = goals.to_vec();
        let lit = &rest.remove(i);

        if lit.is_builtin() {
            if lit.positive && lit.atom.pred.as_str() == "=" {
                let l = subst.apply_term(&lit.atom.args[0]);
                let r = subst.apply_term(&lit.atom.args[1]);
                if let Some(u) = qdk_logic::unify(&l, &r) {
                    return self.solve_conj(&rest, subst.compose(&u), emit);
                }
                return Ok(());
            }
            let truth = builtins::eval_atom(&lit.atom, &subst)
                .map_err(crate::EngineError::from)?
                .ok_or_else(|| crate::EngineError::UnsafeRule {
                    rule: goals
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", "),
                    literal: lit.to_string(),
                })?;
            let holds = if lit.positive { truth } else { !truth };
            if holds {
                return self.solve_conj(&rest, subst, emit);
            }
            return Ok(());
        }

        if !lit.positive {
            // Ground closed-world negation.
            if !lit.atom.args.iter().all(|t| subst.apply_term(t).is_ground()) {
                return Err(crate::EngineError::UnsafeRule {
                    rule: goals
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", "),
                    literal: lit.to_string(),
                });
            }
            let mut probe = Vec::new();
            self.solve_atom(&lit.atom, &subst, &mut |s| probe.push(s))?;
            if probe.is_empty() {
                return self.solve_conj(&rest, subst, emit);
            }
            return Ok(());
        }

        let mut solutions = Vec::new();
        self.solve_atom(&lit.atom, &subst, &mut |s| solutions.push(s))?;
        for s in solutions {
            self.solve_conj(&rest, s, emit)?;
        }
        Ok(())
    }

    fn choose_goal(&self, goals: &[Literal], subst: &Subst) -> Option<usize> {
        let ground = |t: &Term| subst.apply_term(t).is_ground();
        let mut best: Option<(usize, usize)> = None;
        for (i, lit) in goals.iter().enumerate() {
            if lit.is_builtin() {
                let lg = ground(&lit.atom.args[0]);
                let rg = ground(&lit.atom.args[1]);
                let evaluable = if lit.positive && lit.atom.pred.as_str() == "=" {
                    lg || rg
                } else {
                    lg && rg
                };
                if evaluable {
                    return Some(i);
                }
            } else if !lit.positive {
                if lit.atom.args.iter().all(&ground) {
                    return Some(i);
                }
            } else {
                let unbound = lit.atom.args.iter().filter(|t| !ground(t)).count();
                if best.is_none_or(|(_, b)| unbound < b) {
                    best = Some((i, unbound));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Solves a single positive database atom.
    fn solve_atom(
        &mut self,
        atom: &Atom,
        subst: &Subst,
        emit: &mut dyn FnMut(Subst),
    ) -> Result<()> {
        let pred = atom.pred.as_str();
        if self.edb.is_edb_predicate(pred) {
            let mut out = Vec::new();
            self.edb.match_atom(atom, subst, &mut out)?;
            for s in out {
                emit(s);
            }
            return Ok(());
        }
        if self.graph.is_recursive(pred) {
            // Closed earlier: read the materialized relation.
            if let Some(rel) = self.closed.relation(pred) {
                let mut out = Vec::new();
                match_relation(rel, atom, subst, &mut out);
                for s in out {
                    emit(s);
                }
            }
            return Ok(());
        }
        if !self.idb.defines(pred) {
            // Neither stored nor derived: empty extension.
            return Ok(());
        }
        // Non-recursive IDB predicate: SLD-resolve through each rule.
        self.gov.tick()?;
        let rules: Vec<Rule> = self.idb.rules_for(pred).cloned().collect();
        for rule in rules {
            let (renamed, _) = qdk_logic::rename_rule_apart(&rule, &mut self.gen);
            let Some(mgu) = qdk_logic::unify_atoms(&subst.apply_atom(atom), &renamed.head)
            else {
                continue;
            };
            let combined = subst.compose(&mgu);
            let body = renamed.body.clone();
            self.solve_conj(&body, combined, emit)?;
        }
        Ok(())
    }
}

/// Convenience: evaluates the full IDB goal-directedly for a single goal
/// conjunction and returns the satisfying substitutions.
pub fn solve(edb: &Edb, idb: &Idb, goals: &[Literal]) -> Result<Vec<Subst>> {
    Solver::new(edb, idb).solve_all(goals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_body, parse_program};

    fn setup() -> (Edb, Idb) {
        let mut edb = Edb::new();
        edb.declare("student", &["S", "M", "G"]).unwrap();
        edb.declare("enroll", &["S", "C"]).unwrap();
        edb.declare("prereq", &["C", "P"]).unwrap();
        for f in [
            "student(ann, math, 3.9)",
            "student(bob, physics, 3.5)",
            "student(cara, math, 3.8)",
            "enroll(ann, databases)",
            "enroll(bob, databases)",
            "prereq(databases, datastructures)",
            "prereq(datastructures, programming)",
            "prereq(calculus, algebra)",
        ] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let idb = Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
                 prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        (edb, idb)
    }

    fn names(substs: &[Subst], v: &str) -> Vec<String> {
        let mut n: Vec<String> = substs
            .iter()
            .map(|s| s.apply_term(&Term::var(v)).to_string())
            .collect();
        n.sort();
        n.dedup();
        n
    }

    #[test]
    fn solves_nonrecursive_goal() {
        let (edb, idb) = setup();
        let goals = parse_body("honor(X)").unwrap();
        let substs = solve(&edb, &idb, &goals).unwrap();
        assert_eq!(names(&substs, "X"), ["ann", "cara"]);
    }

    #[test]
    fn conjunction_with_edb_and_comparison() {
        let (edb, idb) = setup();
        let goals = parse_body("honor(X), enroll(X, databases)").unwrap();
        let substs = solve(&edb, &idb, &goals).unwrap();
        assert_eq!(names(&substs, "X"), ["ann"]);
    }

    #[test]
    fn recursive_goal_reads_closed_relation() {
        let (edb, idb) = setup();
        let goals = parse_body("prior(databases, Y)").unwrap();
        let substs = solve(&edb, &idb, &goals).unwrap();
        assert_eq!(names(&substs, "Y"), ["datastructures", "programming"]);
    }

    #[test]
    fn negation_in_goal() {
        let (edb, idb) = setup();
        let goals = parse_body("student(X, M, G), not honor(X)").unwrap();
        let substs = solve(&edb, &idb, &goals).unwrap();
        assert_eq!(names(&substs, "X"), ["bob"]);
    }

    #[test]
    fn agrees_with_seminaive() {
        let (edb, idb) = setup();
        for goal in ["honor(X)", "prior(X, Y)", "prior(X, programming)"] {
            let goals = parse_body(goal).unwrap();
            let td = solve(&edb, &idb, &goals).unwrap();
            // Bottom-up reference.
            let facts = crate::seminaive::eval(&edb, &idb).unwrap();
            let pred = goals[0].atom.pred.as_str();
            let rel = facts.relation(pred).unwrap();
            let mut reference = Vec::new();
            match_relation(rel, &goals[0].atom, &Subst::new(), &mut reference);
            let vars = goals[0].atom.vars();
            let mut td_set: Vec<String> = td
                .iter()
                .map(|s| {
                    vars.iter()
                        .map(|v| s.apply_term(&Term::Var(v.clone())).to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            let mut ref_set: Vec<String> = reference
                .iter()
                .map(|s| {
                    vars.iter()
                        .map(|v| s.apply_term(&Term::Var(v.clone())).to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            td_set.sort();
            td_set.dedup();
            ref_set.sort();
            ref_set.dedup();
            assert_eq!(td_set, ref_set, "goal {goal}");
        }
    }

    #[test]
    fn undefined_predicate_has_empty_extension() {
        let (edb, idb) = setup();
        let goals = parse_body("ghost(X)").unwrap();
        let substs = solve(&edb, &idb, &goals).unwrap();
        assert!(substs.is_empty());
    }

    #[test]
    fn equality_binds_in_goals() {
        let (edb, idb) = setup();
        let goals = parse_body("C = databases, enroll(X, C)").unwrap();
        let substs = solve(&edb, &idb, &goals).unwrap();
        assert_eq!(names(&substs, "X"), ["ann", "bob"]);
    }
}
