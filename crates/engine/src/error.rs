//! Engine errors.

use qdk_logic::governor::Exhausted;
use qdk_storage::StorageError;
use std::fmt;

/// Errors raised by IDB construction and query evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// A rule's head was a built-in comparison predicate.
    BuiltinHead(String),
    /// A storage-layer error (unknown predicate, arity mismatch, …).
    Storage(StorageError),
    /// A rule is unsafe: a literal could not be scheduled because its
    /// variables can never become bound (e.g. a comparison over variables
    /// that appear in no positive database literal).
    UnsafeRule {
        /// The offending rule.
        rule: String,
        /// The literal that could not be scheduled.
        literal: String,
    },
    /// A negative literal's predicate depends on itself through negation
    /// (the program is not stratified).
    NotStratified(String),
    /// A predicate is used with two different arities.
    InconsistentArity {
        /// Predicate involved.
        predicate: String,
        /// Arities observed.
        arities: (usize, usize),
    },
    /// A query subject used a predicate that is neither stored, derived,
    /// nor defined by the query itself.
    UnknownSubject(String),
    /// Evaluation exceeded a configured resource limit (work budget,
    /// deadline, fact count, or cooperative cancellation). Carries the
    /// governor's structured diagnostic.
    Exhausted(Exhausted),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BuiltinHead(h) => {
                write!(f, "a built-in comparison cannot head a rule: {h}")
            }
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::UnsafeRule { rule, literal } => {
                write!(f, "unsafe rule {rule}: cannot schedule literal {literal}")
            }
            EngineError::NotStratified(p) => {
                write!(
                    f,
                    "program is not stratified: {p} depends on itself through negation"
                )
            }
            EngineError::InconsistentArity { predicate, arities } => write!(
                f,
                "predicate {predicate} used with arities {} and {}",
                arities.0, arities.1
            ),
            EngineError::UnknownSubject(p) => write!(
                f,
                "subject predicate {p} is not stored, derived, or defined by the query"
            ),
            EngineError::Exhausted(e) => write!(f, "evaluation stopped: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<Exhausted> for EngineError {
    fn from(e: Exhausted) -> Self {
        EngineError::Exhausted(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
