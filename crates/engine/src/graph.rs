//! Predicate dependency analysis.
//!
//! §2.1 of the paper: given a rule `q ← p₁ ∧ … ∧ pₙ`, the IDB predicate
//! `q` is *directly dependent* on each `pᵢ`; *dependent* is the transitive
//! closure; a rule is *recursive* if its head predicate and at least one
//! body predicate are *mutually* dependent. This module computes the
//! dependency graph and its strongly connected components (Tarjan), from
//! which recursion and evaluation order fall out.

use crate::idb::Idb;
use qdk_logic::Sym;
use std::collections::HashMap;

/// The predicate dependency graph of an IDB.
#[derive(Clone, Debug)]
pub struct DependencyGraph {
    /// Node ids by predicate name.
    ids: HashMap<Sym, usize>,
    /// Predicate names by node id.
    names: Vec<Sym>,
    /// Adjacency: `edges[q]` = predicates `q` directly depends on.
    edges: Vec<Vec<usize>>,
    /// SCC id of each node. SCC ids are in reverse topological order of the
    /// condensation (an SCC's dependencies have *smaller* SCC ids).
    scc_of: Vec<usize>,
    /// Members of each SCC.
    scc_members: Vec<Vec<usize>>,
    /// Whether each node has a self-loop (a rule with its own head in the
    /// body) — needed to distinguish a trivial SCC from direct recursion.
    self_loop: Vec<bool>,
}

impl DependencyGraph {
    /// Builds the dependency graph of an IDB. Nodes are created for every
    /// predicate appearing as a rule head or in a rule body (including EDB
    /// predicates, which have no outgoing edges); built-ins are ignored.
    pub fn build(idb: &Idb) -> Self {
        let mut g = DependencyGraph {
            ids: HashMap::new(),
            names: Vec::new(),
            edges: Vec::new(),
            scc_of: Vec::new(),
            scc_members: Vec::new(),
            self_loop: Vec::new(),
        };
        for rule in idb.rules() {
            let h = g.intern(&rule.head.pred);
            for atom in rule.body_db_atoms() {
                let b = g.intern(&atom.pred);
                if !g.edges[h].contains(&b) {
                    g.edges[h].push(b);
                }
                if b == h {
                    g.self_loop[h] = true;
                }
            }
        }
        g.compute_sccs();
        g
    }

    fn intern(&mut self, name: &Sym) -> usize {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len();
        self.ids.insert(name.clone(), id);
        self.names.push(name.clone());
        self.edges.push(Vec::new());
        self.self_loop.push(false);
        id
    }

    /// Iterative Tarjan SCC.
    fn compute_sccs(&mut self) {
        let n = self.names.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        self.scc_of = vec![usize::MAX; n];
        self.scc_members.clear();

        // Explicit DFS stack: (node, child position).
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
                if *ci == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ci < self.edges[v].len() {
                    let w = self.edges[v][*ci];
                    *ci += 1;
                    if index[w] == usize::MAX {
                        dfs.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let scc_id = self.scc_members.len();
                        let mut members = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w] = false;
                            self.scc_of[w] = scc_id;
                            members.push(w);
                            if w == v {
                                break;
                            }
                        }
                        self.scc_members.push(members);
                    }
                    dfs.pop();
                    if let Some(&mut (parent, _)) = dfs.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
    }

    fn id(&self, pred: &str) -> Option<usize> {
        self.ids.get(pred).copied()
    }

    /// True if `q` is dependent on `p` (transitively; §2.1). A predicate is
    /// not considered dependent on itself unless there is an actual cycle.
    pub fn depends_on(&self, q: &str, p: &str) -> bool {
        let (Some(q), Some(p)) = (self.id(q), self.id(p)) else {
            return false;
        };
        // BFS from q.
        let mut seen = vec![false; self.names.len()];
        let mut work = vec![q];
        while let Some(v) = work.pop() {
            for &w in &self.edges[v] {
                if w == p {
                    return true;
                }
                if !seen[w] {
                    seen[w] = true;
                    work.push(w);
                }
            }
        }
        false
    }

    /// True if `p` and `q` are mutually dependent (each depends on the
    /// other): same non-trivial SCC, or the same predicate with a self-loop.
    pub fn mutually_dependent(&self, p: &str, q: &str) -> bool {
        let (Some(pi), Some(qi)) = (self.id(p), self.id(q)) else {
            return false;
        };
        if pi == qi {
            return self.self_loop[pi] || self.scc_members[self.scc_of[pi]].len() > 1;
        }
        self.scc_of[pi] == self.scc_of[qi]
    }

    /// True if the predicate is recursive: it heads at least one recursive
    /// rule, i.e. participates in a dependency cycle.
    pub fn is_recursive(&self, pred: &str) -> bool {
        self.mutually_dependent(pred, pred)
    }

    /// True if the predicate is recursive or depends on a recursive
    /// predicate (the condition that forces Algorithm 2, §4/§5).
    pub fn involves_recursion(&self, pred: &str) -> bool {
        if self.is_recursive(pred) {
            return true;
        }
        let Some(p) = self.id(pred) else {
            return false;
        };
        let mut seen = vec![false; self.names.len()];
        let mut work = vec![p];
        while let Some(v) = work.pop() {
            for &w in &self.edges[v] {
                if !seen[w] {
                    seen[w] = true;
                    if self.is_recursive(self.names[w].as_str()) {
                        return true;
                    }
                    work.push(w);
                }
            }
        }
        false
    }

    /// The predicates reachable from (and including) `pred` in the
    /// dependency graph — the predicates relevant to a query on `pred`.
    pub fn reachable_from(&self, pred: &str) -> Vec<Sym> {
        let Some(p) = self.id(pred) else {
            return Vec::new();
        };
        let mut seen = vec![false; self.names.len()];
        seen[p] = true;
        let mut work = vec![p];
        let mut out = vec![self.names[p].clone()];
        while let Some(v) = work.pop() {
            for &w in &self.edges[v] {
                if !seen[w] {
                    seen[w] = true;
                    out.push(self.names[w].clone());
                    work.push(w);
                }
            }
        }
        out
    }

    /// SCCs in dependency order (every SCC's dependencies precede it):
    /// evaluation strata for bottom-up computation.
    pub fn sccs_in_order(&self) -> Vec<Vec<Sym>> {
        // Tarjan emits SCCs in reverse topological order of the
        // condensation: an SCC is emitted only after everything it depends
        // on. So scc_members is already in dependency order.
        self.scc_members
            .iter()
            .map(|m| m.iter().map(|&v| self.names[v].clone()).collect())
            .collect()
    }

    /// All known predicate names.
    pub fn predicates(&self) -> &[Sym] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_program;

    fn graph(src: &str) -> DependencyGraph {
        let p = parse_program(src).unwrap();
        DependencyGraph::build(&Idb::from_rules(p.rules).unwrap())
    }

    #[test]
    fn paper_idb_dependencies() {
        let g = graph(
            "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
             prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).\n\
             can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).\n\
             can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4.0).",
        );
        assert!(g.depends_on("can_ta", "student"));
        assert!(g.depends_on("can_ta", "honor"));
        assert!(!g.depends_on("honor", "can_ta"));
        assert!(g.is_recursive("prior"));
        assert!(!g.is_recursive("honor"));
        assert!(!g.is_recursive("can_ta"));
        assert!(!g.involves_recursion("can_ta"));
        assert!(g.involves_recursion("prior"));
    }

    #[test]
    fn example8_idb_involves_recursion_indirectly() {
        // p depends on recursive q (Example 8 of the paper).
        let g = graph(
            "p(X, Y) :- q(X, Z), r(Z, Y).\n\
             q(X, Y) :- q(X, Z), s(Z, Y).\n\
             q(X, Y) :- r(X, Y).",
        );
        assert!(!g.is_recursive("p"));
        assert!(g.is_recursive("q"));
        assert!(g.involves_recursion("p"));
        assert!(!g.involves_recursion("r"));
    }

    #[test]
    fn mutual_recursion_detected() {
        let g = graph(
            "even(X) :- zero(X).\n\
             even(X) :- succ(Y, X), odd(Y).\n\
             odd(X) :- succ(Y, X), even(Y).",
        );
        assert!(g.is_recursive("even"));
        assert!(g.is_recursive("odd"));
        assert!(g.mutually_dependent("even", "odd"));
        assert!(!g.mutually_dependent("even", "zero"));
    }

    #[test]
    fn self_loop_vs_trivial_scc() {
        let g = graph("p(X) :- p(X).\nq(X) :- r(X).");
        assert!(g.is_recursive("p"));
        assert!(!g.is_recursive("q"));
        assert!(!g.is_recursive("r"));
    }

    #[test]
    fn sccs_in_dependency_order() {
        let g = graph(
            "a(X) :- b(X).\n\
             b(X) :- c(X), b(X).\n\
             c(X) :- d(X).",
        );
        let order = g.sccs_in_order();
        let pos = |p: &str| {
            order
                .iter()
                .position(|scc| scc.iter().any(|s| s.as_str() == p))
                .unwrap()
        };
        assert!(pos("d") < pos("c"));
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn reachable_from_restricts_to_relevant() {
        let g = graph(
            "a(X) :- b(X).\n\
             b(X) :- c(X).\n\
             unrelated(X) :- d(X).",
        );
        let reach: Vec<String> = g
            .reachable_from("a")
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(reach.contains(&"a".to_string()));
        assert!(reach.contains(&"b".to_string()));
        assert!(reach.contains(&"c".to_string()));
        assert!(!reach.contains(&"unrelated".to_string()));
        assert!(!reach.contains(&"d".to_string()));
    }

    #[test]
    fn unknown_predicates_are_harmless() {
        let g = graph("p(X) :- q(X).");
        assert!(!g.depends_on("ghost", "q"));
        assert!(!g.is_recursive("ghost"));
        assert!(g.reachable_from("ghost").is_empty());
    }
}
