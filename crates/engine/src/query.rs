//! The `retrieve` statement (§3.1).
//!
//! ```text
//! retrieve p
//! where ψ
//! ```
//!
//! finds the database values whose substitution for the variables of `p`
//! and `ψ` satisfies `p ∧ ψ`, retrieving the values of the free variables
//! (those of `p`). `p` may be an EDB predicate, an IDB predicate, or a new
//! predicate altogether, in which case it is taken to be defined through
//! `ψ` (the paper's Example 2 uses the fresh predicate `answer`).

use crate::bindings::{exec, FactView};
use crate::error::{EngineError, Result};
use crate::graph::DependencyGraph;
use crate::idb::Idb;
use crate::naive::{self, EvalOptions};
use crate::plan::{ProgramPlan, RulePlan};
use crate::seminaive;
use crate::topdown::Solver;
use qdk_logic::{Atom, Frame, FxHashSet, Interner, Literal, Rule, Subst, Term, Var};
use qdk_storage::{Edb, Tuple, Value};
use std::fmt;

/// Evaluation strategy for `retrieve`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// Naive bottom-up (reference baseline).
    Naive,
    /// Semi-naive bottom-up over the relevant predicates.
    #[default]
    SemiNaive,
    /// Goal-directed (relevance + constant propagation).
    TopDown,
    /// Magic-sets rewriting + semi-naive evaluation of the rewritten
    /// program. Falls back to semi-naive when the relevant slice uses
    /// negation (the rewrite covers positive programs).
    Magic,
    /// Query-Subquery: demand-driven set-at-a-time evaluation over QSQ
    /// nets cached per (predicate, adornment) in the compiled plan —
    /// the fastest strategy for bound queries served from a warm plan.
    /// Falls back to semi-naive (recording a downgrade) when the
    /// demanded slice uses negation or an adornment compiles to an
    /// unschedulable filter chain.
    Qsq,
}

/// An evaluation mode a [`Downgrade`] can degrade from or to: one of the
/// four retrieve strategies, or one of the two maintenance modes a live
/// knowledge base keeps its derived state in — incremental (delta
/// propagation / delete-and-rederive) and full recomputation.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// A retrieve evaluation strategy.
    Strategy(Strategy),
    /// Incremental maintenance of materialized derived facts.
    Incremental,
    /// Full fixpoint recomputation of derived facts.
    Recompute,
}

impl fmt::Debug for Mode {
    // Renders the inner strategy bare ("Magic", not "Strategy(Magic)") so
    // downgrade notes read the same as when `Downgrade` held strategies
    // directly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Strategy(s) => write!(f, "{s:?}"),
            Mode::Incremental => write!(f, "Incremental"),
            Mode::Recompute => write!(f, "Recompute"),
        }
    }
}

impl From<Strategy> for Mode {
    fn from(s: Strategy) -> Self {
        Mode::Strategy(s)
    }
}

impl PartialEq<Strategy> for Mode {
    fn eq(&self, other: &Strategy) -> bool {
        matches!(self, Mode::Strategy(s) if s == other)
    }
}

/// A recorded degradation: the requested evaluation or maintenance mode
/// could not complete (e.g. the magic-sets rewrite hit a non-stratified
/// slice, or delete-and-rederive met negation over an affected
/// predicate), and a simpler mode produced the result instead of
/// erroring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Downgrade {
    /// The mode that was requested.
    pub from: Mode,
    /// The mode that produced the result.
    pub to: Mode,
    /// Human-readable cause of the downgrade.
    pub reason: String,
}

impl Downgrade {
    /// A strategy-to-strategy downgrade (e.g. Magic → SemiNaive).
    pub fn strategy(from: Strategy, to: Strategy, reason: impl Into<String>) -> Self {
        Downgrade {
            from: Mode::Strategy(from),
            to: Mode::Strategy(to),
            reason: reason.into(),
        }
    }

    /// An incremental-maintenance fallback: delta propagation or DRed
    /// bailed out and the derived state was fully recomputed.
    pub fn maintenance(reason: impl Into<String>) -> Self {
        Downgrade {
            from: Mode::Incremental,
            to: Mode::Recompute,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Downgrade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} degraded to {:?}: {}",
            self.from, self.to, self.reason
        )
    }
}

/// A parsed `retrieve` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Retrieve {
    /// The subject `p`: an atomic formula whose variables are the free
    /// variables of the query.
    pub subject: Atom,
    /// The qualifier `ψ`: a positive formula (extensions allow negation).
    pub qualifier: Vec<Literal>,
}

impl Retrieve {
    /// Creates a retrieve statement.
    pub fn new(subject: Atom, qualifier: Vec<Literal>) -> Self {
        Retrieve { subject, qualifier }
    }
}

impl fmt::Display for Retrieve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "retrieve {}", self.subject)?;
        if !self.qualifier.is_empty() {
            let parts: Vec<String> = self.qualifier.iter().map(ToString::to_string).collect();
            write!(f, " where {}", parts.join(" and "))?;
        }
        Ok(())
    }
}

/// The answer to a data query: a header of variables and the retrieved
/// value rows.
#[derive(Clone, Debug, PartialEq)]
pub struct DataAnswer {
    /// The free variables, in subject-argument order.
    pub columns: Vec<Var>,
    /// The retrieved rows, deduplicated.
    pub rows: Vec<Tuple>,
    /// Strategy degradations recorded while answering (empty when the
    /// requested strategy completed on its own).
    pub downgrades: Vec<Downgrade>,
}

impl DataAnswer {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were retrieved.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True if some row has exactly the given rendered values (helper for
    /// tests and examples).
    pub fn contains_row(&self, values: &[&str]) -> bool {
        self.rows.iter().any(|t| {
            t.arity() == values.len()
                && t.values()
                    .iter()
                    .zip(values)
                    .all(|(v, w)| v.to_string() == *w)
        })
    }

    /// Sorted copy of the rows (stable rendering for tests/examples).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

impl fmt::Display for DataAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, "\t")?;
            }
            write!(f, "{v}")?;
        }
        if !self.columns.is_empty() {
            writeln!(f)?;
        }
        for row in &self.rows {
            let vals: Vec<String> = row.values().iter().map(ToString::to_string).collect();
            writeln!(f, "{}", vals.join("\t"))?;
        }
        for d in &self.downgrades {
            writeln!(f, "-- note: {d}")?;
        }
        Ok(())
    }
}

/// Evaluates a `retrieve` statement.
pub fn retrieve(edb: &Edb, idb: &Idb, query: &Retrieve, strategy: Strategy) -> Result<DataAnswer> {
    retrieve_with(edb, idb, query, strategy, EvalOptions::default())
}

/// [`retrieve`] with evaluation options. Compiles the program first;
/// callers issuing repeated queries over an unchanged IDB should compile
/// once and use [`retrieve_compiled`] (the knowledge-base layer does).
pub fn retrieve_with(
    edb: &Edb,
    idb: &Idb,
    query: &Retrieve,
    strategy: Strategy,
    opts: EvalOptions,
) -> Result<DataAnswer> {
    let plan = ProgramPlan::compile_with_stats(idb, edb.stats());
    retrieve_compiled(edb, idb, &plan, query, strategy, opts)
}

/// [`retrieve_with`] over an already compiled program. `plan` must be the
/// compilation of `idb`.
pub fn retrieve_compiled(
    edb: &Edb,
    idb: &Idb,
    plan: &ProgramPlan,
    query: &Retrieve,
    strategy: Strategy,
    opts: EvalOptions,
) -> Result<DataAnswer> {
    let (columns, goals) = query_goals(edb, idb, query)?;
    let obs = opts.sink.clone();
    let substs = match strategy {
        Strategy::TopDown => {
            let _span = obs.span("topdown", 0);
            let mut solver = Solver::with_plan(edb, idb, plan, opts);
            solver.solve_all(&goals)?
        }
        Strategy::Magic => {
            let magic_span = obs.span("magic", 0);
            match magic_substs(edb, idb, &columns, &goals, opts.clone()) {
                Ok(s) => {
                    drop(magic_span);
                    s
                }
                // Graceful degradation: if the rewrite cannot apply
                // (negation in the relevant slice) or the rewritten
                // program exhausts its limits, retry with plain semi-naive
                // and record the downgrade instead of erroring. The retry
                // builds a fresh governor from the same limits, so a
                // deadline restarts for the fallback attempt; if the
                // fallback exhausts too, that error propagates.
                Err(e @ (EngineError::NotStratified(_) | EngineError::Exhausted(_))) => {
                    drop(magic_span);
                    obs.counter("downgrade", 1);
                    let mut answer =
                        retrieve_compiled(edb, idb, plan, query, Strategy::SemiNaive, opts)?;
                    answer.downgrades.insert(
                        0,
                        Downgrade::strategy(Strategy::Magic, Strategy::SemiNaive, e.to_string()),
                    );
                    return Ok(answer);
                }
                Err(e) => return Err(e),
            }
        }
        Strategy::Qsq => {
            let qsq_span = obs.span("qsq", 0);
            match crate::qsq::qsq_substs(edb, idb, plan, &columns, &goals, opts.clone()) {
                Ok(s) => {
                    drop(qsq_span);
                    s
                }
                // Same degradation contract as magic, plus `UnsafeRule`:
                // an adornment whose filter chain cannot be scheduled
                // surfaces at net execution, and plain semi-naive (which
                // evaluates the original, safe rules) still answers.
                Err(
                    e @ (EngineError::NotStratified(_)
                    | EngineError::Exhausted(_)
                    | EngineError::UnsafeRule { .. }),
                ) => {
                    drop(qsq_span);
                    obs.counter("downgrade", 1);
                    let mut answer =
                        retrieve_compiled(edb, idb, plan, query, Strategy::SemiNaive, opts)?;
                    answer.downgrades.insert(
                        0,
                        Downgrade::strategy(Strategy::Qsq, Strategy::SemiNaive, e.to_string()),
                    );
                    return Ok(answer);
                }
                Err(e) => return Err(e),
            }
        }
        Strategy::Naive | Strategy::SemiNaive => {
            // Bottom-up: materialize the relevant predicates, then solve the
            // goal conjunction against EDB + materialized facts.
            let strategy_span = obs.span(
                match strategy {
                    Strategy::Naive => "naive",
                    _ => "seminaive",
                },
                0,
            );
            let graph = DependencyGraph::build(idb);
            let mut relevant = Vec::new();
            for g in &goals {
                if g.is_builtin() {
                    continue;
                }
                for p in graph.reachable_from(g.atom.pred.as_str()) {
                    if !relevant.contains(&p) {
                        relevant.push(p);
                    }
                }
            }
            let derived = match strategy {
                Strategy::Naive => naive::eval_compiled(edb, idb, plan, Some(&relevant), opts)?,
                _ => seminaive::eval_compiled(edb, idb, plan, Some(&relevant), opts)?,
            };
            drop(strategy_span);
            let _project_span = obs.span("project", 0);
            return solve_projected(edb, &derived, &goals, query, &columns);
        }
    };

    let _project_span = obs.span("project", 0);
    project_answer(query, &columns, substs)
}

/// Validates the query subject and builds the answer columns and goal
/// conjunction shared by every evaluation strategy.
pub(crate) fn query_goals(
    edb: &Edb,
    idb: &Idb,
    query: &Retrieve,
) -> Result<(Vec<Var>, Vec<Literal>)> {
    let subject = &query.subject;
    if subject.is_builtin() {
        return Err(EngineError::UnknownSubject(subject.pred.to_string()));
    }
    let known = edb.is_edb_predicate(subject.pred.as_str()) || idb.defines(subject.pred.as_str());
    let columns: Vec<Var> = subject.vars();

    // A new subject predicate is defined through the qualifier: its
    // variables must occur in ψ. The goal conjunction is then just ψ;
    // otherwise it is p ∧ ψ.
    let mut goals: Vec<Literal> = Vec::with_capacity(1 + query.qualifier.len());
    if known {
        goals.push(Literal::pos(subject.clone()));
    } else {
        if query.qualifier.is_empty() {
            return Err(EngineError::UnknownSubject(subject.pred.to_string()));
        }
        let mut qual_vars = Vec::new();
        for l in &query.qualifier {
            l.atom.collect_vars(&mut qual_vars);
        }
        if let Some(missing) = columns.iter().find(|v| !qual_vars.contains(v)) {
            return Err(EngineError::UnsafeRule {
                rule: query.to_string(),
                literal: missing.to_string(),
            });
        }
    }
    goals.extend(query.qualifier.iter().cloned());
    Ok((columns, goals))
}

/// Answers a retrieve query against an already materialized derived
/// store, skipping fixpoint evaluation entirely. This is the serving path
/// for incrementally maintained knowledge bases: the store is kept
/// consistent across mutations, so a query is just goal solving plus
/// projection.
pub fn retrieve_precomputed(
    edb: &Edb,
    idb: &Idb,
    derived: &crate::bindings::DerivedFacts,
    query: &Retrieve,
) -> Result<DataAnswer> {
    let (columns, goals) = query_goals(edb, idb, query)?;
    solve_projected(edb, derived, &goals, query, &columns)
}

/// Solves a goal conjunction against the EDB plus a materialized derived
/// store and projects each satisfying frame straight onto the subject's
/// columns. Row content, order, and deduplication are identical to
/// solving into substitutions and then projecting with
/// [`project_answer`]; skipping the per-row substitution map is the
/// bottom-up answer fast path.
fn solve_projected(
    edb: &Edb,
    derived: &crate::bindings::DerivedFacts,
    goals: &[Literal],
    query: &Retrieve,
    columns: &[Var],
) -> Result<DataAnswer> {
    if let Some(rows) = full_extension(edb, derived, goals, columns) {
        return Ok(DataAnswer {
            columns: columns.to_vec(),
            rows,
            downgrades: Vec::new(),
        });
    }
    let dummy = Rule::with_literals(Atom::new("_goal", vec![]), goals.to_vec());
    let stats = edb.stats();
    let plan = RulePlan::for_query(goals, dummy.to_string(), &mut Interner::new(), Some(&stats));
    let view = FactView::total(edb, derived);
    let slots: Vec<Option<u32>> = columns.iter().map(|v| plan.compiled.slot_of(v)).collect();
    let mut frame = Frame::new(plan.compiled.num_slots());
    let mut rows: Vec<Tuple> = Vec::new();
    let mut seen: FxHashSet<Tuple> = FxHashSet::default();
    let mut unbound = false;
    exec(&plan, 0, &view, &mut frame, &mut |f| {
        let mut row: Vec<Value> = Vec::with_capacity(columns.len());
        for slot in &slots {
            match slot.and_then(|s| f.get(s)) {
                Some(c) => row.push(c.clone()),
                None => {
                    unbound = true;
                    return Ok(());
                }
            }
        }
        let t = Tuple::new(row);
        if seen.insert(t.clone()) {
            rows.push(t);
        }
        Ok(())
    })?;
    if unbound {
        return Err(EngineError::UnsafeRule {
            rule: query.to_string(),
            literal: "free variable not bound by query".to_string(),
        });
    }
    Ok(DataAnswer {
        columns: columns.to_vec(),
        rows,
        downgrades: Vec::new(),
    })
}

/// The whole-extension fast path: a single positive goal whose arguments
/// are distinct variables matching the answer columns one-for-one asks
/// for every stored tuple of one predicate, so the rows are the backing
/// relation's tuples verbatim — no plan, no execution, no dedup (the
/// relation is a set) and no projection (the row *is* the tuple). Order
/// matches the general path, which scans the same relation in id order.
/// Returns `None` when the query needs real goal solving (constants,
/// repeated or reordered variables, several goals, negation, builtins) or
/// when the stored arity disagrees with the goal (the general path owns
/// that error).
fn full_extension(
    edb: &Edb,
    derived: &crate::bindings::DerivedFacts,
    goals: &[Literal],
    columns: &[Var],
) -> Option<Vec<Tuple>> {
    let [goal] = goals else {
        return None;
    };
    if !goal.positive || goal.is_builtin() {
        return None;
    }
    let args = &goal.atom.args;
    // `columns` holds distinct variables, so equal length plus pointwise
    // match rules out constants and repeated variables in one sweep.
    if args.len() != columns.len()
        || !args
            .iter()
            .zip(columns)
            .all(|(a, c)| matches!(a, Term::Var(v) if v == c))
    {
        return None;
    }
    // Mirror `FactView::scan_target`: declared predicates read the EDB
    // relation, everything else the derived store; an absent relation is
    // an empty extension.
    let pred = goal.atom.pred.as_str();
    let rel = if edb.is_edb_predicate(pred) {
        edb.relation(pred)
    } else {
        derived.relation(pred)
    };
    let Some(rel) = rel else {
        return Some(Vec::new());
    };
    if rel.arity() != args.len() {
        return None;
    }
    Some(rel.iter().cloned().collect())
}

/// Projects satisfying substitutions onto the subject's variables,
/// deduplicating rows.
fn project_answer(query: &Retrieve, columns: &[Var], substs: Vec<Subst>) -> Result<DataAnswer> {
    // Project onto the subject's variables. Constants in the subject are
    // checked by the goal conjunction itself (p was a goal) or — for a new
    // predicate — are simply echoed.
    let mut answer = DataAnswer {
        columns: columns.to_vec(),
        rows: Vec::new(),
        downgrades: Vec::new(),
    };
    let mut seen = std::collections::HashSet::new();
    for s in substs {
        let mut row: Vec<Value> = Vec::with_capacity(columns.len());
        let mut complete = true;
        for v in columns {
            match s.apply_term(&Term::Var(v.clone())) {
                Term::Const(c) => row.push(c),
                Term::Var(_) => {
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            return Err(EngineError::UnsafeRule {
                rule: query.to_string(),
                literal: "free variable not bound by query".to_string(),
            });
        }
        let t = Tuple::new(row);
        if seen.insert(t.clone()) {
            answer.rows.push(t);
        }
    }
    Ok(answer)
}

/// Magic-sets evaluation of a goal conjunction: wrap the goals in a fresh
/// query rule, rewrite for the query predicate, evaluate the rewritten
/// program semi-naively, and read the query relation.
fn magic_substs(
    edb: &Edb,
    idb: &Idb,
    columns: &[Var],
    goals: &[Literal],
    opts: EvalOptions,
) -> Result<Vec<Subst>> {
    // Collect the goal conjunction's distinct variables (answers project
    // onto these; `columns` are a subset for known subjects).
    let mut vars: Vec<Var> = Vec::new();
    for g in goals {
        for v in g.atom.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    for v in columns {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    let query_head = Atom::new(
        "__magic_query",
        vars.iter().cloned().map(Term::Var).collect(),
    );
    let wrapped = idb.extended([Rule::with_literals(query_head.clone(), goals.to_vec())])?;
    let (pattern, bindings) = crate::magic::query_pattern(&query_head);
    let rewritten = crate::magic::rewrite(&wrapped, "__magic_query", &pattern, &bindings)?;
    let facts = seminaive::eval_with(edb, &rewritten.idb, opts)?;
    let mut out = Vec::new();
    if let Some(rel) = facts.relation(rewritten.query_pred.as_str()) {
        for tuple in rel.iter() {
            let s: Subst = vars
                .iter()
                .cloned()
                .zip(tuple.values().iter().cloned().map(Term::Const))
                .collect();
            out.push(s);
        }
    }
    Ok(out)
}

/// Looks up the full extension of a predicate after bottom-up evaluation —
/// a convenience for examples and tests.
pub fn extension(edb: &Edb, idb: &Idb, pred: &str) -> Result<Vec<Tuple>> {
    if let Some(rel) = edb.relation(pred) {
        return Ok(rel.iter().cloned().collect());
    }
    let derived = seminaive::eval(edb, idb)?;
    let mut out = Vec::new();
    if let Some(rel) = derived.relation(pred) {
        for t in rel.iter() {
            out.push(t.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_body, parse_program};

    /// The paper's example database (§2.2), trimmed to what these tests use.
    fn university() -> (Edb, Idb) {
        let mut edb = Edb::new();
        edb.declare("student", &["Sname", "Major", "Gpa"]).unwrap();
        edb.declare("enroll", &["Sname", "Ctitle"]).unwrap();
        edb.declare("teach", &["Pname", "Ctitle"]).unwrap();
        edb.declare("taught", &["Pname", "Ctitle", "Sem", "Eval"])
            .unwrap();
        edb.declare("complete", &["Sname", "Ctitle", "Sem", "Grade"])
            .unwrap();
        edb.declare("prereq", &["Ctitle", "Ptitle"]).unwrap();
        for f in [
            "student(ann, math, 3.9)",
            "student(bob, math, 3.8)",
            "student(cara, physics, 3.5)",
            "student(dan, math, 3.9)",
            "enroll(ann, databases)",
            "enroll(cara, databases)",
            "enroll(dan, calculus)",
            "teach(susan, databases)",
            "taught(susan, databases, f88, 3.5)",
            "taught(peter, databases, f87, 3.9)",
            "complete(ann, databases, f88, 3.6)",
            "complete(bob, databases, f87, 4.0)",
            "complete(dan, databases, f88, 3.2)",
            "prereq(databases, datastructures)",
            "prereq(datastructures, programming)",
        ] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let idb = Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
                 prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).\n\
                 can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).\n\
                 can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4.0).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        (edb, idb)
    }

    fn strategies() -> [Strategy; 3] {
        [Strategy::Naive, Strategy::SemiNaive, Strategy::TopDown]
    }

    #[test]
    fn example1_retrieve_honor_enrolled_in_databases() {
        // Paper Example 1: retrieve honor(X) where enroll(X, databases).
        let (edb, idb) = university();
        let q = Retrieve::new(
            parse_atom("honor(X)").unwrap(),
            parse_body("enroll(X, databases)").unwrap(),
        );
        for st in strategies() {
            let a = retrieve(&edb, &idb, &q, st).unwrap();
            assert_eq!(a.len(), 1, "{st:?}");
            assert!(a.contains_row(&["ann"]), "{st:?}");
        }
    }

    #[test]
    fn example2_fresh_answer_predicate() {
        // Paper Example 2: retrieve answer(X) where can_ta(X, databases)
        // and student(X, math, V) and V > 3.7.
        let (edb, idb) = university();
        let q = Retrieve::new(
            parse_atom("answer(X)").unwrap(),
            parse_body("can_ta(X, databases), student(X, math, V), V > 3.7").unwrap(),
        );
        for st in strategies() {
            let a = retrieve(&edb, &idb, &q, st).unwrap();
            // ann: honor, completed under susan (f88) with 3.6 > 3.3 and
            // susan currently teaches databases. bob: honor, completed with
            // 4.0. dan: grade 3.2 fails both rules.
            assert_eq!(a.len(), 2, "{st:?}");
            assert!(
                a.contains_row(&["ann"]) && a.contains_row(&["bob"]),
                "{st:?}"
            );
        }
    }

    #[test]
    fn retrieve_without_where_clause() {
        let (edb, idb) = university();
        let q = Retrieve::new(parse_atom("honor(X)").unwrap(), vec![]);
        for st in strategies() {
            let a = retrieve(&edb, &idb, &q, st).unwrap();
            assert_eq!(a.len(), 3, "{st:?}"); // ann, bob, dan
        }
    }

    #[test]
    fn retrieve_recursive_subject_with_constant() {
        let (edb, idb) = university();
        let q = Retrieve::new(parse_atom("prior(databases, Y)").unwrap(), vec![]);
        for st in strategies() {
            let a = retrieve(&edb, &idb, &q, st).unwrap();
            assert_eq!(a.len(), 2, "{st:?}");
            assert!(a.contains_row(&["datastructures"]));
            assert!(a.contains_row(&["programming"]));
        }
    }

    #[test]
    fn retrieve_edb_subject() {
        let (edb, idb) = university();
        let q = Retrieve::new(parse_atom("enroll(X, databases)").unwrap(), vec![]);
        for st in strategies() {
            let a = retrieve(&edb, &idb, &q, st).unwrap();
            assert_eq!(a.len(), 2, "{st:?}");
        }
    }

    #[test]
    fn fresh_subject_requires_vars_in_qualifier() {
        let (edb, idb) = university();
        let q = Retrieve::new(
            parse_atom("answer(X, W)").unwrap(),
            parse_body("honor(X)").unwrap(),
        );
        assert!(matches!(
            retrieve(&edb, &idb, &q, Strategy::SemiNaive),
            Err(EngineError::UnsafeRule { .. })
        ));
    }

    #[test]
    fn fresh_subject_without_qualifier_is_unknown() {
        let (edb, idb) = university();
        let q = Retrieve::new(parse_atom("mystery(X)").unwrap(), vec![]);
        assert!(matches!(
            retrieve(&edb, &idb, &q, Strategy::SemiNaive),
            Err(EngineError::UnknownSubject(_))
        ));
    }

    #[test]
    fn builtin_subject_is_rejected() {
        let (edb, idb) = university();
        let q = Retrieve::new(parse_atom("(X > 3)").unwrap(), vec![]);
        assert!(retrieve(&edb, &idb, &q, Strategy::SemiNaive).is_err());
    }

    #[test]
    fn ground_subject_acts_as_boolean_query() {
        let (edb, idb) = university();
        let yes = Retrieve::new(parse_atom("honor(ann)").unwrap(), vec![]);
        let no = Retrieve::new(parse_atom("honor(cara)").unwrap(), vec![]);
        for st in strategies() {
            // One empty row = true; no rows = false.
            assert_eq!(retrieve(&edb, &idb, &yes, st).unwrap().len(), 1, "{st:?}");
            assert!(retrieve(&edb, &idb, &no, st).unwrap().is_empty(), "{st:?}");
        }
    }

    #[test]
    fn negated_qualifier_extension() {
        // "Are all foreign students married?" analogue: students who are
        // enrolled in databases but not honor students.
        let (edb, idb) = university();
        let q = Retrieve::new(
            parse_atom("answer(X)").unwrap(),
            parse_body("enroll(X, databases), not honor(X)").unwrap(),
        );
        for st in strategies() {
            let a = retrieve(&edb, &idb, &q, st).unwrap();
            assert_eq!(a.len(), 1, "{st:?}");
            assert!(a.contains_row(&["cara"]));
        }
    }

    #[test]
    fn strategies_agree_on_all_idb_predicates() {
        let (edb, idb) = university();
        for pred in ["honor(X)", "prior(X, Y)", "can_ta(X, Y)"] {
            let q = Retrieve::new(parse_atom(pred).unwrap(), vec![]);
            let mut renders: Vec<Vec<String>> = Vec::new();
            for st in strategies() {
                let a = retrieve(&edb, &idb, &q, st).unwrap();
                let mut rows: Vec<String> = a.sorted().iter().map(ToString::to_string).collect();
                rows.dedup();
                renders.push(rows);
            }
            assert_eq!(renders[0], renders[1], "{pred}");
            assert_eq!(renders[1], renders[2], "{pred}");
        }
    }

    #[test]
    fn display_of_query_and_answer() {
        let q = Retrieve::new(
            parse_atom("honor(X)").unwrap(),
            parse_body("enroll(X, databases)").unwrap(),
        );
        assert_eq!(
            q.to_string(),
            "retrieve honor(X) where enroll(X, databases)"
        );
        let (edb, idb) = university();
        let a = retrieve(&edb, &idb, &q, Strategy::SemiNaive).unwrap();
        let s = a.to_string();
        assert!(s.starts_with("X\n"));
        assert!(s.contains("ann"));
    }
}
