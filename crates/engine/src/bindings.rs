//! Rule-body evaluation: scheduling and joining.
//!
//! Bottom-up evaluation fires a rule by finding every substitution that
//! satisfies its body against the current facts. This module provides:
//!
//! * [`DerivedFacts`] — a store of derived (IDB) facts, one [`Relation`]
//!   per predicate;
//! * [`FactView`] — a composite read view over the EDB, the derived store,
//!   and (for semi-naive evaluation) a delta override for one body
//!   occurrence;
//! * [`eval_body`] — the scheduler/join: orders body literals so that each
//!   is evaluable when reached (positive database literals first by bound
//!   count, comparisons as soon as ground, negations once ground), then
//!   enumerates substitutions.

use crate::error::{EngineError, Result};
use qdk_logic::{Atom, Literal, Rule, Subst, Sym, Term};
use qdk_storage::{builtins, Edb, Relation, Tuple, Value};
use std::collections::HashMap;

/// A store of derived facts for IDB predicates.
#[derive(Clone, Debug, Default)]
pub struct DerivedFacts {
    relations: HashMap<Sym, Relation>,
}

impl DerivedFacts {
    /// Creates an empty store.
    pub fn new() -> Self {
        DerivedFacts::default()
    }

    /// Inserts a derived fact tuple; returns `true` if new.
    pub fn insert(&mut self, pred: &Sym, tuple: Tuple) -> bool {
        let arity = tuple.arity();
        self.relations
            .entry(pred.clone())
            .or_insert_with(|| Relation::new(pred.clone(), arity))
            .insert(tuple)
    }

    /// The relation for a predicate, if any facts have been derived.
    pub fn relation(&self, pred: &str) -> Option<&Relation> {
        self.relations.get(pred)
    }

    /// Iterates over (predicate, relation) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Sym, &Relation)> {
        self.relations.iter()
    }

    /// Total number of derived facts.
    pub fn len(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// True if nothing has been derived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges every fact of `other` into `self`, returning how many were new.
    pub fn absorb(&mut self, other: &DerivedFacts) -> usize {
        let mut added = 0;
        for (pred, rel) in other.iter() {
            for t in rel.iter() {
                if self.insert(pred, t.clone()) {
                    added += 1;
                }
            }
        }
        added
    }
}

/// A read view combining the EDB, a derived-facts store, and (optionally)
/// a delta override: when `delta_occurrence` is `Some(i)`, the body atom at
/// position `i` of the rule under evaluation reads from `delta` instead of
/// the full derived store (the semi-naive "one occurrence reads the delta"
/// rewrite).
pub struct FactView<'a> {
    edb: &'a Edb,
    derived: &'a DerivedFacts,
    delta: Option<&'a DerivedFacts>,
    delta_occurrence: Option<usize>,
}

impl<'a> FactView<'a> {
    /// A view over the EDB and the full derived store.
    pub fn total(edb: &'a Edb, derived: &'a DerivedFacts) -> Self {
        FactView {
            edb,
            derived,
            delta: None,
            delta_occurrence: None,
        }
    }

    /// A view where body occurrence `occurrence` reads from `delta`.
    pub fn with_delta(
        edb: &'a Edb,
        derived: &'a DerivedFacts,
        delta: &'a DerivedFacts,
        occurrence: usize,
    ) -> Self {
        FactView {
            edb,
            derived,
            delta: Some(delta),
            delta_occurrence: Some(occurrence),
        }
    }

    /// Extends `subst` in all ways making `atom` (the body literal at
    /// `occurrence`) true, appending to `out`.
    fn match_atom(
        &self,
        occurrence: usize,
        atom: &Atom,
        subst: &Subst,
        out: &mut Vec<Subst>,
    ) -> Result<()> {
        if atom.is_builtin() {
            self.edb.match_atom(atom, subst, out)?;
            return Ok(());
        }
        if self.edb.is_edb_predicate(atom.pred.as_str()) {
            self.edb.match_atom(atom, subst, out)?;
            return Ok(());
        }
        // IDB predicate: read from delta or the derived store.
        let store = if self.delta_occurrence == Some(occurrence) {
            self.delta.expect("delta set with occurrence")
        } else {
            self.derived
        };
        let Some(rel) = store.relation(atom.pred.as_str()) else {
            return Ok(()); // nothing derived yet
        };
        match_relation(rel, atom, subst, out);
        Ok(())
    }

    /// True when a ground atom holds in this view (used for negation).
    fn holds_ground(&self, atom: &Atom, subst: &Subst) -> Result<bool> {
        let mut out = Vec::new();
        self.match_atom(usize::MAX, atom, subst, &mut out)?;
        Ok(!out.is_empty())
    }
}

/// Matches an atom against a relation, extending `subst` per tuple.
pub(crate) fn match_relation(rel: &Relation, atom: &Atom, subst: &Subst, out: &mut Vec<Subst>) {
    if atom.arity() != rel.arity() {
        return;
    }
    let resolved: Vec<Term> = atom.args.iter().map(|t| subst.apply_term(t)).collect();
    let pattern: Vec<Option<Value>> = resolved.iter().map(|t| t.as_const().cloned()).collect();
    'tuples: for tuple in rel.select(&pattern) {
        let mut s = subst.clone();
        for (term, value) in resolved.iter().zip(tuple.values()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match s.apply_term(&Term::Var(v.clone())) {
                    Term::Const(c) => {
                        if &c != value {
                            continue 'tuples;
                        }
                    }
                    Term::Var(w) => {
                        s.bind(w, Term::Const(value.clone()));
                    }
                },
            }
        }
        out.push(s);
    }
}

/// True if a term is ground after applying the substitution.
fn ground_under(t: &Term, s: &Subst) -> bool {
    s.apply_term(t).is_ground()
}

/// Scheduling state of one body literal.
#[derive(Clone, Copy, PartialEq)]
enum LitState {
    Pending,
    Done,
}

/// Evaluates a rule body, calling `emit` with every satisfying
/// substitution (extending `start`).
///
/// Scheduling: repeatedly pick the next evaluable pending literal —
/// an equality with at least one ground side, any other comparison with
/// both sides ground, a negation with all arguments ground, or the
/// positive database literal with the most bound arguments. If only
/// never-evaluable literals remain, the rule is unsafe.
pub fn eval_body(
    rule: &Rule,
    view: &FactView<'_>,
    start: &Subst,
    emit: &mut dyn FnMut(Subst),
) -> Result<()> {
    let body = &rule.body;
    let mut state = vec![LitState::Pending; body.len()];
    eval_rec(rule, body, &mut state, view, start.clone(), emit)
}

fn eval_rec(
    rule: &Rule,
    body: &[Literal],
    state: &mut Vec<LitState>,
    view: &FactView<'_>,
    subst: Subst,
    emit: &mut dyn FnMut(Subst),
) -> Result<()> {
    // Find the next literal to evaluate.
    let mut choice: Option<usize> = None;
    let mut best_bound = usize::MAX;
    for (i, lit) in body.iter().enumerate() {
        if state[i] == LitState::Done {
            continue;
        }
        if lit.is_builtin() {
            let l = &lit.atom.args[0];
            let r = &lit.atom.args[1];
            let lg = ground_under(l, &subst);
            let rg = ground_under(r, &subst);
            let evaluable = if lit.positive && lit.atom.pred.as_str() == "=" {
                lg || rg
            } else {
                lg && rg
            };
            if evaluable {
                choice = Some(i);
                break; // comparisons are cheap: do them first
            }
        } else if lit.positive {
            let bound = lit
                .atom
                .args
                .iter()
                .filter(|t| ground_under(t, &subst))
                .count();
            let unbound = lit.atom.arity() - bound;
            if choice.is_none() || unbound < best_bound {
                // Prefer the literal with fewest unbound arguments; but a
                // builtin chosen above short-circuits.
                if body[i].is_builtin() {
                    continue;
                }
                choice = Some(i);
                best_bound = unbound;
            }
        } else {
            // Negative database literal: evaluable once ground.
            let all_ground = lit.atom.args.iter().all(|t| ground_under(t, &subst));
            if all_ground {
                choice = Some(i);
                break;
            }
        }
    }

    let Some(i) = choice else {
        // No pending literal is evaluable. If none are pending, succeed.
        if state.iter().all(|s| *s == LitState::Done) {
            emit(subst);
            return Ok(());
        }
        let stuck = body
            .iter()
            .zip(state.iter())
            .find(|(_, s)| **s == LitState::Pending)
            .map(|(l, _)| l.to_string())
            .unwrap_or_default();
        return Err(EngineError::UnsafeRule {
            rule: rule.to_string(),
            literal: stuck,
        });
    };

    state[i] = LitState::Done;
    let lit = &body[i];
    let result = (|| -> Result<()> {
        if lit.is_builtin() && lit.positive && lit.atom.pred.as_str() == "=" {
            // Equality may bind: unify both sides under subst.
            let l = subst.apply_term(&lit.atom.args[0]);
            let r = subst.apply_term(&lit.atom.args[1]);
            match qdk_logic::unify(&l, &r) {
                Some(u) => {
                    let combined = subst.compose(&u);
                    eval_rec(rule, body, state, view, combined, emit)
                }
                None => Ok(()),
            }
        } else if lit.is_builtin() {
            let res = builtins::eval_atom(&lit.atom, &subst).map_err(EngineError::from)?;
            let truth = res.expect("scheduled comparison is ground");
            let holds = if lit.positive { truth } else { !truth };
            if holds {
                eval_rec(rule, body, state, view, subst, emit)
            } else {
                Ok(())
            }
        } else if lit.positive {
            let mut exts = Vec::new();
            view.match_atom(i, &lit.atom, &subst, &mut exts)?;
            for s in exts {
                eval_rec(rule, body, state, view, s, emit)?;
            }
            Ok(())
        } else {
            // Ground negation: closed-world test against the view.
            if view.holds_ground(&lit.atom, &subst)? {
                Ok(())
            } else {
                eval_rec(rule, body, state, view, subst, emit)
            }
        }
    })();
    state[i] = LitState::Pending;
    result
}

/// Fires a rule once against a view: evaluates the body and instantiates
/// the head for every satisfying substitution, inserting new head tuples
/// into `out`. Returns the number of new tuples.
pub(crate) fn fire_rule(
    rule: &Rule,
    view: &FactView<'_>,
    out: &mut DerivedFacts,
) -> Result<usize> {
    let mut added = 0;
    let head = &rule.head;
    let mut err: Option<EngineError> = None;
    let mut emit = |s: Subst| {
        let inst = s.apply_atom(head);
        if !inst.is_ground() {
            // Range-restriction violation surfaced as unsafety.
            if err.is_none() {
                err = Some(EngineError::UnsafeRule {
                    rule: rule.to_string(),
                    literal: inst.to_string(),
                });
            }
            return;
        }
        let tuple: Tuple = inst
            .args
            .iter()
            .map(|t| t.as_const().expect("ground").clone())
            .collect();
        if out.insert(&head.pred, tuple) {
            added += 1;
        }
    };
    eval_body(rule, view, &Subst::new(), &mut emit)?;
    if let Some(e) = err {
        return Err(e);
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_rule};

    fn edb() -> Edb {
        let mut edb = Edb::new();
        edb.declare("student", &["Sname", "Major", "Gpa"]).unwrap();
        edb.declare("enroll", &["Sname", "Ctitle"]).unwrap();
        for f in [
            "student(ann, math, 3.9)",
            "student(bob, physics, 3.5)",
            "student(cara, math, 3.8)",
            "enroll(ann, databases)",
            "enroll(bob, databases)",
            "enroll(cara, calculus)",
        ] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        edb
    }

    fn all_substs(rule: &Rule, view: &FactView<'_>) -> Vec<Subst> {
        let mut out = Vec::new();
        eval_body(rule, view, &Subst::new(), &mut |s| out.push(s)).unwrap();
        out
    }

    #[test]
    fn join_two_edb_atoms_with_comparison() {
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        let rule =
            parse_rule("ans(X) :- student(X, math, G), enroll(X, C), G > 3.7.").unwrap();
        let substs = all_substs(&rule, &view);
        let names: Vec<String> = substs
            .iter()
            .map(|s| s.apply_term(&Term::var("X")).to_string())
            .collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"ann".to_string()));
        assert!(names.contains(&"cara".to_string()));
    }

    #[test]
    fn comparison_scheduled_after_binding() {
        // Comparison appears first in source order but must wait for G.
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        let rule = parse_rule("ans(X) :- G > 3.7, student(X, math, G).").unwrap();
        assert_eq!(all_substs(&rule, &view).len(), 2);
    }

    #[test]
    fn equality_binds_a_variable() {
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        let rule = parse_rule("ans(X, C) :- C = databases, enroll(X, C).").unwrap();
        assert_eq!(all_substs(&rule, &view).len(), 2);
    }

    #[test]
    fn unsafe_rule_is_reported() {
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        // W never becomes bound.
        let rule = parse_rule("ans(X) :- student(X, Y, Z), W > 3.7.").unwrap();
        let mut out = Vec::new();
        let err = eval_body(&rule, &view, &Subst::new(), &mut |s| out.push(s)).unwrap_err();
        assert!(matches!(err, EngineError::UnsafeRule { .. }));
    }

    #[test]
    fn negation_filters_ground_instances() {
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        let rule = parse_rule("ans(X) :- student(X, Y, Z), not enroll(X, databases).").unwrap();
        let substs = all_substs(&rule, &view);
        let names: Vec<String> = substs
            .iter()
            .map(|s| s.apply_term(&Term::var("X")).to_string())
            .collect();
        assert_eq!(names, ["cara"]);
    }

    #[test]
    fn idb_atoms_read_from_derived_store() {
        let edb = edb();
        let mut derived = DerivedFacts::new();
        derived.insert(
            &Sym::new("honor"),
            Tuple::new(vec![Value::sym("ann")]),
        );
        let view = FactView::total(&edb, &derived);
        let rule = parse_rule("ans(X) :- honor(X), enroll(X, databases).").unwrap();
        assert_eq!(all_substs(&rule, &view).len(), 1);
    }

    #[test]
    fn delta_override_restricts_one_occurrence() {
        let edb = edb();
        let mut derived = DerivedFacts::new();
        derived.insert(&Sym::new("honor"), Tuple::new(vec![Value::sym("ann")]));
        derived.insert(&Sym::new("honor"), Tuple::new(vec![Value::sym("cara")]));
        let mut delta = DerivedFacts::new();
        delta.insert(&Sym::new("honor"), Tuple::new(vec![Value::sym("cara")]));
        // Occurrence 0 is the honor atom.
        let view = FactView::with_delta(&edb, &derived, &delta, 0);
        let rule = parse_rule("ans(X) :- honor(X), student(X, M, G).").unwrap();
        let substs = all_substs(&rule, &view);
        let names: Vec<String> = substs
            .iter()
            .map(|s| s.apply_term(&Term::var("X")).to_string())
            .collect();
        assert_eq!(names, ["cara"]);
    }

    #[test]
    fn fire_rule_inserts_head_tuples() {
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        let rule = parse_rule("honor(X) :- student(X, Y, Z), Z > 3.7.").unwrap();
        let mut out = DerivedFacts::new();
        let added = fire_rule(&rule, &view, &mut out).unwrap();
        assert_eq!(added, 2);
        assert_eq!(out.relation("honor").unwrap().len(), 2);
        // Firing again adds nothing new.
        let view2 = FactView::total(&edb, &derived);
        assert_eq!(fire_rule(&rule, &view2, &mut out).unwrap(), 0);
    }

    #[test]
    fn fire_rule_rejects_non_ground_head() {
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        // Head variable W not bound by body.
        let rule = parse_rule("bad(X, W) :- student(X, Y, Z).").unwrap();
        let mut out = DerivedFacts::new();
        assert!(matches!(
            fire_rule(&rule, &view, &mut out),
            Err(EngineError::UnsafeRule { .. })
        ));
    }

    #[test]
    fn absorb_merges_stores() {
        let mut a = DerivedFacts::new();
        a.insert(&Sym::new("p"), Tuple::new(vec![Value::Int(1)]));
        let mut b = DerivedFacts::new();
        b.insert(&Sym::new("p"), Tuple::new(vec![Value::Int(1)]));
        b.insert(&Sym::new("p"), Tuple::new(vec![Value::Int(2)]));
        assert_eq!(a.absorb(&b), 1);
        assert_eq!(a.len(), 2);
    }
}
