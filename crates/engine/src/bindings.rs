//! Plan execution: scans, joins and derived-fact stores.
//!
//! Bottom-up evaluation fires a rule by finding every binding frame that
//! satisfies its compiled body against the current facts. This module
//! provides:
//!
//! * [`DerivedFacts`] — a store of derived (IDB) facts, one [`Relation`]
//!   per predicate, with a cached running fact counter;
//! * [`FactView`] — a composite read view over the EDB, the derived store,
//!   and (for semi-naive evaluation) a delta override for one body
//!   occurrence;
//! * [`exec`] — the plan executor: walks a [`RulePlan`]'s linear step
//!   schedule over a flat [`Frame`], probing relation indexes with
//!   borrowed keys and undoing bindings in place on backtrack;
//! * [`fire_plan`] — fires one compiled rule against a view, inserting
//!   new head tuples.
//!
//! The literal *ordering* lives in [`crate::plan`]; by the time execution
//! starts, every scheduling decision has already been made.

use crate::error::{EngineError, Result};
use crate::plan::{Col, RulePlan, Step};
use qdk_logic::fasthash::FxHashMap;
use qdk_logic::governor::Governor;
use qdk_logic::{Atom, Frame, IrTerm, Subst, Sym, Term};
use qdk_storage::{builtins, CompositeIndex, Edb, Relation, StorageError, Tuple, Value};
use std::sync::Arc;
use threadpool::Pool;

/// A composite access path resolved for one scan step of one firing (the
/// handle knows which ascending column positions it covers), or `None`
/// when the step has fewer than two statically bound columns.
pub(crate) type CompositeAccess = Option<Arc<CompositeIndex>>;

/// Per-firing lazily resolved access paths, one slot per plan step.
///
/// The relation a scan step reads is fixed for the duration of a firing
/// (the view is frozen), so the composite-index handle — which takes a
/// relation-level lock to fetch — is resolved the *first* time each scan
/// step executes and reused for every subsequent frame. Lazy (rather than
/// resolved up front) so a step execution never touches a relation the
/// enumeration doesn't reach, preserving the data-dependent timing of
/// arity diagnostics.
pub(crate) struct ScanCache {
    composites: Vec<Option<CompositeAccess>>,
}

impl ScanCache {
    pub(crate) fn new(steps: usize) -> Self {
        ScanCache {
            composites: vec![None; steps],
        }
    }

    /// The composite access for step `step` against `rel`, resolving on
    /// first use: columns statically bound by the plan (inline constants
    /// and pre-bound slots), demand-building the relation's index when
    /// there are at least two.
    fn composite(&mut self, step: usize, rel: &Relation, cols: &[Col]) -> CompositeAccess {
        self.composites[step]
            .get_or_insert_with(|| {
                let bound: Vec<usize> = cols
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| matches!(c, Col::Const(_) | Col::Slot { probe: true, .. }))
                    .map(|(i, _)| i)
                    .collect();
                if bound.len() >= 2 {
                    rel.composite(&bound)
                } else {
                    None
                }
            })
            .clone()
    }
}

/// A store of derived facts for IDB predicates.
#[derive(Clone, Debug, Default)]
pub struct DerivedFacts {
    relations: FxHashMap<Sym, Relation>,
    count: usize,
}

impl DerivedFacts {
    /// Creates an empty store.
    pub fn new() -> Self {
        DerivedFacts::default()
    }

    /// Inserts a derived fact tuple; returns `true` if new. Inserting a
    /// tuple whose arity disagrees with earlier facts for the same
    /// predicate is a [`StorageError::ArityMismatch`].
    pub fn insert(&mut self, pred: &Sym, tuple: Tuple) -> Result<bool> {
        let arity = tuple.arity();
        let new = self
            .relations
            .entry(pred.clone())
            .or_insert_with(|| Relation::new(pred.clone(), arity))
            .insert(tuple)?;
        if new {
            self.count += 1;
        }
        Ok(new)
    }

    /// The relation for a predicate, if any facts have been derived.
    pub fn relation(&self, pred: &str) -> Option<&Relation> {
        self.relations.get(pred)
    }

    /// Iterates over (predicate, relation) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Sym, &Relation)> {
        self.relations.iter()
    }

    /// Total number of derived facts (a cached counter, not a re-sum).
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if nothing has been derived.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges every fact of `other` into `self`, returning how many were new.
    pub fn absorb(&mut self, other: &DerivedFacts) -> Result<usize> {
        let mut added = 0;
        for (pred, rel) in other.iter() {
            for t in rel.iter() {
                if self.insert(pred, t.clone())? {
                    added += 1;
                }
            }
        }
        Ok(added)
    }

    /// Removes a batch of tuples for one predicate in a single relation
    /// rebuild (see [`Relation::remove_batch`]); returns how many were
    /// present. The relation entry itself is kept even when emptied, so
    /// tuple-id windows held by an in-flight maintenance pass stay
    /// meaningful.
    pub(crate) fn remove_all<'t>(
        &mut self,
        pred: &Sym,
        tuples: impl IntoIterator<Item = &'t Tuple>,
    ) -> usize {
        let Some(rel) = self.relations.get_mut(pred) else {
            return 0;
        };
        let removed = rel.remove_batch(tuples);
        self.count -= removed;
        removed
    }

    /// Drops the whole relation of one predicate (stratum-scoped
    /// invalidation: an affected predicate's extension is recomputed from
    /// scratch while unaffected relations survive).
    pub(crate) fn remove_relation(&mut self, pred: &Sym) -> usize {
        match self.relations.remove(pred) {
            Some(rel) => {
                self.count -= rel.len();
                rel.len()
            }
            None => 0,
        }
    }

    /// Inserts a batch of tuples for one predicate, resolving the relation
    /// entry once instead of per tuple. Returns how many were new.
    pub(crate) fn insert_all(&mut self, pred: &Sym, tuples: Vec<Tuple>) -> Result<usize> {
        let Some(first) = tuples.first() else {
            return Ok(0);
        };
        let arity = first.arity();
        let rel = self
            .relations
            .entry(pred.clone())
            .or_insert_with(|| Relation::new(pred.clone(), arity));
        let mut added = 0;
        for t in tuples {
            if rel.insert(t)? {
                added += 1;
            }
        }
        self.count += added;
        Ok(added)
    }
}

/// Per-predicate half-open tuple-id ranges into a [`DerivedFacts`] store,
/// marking the facts derived in the previous fixpoint round. Because the
/// store only ever appends, "the delta" never needs its own relations (or
/// indexes): it is the tail slice of each relation, and a delta scan is a
/// windowed scan of the full derived relation.
pub(crate) type DeltaRanges = FxHashMap<Sym, (usize, usize)>;

/// What a positive scan reads: the relation plus an optional tuple-id
/// window (the delta range assigned to this occurrence), or nothing when
/// the predicate has no extension yet.
pub(crate) type ScanTarget<'a> = Option<(&'a Relation, Option<(usize, usize)>)>;

/// A read view combining the EDB, a derived-facts store, and (optionally)
/// a delta override: when `delta_occurrence` is `Some(i)`, the body atom at
/// position `i` of the rule under evaluation reads only the derived tuples
/// in the previous round's [`DeltaRanges`] window (the semi-naive "one
/// occurrence reads the delta" rewrite). The delta is never a separate
/// store — just an id window over the append-only derived relations.
pub struct FactView<'a> {
    edb: &'a Edb,
    derived: &'a DerivedFacts,
    delta: Option<&'a DeltaRanges>,
    delta_occurrence: Option<usize>,
    /// When set, the delta occurrence's scan only visits the tuples whose
    /// ids fall in this half-open sub-range of the delta — how a parallel
    /// round splits one large delta scan across workers.
    delta_window: Option<(usize, usize)>,
    /// When set, the delta occurrence resolves its predicate in this store
    /// instead of the EDB or `derived` — DRed's deletion phase reads the
    /// candidate-deleted tuples here while every other occurrence still
    /// reads the untouched pre-retraction state.
    overlay: Option<&'a DerivedFacts>,
}

impl<'a> FactView<'a> {
    /// A view over the EDB and the full derived store.
    pub fn total(edb: &'a Edb, derived: &'a DerivedFacts) -> Self {
        FactView {
            edb,
            derived,
            delta: None,
            delta_occurrence: None,
            delta_window: None,
            overlay: None,
        }
    }

    /// A view where body occurrence `occurrence` reads only the tuples
    /// inside the per-predicate `delta` id ranges. Ranges over EDB
    /// predicates window the stored relation (incremental maintenance
    /// seeds a freshly inserted fact this way); the fixpoint loops only
    /// ever range over derived predicates, for which this is the classic
    /// semi-naive rewrite.
    pub(crate) fn with_delta(
        edb: &'a Edb,
        derived: &'a DerivedFacts,
        delta: &'a DeltaRanges,
        occurrence: usize,
    ) -> Self {
        FactView {
            edb,
            derived,
            delta: Some(delta),
            delta_occurrence: Some(occurrence),
            delta_window: None,
            overlay: None,
        }
    }

    /// Like [`FactView::with_delta`], but the delta occurrence only scans
    /// the ids in `window` (an absolute sub-range of the delta range).
    /// Sound for order-preserving partitioning only when that occurrence is
    /// the plan's outermost scan; the semi-naive driver checks this before
    /// windowing.
    pub(crate) fn with_delta_window(
        edb: &'a Edb,
        derived: &'a DerivedFacts,
        delta: &'a DeltaRanges,
        occurrence: usize,
        window: (usize, usize),
    ) -> Self {
        FactView {
            edb,
            derived,
            delta: Some(delta),
            delta_occurrence: Some(occurrence),
            delta_window: Some(window),
            overlay: None,
        }
    }

    /// A view where body occurrence `occurrence` reads the `overlay`
    /// store's relation (windowed by `delta`) while every other occurrence
    /// reads the EDB and `derived` unchanged. This is DRed's
    /// overestimation view: the overlay holds the tuples deleted so far,
    /// and a rule fired through it enumerates exactly the derivations that
    /// used at least one deleted tuple at that position.
    pub(crate) fn with_overlay(
        edb: &'a Edb,
        derived: &'a DerivedFacts,
        overlay: &'a DerivedFacts,
        delta: &'a DeltaRanges,
        occurrence: usize,
    ) -> Self {
        FactView {
            edb,
            derived,
            delta: Some(delta),
            delta_occurrence: Some(occurrence),
            delta_window: None,
            overlay: Some(overlay),
        }
    }

    /// The derived relation for a rule's head predicate, used to filter
    /// already-known facts at the emit site. Hoisted out of the per-emission
    /// path by [`fire_plan_buffered`]: the store is frozen while firing.
    pub(crate) fn derived_relation(&self, pred: &Sym) -> Option<&'a Relation> {
        self.derived.relation(pred.as_str())
    }

    /// The relation a positive scan at `occurrence` reads, plus the tuple-id
    /// window the scan must respect: the EDB relation for declared
    /// predicates (wrong arity is an error), else the derived relation —
    /// windowed to the delta range (or its assigned sub-range) when this is
    /// the delta occurrence. Absent relation or wrong arity means an empty
    /// extension — nothing derived for that shape yet.
    pub(crate) fn scan_target(
        &self,
        occurrence: usize,
        pred: &Sym,
        arity: usize,
    ) -> Result<ScanTarget<'a>> {
        let window = if self.delta_occurrence == Some(occurrence) {
            let ranges = self.delta.expect("delta set with occurrence");
            let Some(&range) = ranges.get(pred) else {
                return Ok(None); // no new facts for this predicate last round
            };
            Some(self.delta_window.unwrap_or(range))
        } else {
            None
        };
        // DRed's overestimation view: the delta occurrence reads the
        // deleted-tuples overlay regardless of where the predicate is
        // stored (the retracted seed is an EDB fact, the consequences are
        // derived).
        if let (Some(overlay), Some(_)) = (self.overlay, window) {
            return Ok(match overlay.relation(pred.as_str()) {
                Some(rel) if rel.arity() == arity => Some((rel, window)),
                _ => None,
            });
        }
        if self.edb.is_edb_predicate(pred.as_str()) {
            let Some(rel) = self.edb.relation(pred.as_str()) else {
                return Ok(None);
            };
            if arity != rel.arity() {
                return Err(StorageError::ArityMismatch {
                    predicate: pred.to_string(),
                    expected: rel.arity(),
                    found: arity,
                }
                .into());
            }
            return Ok(Some((rel, window)));
        }
        Ok(match self.derived.relation(pred.as_str()) {
            Some(rel) if rel.arity() == arity => Some((rel, window)),
            _ => None,
        })
    }

    /// Closed-world membership test for a fully resolved negated atom.
    /// Negation always reads the full derived store, never a delta.
    pub(crate) fn neg_holds(&self, pred: &Sym, vals: &[Value]) -> Result<bool> {
        let rel = if self.edb.is_edb_predicate(pred.as_str()) {
            let Some(rel) = self.edb.relation(pred.as_str()) else {
                return Ok(false);
            };
            if vals.len() != rel.arity() {
                return Err(StorageError::ArityMismatch {
                    predicate: pred.to_string(),
                    expected: rel.arity(),
                    found: vals.len(),
                }
                .into());
            }
            rel
        } else {
            match self.derived.relation(pred.as_str()) {
                Some(rel) if rel.arity() == vals.len() => rel,
                _ => return Ok(false),
            }
        };
        let pattern: Vec<Option<&Value>> = vals.iter().map(Some).collect();
        Ok(rel.select_ref(&pattern).next().is_some())
    }
}

/// Matches an atom against a relation, extending `subst` per tuple.
///
/// This is the residual substitution-based matcher, kept as the reference
/// the compiled executor's tests compare against. When the resolved
/// pattern is fully ground it skips the per-tuple clone entirely: the
/// relation is deduplicated, so at most one tuple can match, and `subst`
/// itself is the one answer.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn match_relation(rel: &Relation, atom: &Atom, subst: &Subst, out: &mut Vec<Subst>) {
    if atom.arity() != rel.arity() {
        return;
    }
    let resolved: Vec<Term> = atom.args.iter().map(|t| subst.apply_term(t)).collect();
    let pattern: Vec<Option<Value>> = resolved.iter().map(|t| t.as_const().cloned()).collect();
    if pattern.iter().all(Option::is_some) {
        // Fully ground: membership test, no binding and no clone-per-tuple.
        if rel.select(&pattern).next().is_some() {
            out.push(subst.clone());
        }
        return;
    }
    'tuples: for tuple in rel.select(&pattern) {
        let mut s = subst.clone();
        for (term, value) in resolved.iter().zip(tuple.values()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match s.apply_term(&Term::Var(v.clone())) {
                    Term::Const(c) => {
                        if &c != value {
                            continue 'tuples;
                        }
                    }
                    Term::Var(w) => {
                        s.bind(w, Term::Const(value.clone()));
                    }
                },
            }
        }
        out.push(s);
    }
}

/// Executes `plan` from step `step` under `frame`, calling `emit` for
/// every frame that satisfies the remaining schedule. Bindings made while
/// matching are undone in place before returning, so the caller's frame
/// is unchanged on exit.
pub(crate) fn exec(
    plan: &RulePlan,
    step: usize,
    view: &FactView<'_>,
    frame: &mut Frame,
    emit: &mut dyn FnMut(&Frame) -> Result<()>,
) -> Result<()> {
    let mut cache = ScanCache::new(plan.steps.len());
    exec_cached(plan, step, view, &mut cache, frame, emit)
}

/// [`exec`] against a caller-provided per-firing [`ScanCache`] (the
/// firing entry points create one cache and thread it through the whole
/// enumeration; the recursion re-enters here).
pub(crate) fn exec_cached(
    plan: &RulePlan,
    step: usize,
    view: &FactView<'_>,
    cache: &mut ScanCache,
    frame: &mut Frame,
    emit: &mut dyn FnMut(&Frame) -> Result<()>,
) -> Result<()> {
    let Some(s) = plan.steps.get(step) else {
        return emit(frame);
    };
    match s {
        Step::Compare {
            positive,
            op,
            lhs,
            rhs,
            literal,
        } => {
            let truth = match (lhs.resolve(frame), rhs.resolve(frame)) {
                (Some(l), Some(r)) => builtins::eval(op.as_str(), l, r)?,
                _ => {
                    // Reachable only when a pre-bound slot arrives unbound
                    // at run time (top-down call plans); same report the
                    // dynamic scheduler gave for an unschedulable literal.
                    return Err(EngineError::UnsafeRule {
                        rule: plan.rule_str.clone(),
                        literal: literal.clone(),
                    });
                }
            };
            if truth == *positive {
                exec_cached(plan, step + 1, view, cache, frame, emit)
            } else {
                Ok(())
            }
        }
        Step::EqBind { lhs, rhs, literal } => {
            match (lhs.resolve(frame).cloned(), rhs.resolve(frame).cloned()) {
                (Some(l), Some(r)) => {
                    if l == r {
                        exec_cached(plan, step + 1, view, cache, frame, emit)
                    } else {
                        Ok(())
                    }
                }
                (Some(l), None) => bind_eq(plan, step, rhs, l, view, cache, frame, emit),
                (None, Some(r)) => bind_eq(plan, step, lhs, r, view, cache, frame, emit),
                (None, None) => Err(EngineError::UnsafeRule {
                    rule: plan.rule_str.clone(),
                    literal: literal.clone(),
                }),
            }
        }
        Step::NegCheck {
            pred,
            args,
            literal,
        } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                match a.resolve(frame) {
                    Some(c) => vals.push(c.clone()),
                    None => {
                        return Err(EngineError::UnsafeRule {
                            rule: plan.rule_str.clone(),
                            literal: literal.clone(),
                        })
                    }
                }
            }
            if view.neg_holds(pred, &vals)? {
                Ok(())
            } else {
                exec_cached(plan, step + 1, view, cache, frame, emit)
            }
        }
        Step::Scan {
            occurrence,
            pred,
            cols,
            ..
        } => {
            let Some((rel, window)) = view.scan_target(*occurrence, pred, cols.len())? else {
                return Ok(()); // nothing derived yet
            };
            let composite = cache.composite(step, rel, cols);
            scan_relation_access(
                rel,
                cols,
                composite.as_deref(),
                frame,
                window,
                &mut |frame| exec_cached(plan, step + 1, view, cache, frame, emit),
            )
        }
        Step::Unsafe { literal } => Err(EngineError::UnsafeRule {
            rule: plan.rule_str.clone(),
            literal: literal.clone(),
        }),
    }
}

/// Binds the unbound side of an equality and continues, unbinding on the
/// way out.
#[allow(clippy::too_many_arguments)]
fn bind_eq(
    plan: &RulePlan,
    step: usize,
    side: &IrTerm,
    value: Value,
    view: &FactView<'_>,
    cache: &mut ScanCache,
    frame: &mut Frame,
    emit: &mut dyn FnMut(&Frame) -> Result<()>,
) -> Result<()> {
    let IrTerm::Slot(slot) = side else {
        // A constant always resolves, so an unresolved side is a slot.
        return Ok(());
    };
    frame.set(*slot, value);
    let res = exec_cached(plan, step + 1, view, cache, frame, emit);
    frame.clear(*slot);
    res
}

/// Picks the index bucket for a scan: among columns with a value
/// available now (inline constants and bound slots), the one whose
/// bucket is smallest — first minimum in column order, exactly the
/// choice the pattern `select` made. Returns `None` when no column is
/// bound (full scan). The probe borrows the key from the frame or the
/// plan: no `Value` is cloned to look up the index.
pub(crate) fn probe_ids<'r>(rel: &'r Relation, cols: &[Col], frame: &Frame) -> Option<&'r [u32]> {
    // Keep the winning bucket while scoring so the winner is not probed
    // twice (each probe is a hash of the key plus a counter bump).
    let mut best: Option<&'r [u32]> = None;
    for (c, col) in cols.iter().enumerate() {
        let v: Option<&Value> = match col {
            Col::Const(v) => Some(v),
            Col::Slot { slot, .. } => frame.get(*slot),
        };
        if let Some(v) = v {
            let ids = rel.probe(c, v);
            if best.is_none_or(|b| ids.len() < b.len()) {
                best = Some(ids);
            }
        }
    }
    best
}

/// Matches one tuple against the scan columns, binding unbound slots as
/// it goes. Newly bound slots are appended to `trail` (the caller undoes
/// them); returns `false` on the first mismatched column.
pub(crate) fn match_cols_into(
    cols: &[Col],
    values: &[Value],
    frame: &mut Frame,
    trail: &mut Vec<u32>,
) -> bool {
    for (col, value) in cols.iter().zip(values) {
        let ok = match col {
            Col::Const(c) => c == value,
            Col::Slot { slot, .. } => match frame.get(*slot) {
                Some(bound) => bound == value,
                None => {
                    frame.set(*slot, value.clone());
                    trail.push(*slot);
                    true
                }
            },
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Enumerates the tuples of `rel` matching `cols` under `frame`, calling
/// `each` with the extended frame per match and undoing the bindings
/// afterwards. Shared by the bottom-up executor ([`exec`] recurses into
/// the rest of the plan here) and the top-down solver's EDB scans.
pub(crate) fn scan_relation(
    rel: &Relation,
    cols: &[Col],
    frame: &mut Frame,
    each: &mut dyn FnMut(&mut Frame) -> Result<()>,
) -> Result<()> {
    scan_relation_access(rel, cols, None, frame, None, each)
}

/// [`scan_relation`] with an optional resolved composite access path and
/// an optional tuple-id `window` restriction.
///
/// With a composite index the bound columns collapse into one hash
/// lookup; the candidate ids are exactly the ids the single-column probe
/// plus residual filter would have visited, in the same ascending order,
/// so answer order is unchanged by the access-path choice. Index buckets
/// store ids in ascending insertion order, so visiting each window of a
/// partition in turn reproduces the unwindowed visit order; windows are
/// clipped through the relation's [`qdk_storage::DeltaView`].
pub(crate) fn scan_relation_access(
    rel: &Relation,
    cols: &[Col],
    composite: Option<&CompositeIndex>,
    frame: &mut Frame,
    window: Option<(usize, usize)>,
    each: &mut dyn FnMut(&mut Frame) -> Result<()>,
) -> Result<()> {
    let ids = match composite.and_then(|ix| composite_probe(ix, cols, frame)) {
        Some(ids) => Some(ids),
        // No composite resolved (or a statically bound slot arrived
        // unbound, possible in adorned call plans): single-column choice.
        None => probe_ids(rel, cols, frame),
    };
    // One trail for the whole scan, cleared per tuple: slots this scan
    // binds are unbound again before the next tuple (and before return).
    let mut trail: Vec<u32> = Vec::new();
    let mut visit = |tuple: &Tuple, frame: &mut Frame| -> Result<()> {
        trail.clear();
        let res = if match_cols_into(cols, tuple.values(), frame, &mut trail) {
            each(frame)
        } else {
            Ok(())
        };
        for &s in &trail {
            frame.clear(s);
        }
        res
    };
    match ids {
        Some(ids) => {
            let ids = match window {
                Some((lo, hi)) => rel.delta(lo, hi).clip(ids),
                None => ids,
            };
            for &id in ids {
                visit(rel.tuple_at(id), frame)?;
            }
        }
        None => {
            match window {
                Some((lo, hi)) => {
                    for t in rel.delta(lo, hi).iter() {
                        visit(t, frame)?;
                    }
                }
                None => {
                    for t in rel.iter() {
                        visit(t, frame)?;
                    }
                }
            };
        }
    }
    Ok(())
}

/// Probes a resolved composite index with the current frame's values for
/// its columns. Returns `None` (caller falls back to a single-column
/// probe) if any covered slot is unbound at run time.
fn composite_probe<'r>(ix: &'r CompositeIndex, cols: &[Col], frame: &Frame) -> Option<&'r [u32]> {
    let mut key: Vec<&Value> = Vec::with_capacity(ix.cols().len());
    for &c in ix.cols() {
        match cols.get(c)? {
            Col::Const(v) => key.push(v),
            Col::Slot { slot, .. } => key.push(frame.get(*slot)?),
        }
    }
    Some(ix.probe(&key))
}

/// Converts a satisfying frame into a substitution over the plan's slot
/// variables (unbound slots are simply absent). Used by the query layer
/// and the top-down solver to surface answers in the term vocabulary.
pub(crate) fn frame_subst(plan: &RulePlan, frame: &Frame) -> Subst {
    let mut s = Subst::new();
    for (i, v) in plan.compiled.slots.iter().enumerate() {
        if let Some(c) = frame.get(i as u32) {
            s.bind(v.clone(), Term::Const(c.clone()));
        }
    }
    s
}

/// Fires a compiled rule once against a view: executes the plan and
/// instantiates the head for every satisfying frame, inserting new head
/// tuples into `out`. Returns the number of new tuples.
///
/// A frame that leaves a head variable unbound is a range-restriction
/// violation; as in the dynamic evaluator, enumeration completes and the
/// first such violation is then reported as an unsafe rule.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn fire_plan(
    plan: &RulePlan,
    view: &FactView<'_>,
    out: &mut DerivedFacts,
) -> Result<usize> {
    let mut added = 0usize;
    let mut err: Option<EngineError> = None;
    let head = &plan.compiled.head;
    let mut frame = Frame::new(plan.compiled.num_slots());
    exec(plan, 0, view, &mut frame, &mut |frame| {
        let mut row: Vec<Value> = Vec::with_capacity(head.args.len());
        for t in &head.args {
            match t.resolve(frame) {
                Some(c) => row.push(c.clone()),
                None => {
                    if err.is_none() {
                        err = Some(EngineError::UnsafeRule {
                            rule: plan.rule_str.clone(),
                            literal: head.reify(frame, &plan.compiled.slots).to_string(),
                        });
                    }
                    return Ok(());
                }
            }
        }
        if out.insert(&head.pred, Tuple::new(row))? {
            added += 1;
        }
        Ok(())
    })?;
    if let Some(e) = err {
        return Err(e);
    }
    Ok(added)
}

/// How often a firing polls the governor for cancellation/deadline, in
/// emitted frames. Emission-based so the check is free for rules that
/// produce nothing; the coordinator's per-task ticks still bound work.
const FIRE_POLL_EMISSIONS: u64 = 4096;

/// Like [`fire_plan`], but instead of inserting, collects the head tuples
/// not already in the view's derived store into a buffer the coordinator
/// inserts after the whole round has fired. The buffered content and order
/// are exactly `fire_plan`'s emission order minus the already-known facts;
/// the buffer may repeat a tuple (projections), which insertion dedups.
///
/// Buffering is what lets the derived store be the *only* store: firings
/// read a frozen snapshot while new facts wait in the buffer, so the store
/// needs no per-round copy, subtract pass, or second set of indexes.
///
/// When `gov` is set, the firing polls it every [`FIRE_POLL_EMISSIONS`]
/// emissions so worker threads observe a cancel or deadline promptly
/// without contributing coordinator work ticks.
pub(crate) fn fire_plan_buffered(
    plan: &RulePlan,
    view: &FactView<'_>,
    gov: Option<&Governor>,
) -> Result<Vec<Tuple>> {
    let mut out: Vec<Tuple> = Vec::new();
    let mut emitted = 0u64;
    let mut err: Option<EngineError> = None;
    let head = &plan.compiled.head;
    let known = view.derived_relation(&head.pred);
    let mut frame = Frame::new(plan.compiled.num_slots());
    // Reused across frames: most candidate rows are already known (the
    // whole point of re-firing against the total view), and the borrowed
    // containment check lets those die here without allocating a tuple.
    let mut row: Vec<Value> = Vec::with_capacity(head.args.len());
    exec(plan, 0, view, &mut frame, &mut |frame| {
        if let Some(g) = gov {
            emitted += 1;
            if emitted == FIRE_POLL_EMISSIONS {
                emitted = 0;
                g.poll()?;
            }
        }
        row.clear();
        for t in &head.args {
            match t.resolve(frame) {
                Some(c) => row.push(c.clone()),
                None => {
                    if err.is_none() {
                        err = Some(EngineError::UnsafeRule {
                            rule: plan.rule_str.clone(),
                            literal: head.reify(frame, &plan.compiled.slots).to_string(),
                        });
                    }
                    return Ok(());
                }
            }
        }
        if !known.is_some_and(|r| r.contains_slice(&row)) {
            let vals = std::mem::replace(&mut row, Vec::with_capacity(head.args.len()));
            out.push(Tuple::new(vals));
        }
        Ok(())
    })?;
    if let Some(e) = err {
        return Err(e);
    }
    Ok(out)
}

/// One unit of a fixpoint round: a rule to fire, with an optional delta
/// occurrence and an optional delta-scan window. `ticks` records whether
/// this task owes the governor a work tick — continuation chunks of a
/// windowed scan share the tick of their first chunk, so windowing never
/// changes work accounting.
pub(crate) struct RuleTask<'p> {
    plan: &'p RulePlan,
    occurrence: Option<usize>,
    window: Option<(usize, usize)>,
    ticks: bool,
}

impl<'p> RuleTask<'p> {
    /// Fire `plan` against the total view (round 0 / naive iteration).
    pub(crate) fn total(plan: &'p RulePlan) -> Self {
        RuleTask {
            plan,
            occurrence: None,
            window: None,
            ticks: true,
        }
    }

    /// Fire `plan` with body occurrence `occurrence` reading the delta.
    pub(crate) fn delta(plan: &'p RulePlan, occurrence: usize) -> Self {
        RuleTask {
            plan,
            occurrence: Some(occurrence),
            window: None,
            ticks: true,
        }
    }

    /// One window of a partitioned delta scan. Only the first chunk of a
    /// partition passes `ticks = true`.
    pub(crate) fn delta_chunk(
        plan: &'p RulePlan,
        occurrence: usize,
        window: (usize, usize),
        ticks: bool,
    ) -> Self {
        RuleTask {
            plan,
            occurrence: Some(occurrence),
            window: Some(window),
            ticks,
        }
    }

    /// True when this task is one window of a partitioned delta scan
    /// (observability: the `delta_chunks` counter).
    pub(crate) fn is_chunk(&self) -> bool {
        self.window.is_some()
    }

    fn view<'a>(
        &self,
        edb: &'a Edb,
        derived: &'a DerivedFacts,
        delta: Option<&'a DeltaRanges>,
    ) -> FactView<'a> {
        match (self.occurrence, self.window) {
            (Some(i), Some(w)) => FactView::with_delta_window(
                edb,
                derived,
                delta.expect("delta task requires delta ranges"),
                i,
                w,
            ),
            (Some(i), None) => FactView::with_delta(
                edb,
                derived,
                delta.expect("delta task requires delta ranges"),
                i,
            ),
            (None, _) => FactView::total(edb, derived),
        }
    }
}

/// Fires a batch of independent rule tasks against the frozen derived
/// store, then inserts the buffered new facts in task order. Returns how
/// many facts were new. The store is read-only until every task has fired
/// (jacobi-style), so the batch can run on worker threads.
///
/// The governor contract makes the parallel path observationally identical
/// to the sequential one: the *coordinator* performs every work tick, in
/// task order (workers only poll for cancellation/deadline), and the
/// per-task buffers are inserted in task order, so the insertion order
/// equals the order a single thread firing task-by-task would have
/// produced. On a tick trip the whole round's output is discarded either
/// way; the preceding tasks are replayed sequentially first so a rule
/// error they would have raised before the trip still takes precedence.
pub(crate) fn fire_rule_batch(
    pool: &Pool,
    gov: &Governor,
    edb: &Edb,
    derived: &mut DerivedFacts,
    delta: Option<&DeltaRanges>,
    tasks: &[RuleTask<'_>],
) -> Result<usize> {
    let snapshot: &DerivedFacts = derived;
    let buffers: Vec<Vec<Tuple>> = if pool.is_sequential() || tasks.len() <= 1 {
        // Exact sequential path: tick and fire interleaved.
        let mut bufs = Vec::with_capacity(tasks.len());
        for task in tasks {
            if task.ticks {
                gov.tick()?;
            }
            let view = task.view(edb, snapshot, delta);
            bufs.push(fire_plan_buffered(task.plan, &view, Some(gov))?);
        }
        bufs
    } else {
        // Coordinator ticks up front, in task order. A trip replays the
        // fires that sequential execution would have completed before it
        // (results discarded, governor not consulted: its trip is already
        // sticky).
        for (k, task) in tasks.iter().enumerate() {
            if !task.ticks {
                continue;
            }
            if let Err(trip) = gov.tick() {
                for done in &tasks[..k] {
                    let view = done.view(edb, snapshot, delta);
                    fire_plan_buffered(done.plan, &view, None)?;
                }
                return Err(trip.into());
            }
        }
        let results: Vec<Result<Vec<Tuple>>> = pool.join_all(
            tasks
                .iter()
                .map(|task| {
                    let view = task.view(edb, snapshot, delta);
                    move || fire_plan_buffered(task.plan, &view, Some(gov))
                })
                .collect(),
        );
        let mut bufs = Vec::with_capacity(tasks.len());
        for r in results {
            bufs.push(r?);
        }
        bufs
    };
    let mut added = 0;
    for (task, buf) in tasks.iter().zip(buffers) {
        added += derived.insert_all(&task.plan.compiled.head.pred, buf)?;
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_rule};
    use qdk_logic::Interner;

    fn edb() -> Edb {
        let mut edb = Edb::new();
        edb.declare("student", &["Sname", "Major", "Gpa"]).unwrap();
        edb.declare("enroll", &["Sname", "Ctitle"]).unwrap();
        for f in [
            "student(ann, math, 3.9)",
            "student(bob, physics, 3.5)",
            "student(cara, math, 3.8)",
            "enroll(ann, databases)",
            "enroll(bob, databases)",
            "enroll(cara, calculus)",
        ] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        edb
    }

    fn plan_of(src: &str) -> RulePlan {
        let mut i = Interner::new();
        RulePlan::new(&parse_rule(src).unwrap(), &mut i)
    }

    /// Runs a rule's plan and returns, per satisfying frame, the value
    /// bound to variable `var` rendered as text.
    fn bound_values(src: &str, view: &FactView<'_>, var: &str) -> Vec<String> {
        let plan = plan_of(src);
        let slot = plan
            .compiled
            .slot_of(&qdk_logic::Var::new(var))
            .expect("variable occurs in rule");
        let mut frame = Frame::new(plan.compiled.num_slots());
        let mut out = Vec::new();
        exec(&plan, 0, view, &mut frame, &mut |f| {
            out.push(
                f.get(slot)
                    .expect("emitted frames bind head vars")
                    .to_string(),
            );
            Ok(())
        })
        .unwrap();
        out
    }

    #[test]
    fn join_two_edb_atoms_with_comparison() {
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        let names = bound_values(
            "ans(X) :- student(X, math, G), enroll(X, C), G > 3.7.",
            &view,
            "X",
        );
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"ann".to_string()));
        assert!(names.contains(&"cara".to_string()));
    }

    #[test]
    fn comparison_scheduled_after_binding() {
        // Comparison appears first in source order but must wait for G.
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        let names = bound_values("ans(X) :- G > 3.7, student(X, math, G).", &view, "X");
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn equality_binds_a_variable() {
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        let names = bound_values("ans(X, C) :- C = databases, enroll(X, C).", &view, "X");
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn unsafe_rule_is_reported() {
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        // W never becomes bound.
        let plan = plan_of("ans(X) :- student(X, Y, Z), W > 3.7.");
        let mut frame = Frame::new(plan.compiled.num_slots());
        let err = exec(&plan, 0, &view, &mut frame, &mut |_| Ok(())).unwrap_err();
        assert!(matches!(err, EngineError::UnsafeRule { .. }));
    }

    #[test]
    fn negation_filters_ground_instances() {
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        let names = bound_values(
            "ans(X) :- student(X, Y, Z), not enroll(X, databases).",
            &view,
            "X",
        );
        assert_eq!(names, ["cara"]);
    }

    #[test]
    fn idb_atoms_read_from_derived_store() {
        let edb = edb();
        let mut derived = DerivedFacts::new();
        derived
            .insert(&Sym::new("honor"), Tuple::new(vec![Value::sym("ann")]))
            .unwrap();
        let view = FactView::total(&edb, &derived);
        let names = bound_values("ans(X) :- honor(X), enroll(X, databases).", &view, "X");
        assert_eq!(names, ["ann"]);
    }

    #[test]
    fn delta_override_restricts_one_occurrence() {
        let edb = edb();
        let mut derived = DerivedFacts::new();
        derived
            .insert(&Sym::new("honor"), Tuple::new(vec![Value::sym("ann")]))
            .unwrap();
        derived
            .insert(&Sym::new("honor"), Tuple::new(vec![Value::sym("cara")]))
            .unwrap();
        // cara was inserted second, so the previous round's delta is the
        // id range [1, 2) of the honor relation.
        let mut delta = DeltaRanges::default();
        delta.insert(Sym::new("honor"), (1, 2));
        // Occurrence 0 is the honor atom.
        let view = FactView::with_delta(&edb, &derived, &delta, 0);
        let names = bound_values("ans(X) :- honor(X), student(X, M, G).", &view, "X");
        assert_eq!(names, ["cara"]);
    }

    #[test]
    fn fire_plan_inserts_head_tuples() {
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        let plan = plan_of("honor(X) :- student(X, Y, Z), Z > 3.7.");
        let mut out = DerivedFacts::new();
        let added = fire_plan(&plan, &view, &mut out).unwrap();
        assert_eq!(added, 2);
        assert_eq!(out.relation("honor").unwrap().len(), 2);
        // Firing again adds nothing new.
        let view2 = FactView::total(&edb, &derived);
        assert_eq!(fire_plan(&plan, &view2, &mut out).unwrap(), 0);
    }

    #[test]
    fn fire_plan_rejects_non_ground_head() {
        let edb = edb();
        let derived = DerivedFacts::new();
        let view = FactView::total(&edb, &derived);
        // Head variable W not bound by body.
        let plan = plan_of("bad(X, W) :- student(X, Y, Z).");
        let mut out = DerivedFacts::new();
        assert!(matches!(
            fire_plan(&plan, &view, &mut out),
            Err(EngineError::UnsafeRule { .. })
        ));
    }

    #[test]
    fn absorb_merges_stores_and_len_is_cached() {
        let mut a = DerivedFacts::new();
        a.insert(&Sym::new("p"), Tuple::new(vec![Value::Int(1)]))
            .unwrap();
        let mut b = DerivedFacts::new();
        b.insert(&Sym::new("p"), Tuple::new(vec![Value::Int(1)]))
            .unwrap();
        b.insert(&Sym::new("p"), Tuple::new(vec![Value::Int(2)]))
            .unwrap();
        b.insert(&Sym::new("q"), Tuple::new(vec![Value::sym("x")]))
            .unwrap();
        assert_eq!(a.absorb(&b).unwrap(), 2);
        assert_eq!(a.len(), 3);
        assert_eq!(a.iter().map(|(_, r)| r.len()).sum::<usize>(), a.len());
    }

    #[test]
    fn derived_arity_mismatch_is_an_error() {
        let mut a = DerivedFacts::new();
        a.insert(&Sym::new("p"), Tuple::new(vec![Value::Int(1)]))
            .unwrap();
        assert!(a
            .insert(
                &Sym::new("p"),
                Tuple::new(vec![Value::Int(1), Value::Int(2)])
            )
            .is_err());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn match_relation_ground_pattern_skips_enumeration() {
        let edb = edb();
        let rel = edb.relation("enroll").unwrap();
        let mut out = Vec::new();
        let s: Subst = [
            (qdk_logic::Var::new("X"), Term::sym("ann")),
            (qdk_logic::Var::new("C"), Term::sym("databases")),
        ]
        .into_iter()
        .collect();
        match_relation(rel, &parse_atom("enroll(X, C)").unwrap(), &s, &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        let s2: Subst = [
            (qdk_logic::Var::new("X"), Term::sym("ann")),
            (qdk_logic::Var::new("C"), Term::sym("calculus")),
        ]
        .into_iter()
        .collect();
        match_relation(rel, &parse_atom("enroll(X, C)").unwrap(), &s2, &mut out);
        assert!(out.is_empty());
    }
}
