//! Stratification for negation.
//!
//! The paper's core language is positive (rule bodies and qualifiers are
//! positive formulas, §2.1), but its §6 extensions introduce negated
//! hypotheses, and a credible deductive substrate supports stratified
//! negation. A program is *stratified* when no predicate depends on itself
//! through a negative literal; evaluation then proceeds stratum by stratum,
//! with negation evaluated against completed lower strata (closed world).

use crate::error::{EngineError, Result};
use crate::idb::Idb;
use qdk_logic::Sym;
use std::collections::HashMap;

/// A stratification: the stratum index of each IDB predicate and the
/// predicates of each stratum in evaluation order.
#[derive(Clone, Debug)]
pub struct Stratification {
    stratum_of: HashMap<Sym, usize>,
    strata: Vec<Vec<Sym>>,
}

impl Stratification {
    /// The stratum of an IDB predicate (EDB predicates are stratum 0 and
    /// are not listed).
    pub fn stratum_of(&self, pred: &str) -> Option<usize> {
        self.stratum_of.get(pred).copied()
    }

    /// The strata in evaluation order. Each inner vector lists the IDB
    /// predicates of one stratum.
    pub fn strata(&self) -> &[Vec<Sym>] {
        &self.strata
    }

    /// Number of strata.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// True if there are no IDB predicates.
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }
}

/// Computes a stratification of the IDB, or an error if the program is not
/// stratified.
///
/// Uses the standard fixpoint over stratum numbers: for a rule
/// `q ← …, p, …, ¬r, …` require `stratum(q) ≥ stratum(p)` and
/// `stratum(q) ≥ stratum(r) + 1`. Divergence past `n` iterations (n = #IDB
/// predicates) implies a negative cycle.
pub fn stratify(idb: &Idb) -> Result<Stratification> {
    let preds = idb.predicates();
    let n = preds.len();
    let mut stratum: HashMap<Sym, usize> = preds.iter().map(|p| (p.clone(), 0)).collect();

    for _round in 0..=n {
        let mut changed = false;
        for rule in idb.rules() {
            let hq = stratum[&rule.head.pred];
            let mut needed = hq;
            for lit in &rule.body {
                if lit.is_builtin() {
                    continue;
                }
                let Some(&sp) = stratum.get(&lit.atom.pred) else {
                    continue; // EDB predicate: stratum 0
                };
                let bound = if lit.positive { sp } else { sp + 1 };
                needed = needed.max(bound);
            }
            if needed > hq {
                stratum.insert(rule.head.pred.clone(), needed);
                changed = true;
            }
        }
        if !changed {
            // Converged: bucket predicates by stratum.
            let max = stratum.values().copied().max().unwrap_or(0);
            let mut strata = vec![Vec::new(); if n == 0 { 0 } else { max + 1 }];
            for p in preds {
                strata[stratum[&p]].push(p.clone());
            }
            return Ok(Stratification {
                stratum_of: stratum,
                strata,
            });
        }
    }
    // Did not converge: find a predicate with an over-large stratum to blame.
    let offender = stratum
        .iter()
        .max_by_key(|(_, s)| **s)
        .map(|(p, _)| p.to_string())
        .unwrap_or_default();
    Err(EngineError::NotStratified(offender))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_program;

    fn idb(src: &str) -> Idb {
        Idb::from_rules(parse_program(src).unwrap().rules).unwrap()
    }

    #[test]
    fn positive_program_is_single_stratum() {
        let s = stratify(&idb("honor(X) :- student(X, Y, Z), Z > 3.7.\n\
             prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y)."))
        .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.stratum_of("honor"), Some(0));
        assert_eq!(s.stratum_of("prior"), Some(0));
        assert_eq!(s.stratum_of("prereq"), None);
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        let s = stratify(&idb("honor(X) :- student(X, Y, Z), Z > 3.7.\n\
             ordinary(X) :- student(X, Y, Z), not honor(X)."))
        .unwrap();
        assert_eq!(s.stratum_of("honor"), Some(0));
        assert_eq!(s.stratum_of("ordinary"), Some(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn chained_negation_stacks_strata() {
        let s = stratify(&idb("a(X) :- e(X).\n\
             b(X) :- e(X), not a(X).\n\
             c(X) :- e(X), not b(X)."))
        .unwrap();
        assert_eq!(s.stratum_of("a"), Some(0));
        assert_eq!(s.stratum_of("b"), Some(1));
        assert_eq!(s.stratum_of("c"), Some(2));
    }

    #[test]
    fn negative_cycle_is_rejected() {
        let err = stratify(&idb("win(X) :- move(X, Y), not win(Y).\n\
             move(X, Y) :- edge(X, Y), win(X)."))
        .unwrap_err();
        assert!(matches!(err, EngineError::NotStratified(_)));
    }

    #[test]
    fn positive_recursion_with_negation_below_is_fine() {
        let s = stratify(&idb("base(X) :- e(X), not excluded(X).\n\
             excluded(X) :- f(X).\n\
             closure(X) :- base(X).\n\
             closure(X) :- g(X, Y), closure(Y)."))
        .unwrap();
        assert_eq!(s.stratum_of("excluded"), Some(0));
        assert_eq!(s.stratum_of("base"), Some(1));
        assert_eq!(s.stratum_of("closure"), Some(1));
    }

    #[test]
    fn empty_idb() {
        let s = stratify(&Idb::new()).unwrap();
        assert!(s.is_empty());
    }
}
