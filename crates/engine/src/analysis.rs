//! IDB structural analysis: the paper's rule-shape requirements.
//!
//! §2.1 assumes that **all recursive IDB predicates are defined by
//! recursive rules that are strongly linear and typed with respect to
//! their head predicate**. Algorithm 2's transformation relies on that
//! shape. This module classifies rules and validates whole IDBs, reporting
//! each violation so callers (the describe engine, the language facade)
//! can reject or specially handle nonconforming programs — e.g. the §6
//! "untyped rules of certain structure" extension.

use crate::graph::DependencyGraph;
use crate::idb::Idb;
use qdk_logic::Rule;
use std::fmt;

/// Classification of one rule relative to the dependency graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleShape {
    /// No body predicate is mutually dependent with the head.
    NonRecursive,
    /// Recursive with exactly one body occurrence of the head predicate
    /// and no other mutually-dependent body predicate (§2.1's *strongly
    /// linear*).
    StronglyLinear,
    /// Recursive, exactly one mutually-recursive body occurrence, but that
    /// occurrence is not the head predicate itself (linear but not
    /// strongly linear; §2.1 notes these can be rewritten).
    Linear,
    /// More than one mutually-recursive body occurrence.
    NonLinear,
}

/// Classifies a rule (§2.1 definitions).
pub fn classify_rule(rule: &Rule, graph: &DependencyGraph) -> RuleShape {
    let head = rule.head.pred.as_str();
    let mut mutual = 0usize;
    let mut head_occurrences = 0usize;
    for atom in rule.body_db_atoms() {
        if atom.pred == rule.head.pred {
            head_occurrences += 1;
            mutual += 1;
        } else if graph.mutually_dependent(head, atom.pred.as_str()) {
            mutual += 1;
        }
    }
    match (mutual, head_occurrences) {
        (0, _) => RuleShape::NonRecursive,
        (1, 1) => RuleShape::StronglyLinear,
        (1, 0) => RuleShape::Linear,
        _ => RuleShape::NonLinear,
    }
}

/// True if the rule is recursive (head mutually dependent with some body
/// predicate).
pub fn is_recursive_rule(rule: &Rule, graph: &DependencyGraph) -> bool {
    classify_rule(rule, graph) != RuleShape::NonRecursive
}

/// One violation of the paper's IDB assumptions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A recursive rule is not strongly linear.
    NotStronglyLinear {
        /// The offending rule (rendered).
        rule: String,
        /// Its actual shape.
        shape: RuleShape,
    },
    /// A recursive rule is not typed with respect to its head predicate.
    NotTyped {
        /// The offending rule (rendered).
        rule: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NotStronglyLinear { rule, shape } => {
                write!(
                    f,
                    "recursive rule is {shape:?}, not strongly linear: {rule}"
                )
            }
            Violation::NotTyped { rule } => {
                write!(f, "recursive rule is not typed w.r.t. its head: {rule}")
            }
        }
    }
}

/// A validation report for an IDB.
#[derive(Clone, Debug, Default)]
pub struct IdbReport {
    /// All violations found, in rule order.
    pub violations: Vec<Violation>,
}

impl IdbReport {
    /// True if the IDB satisfies the paper's assumptions.
    pub fn conforms(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validates an IDB against the paper's assumptions: every recursive rule
/// strongly linear and typed with respect to its head predicate.
pub fn validate(idb: &Idb) -> IdbReport {
    let graph = DependencyGraph::build(idb);
    let mut report = IdbReport::default();
    for rule in idb.rules() {
        let shape = classify_rule(rule, &graph);
        match shape {
            RuleShape::NonRecursive | RuleShape::StronglyLinear => {}
            RuleShape::Linear | RuleShape::NonLinear => {
                report.violations.push(Violation::NotStronglyLinear {
                    rule: rule.to_string(),
                    shape,
                });
            }
        }
        if shape != RuleShape::NonRecursive && !rule.is_typed_wrt(rule.head.pred.as_str()) {
            report.violations.push(Violation::NotTyped {
                rule: rule.to_string(),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_program;

    fn idb(src: &str) -> Idb {
        Idb::from_rules(parse_program(src).unwrap().rules).unwrap()
    }

    #[test]
    fn prior_rules_classify_as_paper_says() {
        let i = idb("prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).");
        let g = DependencyGraph::build(&i);
        assert_eq!(classify_rule(&i.rules()[0], &g), RuleShape::NonRecursive);
        assert_eq!(classify_rule(&i.rules()[1], &g), RuleShape::StronglyLinear);
        assert!(validate(&i).conforms());
    }

    #[test]
    fn mutual_recursion_is_linear_not_strongly_linear() {
        let i = idb("even(X) :- zero(X).\n\
             even(X) :- succ(Y, X), odd(Y).\n\
             odd(X) :- succ(Y, X), even(Y).");
        let g = DependencyGraph::build(&i);
        assert_eq!(classify_rule(&i.rules()[1], &g), RuleShape::Linear);
        let report = validate(&i);
        assert!(!report.conforms());
        assert_eq!(report.violations.len(), 2);
    }

    #[test]
    fn doubly_recursive_rule_is_nonlinear() {
        let i = idb("prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prior(X, Z), prior(Z, Y).");
        let g = DependencyGraph::build(&i);
        assert_eq!(classify_rule(&i.rules()[1], &g), RuleShape::NonLinear);
        assert!(!validate(&i).conforms());
    }

    #[test]
    fn untyped_recursive_rule_is_flagged() {
        // reach(X, Y) :- reach(Y, X): strongly linear but not typed
        // (the §6 symmetric-reachability example).
        let i = idb("reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- reach(Y, X).");
        let report = validate(&i);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(report.violations[0], Violation::NotTyped { .. }));
    }

    #[test]
    fn nonrecursive_untypedness_is_not_a_violation() {
        // Typedness is only required of recursive rules.
        let i = idb("p(X, Y) :- q(X, Y), q(Y, X).");
        assert!(validate(&i).conforms());
    }

    #[test]
    fn example8_q_rules() {
        let i = idb("p(X, Y) :- q(X, Z), r(Z, Y).\n\
             q(X, Y) :- q(X, Z), s(Z, Y).\n\
             q(X, Y) :- r(X, Y).");
        let g = DependencyGraph::build(&i);
        assert_eq!(classify_rule(&i.rules()[0], &g), RuleShape::NonRecursive);
        assert_eq!(classify_rule(&i.rules()[1], &g), RuleShape::StronglyLinear);
        assert_eq!(classify_rule(&i.rules()[2], &g), RuleShape::NonRecursive);
        assert!(validate(&i).conforms());
    }
}
