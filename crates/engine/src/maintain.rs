//! Incremental maintenance of derived facts under fact churn.
//!
//! A [`MaintainedStore`] keeps the full IDB fixpoint materialized across
//! mutations of the stored database, so a living knowledge base answers
//! bottom-up retrieves by projection instead of re-deriving everything:
//!
//! * **Insertion** runs semi-naive delta propagation seeded with the new
//!   tuple: the freshly appended EDB tuple is a one-element id window, and
//!   only rule instantiations touching it (transitively) fire.
//! * **Retraction** runs DRed (delete-and-rederive): phase A overestimates
//!   the deleted derived tuples by firing delta-first rule variants whose
//!   delta occurrence reads the deleted-tuples overlay against the
//!   untouched pre-retraction state; phase B removes the overestimate in
//!   one batch per relation; phase C walks the strata in order, re-deriving
//!   every deleted tuple with at least one surviving derivation (a
//!   head-bound one-step check, then delta propagation from the
//!   re-inserted tuples).
//! * **Rule changes** invalidate only the affected predicates: relations of
//!   the new head and everything depending on it are dropped and re-derived
//!   with the settled lower strata as seed ([`crate::seminaive::eval_seeded`]);
//!   per-stratum generation counters record which strata actually changed.
//!
//! Negation is where incremental maintenance stops being sound tuple-wise:
//! if any affected rule negates an affected predicate (insertion can then
//! *delete* derived facts, deletion can *create* them), the store falls
//! back to a full sequential recomputation and reports the reason so the
//! caller can surface it as a [`crate::query::Downgrade`]. Maintenance
//! always runs sequentially with an unbounded governor: the store must end
//! identical regardless of the session's worker count or limits.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::bindings::{exec, fire_rule_batch, DeltaRanges, DerivedFacts, FactView, RuleTask};
use crate::error::{EngineError, Result};
use crate::graph::DependencyGraph;
use crate::idb::Idb;
use crate::naive::EvalOptions;
use crate::plan::{ProgramPlan, RulePlan};
use crate::seminaive;
use crate::stratify::{stratify, Stratification};
use qdk_logic::fasthash::{FxHashMap, FxHashSet};
use qdk_logic::{Frame, IrTerm, Parallelism, Sym};
use qdk_storage::{Edb, Relation, Tuple, Value};
use std::sync::Arc;

/// Counters describing what one maintenance operation did. Merged across
/// the operations of a mutation batch by the language layer.
#[derive(Clone, Debug, Default)]
pub struct MaintainStats {
    /// Derived facts added by delta propagation (insertion or rederive
    /// spill-over).
    pub derived_added: usize,
    /// Derived facts removed by DRed's deletion phase or a scoped rule
    /// invalidation.
    pub derived_deleted: usize,
    /// Deleted facts put back because an alternative derivation survived.
    pub rederived: usize,
    /// Strata whose generation counter was bumped by a rule change.
    pub strata_invalidated: usize,
    /// Reasons incremental maintenance fell back to full recomputation
    /// (empty when the operation stayed incremental).
    pub recompute_reasons: Vec<String>,
}

impl MaintainStats {
    /// Folds another operation's counters into this one.
    pub fn merge(&mut self, other: &MaintainStats) {
        self.derived_added += other.derived_added;
        self.derived_deleted += other.derived_deleted;
        self.rederived += other.rederived;
        self.strata_invalidated += other.strata_invalidated;
        self.recompute_reasons
            .extend(other.recompute_reasons.iter().cloned());
    }

    /// How many operations fell back to full recomputation.
    pub fn recomputes(&self) -> usize {
        self.recompute_reasons.len()
    }
}

/// The outcome of preparing a retraction against the pre-retraction state.
#[derive(Debug)]
pub enum Retraction {
    /// No rule reads the retracted predicate: removing the EDB tuple is the
    /// whole operation.
    Clean,
    /// The DRed deletion overestimate: every derived tuple at least one of
    /// whose known derivations used the retracted fact. Hand it to
    /// [`MaintainedStore::finish_retract`] after removing the EDB tuple.
    Prepared(Doomed),
}

/// Opaque payload of [`Retraction::Prepared`]: the deletion-candidate
/// store computed by DRed's overestimation phase.
#[derive(Debug)]
pub struct Doomed {
    overlay: DerivedFacts,
    pred: Sym,
}

impl Doomed {
    /// Size of the deletion overestimate: how many derived tuples DRed
    /// will delete and attempt to rederive. Observability reports this as
    /// the `dred_overestimate` counter.
    pub fn len(&self) -> usize {
        self.overlay.len()
    }

    /// True when the overestimate is empty (the retraction reached no
    /// derived fact).
    pub fn is_empty(&self) -> bool {
        self.overlay.is_empty()
    }
}

/// A materialized, incrementally maintained derived-fact store: the
/// program plan it was derived with, the stratification, delta-first rule
/// variants for every positive body occurrence, head-bound plans for
/// rederivability checks, and per-stratum generation counters.
#[derive(Clone, Debug)]
pub struct MaintainedStore {
    plan: Arc<ProgramPlan>,
    strat: Stratification,
    graph: DependencyGraph,
    derived: DerivedFacts,
    /// Per rule (parallel to `plan.plans()`): every positive non-builtin
    /// body occurrence paired with the delta-first re-plan that scans it
    /// outermost. Insertion propagation and DRed's overestimation both
    /// fire these.
    variants: Vec<Vec<(usize, RulePlan)>>,
    /// Per rule: the body re-planned with every head slot pre-bound — the
    /// one-step rederivability check executes this with the deleted tuple's
    /// values already in the frame.
    bound_plans: Vec<RulePlan>,
    /// Generation counter per stratum, bumped when a rule change
    /// invalidates that stratum's extension. Strata untouched by a change
    /// keep their generation, which is what lets plan- and answer-caches
    /// scope their invalidation.
    gens: Vec<u64>,
}

/// Maintenance evaluation options: sequential and unbounded, so the store
/// converges to the same state at every session worker count.
fn maintenance_opts() -> EvalOptions {
    EvalOptions::default().with_parallelism(Parallelism::SEQUENTIAL)
}

/// The delta-variant and head-bound plans for every rule of `plan`.
fn compile_variants(plan: &ProgramPlan) -> (Vec<Vec<(usize, RulePlan)>>, Vec<RulePlan>) {
    let variants = plan
        .plans()
        .iter()
        .map(|rp| {
            rp.compiled
                .body
                .iter()
                .enumerate()
                .filter(|(i, lit)| lit.positive && !rp.compiled.source.body[*i].is_builtin())
                .map(|(i, _)| (i, rp.delta_variant(i, plan.stats())))
                .collect()
        })
        .collect();
    let bound_plans = plan
        .plans()
        .iter()
        .map(|rp| {
            let mut bound = vec![false; rp.compiled.num_slots()];
            for arg in &rp.compiled.head.args {
                if let IrTerm::Slot(s) = arg {
                    bound[*s as usize] = true;
                }
            }
            RulePlan::with_bound(
                rp.compiled.clone(),
                rp.rule_str.clone(),
                bound,
                plan.stats(),
            )
        })
        .collect();
    (variants, bound_plans)
}

impl MaintainedStore {
    /// Materializes the full fixpoint of `idb` over `edb` and prepares the
    /// maintenance plans. `plan` must be the compilation of `idb`.
    pub fn build(edb: &Edb, idb: &Idb, plan: Arc<ProgramPlan>) -> Result<MaintainedStore> {
        let strat = stratify(idb)?;
        let graph = DependencyGraph::build(idb);
        let derived = seminaive::eval_compiled(edb, idb, &plan, None, maintenance_opts())?;
        let (variants, bound_plans) = compile_variants(&plan);
        let gens = vec![0; strat.len()];
        Ok(MaintainedStore {
            plan,
            strat,
            graph,
            derived,
            variants,
            bound_plans,
            gens,
        })
    }

    /// The maintained derived facts.
    pub fn derived(&self) -> &DerivedFacts {
        &self.derived
    }

    /// The per-stratum generation counters, in stratum order.
    pub fn stratum_generations(&self) -> &[u64] {
        &self.gens
    }

    /// The generation of the stratum an IDB predicate belongs to.
    pub fn generation_of(&self, pred: &str) -> Option<u64> {
        self.strat
            .stratum_of(pred)
            .and_then(|s| self.gens.get(s).copied())
    }

    /// The IDB predicates whose extension can change when `pred` does:
    /// `pred` itself (if derived) plus everything depending on it. The
    /// closure must follow *both* literal polarities — a head whose rule
    /// negates `pred` changes when `pred` does, and the positive-only
    /// dependency graph cannot see that edge.
    fn affected_by(&self, idb: &Idb, pred: &str) -> Vec<Sym> {
        let mut reached: FxHashSet<&str> = FxHashSet::default();
        reached.insert(pred);
        loop {
            let mut grew = false;
            for rule in idb.rules() {
                let head = rule.head.pred.as_str();
                if reached.contains(head) {
                    continue;
                }
                if rule
                    .body
                    .iter()
                    .any(|l| !l.is_builtin() && reached.contains(l.atom.pred.as_str()))
                {
                    reached.insert(head);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        idb.predicates()
            .into_iter()
            .filter(|q| reached.contains(q.as_str()))
            .collect()
    }

    /// Why a mutation of `pred` cannot be maintained incrementally, if it
    /// cannot: some affected rule negates an affected predicate (the
    /// update is then non-monotone through that rule), or the predicate is
    /// simultaneously stored and derived.
    fn fallback_reason(&self, edb: &Edb, idb: &Idb, pred: &str) -> Option<String> {
        if edb.is_edb_predicate(pred) && idb.defines(pred) {
            return Some(format!(
                "predicate {pred} is both stored and derived; incremental maintenance \
                 cannot separate the contributions"
            ));
        }
        let affected = self.affected_by(idb, pred);
        for rule in idb.rules() {
            if !affected.contains(&rule.head.pred) {
                continue;
            }
            for lit in &rule.body {
                if lit.positive || lit.is_builtin() {
                    continue;
                }
                let n = &lit.atom.pred;
                if n.as_str() == pred || affected.contains(n) {
                    return Some(format!(
                        "rule {rule} negates affected predicate {n}; \
                         the update is non-monotone"
                    ));
                }
            }
        }
        None
    }

    /// Current tuple count of `pred` in the stores a scan would read —
    /// matching [`FactView`]'s resolution order (EDB first).
    fn current_len(&self, edb: &Edb, pred: &Sym) -> usize {
        if edb.is_edb_predicate(pred.as_str()) {
            edb.relation(pred.as_str()).map_or(0, Relation::len)
        } else {
            self.derived
                .relation(pred.as_str())
                .map_or(0, Relation::len)
        }
    }

    /// Semi-naive delta propagation from the given seed windows: stratum by
    /// stratum, fire every delta-first variant whose occurrence predicate
    /// has unconsumed new tuples, until no stratum grows. Returns how many
    /// derived facts were added.
    ///
    /// Each stratum consumes from its own offset map initialized at the
    /// propagation baseline, so windows produced while processing one
    /// stratum remain visible to every higher stratum.
    fn propagate(&mut self, edb: &Edb, seed: &DeltaRanges) -> Result<usize> {
        let opts = maintenance_opts();
        let gov = opts.governor();
        let pool = opts.pool();
        // Baseline: everything below these ids is already reflected in the
        // store; seed windows start below their predicate's length.
        let mut base: FxHashMap<Sym, usize> = FxHashMap::default();
        for variants in &self.variants {
            for (_, dp) in variants {
                for (i, lit) in dp.compiled.body.iter().enumerate() {
                    if !lit.positive || dp.compiled.source.body[i].is_builtin() {
                        continue;
                    }
                    let p = lit.atom.pred.clone();
                    let len = self.current_len(edb, &p);
                    base.entry(p).or_insert(len);
                }
            }
        }
        for (p, &(lo, _)) in seed {
            base.insert(p.clone(), lo);
        }
        let mut added_total = 0usize;
        for stratum in self.strat.strata().to_vec() {
            let rule_ids: Vec<usize> = self
                .plan
                .plans()
                .iter()
                .enumerate()
                .filter(|(_, rp)| stratum.contains(&rp.compiled.head.pred))
                .map(|(r, _)| r)
                .collect();
            if rule_ids.is_empty() {
                continue;
            }
            let mut consumed = base.clone();
            loop {
                let mut ranges = DeltaRanges::default();
                for &r in &rule_ids {
                    for (_, dp) in &self.variants[r] {
                        for (i, lit) in dp.compiled.body.iter().enumerate() {
                            if !lit.positive || dp.compiled.source.body[i].is_builtin() {
                                continue;
                            }
                            let p = &lit.atom.pred;
                            let len = self.current_len(edb, p);
                            let c = consumed.get(p).copied().unwrap_or(len);
                            if len > c {
                                ranges.insert(p.clone(), (c, len));
                            }
                        }
                    }
                }
                if ranges.is_empty() {
                    break;
                }
                // Borrow dance: tasks borrow the variant plans while
                // fire_rule_batch mutates `derived`, so split the fields.
                let variants = &self.variants;
                let tasks: Vec<RuleTask<'_>> = rule_ids
                    .iter()
                    .flat_map(|&r| {
                        variants[r]
                            .iter()
                            .filter(|(i, dp)| ranges.contains_key(&dp.compiled.body[*i].atom.pred))
                            .map(|(i, dp)| RuleTask::delta(dp, *i))
                    })
                    .collect();
                for (p, &(_, hi)) in &ranges {
                    consumed.insert(p.clone(), hi);
                }
                if tasks.is_empty() {
                    continue;
                }
                added_total +=
                    fire_rule_batch(&pool, &gov, edb, &mut self.derived, Some(&ranges), &tasks)?;
            }
        }
        Ok(added_total)
    }

    /// Maintains the store after a *new* EDB tuple of `pred` was inserted
    /// (the tuple is the last id of its relation). Falls back to full
    /// recomputation — recording the reason — when the insertion is
    /// non-monotone through negation.
    pub fn after_insert(&mut self, edb: &Edb, idb: &Idb, pred: &str) -> Result<MaintainStats> {
        let mut stats = MaintainStats::default();
        if let Some(reason) = self.fallback_reason(edb, idb, pred) {
            self.recompute(edb, idb)?;
            stats.recompute_reasons.push(reason);
            return Ok(stats);
        }
        let len = edb.relation(pred).map_or(0, Relation::len);
        if len == 0 {
            return Ok(stats);
        }
        let mut seed = DeltaRanges::default();
        seed.insert(Sym::new(pred), (len - 1, len));
        stats.derived_added = self.propagate(edb, &seed)?;
        Ok(stats)
    }

    /// DRed phase A, run against the *pre-retraction* state: computes the
    /// overestimate of derived tuples whose derivations may all depend on
    /// the retracted `tuple` of `pred`. Read-only; call before removing
    /// the tuple from the EDB, and check
    /// [`MaintainedStore::retract_fallback_reason`] first — this method
    /// assumes the retraction is maintainable.
    pub fn prepare_retract(&self, edb: &Edb, pred: &str, tuple: &Tuple) -> Result<Retraction> {
        let opts = maintenance_opts();
        let gov = opts.governor();
        let mut overlay = DerivedFacts::new();
        let pred_sym = Sym::new(pred);
        overlay.insert(&pred_sym, tuple.clone())?;
        let mut consumed: FxHashMap<Sym, usize> = FxHashMap::default();
        // Global monotone fixpoint over all rules: ordering across strata
        // does not matter for an overestimate, only coverage does.
        loop {
            let mut ranges = DeltaRanges::default();
            for variants in &self.variants {
                for (i, dp) in variants {
                    let p = &dp.compiled.body[*i].atom.pred;
                    let len = overlay.relation(p.as_str()).map_or(0, Relation::len);
                    let c = consumed.get(p).copied().unwrap_or(0);
                    if len > c {
                        ranges.insert(p.clone(), (c, len));
                    }
                }
            }
            if ranges.is_empty() {
                break;
            }
            let mut buffers: Vec<(Sym, Vec<Tuple>)> = Vec::new();
            for (r, variants) in self.variants.iter().enumerate() {
                for (i, dp) in variants {
                    if !ranges.contains_key(&dp.compiled.body[*i].atom.pred) {
                        continue;
                    }
                    gov.tick()?;
                    let view = FactView::with_overlay(edb, &self.derived, &overlay, &ranges, *i);
                    let head = &dp.compiled.head;
                    let known = self.derived.relation(head.pred.as_str());
                    let doomed = overlay.relation(head.pred.as_str());
                    let mut frame = Frame::new(dp.compiled.num_slots());
                    let mut buf: Vec<Tuple> = Vec::new();
                    let mut err: Option<EngineError> = None;
                    let mut row: Vec<Value> = Vec::with_capacity(head.args.len());
                    exec(dp, 0, &view, &mut frame, &mut |frame| {
                        row.clear();
                        for t in &head.args {
                            match t.resolve(frame) {
                                Some(c) => row.push(c.clone()),
                                None => {
                                    if err.is_none() {
                                        err = Some(EngineError::UnsafeRule {
                                            rule: dp.rule_str.clone(),
                                            literal: head
                                                .reify(frame, &dp.compiled.slots)
                                                .to_string(),
                                        });
                                    }
                                    return Ok(());
                                }
                            }
                        }
                        // A deletion candidate must currently be derived and
                        // not already doomed.
                        if known.is_some_and(|rel| rel.contains_slice(&row))
                            && !doomed.is_some_and(|rel| rel.contains_slice(&row))
                        {
                            buf.push(Tuple::new(row.clone()));
                        }
                        Ok(())
                    })?;
                    if let Some(e) = err {
                        return Err(e);
                    }
                    if !buf.is_empty() {
                        buffers.push((self.plan.plans()[r].compiled.head.pred.clone(), buf));
                    }
                }
            }
            for (p, &(_, hi)) in &ranges {
                consumed.insert(p.clone(), hi);
            }
            for (p, buf) in buffers {
                overlay.insert_all(&p, buf)?;
            }
        }
        if overlay.len() <= 1 {
            return Ok(Retraction::Clean);
        }
        Ok(Retraction::Prepared(Doomed {
            overlay,
            pred: pred_sym,
        }))
    }

    /// Why retracting from `pred` cannot be maintained incrementally, if
    /// it cannot. Callers check this before [`MaintainedStore::prepare_retract`]
    /// and fall back to [`MaintainedStore::recompute`] on `Some`.
    pub fn retract_fallback_reason(&self, edb: &Edb, idb: &Idb, pred: &str) -> Option<String> {
        self.fallback_reason(edb, idb, pred)
    }

    /// DRed phases B and C, run after the EDB tuple has been removed:
    /// batch-delete the overestimate, then walk the strata in order
    /// re-inserting every deleted tuple with a surviving one-step
    /// derivation and propagating the reinsertions (which can only ever
    /// re-add deleted tuples — anything derivable from the shrunken state
    /// was derivable before).
    pub fn finish_retract(
        &mut self,
        edb: &Edb,
        idb: &Idb,
        doomed: Doomed,
    ) -> Result<MaintainStats> {
        let Doomed { overlay, pred } = doomed;
        let mut stats = MaintainStats::default();
        // Phase B: one batched removal per affected relation.
        for (p, rel) in overlay.iter() {
            if p == &pred && !idb.defines(p.as_str()) {
                continue; // the retracted EDB tuple itself is not derived state
            }
            stats.derived_deleted += self.derived.remove_all(p, rel.iter());
        }
        // Rules per head predicate, for the one-step checks. Owns its keys
        // so no borrow of the plan outlives the propagation below.
        let mut by_head: FxHashMap<Sym, Vec<usize>> = FxHashMap::default();
        for (r, rp) in self.plan.plans().iter().enumerate() {
            by_head
                .entry(rp.compiled.head.pred.clone())
                .or_default()
                .push(r);
        }
        // Phase C, stratum by stratum: lower-stratum support is settled
        // before a tuple's own rederivability is judged.
        for stratum in self.strat.strata().to_vec() {
            let mut reinserted = DeltaRanges::default();
            let mut pending: Vec<(Sym, Tuple)> = Vec::new();
            for p in &stratum {
                let Some(rel) = overlay.relation(p.as_str()) else {
                    continue;
                };
                for t in rel.iter() {
                    pending.push((p.clone(), t.clone()));
                }
            }
            for (p, tuple) in pending {
                if self
                    .derived
                    .relation(p.as_str())
                    .is_some_and(|r| r.contains(&tuple))
                {
                    continue; // already restored by an earlier propagation
                }
                let rules = by_head.get(&p).cloned().unwrap_or_default();
                let mut found = false;
                for r in rules {
                    let bp = &self.bound_plans[r];
                    let Some(mut frame) = bind_head(bp, &tuple) else {
                        continue;
                    };
                    let view = FactView::total(edb, &self.derived);
                    exec(bp, 0, &view, &mut frame, &mut |_| {
                        found = true;
                        Ok(())
                    })?;
                    if found {
                        break;
                    }
                }
                if found {
                    let before = self.derived.relation(p.as_str()).map_or(0, Relation::len);
                    if self.derived.insert(&p, tuple)? {
                        stats.rederived += 1;
                        let entry = reinserted.entry(p.clone()).or_insert((before, before));
                        entry.1 = before + 1;
                    }
                }
            }
            if !reinserted.is_empty() {
                // Propagation from reinserted tuples can only re-add
                // deleted facts (see module docs); count them as rederived.
                stats.rederived += self.propagate(edb, &reinserted)?;
            }
        }
        Ok(stats)
    }

    /// Applies a rule-set change whose new rule heads `head`: drop the
    /// extensions of `head` and everything depending on it, re-derive just
    /// those predicates with the surviving relations as seed, rebuild the
    /// maintenance plans, and bump the generation of each invalidated
    /// stratum. `plan` must be the compilation of the new `idb`.
    pub fn rules_changed(
        &mut self,
        edb: &Edb,
        idb: &Idb,
        plan: Arc<ProgramPlan>,
        head: &str,
    ) -> Result<MaintainStats> {
        let mut stats = MaintainStats::default();
        let strat = stratify(idb)?;
        let graph = DependencyGraph::build(idb);
        // Affected under the *new* dependency graph, so a rule that adds a
        // dependency invalidates through it.
        let mut affected: Vec<Sym> = Vec::new();
        for q in idb.predicates() {
            if q.as_str() == head || graph.depends_on(q.as_str(), head) {
                affected.push(q);
            }
        }
        for p in &affected {
            stats.derived_deleted += self.derived.remove_relation(p);
        }
        let seed = std::mem::take(&mut self.derived);
        self.derived = seminaive::eval_seeded(edb, idb, &plan, Some(&affected), seed, {
            maintenance_opts()
        })?;
        stats.derived_added = affected
            .iter()
            .map(|p| self.derived.relation(p.as_str()).map_or(0, Relation::len))
            .sum();
        let (variants, bound_plans) = compile_variants(&plan);
        // Carry generations by stratum index; new strata start at 0, and
        // every stratum containing an affected predicate is bumped.
        let mut gens = self.gens.clone();
        gens.resize(strat.len(), 0);
        let mut bumped = vec![false; strat.len()];
        for p in &affected {
            if let Some(s) = strat.stratum_of(p.as_str()) {
                if !bumped[s] {
                    bumped[s] = true;
                    gens[s] += 1;
                    stats.strata_invalidated += 1;
                }
            }
        }
        self.plan = plan;
        self.strat = strat;
        self.graph = graph;
        self.variants = variants;
        self.bound_plans = bound_plans;
        self.gens = gens;
        Ok(stats)
    }

    /// Throws the maintained state away and re-derives everything from the
    /// current EDB — the fallback when an update is non-monotone.
    pub fn recompute(&mut self, edb: &Edb, idb: &Idb) -> Result<()> {
        self.derived = seminaive::eval_compiled(edb, idb, &self.plan, None, maintenance_opts())?;
        Ok(())
    }
}

/// Binds a head-bound plan's frame from a concrete head tuple: constants
/// must match, repeated variables must agree. `None` means the tuple
/// cannot be this rule's head instance.
fn bind_head(plan: &RulePlan, tuple: &Tuple) -> Option<Frame> {
    let head = &plan.compiled.head;
    if head.args.len() != tuple.arity() {
        return None;
    }
    let mut frame = Frame::new(plan.compiled.num_slots());
    for (arg, val) in head.args.iter().zip(tuple.values()) {
        match arg {
            IrTerm::Const(c) => {
                if c != val {
                    return None;
                }
            }
            IrTerm::Slot(s) => match frame.get(*s) {
                Some(bound) => {
                    if bound != val {
                        return None;
                    }
                }
                None => frame.set(*s, val.clone()),
            },
        }
    }
    Some(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_program};

    fn atom_tuple(src: &str) -> (String, Tuple) {
        let a = parse_atom(src).unwrap();
        let vals: Vec<Value> = a
            .args
            .iter()
            .map(|t| t.as_const().cloned().unwrap())
            .collect();
        (a.pred.to_string(), Tuple::new(vals))
    }

    fn chain(n: usize) -> (Edb, Idb) {
        let mut edb = Edb::new();
        edb.declare("edge", &["A", "B"]).unwrap();
        for i in 0..n {
            edb.insert_fact(&parse_atom(&format!("edge(n{i}, n{})", i + 1)).unwrap())
                .unwrap();
        }
        let idb = Idb::from_rules(
            parse_program(
                "reach(X, Y) :- edge(X, Y).\n\
                 reach(X, Y) :- edge(X, Z), reach(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        (edb, idb)
    }

    fn store(edb: &Edb, idb: &Idb) -> MaintainedStore {
        let plan = Arc::new(ProgramPlan::compile_with_stats(idb, edb.stats()));
        MaintainedStore::build(edb, idb, plan).unwrap()
    }

    fn same_facts(a: &DerivedFacts, b: &DerivedFacts) -> bool {
        a.len() == b.len()
            && a.iter().all(|(p, rel)| {
                b.relation(p.as_str())
                    .is_some_and(|other| rel.iter().all(|t| other.contains(t)))
            })
    }

    fn assert_matches_fresh(store: &MaintainedStore, edb: &Edb, idb: &Idb) {
        let fresh = seminaive::eval(edb, idb).unwrap();
        assert!(
            same_facts(store.derived(), &fresh),
            "maintained {} facts, fresh {}",
            store.derived().len(),
            fresh.len()
        );
    }

    #[test]
    fn insert_propagates_incrementally() {
        let (mut edb, idb) = chain(6);
        let mut s = store(&edb, &idb);
        // Extend the chain: n6 -> n7.
        edb.insert_fact(&parse_atom("edge(n6, n7)").unwrap())
            .unwrap();
        let stats = s.after_insert(&edb, &idb, "edge").unwrap();
        // reach(n0..n6, n7): seven new pairs, one per source node.
        assert_eq!(stats.derived_added, 7);
        assert!(stats.recompute_reasons.is_empty());
        assert_matches_fresh(&s, &edb, &idb);
    }

    #[test]
    fn insert_bridging_two_chains_propagates_across() {
        let mut edb = Edb::new();
        edb.declare("edge", &["A", "B"]).unwrap();
        for f in ["edge(a, b)", "edge(c, d)"] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let idb = Idb::from_rules(
            parse_program(
                "reach(X, Y) :- edge(X, Y).\n\
                 reach(X, Y) :- edge(X, Z), reach(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let mut s = store(&edb, &idb);
        edb.insert_fact(&parse_atom("edge(b, c)").unwrap()).unwrap();
        let stats = s.after_insert(&edb, &idb, "edge").unwrap();
        // New: reach(b,c), reach(b,d), reach(a,c), reach(a,d).
        assert_eq!(stats.derived_added, 4);
        assert_matches_fresh(&s, &edb, &idb);
    }

    #[test]
    fn retract_tail_edge_deletes_and_rederives() {
        let (mut edb, idb) = chain(6);
        let mut s = store(&edb, &idb);
        let (pred, tuple) = atom_tuple("edge(n5, n6)");
        assert!(s.retract_fallback_reason(&edb, &idb, &pred).is_none());
        let prep = s.prepare_retract(&edb, &pred, &tuple).unwrap();
        edb.remove_fact(&parse_atom("edge(n5, n6)").unwrap())
            .unwrap();
        match prep {
            Retraction::Prepared(doomed) => {
                let stats = s.finish_retract(&edb, &idb, doomed).unwrap();
                // Every reach(_, n6) dies, nothing rederives.
                assert_eq!(stats.derived_deleted, 6);
                assert_eq!(stats.rederived, 0);
            }
            other => panic!("expected Prepared, got {other:?}"),
        }
        assert_matches_fresh(&s, &edb, &idb);
    }

    #[test]
    fn retract_with_alternative_path_rederives() {
        // Diamond: a->b->d and a->c->d; retracting a->b keeps reach(a, d).
        let mut edb = Edb::new();
        edb.declare("edge", &["A", "B"]).unwrap();
        for f in ["edge(a, b)", "edge(b, d)", "edge(a, c)", "edge(c, d)"] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let idb = Idb::from_rules(
            parse_program(
                "reach(X, Y) :- edge(X, Y).\n\
                 reach(X, Y) :- edge(X, Z), reach(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let mut s = store(&edb, &idb);
        let (pred, tuple) = atom_tuple("edge(a, b)");
        let prep = s.prepare_retract(&edb, &pred, &tuple).unwrap();
        edb.remove_fact(&parse_atom("edge(a, b)").unwrap()).unwrap();
        let Retraction::Prepared(doomed) = prep else {
            panic!("expected Prepared");
        };
        let stats = s.finish_retract(&edb, &idb, doomed).unwrap();
        // reach(a, b) dies for good; reach(a, d) was doomed but rederives
        // through c.
        assert!(stats.derived_deleted >= 2);
        assert!(stats.rederived >= 1);
        assert_matches_fresh(&s, &edb, &idb);
    }

    #[test]
    fn retract_unreferenced_predicate_is_clean() {
        let mut edb = Edb::new();
        edb.declare("edge", &["A", "B"]).unwrap();
        edb.declare("color", &["N", "C"]).unwrap();
        edb.insert_fact(&parse_atom("edge(a, b)").unwrap()).unwrap();
        edb.insert_fact(&parse_atom("color(a, red)").unwrap())
            .unwrap();
        let idb =
            Idb::from_rules(parse_program("reach(X, Y) :- edge(X, Y).").unwrap().rules).unwrap();
        let s = store(&edb, &idb);
        let (pred, tuple) = atom_tuple("color(a, red)");
        assert!(matches!(
            s.prepare_retract(&edb, &pred, &tuple).unwrap(),
            Retraction::Clean
        ));
    }

    #[test]
    fn negation_over_affected_predicate_forces_recompute() {
        let mut edb = Edb::new();
        edb.declare("student", &["S", "G"]).unwrap();
        for f in ["student(ann, 3.9)", "student(bob, 3.5)"] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let idb = Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, G), G > 3.7.\n\
                 ordinary(X) :- student(X, G), not honor(X).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let mut s = store(&edb, &idb);
        edb.insert_fact(&parse_atom("student(cara, 3.8)").unwrap())
            .unwrap();
        let stats = s.after_insert(&edb, &idb, "student").unwrap();
        assert_eq!(stats.recomputes(), 1);
        assert_matches_fresh(&s, &edb, &idb);
        // Retraction reports the same fallback.
        assert!(s.retract_fallback_reason(&edb, &idb, "student").is_some());
    }

    #[test]
    fn negation_over_unaffected_predicate_stays_incremental() {
        // blocked is EDB-only and independent of edge; negating it is fine.
        let mut edb = Edb::new();
        edb.declare("edge", &["A", "B"]).unwrap();
        edb.declare("blocked", &["N"]).unwrap();
        for f in ["edge(a, b)", "edge(b, c)", "blocked(x)"] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let idb = Idb::from_rules(
            parse_program(
                "open(X, Y) :- edge(X, Y), not blocked(X).\n\
                 reach(X, Y) :- open(X, Y).\n\
                 reach(X, Y) :- open(X, Z), reach(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let mut s = store(&edb, &idb);
        edb.insert_fact(&parse_atom("edge(c, d)").unwrap()).unwrap();
        let stats = s.after_insert(&edb, &idb, "edge").unwrap();
        assert!(stats.recompute_reasons.is_empty());
        assert_matches_fresh(&s, &edb, &idb);
    }

    #[test]
    fn rules_changed_rebuilds_only_affected_predicates() {
        let (edb, idb) = chain(4);
        let mut s = store(&edb, &idb);
        // Add an independent predicate's rule; reach's stratum survives.
        let mut idb2 = idb.clone();
        idb2.add_rule(qdk_logic::parser::parse_rule("loop(X) :- edge(X, X).").unwrap())
            .unwrap();
        let plan2 = Arc::new(ProgramPlan::compile_with_stats(&idb2, edb.stats()));
        let before_reach = s.derived().relation("reach").unwrap().len();
        let stats = s.rules_changed(&edb, &idb2, plan2, "loop").unwrap();
        assert_eq!(stats.derived_deleted, 0); // loop had no extension yet
        assert_eq!(s.derived().relation("reach").unwrap().len(), before_reach);
        assert_matches_fresh(&s, &edb, &idb2);
        // A rule on reach invalidates reach but leaves loop's work alone.
        let mut idb3 = idb2.clone();
        idb3.add_rule(qdk_logic::parser::parse_rule("reach(X, X) :- edge(X, Y).").unwrap())
            .unwrap();
        let plan3 = Arc::new(ProgramPlan::compile_with_stats(&idb3, edb.stats()));
        let stats = s.rules_changed(&edb, &idb3, plan3, "reach").unwrap();
        assert!(stats.derived_deleted >= before_reach);
        assert!(stats.strata_invalidated >= 1);
        assert_matches_fresh(&s, &edb, &idb3);
    }

    #[test]
    fn generations_bump_only_affected_strata() {
        let mut edb = Edb::new();
        edb.declare("e", &["A"]).unwrap();
        edb.insert_fact(&parse_atom("e(x)").unwrap()).unwrap();
        let idb = Idb::from_rules(
            parse_program(
                "a(X) :- e(X).\n\
                 b(X) :- e(X), not a(X).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let mut s = store(&edb, &idb);
        assert_eq!(s.stratum_generations(), &[0, 0]);
        let g_a = s.generation_of("a").unwrap();
        // A new rule on b touches only b's stratum.
        let mut idb2 = idb.clone();
        idb2.add_rule(qdk_logic::parser::parse_rule("b(X) :- e(X), e(X).").unwrap())
            .unwrap();
        let plan2 = Arc::new(ProgramPlan::compile_with_stats(&idb2, edb.stats()));
        s.rules_changed(&edb, &idb2, plan2, "b").unwrap();
        assert_eq!(s.generation_of("a").unwrap(), g_a);
        assert_eq!(s.generation_of("b").unwrap(), 1);
    }

    #[test]
    fn churn_sequence_matches_fresh_recompute() {
        let (mut edb, idb) = chain(10);
        let mut s = store(&edb, &idb);
        for i in 0..10 {
            let f = format!("edge(n{i}, n{})", i + 1);
            let (pred, tuple) = atom_tuple(&f);
            let prep = s.prepare_retract(&edb, &pred, &tuple).unwrap();
            edb.remove_fact(&parse_atom(&f).unwrap()).unwrap();
            if let Retraction::Prepared(doomed) = prep {
                s.finish_retract(&edb, &idb, doomed).unwrap();
            }
            assert_matches_fresh(&s, &edb, &idb);
            edb.insert_fact(&parse_atom(&f).unwrap()).unwrap();
            s.after_insert(&edb, &idb, "edge").unwrap();
            assert_matches_fresh(&s, &edb, &idb);
        }
    }
}
