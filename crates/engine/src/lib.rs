//! Deductive *retrieve* engine for the *Querying Database Knowledge*
//! reproduction.
//!
//! The paper's `retrieve` statement (§3.1) is the standard data-query
//! mechanism of knowledge-rich database systems: it applies the IDB rules
//! to the EDB facts and returns data. This crate implements that substrate:
//!
//! * [`Idb`] — the intensional database: rules grouped by head predicate;
//! * [`graph::DependencyGraph`] — predicate dependencies, Tarjan SCCs,
//!   recursion detection (§2.1's *dependent* / *mutually dependent*);
//! * [`analysis`] — per-rule linearity / strong linearity / typedness
//!   checks and whole-IDB validation of the paper's assumptions;
//! * [`stratify`] — stratification for the (extension) negation support;
//! * [`plan`] — compile-once rule planning: every rule's body schedule
//!   (literal order, index probes, slot read/write sets) is computed one
//!   time per program instead of once per recursion step, and executed
//!   over flat positional frames;
//! * evaluation strategies: [`naive`] and [`seminaive`] bottom-up, and
//!   [`topdown`] goal-directed evaluation (relevance-restricted, per-SCC
//!   fixpoints) — all four run the compiled plans;
//! * [`query`] — the `retrieve p where ψ` statement itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stderr, clippy::print_stdout)]

pub mod adorn;
pub mod analysis;
mod bindings;
mod error;
pub mod graph;
mod idb;
pub mod magic;
pub mod maintain;
pub mod naive;
pub mod plan;
pub mod qsq;
pub mod query;
pub mod seminaive;
pub mod stratify;
pub mod topdown;

pub use bindings::{DerivedFacts, FactView};
pub use error::{EngineError, Result};
pub use idb::Idb;
pub use maintain::{MaintainStats, MaintainedStore, Retraction};
pub use naive::EvalOptions;
pub use plan::{ProgramPlan, RulePlan};
pub use qdk_logic::governor::{CancelToken, Exhausted, Governor, Resource, ResourceLimits};
pub use query::{
    retrieve, retrieve_compiled, retrieve_precomputed, retrieve_with, DataAnswer, Downgrade, Mode,
    Retrieve, Strategy,
};
