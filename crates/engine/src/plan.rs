//! Compile-once rule planning.
//!
//! The original evaluator re-ran its literal scheduler on every recursion
//! step of every rule firing: pick the next evaluable literal (equality
//! with a ground side, other comparison once both sides are ground,
//! negation once ground, otherwise the positive database literal with the
//! fewest unbound arguments), evaluate it, recurse. Because groundness of
//! a variable evolves identically on every branch of the enumeration — a
//! positive database literal grounds *all* of its variables, an equality
//! grounds both sides, and comparisons/negations ground nothing — the
//! scheduler's choices are branch-invariant. That means the whole dynamic
//! schedule can be replayed **once, at compile time**, yielding a linear
//! [`Step`] sequence the executor walks with no per-branch decisions.
//!
//! [`RulePlan`] is that sequence for one rule (plus the rule's
//! [`CompiledRule`] slot mapping); [`ProgramPlan`] compiles an entire
//! [`Idb`] against one [`Interner`], and is what `KnowledgeBase` caches.
//!
//! Planning never fails: a rule whose remaining literals can never become
//! evaluable compiles to a plan ending in [`Step::Unsafe`], which raises
//! the same `EngineError::UnsafeRule` the dynamic scheduler raised — and
//! only when execution actually reaches that point, preserving the
//! data-dependent nature of the original diagnostic.

use crate::adorn::Adornment;
use crate::idb::Idb;
use qdk_logic::{CompiledRule, FxHashMap, Interner, IrTerm, Rule, Sym, SymId};
use qdk_storage::{CatalogStats, Value};
use std::sync::{Arc, RwLock};

/// Fallback cardinality floor for predicates the stats snapshot doesn't
/// cover (derived predicates, whose extension is unknown before the
/// fixpoint runs). Kept modest so a bound magic-guard literal still
/// schedules ahead of an unbound stored scan.
const DEFAULT_CARD_FLOOR: usize = 16;

/// Estimated rows a scan of `pred` produces with `bound` columns already
/// fixed: the stored cardinality (or, for derived predicates, the total
/// stored-fact count floored at [`DEFAULT_CARD_FLOOR`]) quartered per
/// bound column, floored at 1. Deliberately coarse — the model only has
/// to *order* literals, and a wrong guess still executes correctly
/// through the same probes.
fn est_rows(stats: &CatalogStats, pred: &Sym, bound: usize) -> usize {
    let card = stats
        .cardinality(pred.as_str())
        .unwrap_or_else(|| stats.total_facts().max(DEFAULT_CARD_FLOOR));
    let shift = (2 * bound).min(usize::BITS as usize - 1);
    (card >> shift).max(1)
}

/// One column of a [`Step::Scan`]: what the executor must match this
/// tuple position against.
#[derive(Clone, Debug)]
pub enum Col {
    /// An inline constant: the tuple value must equal it.
    Const(Value),
    /// A slot; `probe` records whether the planner proved the slot bound
    /// before this scan (so it can drive an index probe).
    Slot {
        /// The frame slot for this column's variable.
        slot: u32,
        /// True if the slot is bound when the scan starts.
        probe: bool,
    },
}

/// One step of a compiled rule body, in execution order.
#[derive(Clone, Debug)]
pub enum Step {
    /// Enumerate matching tuples of a stored or derived relation,
    /// binding unbound slot columns.
    Scan {
        /// Position of this literal in the rule body (drives the
        /// semi-naive delta-occurrence rewrite).
        occurrence: usize,
        /// The predicate symbol, for relation lookup and diagnostics.
        pred: Sym,
        /// The predicate's dense id in the owning program's interner.
        pred_id: SymId,
        /// Per-column match obligations.
        cols: Vec<Col>,
        /// Predicted result rows from the cost model, when the plan was
        /// compiled against a stats snapshot (`None` for stats-less
        /// plans, which keep the legacy fewest-unbound ordering).
        est: Option<usize>,
    },
    /// Evaluate a ground comparison (`=` with both sides bound, or any
    /// other built-in); continue only if its truth matches `positive`.
    Compare {
        /// Polarity of the literal.
        positive: bool,
        /// The comparison operator (`=`, `!=`, `<`, `<=`, `>`, `>=`).
        op: Sym,
        /// Left operand.
        lhs: IrTerm,
        /// Right operand.
        rhs: IrTerm,
        /// The raw source literal, for diagnostics.
        literal: String,
    },
    /// A positive `=` with exactly one side bound at plan time: bind the
    /// unbound side's slot to the other side's value.
    EqBind {
        /// Left operand.
        lhs: IrTerm,
        /// Right operand.
        rhs: IrTerm,
        /// The raw source literal, for diagnostics.
        literal: String,
    },
    /// A ground negated database literal: continue only if the fully
    /// resolved atom is absent from the view (closed-world).
    NegCheck {
        /// The negated predicate.
        pred: Sym,
        /// The argument terms (all bound when this step runs).
        args: Vec<IrTerm>,
        /// The raw source literal, for diagnostics.
        literal: String,
    },
    /// Terminator for an unschedulable tail: reaching this step raises
    /// `EngineError::UnsafeRule` with the first stuck literal.
    Unsafe {
        /// The raw source literal that could never be scheduled.
        literal: String,
    },
}

/// A rule compiled to a slot mapping plus a linear step schedule.
#[derive(Clone, Debug)]
pub struct RulePlan {
    /// The slot-mapped rule.
    pub compiled: CompiledRule,
    /// The body schedule, in execution order.
    pub steps: Vec<Step>,
    /// The rendered source rule, carried for `UnsafeRule` diagnostics.
    pub rule_str: String,
}

impl RulePlan {
    /// Compiles `rule` with all slots initially unbound.
    pub fn new(rule: &Rule, interner: &mut Interner) -> Self {
        RulePlan::new_with_stats(rule, interner, None)
    }

    /// Like [`RulePlan::new`], but literal order follows the cost model
    /// when a stats snapshot is supplied.
    pub fn new_with_stats(
        rule: &Rule,
        interner: &mut Interner,
        stats: Option<&CatalogStats>,
    ) -> Self {
        let compiled = CompiledRule::compile(rule, interner);
        let steps = compile_steps_opt(&compiled, vec![false; compiled.num_slots()], stats, None);
        RulePlan {
            steps,
            rule_str: rule.to_string(),
            compiled,
        }
    }

    /// Compiles a query conjunction as the body of a headless dummy rule.
    ///
    /// The plan's slots are the distinct goal variables in order of first
    /// occurrence; `rule_str` is the text used in `UnsafeRule` reports
    /// (the retrieval layer and the top-down solver render the stuck
    /// query differently, so the caller supplies it).
    pub(crate) fn for_query(
        goals: &[qdk_logic::Literal],
        rule_str: String,
        interner: &mut Interner,
        stats: Option<&CatalogStats>,
    ) -> Self {
        let dummy = Rule::with_literals(qdk_logic::Atom::new("_goal", Vec::new()), goals.to_vec());
        let compiled = CompiledRule::compile(&dummy, interner);
        let steps = compile_steps_opt(&compiled, vec![false; compiled.num_slots()], stats, None);
        RulePlan {
            steps,
            rule_str,
            compiled,
        }
    }

    /// Re-plans an already compiled rule under an adornment: `bound[s]`
    /// marks slot `s` as pre-bound (the top-down solver binds head slots
    /// from the call before executing the body).
    pub(crate) fn with_bound(
        compiled: CompiledRule,
        rule_str: String,
        bound: Vec<bool>,
        stats: Option<&CatalogStats>,
    ) -> Self {
        let steps = compile_steps_opt(&compiled, bound, stats, None);
        RulePlan {
            steps,
            rule_str,
            compiled,
        }
    }

    /// Re-plans this rule so body occurrence `occurrence` (a positive
    /// database literal) is scanned first — the semi-naive delta rewrite's
    /// ideal shape: the delta is the smallest input by construction, so
    /// making it the outermost scan bounds every firing by the delta size
    /// *and* makes the plan eligible for order-preserving chunked
    /// parallelism (the windowed occurrence must be the outermost scan).
    pub(crate) fn delta_variant(
        &self,
        occurrence: usize,
        stats: Option<&CatalogStats>,
    ) -> RulePlan {
        let bound = vec![false; self.compiled.num_slots()];
        let steps = compile_steps_opt(&self.compiled, bound, stats, Some(occurrence));
        RulePlan {
            steps,
            rule_str: self.rule_str.clone(),
            compiled: self.compiled.clone(),
        }
    }

    /// Renders the plan as a human-readable EXPLAIN: one header line with
    /// the source rule, then one numbered line per step showing the chosen
    /// literal order, the access path (`probe on` the bound columns the
    /// executor can drive an index with — the most selective is chosen at
    /// run time — or `full scan`), and the step's slot read/write sets.
    ///
    /// The grammar is pinned by a golden test and documented in DESIGN.md
    /// §12.
    pub fn explain(&self) -> String {
        let name = |s: u32| {
            self.compiled
                .slots
                .get(s as usize)
                .map_or_else(|| format!("_{s}"), ToString::to_string)
        };
        let term = |t: &IrTerm| match t {
            IrTerm::Const(c) => c.to_string(),
            IrTerm::Slot(s) => name(*s),
        };
        let term_slots = |t: &IrTerm, out: &mut Vec<String>| {
            if let IrTerm::Slot(s) = t {
                let n = name(*s);
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        };
        let sets = |reads: &[String], writes: &[String]| -> String {
            let mut parts = Vec::new();
            if !reads.is_empty() {
                parts.push(format!("reads {}", reads.join(", ")));
            }
            if !writes.is_empty() {
                parts.push(format!("writes {}", writes.join(", ")));
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("  ({})", parts.join("; "))
            }
        };
        let mut out = format!("plan {}\n", self.rule_str);
        // Slots known bound so far, for attributing EqBind's write side.
        let mut bound = vec![false; self.compiled.num_slots()];
        for (n, step) in self.steps.iter().enumerate() {
            let line = match step {
                Step::Scan {
                    pred, cols, est, ..
                } => {
                    let args: Vec<String> = cols
                        .iter()
                        .map(|c| match c {
                            Col::Const(v) => v.to_string(),
                            Col::Slot { slot, .. } => name(*slot),
                        })
                        .collect();
                    let mut probes = Vec::new();
                    let mut reads = Vec::new();
                    let mut writes: Vec<String> = Vec::new();
                    for c in cols {
                        match c {
                            Col::Const(v) => probes.push(v.to_string()),
                            Col::Slot { slot, probe: true } => {
                                let v = name(*slot);
                                probes.push(v.clone());
                                if !reads.contains(&v) {
                                    reads.push(v);
                                }
                                bound[*slot as usize] = true;
                            }
                            Col::Slot { slot, probe: false } => {
                                let v = name(*slot);
                                if !writes.contains(&v) {
                                    writes.push(v);
                                }
                                bound[*slot as usize] = true;
                            }
                        }
                    }
                    let mut access = if probes.is_empty() {
                        "full scan".to_string()
                    } else if probes.len() >= 2 {
                        // Two or more bound columns execute through one
                        // composite-index lookup instead of a single-column
                        // probe plus residual filter.
                        format!("composite probe on {}", probes.join(", "))
                    } else {
                        format!("probe on {}", probes.join(", "))
                    };
                    if let Some(est) = est {
                        access.push_str(&format!(" [est {est} rows]"));
                    }
                    format!(
                        "scan {pred}({})  {access}{}",
                        args.join(", "),
                        sets(&reads, &writes)
                    )
                }
                Step::EqBind { lhs, rhs, .. } => {
                    // Exactly one side was unbound at plan time: that side
                    // is the write, the other the read.
                    let lhs_unbound = matches!(lhs, IrTerm::Slot(s) if !bound[*s as usize]);
                    let (dst, src) = if lhs_unbound { (lhs, rhs) } else { (rhs, lhs) };
                    if let IrTerm::Slot(s) = dst {
                        bound[*s as usize] = true;
                    }
                    let mut reads = Vec::new();
                    term_slots(src, &mut reads);
                    format!(
                        "bind {} := {}{}",
                        term(dst),
                        term(src),
                        sets(&reads, &[term(dst)])
                    )
                }
                Step::Compare {
                    literal, lhs, rhs, ..
                } => {
                    let mut reads = Vec::new();
                    term_slots(lhs, &mut reads);
                    term_slots(rhs, &mut reads);
                    format!("check {literal}{}", sets(&reads, &[]))
                }
                Step::NegCheck { literal, args, .. } => {
                    let mut reads = Vec::new();
                    for a in args {
                        term_slots(a, &mut reads);
                    }
                    format!("check {literal}{}", sets(&reads, &[]))
                }
                Step::Unsafe { literal } => {
                    format!("unsafe {literal}  (never schedulable)")
                }
            };
            out.push_str(&format!("  {}. {line}\n", n + 1));
        }
        out
    }
}

/// A whole IDB compiled against one interner: one [`RulePlan`] per rule,
/// parallel to `Idb::rules()` order.
#[derive(Clone, Debug, Default)]
pub struct ProgramPlan {
    interner: Interner,
    plans: Vec<RulePlan>,
    stats: Option<CatalogStats>,
    /// QSQ net fragments, built on first demand per (predicate,
    /// adornment) and shared by every clone of this plan. The
    /// knowledge-base layer rebuilds the `ProgramPlan` whenever rules
    /// change (the plan cache is generation-keyed), so fragments here
    /// can never outlive the program they were compiled from — fact
    /// churn retains them, rule changes drop them with the plan.
    qsq: Arc<RwLock<QsqCache>>,
}

/// Net fragments keyed by (predicate, adornment); see [`crate::qsq`].
pub(crate) type QsqCache = FxHashMap<(Sym, Adornment), Arc<crate::qsq::Fragment>>;

impl ProgramPlan {
    /// Compiles every rule of `idb` with the legacy fewest-unbound
    /// literal ordering (no stats). This is the path describe's
    /// `TransformedIdb` and other EDB-less callers use; its output is
    /// byte-stable regardless of stored data.
    pub fn compile(idb: &Idb) -> Self {
        ProgramPlan::compile_opt(idb, None)
    }

    /// Compiles every rule of `idb` with literal order chosen by the cost
    /// model over a cardinality snapshot. The snapshot is retained so
    /// adorned re-plans (top-down call plans) and per-stratum delta
    /// variants inherit the same estimates.
    pub fn compile_with_stats(idb: &Idb, stats: CatalogStats) -> Self {
        ProgramPlan::compile_opt(idb, Some(stats))
    }

    fn compile_opt(idb: &Idb, stats: Option<CatalogStats>) -> Self {
        let mut interner = Interner::new();
        let plans = idb
            .rules()
            .iter()
            .map(|r| RulePlan::new_with_stats(r, &mut interner, stats.as_ref()))
            .collect();
        ProgramPlan {
            interner,
            plans,
            stats,
            qsq: Arc::default(),
        }
    }

    /// The QSQ net-fragment cache (see [`crate::qsq`]).
    pub(crate) fn qsq_cache(&self) -> &RwLock<QsqCache> {
        &self.qsq
    }

    /// The cardinality snapshot this program was planned against, if any.
    pub fn stats(&self) -> Option<&CatalogStats> {
        self.stats.as_ref()
    }

    /// The rule plans, in `Idb::rules()` order.
    pub fn plans(&self) -> &[RulePlan] {
        &self.plans
    }

    /// The program's interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The composite-index column sets this program's scans can probe:
    /// for every [`Step::Scan`], the (ascending, distinct) positions bound
    /// at scan time — constants plus slots the planner proved bound —
    /// kept when at least two positions qualify (single-bound scans use
    /// the per-column index). Deduplicated across rules.
    ///
    /// The epoch writer prebuilds these on the EDB at publish, so
    /// snapshot readers hit promoted (lock-free) composite indexes from
    /// their first query instead of demand-building under a lock.
    pub fn composite_requests(&self) -> Vec<(Sym, Vec<usize>)> {
        let mut out: Vec<(Sym, Vec<usize>)> = Vec::new();
        for plan in &self.plans {
            for step in &plan.steps {
                let Step::Scan { pred, cols, .. } = step else {
                    continue;
                };
                let bound: Vec<usize> = cols
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| matches!(c, Col::Const(_) | Col::Slot { probe: true, .. }))
                    .map(|(i, _)| i)
                    .collect();
                if bound.len() >= 2 && !out.iter().any(|(p, b)| p == pred && b == &bound) {
                    out.push((pred.clone(), bound));
                }
            }
        }
        out
    }

    /// Renders every rule's [`RulePlan::explain`] in `Idb::rules()` order,
    /// separated by blank lines — the whole program's EXPLAIN.
    pub fn explain(&self) -> String {
        self.plans
            .iter()
            .map(RulePlan::explain)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Replays the dynamic scheduler once over the body, starting from the
/// given slot-boundness vector, and emits the resulting linear schedule.
///
/// The choice logic mirrors the recursive evaluator exactly: scan the
/// body in source order; the first evaluable built-in (a positive `=`
/// needs one ground side, everything else both) or ground negation wins
/// immediately; otherwise the positive database literal with the fewest
/// unbound arguments (first wins ties, counting repeated unbound
/// variables once per occurrence). If literals remain but none can ever
/// be scheduled, the plan ends in [`Step::Unsafe`] naming the first
/// pending literal.
///
/// Two refinements over the plain replay:
///
/// * With `stats`, positive database literals are ordered by
///   [`est_rows`] (smallest predicted output first, source order on
///   ties) instead of fewest unbound arguments — the selectivity-ordered
///   join schedule. Built-ins and ground negations still run as early as
///   they become evaluable; they only filter.
/// * With `first`, the positive literal at that body position is scanned
///   before anything else (the semi-naive delta occurrence: its
///   extension is last round's delta, the smallest input there is).
pub(crate) fn compile_steps_opt(
    compiled: &CompiledRule,
    mut bound: Vec<bool>,
    stats: Option<&CatalogStats>,
    first: Option<usize>,
) -> Vec<Step> {
    let body = &compiled.body;
    let src = &compiled.source.body;
    let mut done = vec![false; body.len()];
    let mut steps = Vec::new();
    fn ground(t: &IrTerm, bound: &[bool]) -> bool {
        match t {
            IrTerm::Const(_) => true,
            IrTerm::Slot(s) => bound.get(*s as usize).copied().unwrap_or(false),
        }
    }
    loop {
        let mut choice: Option<usize> = None;
        let mut best_unbound = usize::MAX;
        let mut best_cost = usize::MAX;
        if let Some(f) = first {
            if !done[f] && body.get(f).is_some_and(|l| l.positive) && !src[f].is_builtin() {
                choice = Some(f);
            }
        }
        if choice.is_none() {
            for (i, lit) in body.iter().enumerate() {
                if done[i] {
                    continue;
                }
                if src[i].is_builtin() {
                    if lit.atom.args.len() != 2 {
                        continue; // malformed built-in: never evaluable
                    }
                    let lg = ground(&lit.atom.args[0], &bound);
                    let rg = ground(&lit.atom.args[1], &bound);
                    let evaluable = if lit.positive && lit.atom.pred.as_str() == "=" {
                        lg || rg
                    } else {
                        lg && rg
                    };
                    if evaluable {
                        choice = Some(i);
                        break; // comparisons are cheap: do them first
                    }
                } else if lit.positive {
                    match stats {
                        Some(stats) => {
                            let bound_cols =
                                lit.atom.args.iter().filter(|t| ground(t, &bound)).count();
                            let cost = est_rows(stats, &lit.atom.pred, bound_cols);
                            if choice.is_none() || cost < best_cost {
                                choice = Some(i);
                                best_cost = cost;
                            }
                        }
                        None => {
                            let unbound =
                                lit.atom.args.iter().filter(|t| !ground(t, &bound)).count();
                            if choice.is_none() || unbound < best_unbound {
                                choice = Some(i);
                                best_unbound = unbound;
                            }
                        }
                    }
                } else if lit.atom.args.iter().all(|t| ground(t, &bound)) {
                    choice = Some(i);
                    break;
                }
            }
        }
        let Some(i) = choice else {
            if let Some(stuck) = (0..body.len()).find(|&i| !done[i]) {
                steps.push(Step::Unsafe {
                    literal: src[stuck].to_string(),
                });
            }
            break;
        };
        done[i] = true;
        let lit = &body[i];
        if src[i].is_builtin() {
            let lhs = lit.atom.args[0].clone();
            let rhs = lit.atom.args[1].clone();
            let literal = src[i].to_string();
            let lg = ground(&lhs, &bound);
            let rg = ground(&rhs, &bound);
            if lit.positive && lit.atom.pred.as_str() == "=" && !(lg && rg) {
                // Exactly one side bound: the equality acts as a binder.
                if !lg {
                    if let IrTerm::Slot(s) = &lhs {
                        bound[*s as usize] = true;
                    }
                }
                if !rg {
                    if let IrTerm::Slot(s) = &rhs {
                        bound[*s as usize] = true;
                    }
                }
                steps.push(Step::EqBind { lhs, rhs, literal });
            } else {
                steps.push(Step::Compare {
                    positive: lit.positive,
                    op: lit.atom.pred.clone(),
                    lhs,
                    rhs,
                    literal,
                });
            }
        } else if lit.positive {
            let cols: Vec<Col> = lit
                .atom
                .args
                .iter()
                .map(|t| match t {
                    IrTerm::Const(c) => Col::Const(c.clone()),
                    IrTerm::Slot(s) => Col::Slot {
                        slot: *s,
                        probe: bound[*s as usize],
                    },
                })
                .collect();
            let est = stats.map(|stats| {
                let bound_cols = cols
                    .iter()
                    .filter(|c| matches!(c, Col::Const(_) | Col::Slot { probe: true, .. }))
                    .count();
                est_rows(stats, &lit.atom.pred, bound_cols)
            });
            steps.push(Step::Scan {
                occurrence: i,
                pred: lit.atom.pred.clone(),
                pred_id: lit.atom.pred_id,
                cols,
                est,
            });
            for t in &lit.atom.args {
                if let IrTerm::Slot(s) = t {
                    bound[*s as usize] = true;
                }
            }
        } else {
            steps.push(Step::NegCheck {
                pred: lit.atom.pred.clone(),
                args: lit.atom.args.clone(),
                literal: src[i].to_string(),
            });
        }
        if done.iter().all(|d| *d) {
            break;
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_rule;

    fn plan(src: &str) -> RulePlan {
        let mut i = Interner::new();
        RulePlan::new(&parse_rule(src).unwrap(), &mut i)
    }

    #[test]
    fn comparison_scheduled_after_binding_scan() {
        // Comparison first in source order, but the plan defers it until
        // the scan of `student` has bound G.
        let p = plan("ans(X) :- G > 3.7, student(X, math, G).");
        assert!(matches!(p.steps[0], Step::Scan { occurrence: 1, .. }));
        assert!(matches!(p.steps[1], Step::Compare { .. }));
    }

    #[test]
    fn equality_with_one_bound_side_compiles_to_eqbind() {
        let p = plan("ans(X, C) :- C = databases, enroll(X, C).");
        assert!(matches!(p.steps[0], Step::EqBind { .. }));
        // After the bind, C is bound, so the enroll scan probes column 1.
        match &p.steps[1] {
            Step::Scan { cols, .. } => {
                assert!(matches!(cols[0], Col::Slot { probe: false, .. }));
                assert!(matches!(cols[1], Col::Slot { probe: true, .. }));
            }
            s => panic!("expected scan, got {s:?}"),
        }
    }

    #[test]
    fn unschedulable_tail_ends_in_unsafe() {
        let p = plan("ans(X) :- student(X, Y, Z), W > 3.7.");
        assert!(matches!(p.steps[0], Step::Scan { .. }));
        match &p.steps[1] {
            Step::Unsafe { literal } => assert_eq!(literal, "(W > 3.7)"),
            s => panic!("expected unsafe terminator, got {s:?}"),
        }
    }

    #[test]
    fn negation_waits_for_groundness() {
        let p = plan("ans(X) :- not enroll(X, databases), student(X, Y, Z).");
        assert!(matches!(p.steps[0], Step::Scan { occurrence: 1, .. }));
        assert!(matches!(p.steps[1], Step::NegCheck { .. }));
    }

    #[test]
    fn scan_order_prefers_most_bound() {
        // enroll(X, databases) has one unbound argument against student's
        // three, so the planner scans it first despite source order; the
        // student scan then probes on the X it bound.
        let p = plan("ans(X) :- student(X, M, G), enroll(X, databases).");
        assert!(matches!(p.steps[0], Step::Scan { occurrence: 1, .. }));
        match &p.steps[1] {
            Step::Scan {
                occurrence, cols, ..
            } => {
                assert_eq!(*occurrence, 0);
                assert!(matches!(cols[0], Col::Slot { probe: true, .. }));
            }
            s => panic!("expected scan, got {s:?}"),
        }
    }

    #[test]
    fn program_plan_parallels_idb_rules() {
        let idb = Idb::from_rules([
            parse_rule("honor(X) :- student(X, Y, Z), Z > 3.7.").unwrap(),
            parse_rule("prior(X, Y) :- prereq(X, Y).").unwrap(),
        ])
        .unwrap();
        let pp = ProgramPlan::compile(&idb);
        assert_eq!(pp.plans().len(), 2);
        assert_eq!(pp.plans()[1].compiled.head.pred.as_str(), "prior");
        assert!(pp.interner().lookup("student").is_some());
    }

    #[test]
    fn explain_is_pinned() {
        // Golden rendering of the EXPLAIN grammar: literal order, access
        // path, read/write sets. Update DESIGN.md §12 if this changes.
        let p = plan("ans(X, C) :- C = databases, enroll(X, C), G > 3.7, student(X, M, G).");
        assert_eq!(
            p.explain(),
            "plan ans(X, C) :- (C = databases), enroll(X, C), (G > 3.7), student(X, M, G).\n\
             \x20 1. bind C := databases  (writes C)\n\
             \x20 2. scan enroll(X, C)  probe on C  (reads C; writes X)\n\
             \x20 3. scan student(X, M, G)  probe on X  (reads X; writes M, G)\n\
             \x20 4. check (G > 3.7)  (reads G)\n"
        );
    }

    #[test]
    fn explain_full_scan_and_negation() {
        let p = plan("ans(X) :- student(X, M, G), not enroll(X, databases).");
        assert_eq!(
            p.explain(),
            "plan ans(X) :- student(X, M, G), not enroll(X, databases).\n\
             \x20 1. scan student(X, M, G)  full scan  (writes X, M, G)\n\
             \x20 2. check not enroll(X, databases)  (reads X)\n"
        );
    }

    #[test]
    fn program_explain_joins_rules() {
        let idb = Idb::from_rules([
            parse_rule("honor(X) :- student(X, Y, Z), Z > 3.7.").unwrap(),
            parse_rule("prior(X, Y) :- prereq(X, Y).").unwrap(),
        ])
        .unwrap();
        let text = ProgramPlan::compile(&idb).explain();
        assert!(text.contains("plan honor(X)"));
        assert!(text.contains("plan prior(X, Y)"));
        assert!(text.contains("full scan"));
    }

    #[test]
    fn composite_requests_cover_multi_bound_scans() {
        let idb = Idb::from_rules([
            // The check scan runs with both X and Y already bound → one
            // composite request over both columns.
            parse_rule("ans(X, Y) :- seed(X, Y), edge(X, Y).").unwrap(),
            // Single-bound and unbound scans request nothing.
            parse_rule("all(X, C) :- enroll(X, C).").unwrap(),
            // A duplicate bound shape on the same predicate dedups.
            parse_rule("ans2(X, Y) :- seed(X, Y), edge(X, Y).").unwrap(),
        ])
        .unwrap();
        let reqs = ProgramPlan::compile(&idb).composite_requests();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].0.as_str(), "edge");
        assert_eq!(reqs[0].1, vec![0, 1]);
    }

    fn stats(cards: &[(&str, usize)]) -> CatalogStats {
        CatalogStats::from_cards(cards.iter().map(|&(p, n)| (Sym::new(p), n)))
    }

    fn plan_with(src: &str, stats: &CatalogStats) -> RulePlan {
        let mut i = Interner::new();
        RulePlan::new_with_stats(&parse_rule(src).unwrap(), &mut i, Some(stats))
    }

    #[test]
    fn stats_order_scans_smaller_relation_first() {
        // Fewest-unbound ties (both literals have two unbound arguments),
        // so the legacy planner keeps source order; the cost model starts
        // from the much smaller relation instead.
        let src = "ans(X, Z) :- big(X, Y), small(Y, Z).";
        let legacy = plan(src);
        assert!(matches!(legacy.steps[0], Step::Scan { occurrence: 0, .. }));
        let p = plan_with(src, &stats(&[("big", 100_000), ("small", 4)]));
        assert!(matches!(p.steps[0], Step::Scan { occurrence: 1, .. }));
        // The big scan then probes on the Y that small bound.
        match &p.steps[1] {
            Step::Scan {
                occurrence, cols, ..
            } => {
                assert_eq!(*occurrence, 0);
                assert!(matches!(cols[1], Col::Slot { probe: true, .. }));
            }
            s => panic!("expected scan, got {s:?}"),
        }
    }

    #[test]
    fn stats_ties_keep_source_order() {
        let p = plan_with(
            "ans(X, Z) :- a(X, Y), b(Y, Z).",
            &stats(&[("a", 50), ("b", 50)]),
        );
        assert!(matches!(p.steps[0], Step::Scan { occurrence: 0, .. }));
    }

    #[test]
    fn est_rows_discounts_by_bound_columns() {
        let s = stats(&[("edge", 1024)]);
        assert_eq!(est_rows(&s, &Sym::new("edge"), 0), 1024);
        assert_eq!(est_rows(&s, &Sym::new("edge"), 1), 256);
        assert_eq!(est_rows(&s, &Sym::new("edge"), 2), 64);
        // Derived predicates default to the total stored size (floored).
        assert_eq!(est_rows(&s, &Sym::new("derived"), 0), 1024);
        assert_eq!(est_rows(&stats(&[]), &Sym::new("derived"), 0), 16);
        // Never below one row.
        assert_eq!(est_rows(&s, &Sym::new("edge"), 31), 1);
    }

    #[test]
    fn explain_renders_composite_probe_and_estimates() {
        let p = plan_with(
            "ans(X) :- big(X, Y), small(X, Y, v).",
            &stats(&[("big", 4096), ("small", 64)]),
        );
        assert_eq!(
            p.explain(),
            "plan ans(X) :- big(X, Y), small(X, Y, v).\n\
             \x20 1. scan small(X, Y, v)  probe on v [est 16 rows]  (writes X, Y)\n\
             \x20 2. scan big(X, Y)  composite probe on X, Y [est 256 rows]  (reads X, Y)\n"
        );
    }

    #[test]
    fn stats_less_explain_is_unchanged() {
        let p = plan("ans(X) :- enroll(X, databases).");
        assert_eq!(
            p.explain(),
            "plan ans(X) :- enroll(X, databases).\n\
             \x20 1. scan enroll(X, databases)  probe on databases  (writes X)\n"
        );
    }

    #[test]
    fn delta_variant_forces_occurrence_first() {
        // Source order and cost both favor scanning `seed` first, but the
        // delta variant must scan the delta occurrence (the recursive
        // literal) outermost.
        let mut i = Interner::new();
        let r = parse_rule("path(X, Z) :- seed(X), path(X, Y), edge(Y, Z).").unwrap();
        let s = stats(&[("seed", 1), ("edge", 10_000)]);
        let base = RulePlan::new_with_stats(&r, &mut i, Some(&s));
        assert!(matches!(base.steps[0], Step::Scan { occurrence: 0, .. }));
        let dv = base.delta_variant(1, Some(&s));
        assert!(matches!(dv.steps[0], Step::Scan { occurrence: 1, .. }));
        // The remaining literals still schedule; same step count.
        assert_eq!(dv.steps.len(), base.steps.len());
    }

    #[test]
    fn adorned_plan_probes_prebound_head_slot() {
        let mut i = Interner::new();
        let r = parse_rule("p(X, Y) :- edge(X, Y).").unwrap();
        let compiled = CompiledRule::compile(&r, &mut i);
        let p = RulePlan::with_bound(compiled, r.to_string(), vec![true, false], None);
        match &p.steps[0] {
            Step::Scan { cols, .. } => {
                assert!(matches!(cols[0], Col::Slot { probe: true, .. }));
                assert!(matches!(cols[1], Col::Slot { probe: false, .. }));
            }
            s => panic!("expected scan, got {s:?}"),
        }
    }
}
