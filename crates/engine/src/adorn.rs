//! Adornment derivation and sideways information passing (SIP), shared
//! by the magic-sets rewrite ([`crate::magic`]) and the QSQ net builder
//! ([`crate::qsq`]).
//!
//! Both demand-driven strategies specialize predicates per *binding
//! pattern*: an adornment marks each argument position bound (`b`) or
//! free (`f`), and a left-to-right walk over a rule body propagates
//! bindings sideways — a positive database literal binds every variable
//! it mentions, a built-in `=` binds both sides once either is bound,
//! and other comparisons only filter. This module is the single source
//! of truth for that walk, so magic and QSQ can never disagree about
//! which adornment a body literal receives.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use qdk_logic::{Atom, Literal, Sym, Term, Var};
use std::collections::HashSet;

/// A binding pattern: `true` = bound, per argument position.
pub type Adornment = Vec<bool>;

/// The `b`/`f` rendering of an adornment (`[true, false]` → `"bf"`).
pub fn suffix(a: &Adornment) -> String {
    a.iter().map(|b| if *b { 'b' } else { 'f' }).collect()
}

/// Name of the adorned version of `pred` under adornment `a`.
pub fn adorned_name(pred: &str, a: &Adornment) -> Sym {
    Sym::new(&format!("{pred}__{}", suffix(a)))
}

/// Computes the adornment of `atom` given the set of bound variables:
/// an argument is bound if it is a constant or a bound variable.
pub fn adorn_atom(atom: &Atom, bound: &HashSet<Var>) -> Adornment {
    atom.args
        .iter()
        .map(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        })
        .collect()
}

/// The bound arguments of an atom under an adornment.
pub fn bound_args(atom: &Atom, a: &Adornment) -> Vec<Term> {
    atom.args
        .iter()
        .zip(a)
        .filter(|(_, b)| **b)
        .map(|(t, _)| t.clone())
        .collect()
}

/// Builds the adornment and bindings for a query atom: constants are
/// bound, variables free.
pub fn query_pattern(subject: &Atom) -> (Adornment, Vec<Term>) {
    let pattern: Adornment = subject.args.iter().map(Term::is_ground).collect();
    let bindings: Vec<Term> = subject
        .args
        .iter()
        .filter(|t| t.is_ground())
        .cloned()
        .collect();
    (pattern, bindings)
}

/// Maps predicates of a rewritten program back to originals (for
/// diagnostics): strips the magic/QSQ role prefix and the adornment
/// suffix.
pub fn original_of(adorned: &str) -> Option<&str> {
    let stripped = adorned
        .strip_prefix("m_")
        .or_else(|| adorned.strip_prefix("input_"))
        .or_else(|| adorned.strip_prefix("ans_"))
        .unwrap_or(adorned);
    stripped.rsplit_once("__").map(|(p, _)| p)
}

/// The sideways-information-passing walk over one rule body: tracks the
/// set of bound variables as literals are passed left to right.
///
/// Construction binds the head variables in bound positions; a positive
/// database literal then binds everything it mentions, and built-ins
/// bind nothing except through `=` (both sides become bound once either
/// side is bound or constant — mirroring the goal-directed evaluator's
/// conservative treatment).
#[derive(Clone, Debug)]
pub struct SipWalk {
    bound: HashSet<Var>,
}

impl SipWalk {
    /// Starts a walk for a rule whose head is adorned by `a`: the head
    /// variables in bound positions are the initially bound set.
    pub fn new(head: &Atom, a: &Adornment) -> Self {
        let mut bound = HashSet::new();
        for (t, b) in head.args.iter().zip(a) {
            if *b {
                if let Term::Var(v) = t {
                    bound.insert(v.clone());
                }
            }
        }
        SipWalk { bound }
    }

    /// The adornment `atom` receives at the current point of the walk.
    pub fn adorn(&self, atom: &Atom) -> Adornment {
        adorn_atom(atom, &self.bound)
    }

    /// True if `v` is bound at the current point of the walk.
    pub fn is_bound(&self, v: &Var) -> bool {
        self.bound.contains(v)
    }

    /// Passes one body literal: a positive database literal binds all
    /// its variables; a built-in binds only through `=` (both sides
    /// bound once either side is bound or constant); negative literals
    /// bind nothing.
    pub fn absorb(&mut self, lit: &Literal) {
        let atom = &lit.atom;
        if atom.is_builtin() {
            if atom.pred.as_str() == "=" && atom.args.len() == 2 {
                let side_bound = |t: &Term| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => self.bound.contains(v),
                };
                if side_bound(&atom.args[0]) || side_bound(&atom.args[1]) {
                    for t in &atom.args {
                        if let Term::Var(v) = t {
                            self.bound.insert(v.clone());
                        }
                    }
                }
            }
            return;
        }
        if lit.positive {
            let mut vs = Vec::new();
            atom.collect_vars(&mut vs);
            self.bound.extend(vs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_body};

    fn walk_for(head: &str, pattern: &[bool]) -> SipWalk {
        SipWalk::new(&parse_atom(head).unwrap(), &pattern.to_vec())
    }

    #[test]
    fn suffix_renders_bound_free() {
        assert_eq!(suffix(&vec![true, false]), "bf");
        assert_eq!(suffix(&vec![]), "");
        assert_eq!(
            adorned_name("prior", &vec![true, false]).as_str(),
            "prior__bf"
        );
    }

    #[test]
    fn query_pattern_binds_constants() {
        let (pattern, bindings) = query_pattern(&parse_atom("prior(c3, Y)").unwrap());
        assert_eq!(pattern, vec![true, false]);
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0].to_string(), "c3");
    }

    #[test]
    fn head_adornment_seeds_bound_vars() {
        let walk = walk_for("prior(X, Y)", &[true, false]);
        assert!(walk.is_bound(&Var::new("X")));
        assert!(!walk.is_bound(&Var::new("Y")));
    }

    #[test]
    fn positive_literal_binds_all_its_vars() {
        let mut walk = walk_for("prior(X, Y)", &[true, false]);
        let body = parse_body("prereq(X, Z)").unwrap();
        // Before the literal passes, Z is free — the recursive occurrence
        // prior(Z, Y) would be adorned ff.
        let rec = parse_atom("prior(Z, Y)").unwrap();
        assert_eq!(walk.adorn(&rec), vec![false, false]);
        walk.absorb(&body[0]);
        // After: Z is bound sideways, the recursive occurrence is bf.
        assert_eq!(walk.adorn(&rec), vec![true, false]);
    }

    #[test]
    fn equality_builtin_propagates_bindings_both_ways() {
        let mut walk = walk_for("p(X)", &[true]);
        for lit in parse_body("X = Y, q(Y, Z)").unwrap() {
            walk.absorb(&lit);
        }
        assert!(walk.is_bound(&Var::new("Y")));
        assert!(walk.is_bound(&Var::new("Z")));
    }

    #[test]
    fn comparison_builtins_bind_nothing() {
        let mut walk = walk_for("p(X)", &[true]);
        walk.absorb(&parse_body("Y > 3").unwrap()[0]);
        assert!(!walk.is_bound(&Var::new("Y")));
    }

    #[test]
    fn constants_adorn_bound() {
        let walk = walk_for("p(X)", &[false]);
        let atom = parse_atom("q(c1, X)").unwrap();
        assert_eq!(walk.adorn(&atom), vec![true, false]);
        assert_eq!(bound_args(&atom, &walk.adorn(&atom)).len(), 1);
    }

    #[test]
    fn original_name_mapping_covers_all_roles() {
        assert_eq!(original_of("prior__bf"), Some("prior"));
        assert_eq!(original_of("m_prior__bf"), Some("prior"));
        assert_eq!(original_of("input_prior__bf"), Some("prior"));
        assert_eq!(original_of("ans_prior__bf"), Some("prior"));
        assert_eq!(original_of("plain"), None);
    }

    /// The extraction must leave magic's adornments unchanged: the pinned
    /// shapes here are exactly what `magic::rewrite` produced before the
    /// shared module existed.
    mod magic_pins {
        use super::*;
        use crate::idb::Idb;
        use crate::magic;
        use qdk_logic::parser::parse_program;

        fn idb(src: &str) -> Idb {
            Idb::from_rules(parse_program(src).unwrap().rules).unwrap()
        }

        #[test]
        fn transitive_closure_bound_first_adorns_bf_only() {
            let idb = idb("prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).");
            let subject = parse_atom("prior(c3, Y)").unwrap();
            let (pattern, bindings) = magic::query_pattern(&subject);
            let magic = magic::rewrite(&idb, "prior", &pattern, &bindings).unwrap();
            let variants: Vec<String> = magic::adorned_variants(&magic.idb, "prior")
                .iter()
                .map(|s| s.as_str().to_string())
                .collect();
            assert_eq!(variants, vec!["prior__bf"]);
            assert_eq!(magic.seed.to_string(), "m_prior__bf(c3)");
            // The rewritten rules, in emission order — adornment drift in
            // the shared walk would reshuffle or rename these.
            let rendered: Vec<String> = magic.idb.rules().iter().map(ToString::to_string).collect();
            assert_eq!(
                rendered,
                vec![
                    "m_prior__bf(c3).",
                    "prior__bf(X, Y) :- m_prior__bf(X), prereq(X, Y).",
                    "m_prior__bf(Z) :- m_prior__bf(X), prereq(X, Z).",
                    "prior__bf(X, Y) :- m_prior__bf(X), prereq(X, Z), prior__bf(Z, Y).",
                ]
            );
        }

        #[test]
        fn bound_second_adorns_fb() {
            let idb = idb("prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).");
            let subject = parse_atom("prior(X, c2)").unwrap();
            let (pattern, bindings) = magic::query_pattern(&subject);
            let magic = magic::rewrite(&idb, "prior", &pattern, &bindings).unwrap();
            let variants: Vec<String> = magic::adorned_variants(&magic.idb, "prior")
                .iter()
                .map(|s| s.as_str().to_string())
                .collect();
            // The second rule's recursive occurrence prior(Z, Y) sees Y
            // bound (head) and Z bound sideways from prereq(X, Z) — the
            // bb variant appears alongside the query's fb.
            assert_eq!(variants, vec!["prior__bb", "prior__fb"]);
        }

        #[test]
        fn mutual_recursion_keeps_single_bound_adornment() {
            let idb = idb("even(X) :- zero(X).\n\
                 even(X) :- succ(Y, X), odd(Y).\n\
                 odd(X) :- succ(Y, X), even(Y).");
            let subject = parse_atom("even(n4)").unwrap();
            let (pattern, bindings) = magic::query_pattern(&subject);
            let magic = magic::rewrite(&idb, "even", &pattern, &bindings).unwrap();
            let names = |p: &str| -> Vec<String> {
                magic::adorned_variants(&magic.idb, p)
                    .iter()
                    .map(|s| s.as_str().to_string())
                    .collect()
            };
            assert_eq!(names("even"), vec!["even__b"]);
            assert_eq!(names("odd"), vec!["odd__b"]);
        }

        #[test]
        fn equality_propagation_matches_magic() {
            // `=` with a bound left side binds W before r(W, Z) is
            // reached, so r is demanded with its first argument bound.
            let idb = idb("p(X, Z) :- q(X, Y), Y = W, r(W, Z).\n\
                 q(X, Y) :- e(X, Y).\n\
                 r(X, Y) :- e(X, Y).");
            let subject = parse_atom("p(c1, Z)").unwrap();
            let (pattern, bindings) = magic::query_pattern(&subject);
            let magic = magic::rewrite(&idb, "p", &pattern, &bindings).unwrap();
            let r_variants: Vec<String> = magic::adorned_variants(&magic.idb, "r")
                .iter()
                .map(|s| s.as_str().to_string())
                .collect();
            assert_eq!(r_variants, vec!["r__bf"]);
        }
    }
}
