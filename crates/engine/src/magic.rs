//! Magic-sets rewriting.
//!
//! Bottom-up evaluation computes whole extensions; the goal-directed
//! solver propagates constants but materializes recursive SCCs fully.
//! Magic sets gets the best of both: rewrite the program so that
//! bottom-up evaluation itself is goal-directed. Given a query pattern
//! (an *adornment* marking each argument bound `b` or free `f`), the
//! rewrite produces
//!
//! * **adorned rules** `p^a(…) ← …` specialized per binding pattern, with
//!   sideways information passing left to right;
//! * **magic predicates** `m_p^a(bound args)` holding the bindings with
//!   which `p^a` will actually be called;
//! * **magic rules** seeding the query's own bindings and propagating
//!   bindings into rule bodies; each adorned rule is guarded by its magic
//!   atom.
//!
//! Evaluating the rewritten program semi-naively computes exactly the
//! relevant facts — the standard deductive-database result this crate
//! reproduces as the P1c experiment. The implementation covers positive
//! programs (no negation — callers fall back to plain evaluation when the
//! relevant slice uses negation), with built-in comparisons passed
//! through to the adorned bodies.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::adorn::{adorned_name, bound_args, suffix, SipWalk};
use crate::error::{EngineError, Result};
use crate::idb::Idb;
use qdk_logic::{Atom, Literal, Rule, Sym, Term};
use std::collections::{HashSet, VecDeque};

pub use crate::adorn::{query_pattern, Adornment};

/// Name of the magic predicate for `pred` under adornment `a`.
fn magic_name(pred: &str, a: &Adornment) -> Sym {
    Sym::new(&format!("m_{pred}__{}", suffix(a)))
}

/// The result of a magic-sets rewrite.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The rewritten rules (magic seed, magic propagation, adorned rules).
    pub idb: Idb,
    /// The adorned name of the query predicate (whose extension answers
    /// the query).
    pub query_pred: Sym,
    /// The magic seed fact (already included as a bodyless rule).
    pub seed: Atom,
}

/// Rewrites the IDB for a query `pred(args)` where `pattern[i]` says
/// whether argument `i` is bound, and `bindings` are the bound constants
/// (one per `true` in `pattern`, in order).
///
/// Returns an error if the relevant program slice contains negation (the
/// rewrite implemented here is for positive programs).
pub fn rewrite(
    idb: &Idb,
    pred: &str,
    pattern: &Adornment,
    bindings: &[Term],
) -> Result<MagicProgram> {
    if bindings.len() != pattern.iter().filter(|b| **b).count() {
        return Err(EngineError::UnknownSubject(format!(
            "magic rewrite: {} bindings for pattern {}",
            bindings.len(),
            suffix(pattern)
        )));
    }

    let mut out = Idb::new();
    let mut queued: HashSet<(Sym, String)> = HashSet::new();
    let mut work: VecDeque<(Sym, Adornment)> = VecDeque::new();

    let seed_pred = Sym::new(pred);
    work.push_back((seed_pred.clone(), pattern.clone()));
    queued.insert((seed_pred.clone(), suffix(pattern)));

    // Magic seed: m_p^a(constants).
    let seed = Atom::new(magic_name(pred, pattern), bindings.to_vec());
    if seed.is_ground() {
        out.add_rule(Rule::fact(seed.clone()))?;
    } else {
        return Err(EngineError::UnknownSubject(
            "magic rewrite requires ground bindings".to_string(),
        ));
    }

    while let Some((p, adornment)) = work.pop_front() {
        for rule in idb.rules_for(p.as_str()) {
            if rule.body.iter().any(|l| !l.positive) {
                return Err(EngineError::NotStratified(format!(
                    "magic rewrite does not support negation (rule {rule})"
                )));
            }
            // The shared SIP walk tracks bound variables left to right.
            let mut walk = SipWalk::new(&rule.head, &adornment);

            let magic_guard = Atom::new(
                magic_name(p.as_str(), &adornment),
                bound_args(&rule.head, &adornment),
            );
            let mut new_body: Vec<Literal> = vec![Literal::pos(magic_guard.clone())];

            for lit in &rule.body {
                let atom = &lit.atom;
                if atom.is_builtin() {
                    new_body.push(lit.clone());
                    walk.absorb(lit);
                    continue;
                }
                if idb.defines(atom.pred.as_str()) {
                    let a = walk.adorn(atom);
                    // Magic propagation rule: m_q^a(bound args) ← magic
                    // guard ∧ literals seen so far.
                    let magic_head =
                        Atom::new(magic_name(atom.pred.as_str(), &a), bound_args(atom, &a));
                    out.add_rule(Rule::with_literals(magic_head, new_body.clone()))?;
                    // Queue q^a for adornment.
                    let key = (atom.pred.clone(), suffix(&a));
                    if queued.insert(key) {
                        work.push_back((atom.pred.clone(), a.clone()));
                    }
                    // The adorned occurrence joins the body.
                    new_body.push(Literal::pos(Atom::new(
                        adorned_name(atom.pred.as_str(), &a),
                        atom.args.clone(),
                    )));
                } else {
                    new_body.push(lit.clone());
                }
                // Everything this positive literal mentions is now bound.
                walk.absorb(lit);
            }

            // The adorned rule itself.
            let adorned_head =
                Atom::new(adorned_name(p.as_str(), &adornment), rule.head.args.clone());
            out.add_rule(Rule::with_literals(adorned_head, new_body))?;
        }
    }

    Ok(MagicProgram {
        idb: out,
        query_pred: adorned_name(pred, pattern),
        seed,
    })
}

/// Maps predicates of the rewritten program back to originals (for
/// diagnostics).
pub fn original_of(adorned: &str) -> Option<&str> {
    crate::adorn::original_of(adorned)
}

/// Per-predicate adorned names introduced for `pred` in a rewritten
/// program (test/diagnostic helper).
pub fn adorned_variants(program: &Idb, pred: &str) -> Vec<Sym> {
    let mut out: Vec<Sym> = program
        .predicates()
        .into_iter()
        .filter(|p| original_of(p.as_str()) == Some(pred) && !p.as_str().starts_with("m_"))
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seminaive;
    use qdk_logic::parser::{parse_atom, parse_program};
    use qdk_storage::Edb;

    fn prior_idb() -> Idb {
        Idb::from_rules(
            parse_program(
                "prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap()
    }

    fn chain(n: usize) -> Edb {
        let mut edb = Edb::new();
        edb.declare("prereq", &["C", "P"]).unwrap();
        for i in 0..n {
            edb.insert_fact(&parse_atom(&format!("prereq(c{}, c{})", i + 1, i)).unwrap())
                .unwrap();
        }
        edb
    }

    #[test]
    fn rewrite_produces_guarded_adorned_rules() {
        let idb = prior_idb();
        let subject = parse_atom("prior(c3, Y)").unwrap();
        let (pattern, bindings) = query_pattern(&subject);
        let magic = rewrite(&idb, "prior", &pattern, &bindings).unwrap();
        // Adorned query predicate prior__bf exists; its rules are guarded
        // by m_prior__bf.
        assert_eq!(magic.query_pred.as_str(), "prior__bf");
        let guarded = magic.idb.rules_for("prior__bf").all(|r| {
            r.body
                .first()
                .is_some_and(|l| l.atom.pred.as_str() == "m_prior__bf")
        });
        assert!(guarded);
        // The seed fact carries the constant.
        assert_eq!(magic.seed.to_string(), "m_prior__bf(c3)");
    }

    #[test]
    fn magic_answers_match_full_evaluation_bound_first() {
        let edb = chain(8);
        let idb = prior_idb();
        let subject = parse_atom("prior(c5, Y)").unwrap();
        let (pattern, bindings) = query_pattern(&subject);
        let magic = rewrite(&idb, "prior", &pattern, &bindings).unwrap();
        let magic_facts = seminaive::eval(&edb, &magic.idb).unwrap();
        let full = seminaive::eval(&edb, &idb).unwrap();

        // Everything derivable for prior(c5, _) in the full program is in
        // the adorned relation, and nothing else.
        let mut expected: Vec<String> = full
            .relation("prior")
            .unwrap()
            .iter()
            .filter(|t| t.get(0).unwrap().to_string() == "c5")
            .map(ToString::to_string)
            .collect();
        expected.sort();
        // The adorned relation also holds subsidiary subquery answers
        // (prior(c4, ·), …) — the query's slice is the c5-rooted part.
        let mut got: Vec<String> = magic_facts
            .relation("prior__bf")
            .map(|r| {
                r.iter()
                    .filter(|t| t.get(0).unwrap().to_string() == "c5")
                    .map(ToString::to_string)
                    .collect()
            })
            .unwrap_or_default();
        got.sort();
        assert_eq!(got, expected);
        // And the magic evaluation derived far fewer prior facts than the
        // full closure (5 vs 36 on an 8-chain).
        assert!(
            magic_facts.relation("prior__bf").unwrap().len()
                < full.relation("prior").unwrap().len()
        );
    }

    #[test]
    fn magic_answers_match_full_evaluation_bound_second() {
        let edb = chain(8);
        let idb = prior_idb();
        let subject = parse_atom("prior(X, c2)").unwrap();
        let (pattern, bindings) = query_pattern(&subject);
        let magic = rewrite(&idb, "prior", &pattern, &bindings).unwrap();
        let magic_facts = seminaive::eval(&edb, &magic.idb).unwrap();
        let full = seminaive::eval(&edb, &idb).unwrap();
        let mut expected: Vec<String> = full
            .relation("prior")
            .unwrap()
            .iter()
            .filter(|t| t.get(1).unwrap().to_string() == "c2")
            .map(ToString::to_string)
            .collect();
        expected.sort();
        let mut got: Vec<String> = magic_facts
            .relation("prior__fb")
            .map(|r| {
                r.iter()
                    .filter(|t| t.get(1).unwrap().to_string() == "c2")
                    .map(ToString::to_string)
                    .collect()
            })
            .unwrap_or_default();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn fully_free_pattern_is_rejected_without_bindings() {
        // A query with no constants has an all-free adornment; the magic
        // seed would be m_p__ff() — legal (zero-ary) and equivalent to
        // full evaluation.
        let idb = prior_idb();
        let subject = parse_atom("prior(X, Y)").unwrap();
        let (pattern, bindings) = query_pattern(&subject);
        let magic = rewrite(&idb, "prior", &pattern, &bindings).unwrap();
        assert_eq!(magic.query_pred.as_str(), "prior__ff");
        let edb = chain(5);
        let facts = seminaive::eval(&edb, &magic.idb).unwrap();
        assert_eq!(
            facts.relation("prior__ff").unwrap().len(),
            seminaive::eval(&edb, &idb)
                .unwrap()
                .relation("prior")
                .unwrap()
                .len()
        );
    }

    #[test]
    fn nonrecursive_program_with_builtins() {
        let mut edb = Edb::new();
        edb.declare("student", &["S", "M", "G"]).unwrap();
        for f in [
            "student(ann, math, 3.9)",
            "student(bob, math, 3.5)",
            "student(cara, physics, 3.8)",
        ] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let idb = Idb::from_rules(
            parse_program("honor(X) :- student(X, Y, Z), Z > 3.7.")
                .unwrap()
                .rules,
        )
        .unwrap();
        let subject = parse_atom("honor(ann)").unwrap();
        let (pattern, bindings) = query_pattern(&subject);
        let magic = rewrite(&idb, "honor", &pattern, &bindings).unwrap();
        let facts = seminaive::eval(&edb, &magic.idb).unwrap();
        let rel = facts.relation("honor__b").unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn negation_is_rejected() {
        let idb = Idb::from_rules(parse_program("p(X) :- q(X), not r(X).").unwrap().rules).unwrap();
        let subject = parse_atom("p(a)").unwrap();
        let (pattern, bindings) = query_pattern(&subject);
        assert!(matches!(
            rewrite(&idb, "p", &pattern, &bindings),
            Err(EngineError::NotStratified(_))
        ));
    }

    #[test]
    fn mutual_recursion_adorns_both_predicates() {
        let idb = Idb::from_rules(
            parse_program(
                "even(X) :- zero(X).\n\
                 even(X) :- succ(Y, X), odd(Y).\n\
                 odd(X) :- succ(Y, X), even(Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let subject = parse_atom("even(n4)").unwrap();
        let (pattern, bindings) = query_pattern(&subject);
        let magic = rewrite(&idb, "even", &pattern, &bindings).unwrap();
        // Both predicates got adorned variants.
        assert!(!adorned_variants(&magic.idb, "even").is_empty());
        assert!(!adorned_variants(&magic.idb, "odd").is_empty());

        // Correctness on a small chain.
        let mut edb = Edb::new();
        edb.declare("zero", &["A"]).unwrap();
        edb.declare("succ", &["A", "B"]).unwrap();
        edb.insert_fact(&parse_atom("zero(n0)").unwrap()).unwrap();
        for i in 0..6 {
            edb.insert_fact(&parse_atom(&format!("succ(n{i}, n{})", i + 1)).unwrap())
                .unwrap();
        }
        let facts = seminaive::eval(&edb, &magic.idb).unwrap();
        // even(n4) holds.
        let rel = facts.relation("even__b").unwrap();
        assert!(rel.iter().any(|t| t.to_string() == "(n4)"));
    }

    #[test]
    fn original_name_mapping() {
        assert_eq!(original_of("prior__bf"), Some("prior"));
        assert_eq!(original_of("m_prior__bf"), Some("prior"));
        assert_eq!(original_of("plain"), None);
    }
}
