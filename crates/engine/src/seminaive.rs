//! Semi-naive bottom-up evaluation.
//!
//! The standard deductive-database optimization: after the first round,
//! a rule need only be re-fired with at least one recursive body occurrence
//! restricted to the *delta* (facts new in the previous round), because any
//! wholly-old instantiation was already derived. This avoids naive
//! evaluation's rederivation of the entire fact set each round; the P1
//! benchmark measures the separation growing with EDB size.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::bindings::{fire_rule_batch, DeltaRanges, DerivedFacts, RuleTask};
use crate::error::Result;
use crate::idb::Idb;
use crate::naive::EvalOptions;
use crate::plan::{ProgramPlan, RulePlan, Step};
use crate::stratify::stratify;
use qdk_logic::Sym;
use qdk_storage::{Edb, Relation};

/// A delta scan is split across workers only when the delta relation has at
/// least this many tuples; smaller scans are not worth a second task.
/// Shared with the QSQ scheduler so both strategies chunk identically.
pub(crate) const DELTA_CHUNK_MIN: usize = 64;

/// Computes the least fixpoint of the IDB over the EDB semi-naively,
/// stratum by stratum.
pub fn eval(edb: &Edb, idb: &Idb) -> Result<DerivedFacts> {
    eval_with(edb, idb, EvalOptions::default())
}

/// [`eval`] with options. Compiles the program first — against the EDB's
/// cardinality snapshot, so literal order follows the cost model; callers
/// evaluating the same IDB repeatedly should compile once and use
/// [`eval_compiled`].
pub fn eval_with(edb: &Edb, idb: &Idb, opts: EvalOptions) -> Result<DerivedFacts> {
    let plan = ProgramPlan::compile_with_stats(idb, edb.stats());
    eval_compiled(edb, idb, &plan, None, opts)
}

/// Semi-naive evaluation restricted to `relevant` predicates.
pub fn eval_restricted(
    edb: &Edb,
    idb: &Idb,
    relevant: &[Sym],
    opts: EvalOptions,
) -> Result<DerivedFacts> {
    let plan = ProgramPlan::compile_with_stats(idb, edb.stats());
    eval_compiled(edb, idb, &plan, Some(relevant), opts)
}

/// Semi-naive evaluation of an already compiled program. `plan` must be
/// the compilation of `idb` (the knowledge-base layer caches it).
pub fn eval_compiled(
    edb: &Edb,
    idb: &Idb,
    plan: &ProgramPlan,
    relevant: Option<&[Sym]>,
    opts: EvalOptions,
) -> Result<DerivedFacts> {
    eval_seeded(edb, idb, plan, relevant, DerivedFacts::new(), opts)
}

/// [`eval_compiled`] starting from a pre-populated derived store: relations
/// already in `seed` are treated as settled lower-stratum input, and only
/// predicates passing the `relevant` filter are (re)derived into it. The
/// incremental-maintenance layer uses this to rebuild just the strata a
/// rule change touched.
pub fn eval_seeded(
    edb: &Edb,
    idb: &Idb,
    plan: &ProgramPlan,
    relevant: Option<&[Sym]>,
    seed: DerivedFacts,
    opts: EvalOptions,
) -> Result<DerivedFacts> {
    let strat = stratify(idb)?;
    let mut derived = seed;
    let gov = opts.governor();
    let pool = opts.pool();
    let obs = &opts.sink;
    let probes0 = if obs.enabled() {
        edb.access_stats()
    } else {
        (0, 0)
    };
    let composite0 = if obs.enabled() {
        edb.composite_probes()
    } else {
        0
    };
    for (si, stratum) in strat.strata().iter().enumerate() {
        let rules: Vec<&RulePlan> = plan
            .plans()
            .iter()
            .filter(|rp| {
                let head = &rp.compiled.head.pred;
                stratum.contains(head) && relevant.is_none_or(|r| r.contains(head))
            })
            .collect();
        if rules.is_empty() {
            continue;
        }

        // Per rule, the body occurrences that can read a delta: positive
        // literals over predicates of this stratum. Computed once per
        // stratum, not once per round.
        let recursive_occurrences: Vec<Vec<usize>> = rules
            .iter()
            .map(|rp| {
                rp.compiled
                    .body
                    .iter()
                    .enumerate()
                    .filter(|(i, lit)| {
                        lit.positive
                            && !rp.compiled.source.body[*i].is_builtin()
                            && stratum.contains(&lit.atom.pred)
                    })
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();

        // Delta-first plan variants, one per (rule, recursive occurrence):
        // the delta is the smallest input by construction, so the variant
        // re-plans the body with that occurrence as the outermost scan —
        // every firing is then bounded by the delta size, and the scan is
        // always eligible for order-preserving chunked parallelism.
        let delta_plans: Vec<Vec<RulePlan>> = rules
            .iter()
            .zip(&recursive_occurrences)
            .map(|(rp, occs)| {
                occs.iter()
                    .map(|&i| rp.delta_variant(i, plan.stats()))
                    .collect()
            })
            .collect();

        // The head predicates of this stratum's rules, deduplicated: the
        // delta after each round is the set of id ranges by which their
        // relations grew. The derived store only appends, so "the facts new
        // last round" is always a tail window of each relation — no second
        // store, subtract pass, or per-round index build is ever needed.
        let mut head_preds: Vec<&Sym> = Vec::new();
        for rp in &rules {
            let p = &rp.compiled.head.pred;
            if !head_preds.contains(&p) {
                head_preds.push(p);
            }
        }

        let _stratum_span = obs.span("stratum", si as u64);

        // Round 0: fire every rule against the current totals (facts from
        // lower strata and the EDB). The new facts form the first delta;
        // firings exclude already-derived tuples at the emit site.
        let before = head_lens(&derived, &head_preds);
        let round0_span = obs.span("iteration", 0);
        let firings0 = gov.work_spent();
        let tasks: Vec<RuleTask<'_>> = rules.iter().map(|&rp| RuleTask::total(rp)).collect();
        let added = fire_rule_batch(&pool, &gov, edb, &mut derived, None, &tasks)?;
        gov.add_facts(added)?;
        if obs.enabled() {
            obs.counter("rule_firings", gov.work_spent().saturating_sub(firings0));
            obs.counter("delta_facts", added as u64);
        }
        drop(round0_span);
        let mut delta = delta_ranges(&derived, &head_preds, &before);
        let mut round = 1u64;

        // Subsequent rounds: only instantiations touching the delta.
        while !delta.is_empty() {
            let _iter_span = obs.span("iteration", round);
            let mut tasks: Vec<RuleTask<'_>> = Vec::new();
            for (r, (rp, occurrences)) in rules.iter().zip(&recursive_occurrences).enumerate() {
                // For each body occurrence of a predicate in this stratum
                // with new facts, fire the delta-first variant with that
                // occurrence reading the delta window — split across
                // workers when the scan is large (the variant's delta
                // occurrence is always the outermost scan, so chunk
                // concatenation preserves scan order).
                for (j, &i) in occurrences.iter().enumerate() {
                    let Some(&(start, end)) = delta.get(&rp.compiled.body[i].atom.pred) else {
                        continue; // no new facts for this occurrence
                    };
                    let dp = &delta_plans[r][j];
                    let len = end - start;
                    if len >= DELTA_CHUNK_MIN && !pool.is_sequential() && outermost_scan(dp, i) {
                        for (k, (lo, hi)) in pool.chunk_ranges(len).into_iter().enumerate() {
                            tasks.push(RuleTask::delta_chunk(
                                dp,
                                i,
                                (start + lo, start + hi),
                                k == 0,
                            ));
                        }
                    } else {
                        tasks.push(RuleTask::delta(dp, i));
                    }
                }
            }
            let before = head_lens(&derived, &head_preds);
            let firings0 = gov.work_spent();
            if obs.enabled() {
                let chunked = tasks.iter().filter(|t| t.is_chunk()).count();
                obs.counter("delta_tasks", tasks.len() as u64);
                obs.counter("delta_chunks", chunked as u64);
                let delta_size: usize = delta.values().map(|(lo, hi)| hi - lo).sum();
                obs.counter("delta_size", delta_size as u64);
            }
            let added = fire_rule_batch(&pool, &gov, edb, &mut derived, Some(&delta), &tasks)?;
            gov.add_facts(added)?;
            if obs.enabled() {
                obs.counter("rule_firings", gov.work_spent().saturating_sub(firings0));
                obs.counter("delta_facts", added as u64);
            }
            delta = delta_ranges(&derived, &head_preds, &before);
            round += 1;
        }
    }
    if obs.enabled() {
        let (p, s) = edb.access_stats();
        let (dp, ds) = derived.iter().fold((0, 0), |(p, s), (_, r)| {
            (p + r.index_probes(), s + r.full_scans())
        });
        obs.counter("index_probes", p.saturating_sub(probes0.0) + dp);
        obs.counter("full_scans", s.saturating_sub(probes0.1) + ds);
        let dc: u64 = derived.iter().map(|(_, r)| r.composite_probes()).sum();
        obs.counter(
            "composite_probes",
            edb.composite_probes().saturating_sub(composite0) + dc,
        );
    }
    Ok(derived)
}

/// Current length of each head predicate's derived relation (0 if absent).
pub(crate) fn head_lens(derived: &DerivedFacts, head_preds: &[&Sym]) -> Vec<usize> {
    head_preds
        .iter()
        .map(|p| derived.relation(p.as_str()).map_or(0, Relation::len))
        .collect()
}

/// The id ranges by which each head relation grew past its recorded
/// `before` length — the next round's delta.
pub(crate) fn delta_ranges(
    derived: &DerivedFacts,
    head_preds: &[&Sym],
    before: &[usize],
) -> DeltaRanges {
    let mut ranges = DeltaRanges::default();
    for (p, &b) in head_preds.iter().zip(before) {
        let now = derived.relation(p.as_str()).map_or(0, Relation::len);
        if now > b {
            ranges.insert((*p).clone(), (b, now));
        }
    }
    ranges
}

/// True when occurrence `i` is the plan's outermost scan, so chunking its
/// window across workers concatenates to the sequential visit order.
pub(crate) fn outermost_scan(rp: &RulePlan, i: usize) -> bool {
    matches!(rp.steps.first(), Some(Step::Scan { occurrence, .. }) if *occurrence == i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use qdk_logic::parser::{parse_atom, parse_program};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn chain_edb(n: usize) -> Edb {
        let mut edb = Edb::new();
        edb.declare("prereq", &["C", "P"]).unwrap();
        for i in 0..n {
            edb.insert_fact(&parse_atom(&format!("prereq(c{}, c{})", i + 1, i)).unwrap())
                .unwrap();
        }
        edb
    }

    fn prior_idb() -> Idb {
        Idb::from_rules(
            parse_program(
                "prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap()
    }

    fn same_facts(a: &DerivedFacts, b: &DerivedFacts) -> bool {
        if a.len() != b.len() {
            return false;
        }
        a.iter().all(|(p, rel)| {
            b.relation(p.as_str())
                .is_some_and(|other| rel.iter().all(|t| other.contains(t)))
        })
    }

    #[test]
    fn agrees_with_naive_on_chain() {
        let edb = chain_edb(8);
        let idb = prior_idb();
        let n = naive::eval(&edb, &idb).unwrap();
        let s = eval(&edb, &idb).unwrap();
        assert!(same_facts(&n, &s));
        assert_eq!(s.relation("prior").unwrap().len(), 36);
    }

    #[test]
    fn agrees_with_naive_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..10 {
            let mut edb = Edb::new();
            edb.declare("prereq", &["C", "P"]).unwrap();
            let nodes = 8;
            for _ in 0..15 {
                let a = rng.gen_range(0..nodes);
                let b = rng.gen_range(0..nodes);
                edb.insert_fact(&parse_atom(&format!("prereq(n{a}, n{b})")).unwrap())
                    .unwrap();
            }
            let idb = prior_idb();
            let n = naive::eval(&edb, &idb).unwrap();
            let s = eval(&edb, &idb).unwrap();
            assert!(same_facts(&n, &s), "case {case}");
        }
    }

    #[test]
    fn agrees_on_mutual_recursion() {
        let mut edb = Edb::new();
        edb.declare("succ", &["A", "B"]).unwrap();
        edb.declare("zero", &["A"]).unwrap();
        edb.insert_fact(&parse_atom("zero(n0)").unwrap()).unwrap();
        for i in 0..6 {
            edb.insert_fact(&parse_atom(&format!("succ(n{i}, n{})", i + 1)).unwrap())
                .unwrap();
        }
        let idb = Idb::from_rules(
            parse_program(
                "even(X) :- zero(X).\n\
                 even(X) :- succ(Y, X), odd(Y).\n\
                 odd(X) :- succ(Y, X), even(Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let n = naive::eval(&edb, &idb).unwrap();
        let s = eval(&edb, &idb).unwrap();
        assert!(same_facts(&n, &s));
        assert_eq!(s.relation("even").unwrap().len(), 4); // n0, n2, n4, n6
        assert_eq!(s.relation("odd").unwrap().len(), 3); // n1, n3, n5
    }

    #[test]
    fn agrees_with_negation() {
        let mut edb = Edb::new();
        edb.declare("student", &["S", "M", "G"]).unwrap();
        edb.insert_fact(&parse_atom("student(ann, math, 3.9)").unwrap())
            .unwrap();
        edb.insert_fact(&parse_atom("student(bob, math, 3.5)").unwrap())
            .unwrap();
        let idb = Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
                 ordinary(X) :- student(X, Y, Z), not honor(X).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let n = naive::eval(&edb, &idb).unwrap();
        let s = eval(&edb, &idb).unwrap();
        assert!(same_facts(&n, &s));
    }

    #[test]
    fn delta_rounds_terminate_on_cyclic_data() {
        let mut edb = Edb::new();
        edb.declare("prereq", &["C", "P"]).unwrap();
        for f in ["prereq(a, b)", "prereq(b, a)"] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let s = eval(&edb, &prior_idb()).unwrap();
        assert_eq!(s.relation("prior").unwrap().len(), 4);
    }

    #[test]
    fn restricted_matches_full_on_relevant_preds() {
        let edb = chain_edb(5);
        let idb = Idb::from_rules(
            parse_program(
                "prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).\n\
                 other(X) :- prereq(X, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let full = eval(&edb, &idb).unwrap();
        let restricted =
            eval_restricted(&edb, &idb, &[Sym::new("prior")], EvalOptions::default()).unwrap();
        assert_eq!(
            full.relation("prior").unwrap().len(),
            restricted.relation("prior").unwrap().len()
        );
        assert!(restricted.relation("other").is_none());
    }
}
