//! Semi-naive bottom-up evaluation.
//!
//! The standard deductive-database optimization: after the first round,
//! a rule need only be re-fired with at least one recursive body occurrence
//! restricted to the *delta* (facts new in the previous round), because any
//! wholly-old instantiation was already derived. This avoids naive
//! evaluation's rederivation of the entire fact set each round; the P1
//! benchmark measures the separation growing with EDB size.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::bindings::{fire_plan, DerivedFacts, FactView};
use crate::error::Result;
use crate::idb::Idb;
use crate::naive::EvalOptions;
use crate::plan::{ProgramPlan, RulePlan};
use crate::stratify::stratify;
use qdk_logic::Sym;
use qdk_storage::Edb;

/// Computes the least fixpoint of the IDB over the EDB semi-naively,
/// stratum by stratum.
pub fn eval(edb: &Edb, idb: &Idb) -> Result<DerivedFacts> {
    eval_with(edb, idb, EvalOptions::default())
}

/// [`eval`] with options. Compiles the program first; callers evaluating
/// the same IDB repeatedly should compile once and use [`eval_compiled`].
pub fn eval_with(edb: &Edb, idb: &Idb, opts: EvalOptions) -> Result<DerivedFacts> {
    let plan = ProgramPlan::compile(idb);
    eval_compiled(edb, idb, &plan, None, opts)
}

/// Semi-naive evaluation restricted to `relevant` predicates.
pub fn eval_restricted(
    edb: &Edb,
    idb: &Idb,
    relevant: &[Sym],
    opts: EvalOptions,
) -> Result<DerivedFacts> {
    let plan = ProgramPlan::compile(idb);
    eval_compiled(edb, idb, &plan, Some(relevant), opts)
}

/// Semi-naive evaluation of an already compiled program. `plan` must be
/// the compilation of `idb` (the knowledge-base layer caches it).
pub fn eval_compiled(
    edb: &Edb,
    idb: &Idb,
    plan: &ProgramPlan,
    relevant: Option<&[Sym]>,
    opts: EvalOptions,
) -> Result<DerivedFacts> {
    let strat = stratify(idb)?;
    let mut derived = DerivedFacts::new();
    let mut gov = opts.governor();
    for stratum in strat.strata() {
        let rules: Vec<&RulePlan> = plan
            .plans()
            .iter()
            .filter(|rp| {
                let head = &rp.compiled.head.pred;
                stratum.contains(head) && relevant.is_none_or(|r| r.contains(head))
            })
            .collect();
        if rules.is_empty() {
            continue;
        }

        // Per rule, the body occurrences that can read a delta: positive
        // literals over predicates of this stratum. Computed once per
        // stratum, not once per round.
        let recursive_occurrences: Vec<Vec<usize>> = rules
            .iter()
            .map(|rp| {
                rp.compiled
                    .body
                    .iter()
                    .enumerate()
                    .filter(|(i, lit)| {
                        lit.positive
                            && !rp.compiled.source.body[*i].is_builtin()
                            && stratum.contains(&lit.atom.pred)
                    })
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();

        // Round 0: fire every rule against the current totals (facts from
        // lower strata and the EDB). The new facts form the first delta.
        let mut delta = DerivedFacts::new();
        for rp in &rules {
            gov.tick()?;
            let view = FactView::total(edb, &derived);
            let mut fresh = DerivedFacts::new();
            fire_plan(rp, &view, &mut fresh)?;
            for (p, rel) in fresh.iter() {
                for t in rel.iter() {
                    delta.insert(p, t.clone())?;
                }
            }
        }
        subtract(&mut delta, &derived)?;
        gov.add_facts(derived.absorb(&delta)?)?;

        // Subsequent rounds: only instantiations touching the delta.
        while !delta.is_empty() {
            // Which predicates have new facts, as a dense bitmask over the
            // program's interned ids: the per-occurrence check below is an
            // index, not a string hash.
            let mut delta_mask = vec![false; plan.interner().len()];
            for (p, _) in delta.iter() {
                if let Some(id) = plan.interner().lookup(p.as_str()) {
                    delta_mask[id.index()] = true;
                }
            }
            let mut next = DerivedFacts::new();
            for (rp, occurrences) in rules.iter().zip(&recursive_occurrences) {
                // For each body occurrence of a predicate in this stratum,
                // fire with that occurrence reading the delta.
                for &i in occurrences {
                    let pred_id = rp.compiled.body[i].atom.pred_id;
                    if !delta_mask.get(pred_id.index()).copied().unwrap_or(false) {
                        continue; // no new facts for this occurrence
                    }
                    gov.tick()?;
                    let view = FactView::with_delta(edb, &derived, &delta, i);
                    let mut fresh = DerivedFacts::new();
                    fire_plan(rp, &view, &mut fresh)?;
                    for (p, rel) in fresh.iter() {
                        for t in rel.iter() {
                            next.insert(p, t.clone())?;
                        }
                    }
                }
            }
            subtract(&mut next, &derived)?;
            gov.add_facts(derived.absorb(&next)?)?;
            delta = next;
        }
    }
    Ok(derived)
}

/// Removes from `delta` every tuple already present in `base`.
fn subtract(delta: &mut DerivedFacts, base: &DerivedFacts) -> Result<()> {
    let mut pruned = DerivedFacts::new();
    for (p, rel) in delta.iter() {
        let old = base.relation(p.as_str());
        for t in rel.iter() {
            if old.is_none_or(|r| !r.contains(t)) {
                pruned.insert(p, t.clone())?;
            }
        }
    }
    *delta = pruned;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use qdk_logic::parser::{parse_atom, parse_program};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn chain_edb(n: usize) -> Edb {
        let mut edb = Edb::new();
        edb.declare("prereq", &["C", "P"]).unwrap();
        for i in 0..n {
            edb.insert_fact(&parse_atom(&format!("prereq(c{}, c{})", i + 1, i)).unwrap())
                .unwrap();
        }
        edb
    }

    fn prior_idb() -> Idb {
        Idb::from_rules(
            parse_program(
                "prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap()
    }

    fn same_facts(a: &DerivedFacts, b: &DerivedFacts) -> bool {
        if a.len() != b.len() {
            return false;
        }
        a.iter().all(|(p, rel)| {
            b.relation(p.as_str())
                .is_some_and(|other| rel.iter().all(|t| other.contains(t)))
        })
    }

    #[test]
    fn agrees_with_naive_on_chain() {
        let edb = chain_edb(8);
        let idb = prior_idb();
        let n = naive::eval(&edb, &idb).unwrap();
        let s = eval(&edb, &idb).unwrap();
        assert!(same_facts(&n, &s));
        assert_eq!(s.relation("prior").unwrap().len(), 36);
    }

    #[test]
    fn agrees_with_naive_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..10 {
            let mut edb = Edb::new();
            edb.declare("prereq", &["C", "P"]).unwrap();
            let nodes = 8;
            for _ in 0..15 {
                let a = rng.gen_range(0..nodes);
                let b = rng.gen_range(0..nodes);
                edb.insert_fact(&parse_atom(&format!("prereq(n{a}, n{b})")).unwrap())
                    .unwrap();
            }
            let idb = prior_idb();
            let n = naive::eval(&edb, &idb).unwrap();
            let s = eval(&edb, &idb).unwrap();
            assert!(same_facts(&n, &s), "case {case}");
        }
    }

    #[test]
    fn agrees_on_mutual_recursion() {
        let mut edb = Edb::new();
        edb.declare("succ", &["A", "B"]).unwrap();
        edb.declare("zero", &["A"]).unwrap();
        edb.insert_fact(&parse_atom("zero(n0)").unwrap()).unwrap();
        for i in 0..6 {
            edb.insert_fact(&parse_atom(&format!("succ(n{i}, n{})", i + 1)).unwrap())
                .unwrap();
        }
        let idb = Idb::from_rules(
            parse_program(
                "even(X) :- zero(X).\n\
                 even(X) :- succ(Y, X), odd(Y).\n\
                 odd(X) :- succ(Y, X), even(Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let n = naive::eval(&edb, &idb).unwrap();
        let s = eval(&edb, &idb).unwrap();
        assert!(same_facts(&n, &s));
        assert_eq!(s.relation("even").unwrap().len(), 4); // n0, n2, n4, n6
        assert_eq!(s.relation("odd").unwrap().len(), 3); // n1, n3, n5
    }

    #[test]
    fn agrees_with_negation() {
        let mut edb = Edb::new();
        edb.declare("student", &["S", "M", "G"]).unwrap();
        edb.insert_fact(&parse_atom("student(ann, math, 3.9)").unwrap())
            .unwrap();
        edb.insert_fact(&parse_atom("student(bob, math, 3.5)").unwrap())
            .unwrap();
        let idb = Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
                 ordinary(X) :- student(X, Y, Z), not honor(X).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let n = naive::eval(&edb, &idb).unwrap();
        let s = eval(&edb, &idb).unwrap();
        assert!(same_facts(&n, &s));
    }

    #[test]
    fn delta_rounds_terminate_on_cyclic_data() {
        let mut edb = Edb::new();
        edb.declare("prereq", &["C", "P"]).unwrap();
        for f in ["prereq(a, b)", "prereq(b, a)"] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let s = eval(&edb, &prior_idb()).unwrap();
        assert_eq!(s.relation("prior").unwrap().len(), 4);
    }

    #[test]
    fn restricted_matches_full_on_relevant_preds() {
        let edb = chain_edb(5);
        let idb = Idb::from_rules(
            parse_program(
                "prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).\n\
                 other(X) :- prereq(X, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let full = eval(&edb, &idb).unwrap();
        let restricted =
            eval_restricted(&edb, &idb, &[Sym::new("prior")], EvalOptions::default()).unwrap();
        assert_eq!(
            full.relation("prior").unwrap().len(),
            restricted.relation("prior").unwrap().len()
        );
        assert!(restricted.relation("other").is_none());
    }
}
