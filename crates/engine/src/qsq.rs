//! Query-Subquery (QSQ) evaluation — the fifth retrieve strategy.
//!
//! Like magic sets, QSQ makes bottom-up evaluation goal-directed: only
//! tuples relevant to the query's bindings are derived. Unlike our magic
//! path — which rewrites the *source program* afresh on every call and
//! recompiles the rewritten rules — QSQ compiles a **net** once per
//! (predicate, adornment) and caches it in the [`ProgramPlan`]:
//!
//! * an **input relation** `input_p^a` holding the bound-argument tuples
//!   (subqueries) with which `p^a` is demanded;
//! * an **answer relation** `ans_p^a` holding the derived answers;
//! * per rule, a chain of **pre-filter / post-filter nodes**: each body
//!   literal is a filter, and the join of the literals before an IDB
//!   occurrence is collapsed into a **supplementary relation**
//!   `sup{k}_{rule}_p^a` computed *once* and shared by the demand
//!   projection (`input_q^a' ← sup…`) and the continuation
//!   (`… ← sup…, ans_q^a', …`). The magic rewrite computes that prefix
//!   join twice — once in the propagation rule and once in the adorned
//!   rule — so on recursive programs the net does strictly less join
//!   work per round.
//!
//! The net rules form a positive (hence monotone) program, so the least
//! fixpoint needs no stratification: a single semi-naive loop fires the
//! net set-at-a-time through the same [`RuleTask`] / `fire_rule_batch`
//! machinery, delta-first plan variants, composite-index probes, and
//! selectivity-ordered literal schedules as the semi-naive strategy —
//! which also hands QSQ the Governor contract (work ticks, fact budget,
//! deadline, cancellation) and the determinism contract (coordinator
//! ticks and task-order merges make answers byte-identical at every
//! worker count) for free.
//!
//! Sub-fragments are constant-free — the query's constants live only in
//! the per-query wrapper rule `__qsq_query(vars) ← goals`, compiled
//! fresh per call (one or two tiny rules). The most common shape — a
//! single positive IDB goal whose arguments are constants and distinct
//! variables — skips even that: the constants are themselves the
//! subquery tuple, so the serving path seeds `input_p^a` directly and
//! filters `ans_p^a` on the bound positions, compiling nothing per call
//! (see [`bound_subject_substs`]). Everything else is a cache hit after
//! the first bound query of a given shape, which is why QSQ wins every
//! bound-query benchmark section: a warm call pays a hash lookup plus
//! the relevant fixpoint, while magic re-pays the rewrite and a
//! whole-program recompile.
//!
//! Shapes the net cannot host — negation anywhere in the demanded slice
//! (the net is a positive program) or adornments whose filter chains
//! cannot be scheduled (`UnsafeRule`) — surface as errors here; the
//! dispatch layer retries with semi-naive and records a
//! [`crate::query::Downgrade`], mirroring magic.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::adorn::{bound_args, suffix, Adornment, SipWalk};
use crate::bindings::{fire_rule_batch, DerivedFacts, RuleTask};
use crate::error::{EngineError, Result};
use crate::idb::Idb;
use crate::naive::EvalOptions;
use crate::plan::{ProgramPlan, RulePlan};
use crate::query::Retrieve;
use crate::seminaive::{delta_ranges, head_lens, outermost_scan, DELTA_CHUNK_MIN};
use qdk_logic::{Atom, Interner, Literal, Rule, Subst, Sym, Term, Var};
use qdk_storage::{CatalogStats, Edb, Relation, Tuple, Value};
use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, PoisonError};

/// The reserved head predicate of the per-query wrapper rule.
const QUERY_PRED: &str = "__qsq_query";

/// Name of the input (subquery) relation for `pred` under `a`.
fn input_name(pred: &str, a: &Adornment) -> Sym {
    Sym::new(&format!("input_{pred}__{}", suffix(a)))
}

/// Name of the answer relation for `pred` under `a`.
fn ans_name(pred: &str, a: &Adornment) -> Sym {
    Sym::new(&format!("ans_{pred}__{}", suffix(a)))
}

/// Name of supplementary relation `k` of rule `ri` of `pred` under `a`.
fn sup_name(pred: &str, a: &Adornment, ri: usize, k: usize) -> Sym {
    Sym::new(&format!("sup{k}_{ri}_{pred}__{}", suffix(a)))
}

/// One compiled net rule: its plan plus, per body occurrence reading a
/// net relation (input/ans/sup — the only relations that grow during
/// the fixpoint), a prebuilt delta-first plan variant.
#[derive(Debug)]
pub(crate) struct NetRule {
    pub(crate) plan: RulePlan,
    delta: Vec<(usize, RulePlan)>,
}

/// The compiled QSQ net for one (predicate, adornment): the input and
/// answer relations plus the supplementary/filter rule chains of every
/// source rule. Sub-fragments contain no query constants, so the
/// [`ProgramPlan`] caches them per adornment; only the query wrapper
/// fragment is built per call.
#[derive(Debug)]
pub(crate) struct Fragment {
    /// The source predicate this fragment answers.
    pred: Sym,
    /// The binding pattern it answers under.
    adornment: Adornment,
    /// The input (subquery) relation name.
    pub(crate) input: Sym,
    /// The answer relation name.
    pub(crate) ans: Sym,
    /// The compiled net rules, in deterministic emission order.
    pub(crate) rules: Vec<NetRule>,
    /// The (predicate, adornment) pairs this fragment demands.
    pub(crate) demands: Vec<(Sym, Adornment)>,
    /// Supplementary relations introduced.
    sups: u64,
    /// Pre/post-filter nodes (one per source body literal).
    filters: u64,
}

impl Fragment {
    /// Net nodes of this fragment: the input and answer relations, one
    /// node per supplementary relation, one filter node per source body
    /// literal.
    pub(crate) fn nodes(&self) -> u64 {
        2 + self.sups + self.filters
    }
}

/// Compiles one net rule: plan plus delta variants for the body
/// positions in `net_positions` (occurrences reading net relations).
fn net_rule(
    rule: &Rule,
    net_positions: &[usize],
    interner: &mut Interner,
    stats: Option<&CatalogStats>,
) -> NetRule {
    let plan = RulePlan::new_with_stats(rule, interner, stats);
    let delta = net_positions
        .iter()
        .map(|&i| (i, plan.delta_variant(i, stats)))
        .collect();
    NetRule { plan, delta }
}

/// The supplementary relation's columns: the distinct variables of the
/// prefix literals (first-occurrence order) still needed by the head or
/// the remaining body literals `rule.body[from..]`.
fn live_vars(prefix: &[(Literal, bool)], rule: &Rule, from: usize) -> Vec<Var> {
    let mut needed: Vec<Var> = Vec::new();
    rule.head.collect_vars(&mut needed);
    for lit in &rule.body[from..] {
        lit.atom.collect_vars(&mut needed);
    }
    let mut out: Vec<Var> = Vec::new();
    for (lit, _) in prefix {
        let mut vs = Vec::new();
        lit.atom.collect_vars(&mut vs);
        for v in vs {
            if needed.contains(&v) && !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

/// Builds the net fragment for `pred` under `adornment` from the given
/// source rules (the predicate's rules, or the per-query wrapper rule).
///
/// Rejects negation with `NotStratified`: the net program must stay
/// positive for the unstratified fixpoint to be the least model.
fn build_fragment<'a>(
    idb: &Idb,
    pred: &Sym,
    adornment: &Adornment,
    rules: impl IntoIterator<Item = &'a Rule>,
    stats: Option<&CatalogStats>,
) -> Result<Fragment> {
    let input = input_name(pred.as_str(), adornment);
    let ans = ans_name(pred.as_str(), adornment);
    let mut interner = Interner::new();
    let mut net: Vec<NetRule> = Vec::new();
    let mut demands: Vec<(Sym, Adornment)> = Vec::new();
    let mut sups = 0u64;
    let mut filters = 0u64;

    for (ri, rule) in rules.into_iter().enumerate() {
        if rule.body.iter().any(|l| !l.positive) {
            return Err(EngineError::NotStratified(format!(
                "qsq net does not support negation (rule {rule})"
            )));
        }
        let mut walk = SipWalk::new(&rule.head, adornment);
        let guard = Atom::new(input.clone(), bound_args(&rule.head, adornment));
        // The running prefix: literals joined so far, each marked with
        // whether it reads a net relation (and is thus delta-eligible).
        let mut prefix: Vec<(Literal, bool)> = vec![(Literal::pos(guard), true)];
        let mut sup_idx = 0usize;
        let positions = |p: &[(Literal, bool)]| -> Vec<usize> {
            p.iter()
                .enumerate()
                .filter(|(_, (_, is_net))| *is_net)
                .map(|(i, _)| i)
                .collect()
        };
        let body =
            |p: &[(Literal, bool)]| -> Vec<Literal> { p.iter().map(|(l, _)| l.clone()).collect() };

        for (i, lit) in rule.body.iter().enumerate() {
            let atom = &lit.atom;
            filters += 1;
            if atom.is_builtin() || !idb.defines(atom.pred.as_str()) {
                prefix.push((lit.clone(), false));
                walk.absorb(lit);
                continue;
            }
            let a = walk.adorn(atom);
            // Collapse a multi-literal prefix into a supplementary
            // relation: the prefix join is computed once, then shared by
            // the demand projection and the continuation below (magic
            // computes it twice).
            if prefix.len() > 1 {
                let live = live_vars(&prefix, rule, i);
                let sup = Atom::new(
                    sup_name(pred.as_str(), adornment, ri, sup_idx),
                    live.into_iter().map(Term::Var).collect(),
                );
                sup_idx += 1;
                sups += 1;
                net.push(net_rule(
                    &Rule::with_literals(sup.clone(), body(&prefix)),
                    &positions(&prefix),
                    &mut interner,
                    stats,
                ));
                prefix = vec![(Literal::pos(sup), true)];
            }
            // Demand projection: input_q^a(bound args) ← prefix.
            net.push(net_rule(
                &Rule::with_literals(
                    Atom::new(input_name(atom.pred.as_str(), &a), bound_args(atom, &a)),
                    body(&prefix),
                ),
                &positions(&prefix),
                &mut interner,
                stats,
            ));
            let demand = (atom.pred.clone(), a.clone());
            if !demands.contains(&demand) {
                demands.push(demand);
            }
            // Continuation: the occurrence's answers join the prefix.
            prefix.push((
                Literal::pos(Atom::new(
                    ans_name(atom.pred.as_str(), &a),
                    atom.args.clone(),
                )),
                true,
            ));
            walk.absorb(lit);
        }

        // The answer rule: head args are the source head's.
        net.push(net_rule(
            &Rule::with_literals(
                Atom::new(ans.clone(), rule.head.args.clone()),
                body(&prefix),
            ),
            &positions(&prefix),
            &mut interner,
            stats,
        ));
    }

    Ok(Fragment {
        pred: pred.clone(),
        adornment: adornment.clone(),
        input,
        ans,
        rules: net,
        demands,
        sups,
        filters,
    })
}

/// Returns the cached fragment for `(pred, adornment)`, building and
/// caching it on first demand. Build failures (negation in the slice)
/// are not cached — the downgraded strategies don't consult the cache,
/// and a later retry rebuilds cheaply.
fn fragment_for(
    plan: &ProgramPlan,
    idb: &Idb,
    pred: &Sym,
    adornment: &Adornment,
) -> Result<Arc<Fragment>> {
    let key = (pred.clone(), adornment.clone());
    if let Some(f) = plan
        .qsq_cache()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&key)
    {
        return Ok(Arc::clone(f));
    }
    let built = Arc::new(build_fragment(
        idb,
        pred,
        adornment,
        idb.rules_for(pred.as_str()),
        plan.stats(),
    )?);
    let mut cache = plan
        .qsq_cache()
        .write()
        .unwrap_or_else(PoisonError::into_inner);
    // A racing builder may have inserted meanwhile; both builds are
    // deterministic and identical, keep the first.
    Ok(Arc::clone(
        cache.entry(key).or_insert_with(|| Arc::clone(&built)),
    ))
}

/// Builds the per-query wrapper fragment and the transitive demand
/// closure of cached sub-fragments, in deterministic BFS order.
fn demand_closure(plan: &ProgramPlan, idb: &Idb, qfrag: &Fragment) -> Result<Vec<Arc<Fragment>>> {
    let mut frags: Vec<Arc<Fragment>> = Vec::new();
    let mut queued: HashSet<(Sym, String)> = HashSet::new();
    // The root fragment's rules are already in the net — a recursive
    // self-demand (the bound-subject fast path) must not re-add them.
    queued.insert((qfrag.pred.clone(), suffix(&qfrag.adornment)));
    let mut work: VecDeque<(Sym, Adornment)> = VecDeque::new();
    for (p, a) in &qfrag.demands {
        if queued.insert((p.clone(), suffix(a))) {
            work.push_back((p.clone(), a.clone()));
        }
    }
    while let Some((p, a)) = work.pop_front() {
        let f = fragment_for(plan, idb, &p, &a)?;
        for (dp, da) in &f.demands {
            if queued.insert((dp.clone(), suffix(da))) {
                work.push_back((dp.clone(), da.clone()));
            }
        }
        frags.push(f);
    }
    Ok(frags)
}

/// The distinct variables of the goal conjunction, in first-occurrence
/// order, with the answer columns appended (they are a subset for known
/// subjects, but a fresh subject's columns must be present too).
fn query_vars(columns: &[Var], goals: &[Literal]) -> Vec<Var> {
    let mut vars: Vec<Var> = Vec::new();
    for g in goals {
        for v in g.atom.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    for v in columns {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    vars
}

/// Builds the per-query wrapper fragment `__qsq_query(vars) ← goals`.
/// The wrapper's head is all-variables, so its adornment is all-free
/// and its input relation is zero-ary — the seed is the empty tuple.
fn query_fragment(
    idb: &Idb,
    vars: &[Var],
    goals: &[Literal],
    stats: Option<&CatalogStats>,
) -> Result<Fragment> {
    let head = Atom::new(QUERY_PRED, vars.iter().cloned().map(Term::Var).collect());
    let rule = Rule::with_literals(head, goals.to_vec());
    let pattern: Adornment = vec![false; vars.len()];
    build_fragment(idb, &Sym::new(QUERY_PRED), &pattern, [&rule], stats)
}

/// The bound-subject fast path: when the goal conjunction is a single
/// positive IDB literal whose arguments are constants or distinct
/// variables, the query *is* a subquery of the subject's own cached
/// fragment — the constant arguments are exactly one `input_p^a` seed
/// tuple. No wrapper rule exists, so a warm call compiles nothing at
/// all: two cache lookups, the net fixpoint, and a filter over
/// `ans_p^a` (the answer relation serves every subquery the net
/// demanded; only the tuples matching the seed's constants are ours).
///
/// Returns `Ok(None)` when the shape doesn't apply (qualifier goals,
/// builtins, EDB subjects, repeated variables) — the caller falls back
/// to the per-query wrapper fragment.
fn bound_subject_substs(
    edb: &Edb,
    idb: &Idb,
    plan: &ProgramPlan,
    columns: &[Var],
    goals: &[Literal],
    opts: &EvalOptions,
) -> Result<Option<Vec<Subst>>> {
    let [lit] = goals else { return Ok(None) };
    let atom = &lit.atom;
    if !lit.positive || atom.is_builtin() || !idb.defines(atom.pred.as_str()) {
        return Ok(None);
    }
    let mut adornment: Adornment = Vec::with_capacity(atom.args.len());
    let mut seed: Vec<Value> = Vec::new();
    let mut vars: Vec<(&Var, usize)> = Vec::new();
    for (i, t) in atom.args.iter().enumerate() {
        match t {
            Term::Const(c) => {
                adornment.push(true);
                seed.push(c.clone());
            }
            Term::Var(v) => {
                if vars.iter().any(|(u, _)| *u == v) {
                    return Ok(None); // repeated variable: needs the wrapper's join
                }
                vars.push((v, i));
                adornment.push(false);
            }
        }
    }
    if columns.iter().any(|c| !vars.iter().any(|(v, _)| *v == c)) {
        return Ok(None); // a fresh-subject column the goal does not bind
    }

    let frag = fragment_for(plan, idb, &atom.pred, &adornment)?;
    let frags = demand_closure(plan, idb, &frag)?;
    let mut derived = DerivedFacts::new();
    derived.insert(&frag.input, Tuple::new(seed))?;
    eval_net(edb, &frag, &frags, &mut derived, opts)?;

    let mut out = Vec::new();
    if let Some(rel) = derived.relation(frag.ans.as_str()) {
        'tuples: for tuple in rel.iter() {
            let vals = tuple.values();
            for (i, t) in atom.args.iter().enumerate() {
                if let Term::Const(c) = t {
                    if &vals[i] != c {
                        continue 'tuples;
                    }
                }
            }
            let s: Subst = vars
                .iter()
                .map(|(v, i)| ((*v).clone(), Term::Const(vals[*i].clone())))
                .collect();
            out.push(s);
        }
    }
    Ok(Some(out))
}

/// QSQ evaluation of a goal conjunction: build the wrapper fragment,
/// pull the demanded sub-fragments from the plan cache, seed the
/// wrapper's input relation, run the net fixpoint, and read the
/// wrapper's answer relation.
pub(crate) fn qsq_substs(
    edb: &Edb,
    idb: &Idb,
    plan: &ProgramPlan,
    columns: &[Var],
    goals: &[Literal],
    opts: EvalOptions,
) -> Result<Vec<Subst>> {
    if let Some(out) = bound_subject_substs(edb, idb, plan, columns, goals, &opts)? {
        return Ok(out);
    }
    let vars = query_vars(columns, goals);
    let qfrag = query_fragment(idb, &vars, goals, plan.stats())?;
    let frags = demand_closure(plan, idb, &qfrag)?;

    let mut derived = DerivedFacts::new();
    derived.insert(&qfrag.input, Tuple::new(Vec::new()))?;
    eval_net(edb, &qfrag, &frags, &mut derived, &opts)?;

    let mut out = Vec::new();
    if let Some(rel) = derived.relation(qfrag.ans.as_str()) {
        for tuple in rel.iter() {
            let s: Subst = vars
                .iter()
                .cloned()
                .zip(tuple.values().iter().cloned().map(Term::Const))
                .collect();
            out.push(s);
        }
    }
    Ok(out)
}

/// The net fixpoint: semi-naive over the (positive, hence monotone) net
/// program — round 0 fires every net rule against the totals, then
/// delta rounds fire only the prebuilt delta-first variants whose net
/// occurrence grew, chunking large delta scans across workers exactly
/// like the semi-naive strategy (same threshold, same order-preserving
/// window concatenation), so answers are byte-identical at every worker
/// count.
fn eval_net(
    edb: &Edb,
    qfrag: &Fragment,
    frags: &[Arc<Fragment>],
    derived: &mut DerivedFacts,
    opts: &EvalOptions,
) -> Result<()> {
    let net: Vec<&NetRule> = qfrag
        .rules
        .iter()
        .chain(frags.iter().flat_map(|f| f.rules.iter()))
        .collect();
    let gov = opts.governor();
    let pool = opts.pool();
    let obs = &opts.sink;
    let probes0 = if obs.enabled() {
        edb.access_stats()
    } else {
        (0, 0)
    };
    let composite0 = if obs.enabled() {
        edb.composite_probes()
    } else {
        0
    };

    let mut head_preds: Vec<&Sym> = Vec::new();
    for nr in &net {
        let p = &nr.plan.compiled.head.pred;
        if !head_preds.contains(&p) {
            head_preds.push(p);
        }
    }

    // Round 0: every net rule against the totals (the seeded input).
    let before = head_lens(derived, &head_preds);
    let round0_span = obs.span("iteration", 0);
    let firings0 = gov.work_spent();
    let tasks: Vec<RuleTask<'_>> = net.iter().map(|nr| RuleTask::total(&nr.plan)).collect();
    let added = fire_rule_batch(&pool, &gov, edb, derived, None, &tasks)?;
    gov.add_facts(added)?;
    if obs.enabled() {
        obs.counter("rule_firings", gov.work_spent().saturating_sub(firings0));
        obs.counter("delta_facts", added as u64);
    }
    drop(round0_span);
    let mut delta = delta_ranges(derived, &head_preds, &before);
    let mut round = 1u64;

    while !delta.is_empty() {
        let _iter_span = obs.span("iteration", round);
        let mut tasks: Vec<RuleTask<'_>> = Vec::new();
        for nr in &net {
            for (i, dp) in &nr.delta {
                let Some(&(start, end)) = delta.get(&nr.plan.compiled.body[*i].atom.pred) else {
                    continue; // no new facts for this occurrence
                };
                let len = end - start;
                if len >= DELTA_CHUNK_MIN && !pool.is_sequential() && outermost_scan(dp, *i) {
                    for (k, (lo, hi)) in pool.chunk_ranges(len).into_iter().enumerate() {
                        tasks.push(RuleTask::delta_chunk(
                            dp,
                            *i,
                            (start + lo, start + hi),
                            k == 0,
                        ));
                    }
                } else {
                    tasks.push(RuleTask::delta(dp, *i));
                }
            }
        }
        let before = head_lens(derived, &head_preds);
        let firings0 = gov.work_spent();
        if obs.enabled() {
            let chunked = tasks.iter().filter(|t| t.is_chunk()).count();
            obs.counter("delta_tasks", tasks.len() as u64);
            obs.counter("delta_chunks", chunked as u64);
            let delta_size: usize = delta.values().map(|(lo, hi)| hi - lo).sum();
            obs.counter("delta_size", delta_size as u64);
        }
        let added = fire_rule_batch(&pool, &gov, edb, derived, Some(&delta), &tasks)?;
        gov.add_facts(added)?;
        if obs.enabled() {
            obs.counter("rule_firings", gov.work_spent().saturating_sub(firings0));
            obs.counter("delta_facts", added as u64);
        }
        delta = delta_ranges(derived, &head_preds, &before);
        round += 1;
    }

    if obs.enabled() {
        let (p, s) = edb.access_stats();
        let (dp, ds) = derived.iter().fold((0, 0), |(p, s), (_, r)| {
            (p + r.index_probes(), s + r.full_scans())
        });
        obs.counter("index_probes", p.saturating_sub(probes0.0) + dp);
        obs.counter("full_scans", s.saturating_sub(probes0.1) + ds);
        let dc: u64 = derived.iter().map(|(_, r)| r.composite_probes()).sum();
        obs.counter(
            "composite_probes",
            edb.composite_probes().saturating_sub(composite0) + dc,
        );
        // QSQ-specific counters (aggregated by the metrics registry).
        let nodes: u64 = qfrag.nodes() + frags.iter().map(|f| f.nodes()).sum::<u64>();
        obs.counter("qsq_net_nodes", nodes);
        obs.counter("qsq_subqueries", 1 + frags.len() as u64);
        let input_tuples: usize = std::iter::once(&qfrag.input)
            .chain(frags.iter().map(|f| &f.input))
            .filter_map(|p| derived.relation(p.as_str()))
            .map(Relation::len)
            .sum();
        obs.counter("qsq_input_tuples", input_tuples as u64);
    }
    Ok(())
}

/// Renders the QSQ net a query would evaluate: one block per subquery
/// fragment (the per-query wrapper first, then the demanded fragments
/// in BFS order) listing its input/answer/supplementary nodes, its
/// demand edges, and every net rule's compiled plan — the same
/// EXPLAIN grammar as [`ProgramPlan::explain`], so the chosen access
/// paths (index probes, full scans) are visible per filter chain.
///
/// Builds (and caches) the same fragments evaluation would use, so
/// explaining a query warms its net cache.
pub fn explain_net(edb: &Edb, idb: &Idb, plan: &ProgramPlan, query: &Retrieve) -> Result<String> {
    let (columns, goals) = crate::query::query_goals(edb, idb, query)?;
    let vars = query_vars(&columns, &goals);
    let qfrag = query_fragment(idb, &vars, &goals, plan.stats())?;
    let frags = demand_closure(plan, idb, &qfrag)?;

    let mut out = format!("qsq net for: {query}\n");
    let mut render = |frag: &Fragment, seed: bool| {
        out.push_str(&format!(
            "subquery {}[{}] — {} nodes: input {}{}, ans {}, {} supplementary, {} filters\n",
            frag.pred,
            suffix(&frag.adornment),
            frag.nodes(),
            frag.input,
            if seed { " (seed)" } else { "" },
            frag.ans,
            frag.sups,
            frag.filters,
        ));
        for (p, a) in &frag.demands {
            out.push_str(&format!(
                "  edge: {} -> {}\n",
                frag.input,
                input_name(p.as_str(), a)
            ));
        }
        for nr in &frag.rules {
            for line in nr.plan.explain().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
    };
    render(&qfrag, true);
    for f in &frags {
        render(f, false);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{self, Retrieve, Strategy};
    use qdk_logic::parser::{parse_atom, parse_body, parse_program};

    fn prior_idb() -> Idb {
        Idb::from_rules(
            parse_program(
                "prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap()
    }

    fn chain(n: usize) -> Edb {
        let mut edb = Edb::new();
        edb.declare("prereq", &["C", "P"]).unwrap();
        for i in 0..n {
            edb.insert_fact(&parse_atom(&format!("prereq(c{}, c{})", i + 1, i)).unwrap())
                .unwrap();
        }
        edb
    }

    #[test]
    fn fragment_decomposes_recursive_rule_with_one_supplementary() {
        let idb = prior_idb();
        let pred = Sym::new("prior");
        let frag = build_fragment(
            &idb,
            &pred,
            &vec![true, false],
            idb.rules_for("prior"),
            None,
        )
        .unwrap();
        let rendered: Vec<&str> = frag
            .rules
            .iter()
            .map(|nr| nr.plan.rule_str.as_str())
            .collect();
        assert_eq!(
            rendered,
            vec![
                // Base rule: no IDB occurrence, guard + EDB literal.
                "ans_prior__bf(X, Y) :- input_prior__bf(X), prereq(X, Y).",
                // Recursive rule: the prefix join is collapsed into the
                // supplementary, shared by demand and continuation.
                "sup0_1_prior__bf(X, Z) :- input_prior__bf(X), prereq(X, Z).",
                "input_prior__bf(Z) :- sup0_1_prior__bf(X, Z).",
                "ans_prior__bf(X, Y) :- sup0_1_prior__bf(X, Z), ans_prior__bf(Z, Y).",
            ]
        );
        assert_eq!(frag.demands, vec![(pred, vec![true, false])]);
        // 2 (input/ans) + 1 supplementary + 3 filters.
        assert_eq!(frag.nodes(), 6);
    }

    #[test]
    fn bound_query_matches_seminaive() {
        let edb = chain(8);
        let idb = prior_idb();
        for subject in [
            "prior(c5, Y)",
            "prior(X, c2)",
            "prior(X, Y)",
            "prior(c5, c2)",
        ] {
            let q = Retrieve::new(parse_atom(subject).unwrap(), vec![]);
            let qsq = query::retrieve(&edb, &idb, &q, Strategy::Qsq).unwrap();
            let semi = query::retrieve(&edb, &idb, &q, Strategy::SemiNaive).unwrap();
            assert_eq!(qsq.sorted(), semi.sorted(), "{subject}");
            assert!(qsq.downgrades.is_empty(), "{subject}");
        }
    }

    #[test]
    fn qualifier_and_fresh_subject_match_seminaive() {
        let edb = chain(8);
        let idb = prior_idb();
        let q = Retrieve::new(
            parse_atom("answer(X)").unwrap(),
            parse_body("prior(X, c0), prereq(X, c4)").unwrap(),
        );
        let qsq = query::retrieve(&edb, &idb, &q, Strategy::Qsq).unwrap();
        let semi = query::retrieve(&edb, &idb, &q, Strategy::SemiNaive).unwrap();
        assert_eq!(qsq.sorted(), semi.sorted());
    }

    #[test]
    fn derives_only_the_relevant_slice() {
        // On a chain, prior(c5, Y) reaches only c5's 5 descendants — the
        // net must not materialize the full 36-fact closure.
        let edb = chain(8);
        let idb = prior_idb();
        let q = Retrieve::new(parse_atom("prior(c5, Y)").unwrap(), vec![]);
        let plan = ProgramPlan::compile_with_stats(&idb, edb.stats());
        let (columns, goals) = query::query_goals(&edb, &idb, &q).unwrap();
        let substs =
            qsq_substs(&edb, &idb, &plan, &columns, &goals, EvalOptions::default()).unwrap();
        assert_eq!(substs.len(), 5);
    }

    #[test]
    fn fragments_are_cached_per_adornment_and_shared_by_clones() {
        let edb = chain(6);
        let idb = prior_idb();
        let plan = ProgramPlan::compile_with_stats(&idb, edb.stats());
        let q = Retrieve::new(parse_atom("prior(c3, Y)").unwrap(), vec![]);
        query::retrieve_compiled(&edb, &idb, &plan, &q, Strategy::Qsq, EvalOptions::default())
            .unwrap();
        assert_eq!(plan.qsq_cache().read().unwrap().len(), 1);
        let cached = Arc::clone(
            plan.qsq_cache()
                .read()
                .unwrap()
                .get(&(Sym::new("prior"), vec![true, false]))
                .unwrap(),
        );
        // A clone of the plan (the serving layer clones per snapshot)
        // shares the cache, and a repeat query reuses the same fragment.
        let clone = plan.clone();
        query::retrieve_compiled(
            &edb,
            &idb,
            &clone,
            &Retrieve::new(parse_atom("prior(c2, Y)").unwrap(), vec![]),
            Strategy::Qsq,
            EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(clone.qsq_cache().read().unwrap().len(), 1);
        assert!(Arc::ptr_eq(
            &cached,
            clone
                .qsq_cache()
                .read()
                .unwrap()
                .get(&(Sym::new("prior"), vec![true, false]))
                .unwrap()
        ));
    }

    #[test]
    fn negation_errors_not_stratified() {
        let idb = Idb::from_rules(
            parse_program("p(X) :- q(X), not r(X).\nq(X) :- e(X).\nr(X) :- e(X).")
                .unwrap()
                .rules,
        )
        .unwrap();
        let pred = Sym::new("p");
        assert!(matches!(
            build_fragment(&idb, &pred, &vec![true], idb.rules_for("p"), None),
            Err(EngineError::NotStratified(_))
        ));
    }

    #[test]
    fn mutual_recursion_matches_seminaive() {
        let mut edb = Edb::new();
        edb.declare("zero", &["A"]).unwrap();
        edb.declare("succ", &["A", "B"]).unwrap();
        edb.insert_fact(&parse_atom("zero(n0)").unwrap()).unwrap();
        for i in 0..6 {
            edb.insert_fact(&parse_atom(&format!("succ(n{i}, n{})", i + 1)).unwrap())
                .unwrap();
        }
        let idb = Idb::from_rules(
            parse_program(
                "even(X) :- zero(X).\n\
                 even(X) :- succ(Y, X), odd(Y).\n\
                 odd(X) :- succ(Y, X), even(Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        for subject in ["even(n4)", "even(X)", "odd(n3)"] {
            let q = Retrieve::new(parse_atom(subject).unwrap(), vec![]);
            let qsq = query::retrieve(&edb, &idb, &q, Strategy::Qsq).unwrap();
            let semi = query::retrieve(&edb, &idb, &q, Strategy::SemiNaive).unwrap();
            assert_eq!(qsq.sorted(), semi.sorted(), "{subject}");
        }
    }

    #[test]
    fn builtin_filters_pass_through() {
        let mut edb = Edb::new();
        edb.declare("student", &["S", "M", "G"]).unwrap();
        for f in [
            "student(ann, math, 3.9)",
            "student(bob, math, 3.5)",
            "student(cara, physics, 3.8)",
        ] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let idb = Idb::from_rules(
            parse_program("honor(X) :- student(X, Y, Z), Z > 3.7.")
                .unwrap()
                .rules,
        )
        .unwrap();
        for subject in ["honor(ann)", "honor(X)", "honor(bob)"] {
            let q = Retrieve::new(parse_atom(subject).unwrap(), vec![]);
            let qsq = query::retrieve(&edb, &idb, &q, Strategy::Qsq).unwrap();
            let semi = query::retrieve(&edb, &idb, &q, Strategy::SemiNaive).unwrap();
            assert_eq!(qsq.sorted(), semi.sorted(), "{subject}");
        }
    }

    #[test]
    fn answers_identical_at_every_worker_count() {
        let edb = chain(12);
        let idb = prior_idb();
        let q = Retrieve::new(parse_atom("prior(c9, Y)").unwrap(), vec![]);
        let reference = query::retrieve_with(
            &edb,
            &idb,
            &q,
            Strategy::Qsq,
            EvalOptions::default().with_parallelism(qdk_logic::Parallelism::SEQUENTIAL),
        )
        .unwrap();
        for workers in [2usize, 4, 8] {
            let got = query::retrieve_with(
                &edb,
                &idb,
                &q,
                Strategy::Qsq,
                EvalOptions::default().with_parallelism(qdk_logic::Parallelism::workers(workers)),
            )
            .unwrap();
            assert_eq!(got.rows, reference.rows, "workers={workers}");
        }
    }

    #[test]
    fn explain_renders_nodes_edges_and_access_paths() {
        let edb = chain(6);
        let idb = prior_idb();
        let plan = ProgramPlan::compile_with_stats(&idb, edb.stats());
        let q = Retrieve::new(parse_atom("prior(c3, Y)").unwrap(), vec![]);
        let text = explain_net(&edb, &idb, &plan, &q).unwrap();
        assert!(text.starts_with("qsq net for: retrieve prior(c3, Y)"));
        assert!(text.contains("subquery __qsq_query[f]"), "{text}");
        assert!(text.contains("input input___qsq_query__f (seed)"), "{text}");
        assert!(text.contains("subquery prior[bf]"), "{text}");
        assert!(text.contains("edge: input___qsq_query__f -> input_prior__bf"));
        assert!(text.contains("sup0_1_prior__bf"), "{text}");
        // The pinned EXPLAIN grammar shows the access paths.
        assert!(
            text.contains("probe on") || text.contains("full scan"),
            "{text}"
        );
        // Explaining warmed the fragment cache.
        assert_eq!(plan.qsq_cache().read().unwrap().len(), 1);
    }
}
