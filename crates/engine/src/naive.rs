//! Naive bottom-up evaluation.
//!
//! The textbook baseline: fire every rule against the full current fact
//! set until a fixpoint is reached. Correct, simple — and it re-derives
//! every fact on every iteration, which is what semi-naive evaluation
//! avoids. Kept both as the reference implementation the others are tested
//! against and as the baseline for the P1 performance experiment.

use crate::bindings::{fire_rule_batch, DerivedFacts, RuleTask};
use crate::error::Result;
use crate::idb::Idb;
use crate::plan::ProgramPlan;
use crate::stratify::stratify;
use qdk_logic::governor::{CancelToken, Governor, ResourceLimits};
use qdk_logic::obs::ObsSink;
use qdk_logic::{Parallelism, Sym};
use qdk_storage::Edb;
use threadpool::Pool;

/// Options controlling a bottom-up run: the unified [`ResourceLimits`]
/// (work budget, deadline, fact count), an optional cooperative
/// [`CancelToken`], and the worker count for parallel fixpoints.
/// Exhaustion aborts with [`crate::EngineError::Exhausted`] carrying the
/// governor's structured diagnostic.
#[derive(Clone, Debug, Default)]
pub struct EvalOptions {
    /// Resource limits enforced during evaluation (`Default` = unbounded).
    pub limits: ResourceLimits,
    /// Cooperative cancellation token, checkable from another thread.
    pub cancel: Option<CancelToken>,
    /// Worker count for the parallel fixpoints (`Default` = available
    /// cores; [`Parallelism::SEQUENTIAL`] pins the exact sequential path).
    pub parallelism: Parallelism,
    /// Observability sink; spans and counters are emitted here (the
    /// default disabled sink records nothing and costs one branch).
    pub sink: ObsSink,
}

impl EvalOptions {
    /// Options enforcing the given limits.
    pub fn with_limits(limits: ResourceLimits) -> Self {
        EvalOptions {
            limits,
            ..EvalOptions::default()
        }
    }

    /// Set the worker count.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Set a cooperative cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Install an observability sink.
    #[must_use]
    pub fn with_sink(mut self, sink: ObsSink) -> Self {
        self.sink = sink;
        self
    }

    /// Build the governor for one evaluation run.
    pub(crate) fn governor(&self) -> Governor {
        Governor::new(self.limits).with_cancel(self.cancel.clone())
    }

    /// Build the worker pool for one evaluation run.
    pub(crate) fn pool(&self) -> Pool {
        Pool::new(self.parallelism.get())
    }
}

/// Computes the least fixpoint of the IDB over the EDB naively, stratum by
/// stratum. Returns all derived facts.
pub fn eval(edb: &Edb, idb: &Idb) -> Result<DerivedFacts> {
    eval_with(edb, idb, EvalOptions::default())
}

/// [`eval`] with options. Compiles the program first — against the EDB's
/// cardinality snapshot, so literal order follows the cost model; callers
/// evaluating the same IDB repeatedly should compile once and use
/// [`eval_compiled`].
pub fn eval_with(edb: &Edb, idb: &Idb, opts: EvalOptions) -> Result<DerivedFacts> {
    let plan = ProgramPlan::compile_with_stats(idb, edb.stats());
    eval_governed(edb, idb, &plan, None, &opts)
}

/// Like [`eval_with`], but restricted to the given predicates (used by the
/// goal-directed strategy to skip irrelevant rules).
pub fn eval_restricted(
    edb: &Edb,
    idb: &Idb,
    relevant: &[Sym],
    opts: EvalOptions,
) -> Result<DerivedFacts> {
    let plan = ProgramPlan::compile_with_stats(idb, edb.stats());
    eval_governed(edb, idb, &plan, Some(relevant), &opts)
}

/// Naive evaluation of an already compiled program. `plan` must be the
/// compilation of `idb` (the knowledge-base layer caches it).
pub fn eval_compiled(
    edb: &Edb,
    idb: &Idb,
    plan: &ProgramPlan,
    relevant: Option<&[Sym]>,
    opts: EvalOptions,
) -> Result<DerivedFacts> {
    eval_governed(edb, idb, plan, relevant, &opts)
}

/// Shared fixpoint loop: one governor tick per rule firing, fact
/// accounting per absorbed iteration delta.
///
/// Each iteration fires every rule of the stratum against the facts known
/// at the iteration's start (jacobi-style, so rule batches are independent
/// and can run on worker threads) and merges the batches in rule order —
/// the merged insertion order is identical whether the batches ran on one
/// thread or many.
fn eval_governed(
    edb: &Edb,
    idb: &Idb,
    plan: &ProgramPlan,
    relevant: Option<&[Sym]>,
    opts: &EvalOptions,
) -> Result<DerivedFacts> {
    let strat = stratify(idb)?;
    let mut derived = DerivedFacts::new();
    let gov = opts.governor();
    let pool = opts.pool();
    let obs = &opts.sink;
    let probes0 = if obs.enabled() {
        edb.access_stats()
    } else {
        (0, 0)
    };
    let composite0 = if obs.enabled() {
        edb.composite_probes()
    } else {
        0
    };
    for (si, stratum) in strat.strata().iter().enumerate() {
        let rules: Vec<&crate::plan::RulePlan> = plan
            .plans()
            .iter()
            .filter(|rp| {
                let head = &rp.compiled.head.pred;
                stratum.contains(head) && relevant.is_none_or(|r| r.contains(head))
            })
            .collect();
        if rules.is_empty() {
            continue;
        }
        let _stratum_span = obs.span("stratum", si as u64);
        let mut iteration = 0u64;
        loop {
            let _iter_span = obs.span("iteration", iteration);
            let firings0 = gov.work_spent();
            let tasks: Vec<RuleTask<'_>> = rules.iter().map(|&rp| RuleTask::total(rp)).collect();
            let added = fire_rule_batch(&pool, &gov, edb, &mut derived, None, &tasks)?;
            gov.add_facts(added)?;
            if obs.enabled() {
                obs.counter("rule_firings", gov.work_spent().saturating_sub(firings0));
                obs.counter("delta_facts", added as u64);
            }
            iteration += 1;
            if added == 0 {
                break;
            }
        }
    }
    if obs.enabled() {
        let (p, s) = edb.access_stats();
        let (dp, ds) = derived.iter().fold((0, 0), |(p, s), (_, r)| {
            (p + r.index_probes(), s + r.full_scans())
        });
        obs.counter("index_probes", p.saturating_sub(probes0.0) + dp);
        obs.counter("full_scans", s.saturating_sub(probes0.1) + ds);
        let dc: u64 = derived.iter().map(|(_, r)| r.composite_probes()).sum();
        obs.counter(
            "composite_probes",
            edb.composite_probes().saturating_sub(composite0) + dc,
        );
    }
    Ok(derived)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_program};
    use qdk_storage::Value;

    fn chain_edb(n: usize) -> Edb {
        let mut edb = Edb::new();
        edb.declare("prereq", &["Ctitle", "Ptitle"]).unwrap();
        for i in 0..n {
            edb.insert_fact(&parse_atom(&format!("prereq(c{}, c{})", i + 1, i)).unwrap())
                .unwrap();
        }
        edb
    }

    fn prior_idb() -> Idb {
        Idb::from_rules(
            parse_program(
                "prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap()
    }

    #[test]
    fn transitive_closure_of_chain() {
        let edb = chain_edb(5);
        let derived = eval(&edb, &prior_idb()).unwrap();
        // A chain of 5 edges has 5+4+3+2+1 = 15 closure pairs.
        assert_eq!(derived.relation("prior").unwrap().len(), 15);
    }

    #[test]
    fn nonrecursive_rules_fire_once() {
        let mut edb = Edb::new();
        edb.declare("student", &["S", "M", "G"]).unwrap();
        edb.insert_fact(&parse_atom("student(ann, math, 3.9)").unwrap())
            .unwrap();
        edb.insert_fact(&parse_atom("student(bob, math, 3.5)").unwrap())
            .unwrap();
        let idb = Idb::from_rules(
            parse_program("honor(X) :- student(X, Y, Z), Z > 3.7.")
                .unwrap()
                .rules,
        )
        .unwrap();
        let derived = eval(&edb, &idb).unwrap();
        let honor = derived.relation("honor").unwrap();
        assert_eq!(honor.len(), 1);
        assert!(honor.contains(&qdk_storage::Tuple::new(vec![Value::sym("ann")])));
    }

    #[test]
    fn stratified_negation_evaluates_lower_first() {
        let mut edb = Edb::new();
        edb.declare("student", &["S", "M", "G"]).unwrap();
        edb.insert_fact(&parse_atom("student(ann, math, 3.9)").unwrap())
            .unwrap();
        edb.insert_fact(&parse_atom("student(bob, math, 3.5)").unwrap())
            .unwrap();
        let idb = Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
                 ordinary(X) :- student(X, Y, Z), not honor(X).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let derived = eval(&edb, &idb).unwrap();
        let ordinary = derived.relation("ordinary").unwrap();
        assert_eq!(ordinary.len(), 1);
        assert!(ordinary.contains(&qdk_storage::Tuple::new(vec![Value::sym("bob")])));
    }

    #[test]
    fn budget_aborts_runaway() {
        let edb = chain_edb(30);
        let err = eval_with(
            &edb,
            &prior_idb(),
            EvalOptions::with_limits(ResourceLimits::default().with_work_budget(3)),
        )
        .unwrap_err();
        match err {
            crate::EngineError::Exhausted(e) => {
                assert_eq!(e.resource, qdk_logic::governor::Resource::WorkBudget);
                assert_eq!(e.limit, 3);
                assert!(e.spent > e.limit);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn fact_limit_aborts_runaway() {
        let edb = chain_edb(30);
        let err = eval_with(
            &edb,
            &prior_idb(),
            EvalOptions::with_limits(ResourceLimits::default().with_max_facts(10)),
        )
        .unwrap_err();
        match err {
            crate::EngineError::Exhausted(e) => {
                assert_eq!(e.resource, qdk_logic::governor::Resource::Facts);
                assert_eq!(e.limit, 10);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn cancel_token_aborts_evaluation() {
        let edb = chain_edb(30);
        let token = CancelToken::new();
        token.cancel();
        // The governor polls on its first tick, so a pre-cancelled token
        // stops evaluation before any work happens.
        let err = eval_with(
            &edb,
            &prior_idb(),
            EvalOptions::default().with_cancel(token),
        )
        .unwrap_err();
        match err {
            crate::EngineError::Exhausted(e) => {
                assert_eq!(e.resource, qdk_logic::governor::Resource::Cancelled);
            }
            other => panic!("expected Exhausted(Cancelled), got {other:?}"),
        }
    }

    #[test]
    fn restricted_eval_skips_irrelevant() {
        let edb = chain_edb(3);
        let idb = Idb::from_rules(
            parse_program(
                "prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).\n\
                 noise(X) :- prereq(X, Y), prereq(Y, X).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let derived =
            eval_restricted(&edb, &idb, &[Sym::new("prior")], EvalOptions::default()).unwrap();
        assert!(derived.relation("prior").is_some());
        assert!(derived.relation("noise").is_none());
    }

    #[test]
    fn empty_idb_derives_nothing() {
        let edb = chain_edb(3);
        let derived = eval(&edb, &Idb::new()).unwrap();
        assert!(derived.is_empty());
    }

    #[test]
    fn cycle_in_data_terminates() {
        // prereq cycle: closure is finite, evaluation must terminate.
        let mut edb = Edb::new();
        edb.declare("prereq", &["C", "P"]).unwrap();
        for f in ["prereq(a, b)", "prereq(b, c)", "prereq(c, a)"] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let derived = eval(&edb, &prior_idb()).unwrap();
        // All 9 ordered pairs are in the closure of a 3-cycle.
        assert_eq!(derived.relation("prior").unwrap().len(), 9);
    }
}
