//! Naive bottom-up evaluation.
//!
//! The textbook baseline: fire every rule against the full current fact
//! set until a fixpoint is reached. Correct, simple — and it re-derives
//! every fact on every iteration, which is what semi-naive evaluation
//! avoids. Kept both as the reference implementation the others are tested
//! against and as the baseline for the P1 performance experiment.

use crate::bindings::{fire_rule, DerivedFacts, FactView};
use crate::error::Result;
use crate::idb::Idb;
use crate::stratify::stratify;
use qdk_logic::Sym;
use qdk_storage::Edb;

/// Options controlling a bottom-up run.
#[derive(Clone, Copy, Debug)]
#[derive(Default)]
pub struct EvalOptions {
    /// Abort with [`crate::EngineError::BudgetExhausted`] after this many
    /// rule firings (`None` = unlimited). Used to demonstrate runaway
    /// evaluations without hanging the process.
    pub budget: Option<u64>,
}


/// Computes the least fixpoint of the IDB over the EDB naively, stratum by
/// stratum. Returns all derived facts.
pub fn eval(edb: &Edb, idb: &Idb) -> Result<DerivedFacts> {
    eval_with(edb, idb, EvalOptions::default())
}

/// [`eval`] with options.
pub fn eval_with(edb: &Edb, idb: &Idb, opts: EvalOptions) -> Result<DerivedFacts> {
    let strat = stratify(idb)?;
    let mut derived = DerivedFacts::new();
    let mut firings: u64 = 0;
    for stratum in strat.strata() {
        loop {
            let mut added = 0;
            for rule in idb.rules() {
                if !stratum.contains(&rule.head.pred) {
                    continue;
                }
                check_budget(&mut firings, opts)?;
                let mut fresh = DerivedFacts::new();
                {
                    let view = FactView::total(edb, &derived);
                    fire_rule(rule, &view, &mut fresh)?;
                }
                added += derived.absorb(&fresh);
            }
            if added == 0 {
                break;
            }
        }
    }
    Ok(derived)
}

/// Like [`eval_with`], but restricted to the given predicates (used by the
/// goal-directed strategy to skip irrelevant rules).
pub fn eval_restricted(
    edb: &Edb,
    idb: &Idb,
    relevant: &[Sym],
    opts: EvalOptions,
) -> Result<DerivedFacts> {
    let strat = stratify(idb)?;
    let mut derived = DerivedFacts::new();
    let mut firings: u64 = 0;
    for stratum in strat.strata() {
        loop {
            let mut added = 0;
            for rule in idb.rules() {
                if !stratum.contains(&rule.head.pred) || !relevant.contains(&rule.head.pred) {
                    continue;
                }
                check_budget(&mut firings, opts)?;
                let mut fresh = DerivedFacts::new();
                {
                    let view = FactView::total(edb, &derived);
                    fire_rule(rule, &view, &mut fresh)?;
                }
                added += derived.absorb(&fresh);
            }
            if added == 0 {
                break;
            }
        }
    }
    Ok(derived)
}

fn check_budget(firings: &mut u64, opts: EvalOptions) -> Result<()> {
    *firings += 1;
    if let Some(b) = opts.budget {
        if *firings > b {
            return Err(crate::EngineError::BudgetExhausted { budget: b });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_program};
    use qdk_storage::Value;

    fn chain_edb(n: usize) -> Edb {
        let mut edb = Edb::new();
        edb.declare("prereq", &["Ctitle", "Ptitle"]).unwrap();
        for i in 0..n {
            edb.insert_fact(&parse_atom(&format!("prereq(c{}, c{})", i + 1, i)).unwrap())
                .unwrap();
        }
        edb
    }

    fn prior_idb() -> Idb {
        Idb::from_rules(
            parse_program(
                "prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap()
    }

    #[test]
    fn transitive_closure_of_chain() {
        let edb = chain_edb(5);
        let derived = eval(&edb, &prior_idb()).unwrap();
        // A chain of 5 edges has 5+4+3+2+1 = 15 closure pairs.
        assert_eq!(derived.relation("prior").unwrap().len(), 15);
    }

    #[test]
    fn nonrecursive_rules_fire_once() {
        let mut edb = Edb::new();
        edb.declare("student", &["S", "M", "G"]).unwrap();
        edb.insert_fact(&parse_atom("student(ann, math, 3.9)").unwrap())
            .unwrap();
        edb.insert_fact(&parse_atom("student(bob, math, 3.5)").unwrap())
            .unwrap();
        let idb = Idb::from_rules(
            parse_program("honor(X) :- student(X, Y, Z), Z > 3.7.")
                .unwrap()
                .rules,
        )
        .unwrap();
        let derived = eval(&edb, &idb).unwrap();
        let honor = derived.relation("honor").unwrap();
        assert_eq!(honor.len(), 1);
        assert!(honor.contains(&qdk_storage::Tuple::new(vec![Value::sym("ann")])));
    }

    #[test]
    fn stratified_negation_evaluates_lower_first() {
        let mut edb = Edb::new();
        edb.declare("student", &["S", "M", "G"]).unwrap();
        edb.insert_fact(&parse_atom("student(ann, math, 3.9)").unwrap())
            .unwrap();
        edb.insert_fact(&parse_atom("student(bob, math, 3.5)").unwrap())
            .unwrap();
        let idb = Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
                 ordinary(X) :- student(X, Y, Z), not honor(X).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let derived = eval(&edb, &idb).unwrap();
        let ordinary = derived.relation("ordinary").unwrap();
        assert_eq!(ordinary.len(), 1);
        assert!(ordinary.contains(&qdk_storage::Tuple::new(vec![Value::sym("bob")])));
    }

    #[test]
    fn budget_aborts_runaway() {
        let edb = chain_edb(30);
        let err = eval_with(
            &edb,
            &prior_idb(),
            EvalOptions { budget: Some(3) },
        )
        .unwrap_err();
        assert!(matches!(err, crate::EngineError::BudgetExhausted { .. }));
    }

    #[test]
    fn restricted_eval_skips_irrelevant() {
        let edb = chain_edb(3);
        let idb = Idb::from_rules(
            parse_program(
                "prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).\n\
                 noise(X) :- prereq(X, Y), prereq(Y, X).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let derived = eval_restricted(
            &edb,
            &idb,
            &[Sym::new("prior")],
            EvalOptions::default(),
        )
        .unwrap();
        assert!(derived.relation("prior").is_some());
        assert!(derived.relation("noise").is_none());
    }

    #[test]
    fn empty_idb_derives_nothing() {
        let edb = chain_edb(3);
        let derived = eval(&edb, &Idb::new()).unwrap();
        assert!(derived.is_empty());
    }

    #[test]
    fn cycle_in_data_terminates() {
        // prereq cycle: closure is finite, evaluation must terminate.
        let mut edb = Edb::new();
        edb.declare("prereq", &["C", "P"]).unwrap();
        for f in ["prereq(a, b)", "prereq(b, c)", "prereq(c, a)"] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        let derived = eval(&edb, &prior_idb()).unwrap();
        // All 9 ordered pairs are in the closure of a 3-cycle.
        assert_eq!(derived.relation("prior").unwrap().len(), 9);
    }
}
