//! The intensional database.

use crate::error::{EngineError, Result};
use qdk_logic::{Rule, Sym};
use std::collections::HashMap;

/// The intensional database: the set `S` of §2.1 — predicates with
/// associated rules, each predicate being the head of each of its rules.
///
/// `Idb` preserves rule source order (rule order is visible in the order
/// `describe` answers are generated, matching the paper's examples) and
/// indexes rules by head predicate.
#[derive(Clone, Debug, Default)]
pub struct Idb {
    rules: Vec<Rule>,
    by_head: HashMap<Sym, Vec<usize>>,
}

impl Idb {
    /// Creates an empty IDB.
    pub fn new() -> Self {
        Idb::default()
    }

    /// Builds an IDB from rules.
    pub fn from_rules(rules: impl IntoIterator<Item = Rule>) -> Result<Self> {
        let mut idb = Idb::new();
        for r in rules {
            idb.add_rule(r)?;
        }
        Ok(idb)
    }

    /// Checks every condition [`Self::add_rule`] would, without touching
    /// the rule set (the pre-flight check the durability layer runs
    /// before logging the rule).
    pub fn validate_rule(&self, rule: &Rule) -> Result<()> {
        if rule.head.is_builtin() {
            return Err(EngineError::BuiltinHead(rule.head.to_string()));
        }
        Ok(())
    }

    /// Adds a rule. The head must not be a built-in comparison.
    pub fn add_rule(&mut self, rule: Rule) -> Result<()> {
        if rule.head.is_builtin() {
            return Err(EngineError::BuiltinHead(rule.head.to_string()));
        }
        let idx = self.rules.len();
        self.by_head
            .entry(rule.head.pred.clone())
            .or_default()
            .push(idx);
        self.rules.push(rule);
        Ok(())
    }

    /// All rules in source order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The rules whose head predicate is `pred`, in source order.
    pub fn rules_for(&self, pred: &str) -> impl Iterator<Item = &Rule> {
        self.by_head
            .get(pred)
            .into_iter()
            .flatten()
            .map(|&i| &self.rules[i])
    }

    /// True if `pred` is an IDB predicate (the head of at least one rule).
    pub fn defines(&self, pred: &str) -> bool {
        self.by_head.contains_key(pred)
    }

    /// The IDB predicate names, in first-definition order.
    pub fn predicates(&self) -> Vec<Sym> {
        let mut seen = Vec::new();
        for r in &self.rules {
            if !seen.contains(&r.head.pred) {
                seen.push(r.head.pred.clone());
            }
        }
        seen
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the IDB has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Returns a copy of this IDB with `extra` rules appended (used to add
    /// temporary query rules without mutating the original).
    pub fn extended(&self, extra: impl IntoIterator<Item = Rule>) -> Result<Idb> {
        let mut idb = self.clone();
        for r in extra {
            idb.add_rule(r)?;
        }
        Ok(idb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_program;

    fn sample() -> Idb {
        let p = parse_program(
            "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
             prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
        )
        .unwrap();
        Idb::from_rules(p.rules).unwrap()
    }

    #[test]
    fn groups_rules_by_head() {
        let idb = sample();
        assert_eq!(idb.len(), 3);
        assert_eq!(idb.rules_for("prior").count(), 2);
        assert_eq!(idb.rules_for("honor").count(), 1);
        assert_eq!(idb.rules_for("ghost").count(), 0);
        assert!(idb.defines("prior"));
        assert!(!idb.defines("prereq"));
    }

    #[test]
    fn predicates_in_definition_order() {
        let idb = sample();
        let names: Vec<String> = idb.predicates().iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["honor", "prior"]);
    }

    #[test]
    fn rejects_builtin_head() {
        let mut idb = Idb::new();
        let r = Rule::new(
            qdk_logic::Atom::new(
                "=",
                vec![qdk_logic::Term::var("X"), qdk_logic::Term::var("Y")],
            ),
            vec![],
        );
        assert!(matches!(idb.add_rule(r), Err(EngineError::BuiltinHead(_))));
    }

    #[test]
    fn extended_does_not_mutate_original() {
        let idb = sample();
        let extra = qdk_logic::parser::parse_rule("top(X) :- honor(X).").unwrap();
        let bigger = idb.extended([extra]).unwrap();
        assert_eq!(idb.len(), 3);
        assert_eq!(bigger.len(), 4);
        assert!(bigger.defines("top"));
    }
}
