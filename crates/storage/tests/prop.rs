//! Property tests pinning the index structures to the one thing they must
//! never get wrong: a probe answers exactly what a full scan answers.
//!
//! A random interleaving of `insert` / `remove` / `clear` exercises every
//! maintenance path (append to live indexes, rebuild after id renumbering,
//! definition-preserving reset), then single-column probes, composite
//! probes, and `probe_cols` are each checked against a filtered scan of
//! the same relation. The access-path counters are checked for
//! monotonicity along the way — they only move forward, except at
//! `clear`, which documents a reset to zero.

use proptest::prelude::*;
use qdk_storage::{Relation, Tuple, Value};

const ARITY: usize = 3;

/// Values come from a deliberately tiny pool so removes hit, inserts
/// collide, and index buckets hold several rows.
fn v(n: i64) -> Value {
    Value::Int(n)
}

#[derive(Clone, Debug)]
enum Op {
    Insert([i64; ARITY]),
    Remove([i64; ARITY]),
    Clear,
}

fn arb_vals() -> impl Strategy<Value = [i64; ARITY]> {
    (0i64..3, 0i64..3, 0i64..3).prop_map(|(a, b, c)| [a, b, c])
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => arb_vals().prop_map(Op::Insert),
        2 => arb_vals().prop_map(Op::Remove),
        1 => Just(Op::Clear),
    ]
}

fn tuple(vals: &[i64; ARITY]) -> Tuple {
    Tuple::new(vals.iter().map(|&n| v(n)).collect())
}

/// The reference answer: tuples matching every `(col, value)` equality,
/// found by scanning everything.
fn scan_filter(rel: &Relation, pattern: &[(usize, Value)]) -> Vec<Tuple> {
    rel.iter()
        .filter(|t| pattern.iter().all(|(c, pv)| t.get(*c) == Some(pv)))
        .cloned()
        .collect()
}

/// Resolves probe ids through `tuple_at`, preserving id order.
fn resolve(rel: &Relation, ids: &[u32]) -> Vec<Tuple> {
    ids.iter().map(|&id| rel.tuple_at(id).clone()).collect()
}

/// Counter snapshot used for the monotonicity checks. Reading these does
/// not itself probe anything.
#[derive(Clone, Copy, PartialEq, Debug)]
struct Counters {
    probes: u64,
    scans: u64,
    composite: u64,
}

impl Counters {
    fn of(rel: &Relation) -> Self {
        Counters {
            probes: rel.index_probes(),
            scans: rel.full_scans(),
            composite: rel.composite_probes(),
        }
    }

    fn at_least(self, prev: Counters) -> bool {
        self.probes >= prev.probes && self.scans >= prev.scans && self.composite >= prev.composite
    }
}

/// Every probe path must agree with the scan on the relation's current
/// contents, for every value in the pool (present or absent).
fn check_probes_match_scan(rel: &Relation) -> Result<(), TestCaseError> {
    // Single-column probes, all columns, all pool values (plus one value
    // that never occurs, which must probe to the empty set).
    for col in 0..ARITY {
        for n in 0..4i64 {
            let key = v(n);
            let probed = resolve(rel, rel.probe(col, &key));
            let scanned = scan_filter(rel, &[(col, key)]);
            prop_assert_eq!(&probed, &scanned, "single-column probe col={} v={}", col, n);
        }
    }
    // Composite probes over every ascending column pair and the full
    // triple; `probe_cols` must agree with the direct composite handle.
    let col_sets: [&[usize]; 4] = [&[0, 1], &[0, 2], &[1, 2], &[0, 1, 2]];
    for cols in col_sets {
        for a in 0..3i64 {
            for b in 0..3i64 {
                let vals: Vec<Value> = match cols.len() {
                    2 => vec![v(a), v(b)],
                    _ => vec![v(a), v(b), v((a + b) % 3)],
                };
                let pattern: Vec<(usize, Value)> =
                    cols.iter().copied().zip(vals.iter().cloned()).collect();
                let scanned = scan_filter(rel, &pattern);

                let ix = rel.composite(cols).expect("valid composite column set");
                let key: Vec<&Value> = vals.iter().collect();
                let direct = resolve(rel, ix.probe(&key));
                prop_assert_eq!(&direct, &scanned, "composite probe cols={:?}", cols);

                let borrowed: Vec<(usize, &Value)> =
                    cols.iter().copied().zip(vals.iter()).collect();
                let routed = resolve(rel, &rel.probe_cols(&borrowed));
                prop_assert_eq!(&routed, &scanned, "probe_cols cols={:?}", cols);
            }
        }
    }
    Ok(())
}

proptest! {
    /// After any interleaving of mutations, probes ≡ scans and the
    /// counters never move backwards between observations (clear resets
    /// them to zero, which is part of its contract).
    #[test]
    fn probes_agree_with_scans_after_random_mutations(
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let mut rel = Relation::new("p", ARITY);
        // Demand-build two composites up front so the op sequence
        // exercises incremental `add`, rebuild-on-remove, and
        // definition-preserving reset-on-clear — not just build-on-probe.
        rel.composite(&[0, 1]).expect("composite [0,1]");
        rel.composite(&[1, 2]).expect("composite [1,2]");

        let mut prev = Counters::of(&rel);
        for op in &ops {
            match op {
                Op::Insert(vals) => {
                    rel.insert(tuple(vals)).expect("arity matches");
                }
                Op::Remove(vals) => {
                    rel.remove(&tuple(vals));
                }
                Op::Clear => rel.clear(),
            }
            let now = Counters::of(&rel);
            if matches!(op, Op::Clear) {
                prop_assert_eq!(
                    now,
                    Counters { probes: 0, scans: 0, composite: 0 },
                    "clear resets every counter"
                );
            } else {
                prop_assert!(
                    now.at_least(prev),
                    "counters went backwards across {:?}: {:?} -> {:?}",
                    op, prev, now
                );
            }
            prev = now;
        }

        check_probes_match_scan(&rel)?;

        // The checks above probed heavily; the meters must have seen it.
        let after = Counters::of(&rel);
        prop_assert!(after.at_least(prev), "probe checks decreased a counter");
        prop_assert!(after.probes > prev.probes, "single-column probes were metered");
        prop_assert!(after.composite > prev.composite, "composite probes were metered");

        // Counters survive a remove (they meter access paths, not
        // contents): rebuild-on-remove must carry probe counts over.
        let first = rel.iter().next().cloned();
        if let Some(t) = first {
            rel.remove(&t);
            prop_assert!(
                Counters::of(&rel).at_least(after),
                "remove dropped a counter during index rebuild"
            );
        }
    }
}
