//! Storage-layer errors.

use crate::Value;
use std::fmt;

/// Errors raised by the extensional database and built-in evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum StorageError {
    /// A fact or query referenced an undeclared predicate.
    UnknownPredicate(String),
    /// A fact, pattern or built-in had the wrong number of arguments.
    ArityMismatch {
        /// Predicate involved.
        predicate: String,
        /// Declared arity.
        expected: usize,
        /// Arity supplied.
        found: usize,
    },
    /// A fact contained a variable.
    NotGround(String),
    /// An ordering comparison was applied to values of incomparable kinds.
    NotComparable {
        /// Left operand.
        left: Value,
        /// Right operand.
        right: Value,
    },
    /// An unknown built-in predicate was evaluated.
    UnknownBuiltin(String),
    /// An EDB predicate name collides with a built-in.
    ReservedPredicate(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownPredicate(p) => write!(f, "unknown predicate: {p}"),
            StorageError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for {predicate}: expected {expected}, found {found}"
            ),
            StorageError::NotGround(a) => write!(f, "fact is not ground: {a}"),
            StorageError::NotComparable { left, right } => {
                write!(f, "values not comparable: {left} and {right}")
            }
            StorageError::UnknownBuiltin(op) => write!(f, "unknown built-in predicate: {op}"),
            StorageError::ReservedPredicate(p) => {
                write!(f, "predicate name is reserved for a built-in: {p}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
