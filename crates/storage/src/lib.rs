//! Extensional database (EDB) substrate for the *Querying Database
//! Knowledge* reproduction.
//!
//! The paper's EDB (§2.1) is a set of predicates with associated stored
//! facts, plus built-in comparison predicates whose extensions are "known".
//! This crate provides:
//!
//! * [`Value`] — stored values (an alias of the logic layer's constants, so
//!   facts and terms share one representation);
//! * [`Tuple`] — a stored row;
//! * [`Relation`] — an insert-ordered, deduplicated fact set with hash
//!   indexes on every column, supporting pattern selection;
//! * [`builtins`] — evaluation of the built-in comparisons `=`, `!=`, `<`,
//!   `<=`, `>`, `>=` over values;
//! * [`Catalog`]/[`Schema`] — predicate declarations (names and attribute
//!   names, used for validation and display);
//! * [`Edb`] — the extensional database: a catalog plus its relations;
//! * [`epoch`] — snapshot-isolated publication: [`EpochCell`] versioned
//!   slots and the single-writer [`EdbWriter`], built on the copy-on-write
//!   structure of [`Relation`] (clones share tuples and indexes, so an
//!   epoch snapshot costs only what the next batch touches).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stderr, clippy::print_stdout)]

pub mod builtins;
mod catalog;
mod database;
pub mod epoch;
mod error;
mod relation;
mod store;
mod tuple;

pub use catalog::{Catalog, CatalogStats, Schema};
pub use database::Edb;
pub use epoch::{EdbWriter, EpochCell, EpochId};
pub use error::{Result, StorageError};
pub use relation::{CompositeIndex, DeltaView, Relation};
pub use store::TupleIter;
pub use tuple::Tuple;

/// A stored value. Facts store the same constants that appear in terms.
pub type Value = qdk_logic::Const;
