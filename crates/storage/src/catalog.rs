//! Predicate declarations.

use qdk_logic::Sym;
use std::collections::BTreeMap;
use std::fmt;

/// A predicate schema: its name and attribute names.
///
/// The paper writes schemas as `student(Sname, Major, Gpa)` (§2.2);
/// attribute names are used for display and documentation and to fix the
/// predicate's arity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// Predicate name.
    pub name: Sym,
    /// Attribute names, one per argument position.
    pub attrs: Vec<Sym>,
}

impl Schema {
    /// Creates a schema from a name and attribute names.
    pub fn new(name: &str, attrs: &[&str]) -> Self {
        Schema {
            name: Sym::new(name),
            attrs: attrs.iter().map(|a| Sym::new(a)).collect(),
        }
    }

    /// The predicate's arity.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A cardinality snapshot of the stored relations, taken at plan-compile
/// time so the engine's cost model can order joins by estimated
/// selectivity without touching live relations during execution.
///
/// Kept in a `BTreeMap` so iteration (and therefore anything derived from
/// it, like explain output) is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CatalogStats {
    cards: BTreeMap<Sym, usize>,
    total: usize,
}

impl CatalogStats {
    /// Builds a snapshot from `(predicate, cardinality)` pairs.
    pub fn from_cards(cards: impl IntoIterator<Item = (Sym, usize)>) -> Self {
        let cards: BTreeMap<Sym, usize> = cards.into_iter().collect();
        let total = cards.values().sum();
        CatalogStats { cards, total }
    }

    /// The stored cardinality of a predicate, or `None` if it is not a
    /// stored (EDB) predicate.
    pub fn cardinality(&self, pred: &str) -> Option<usize> {
        self.cards.get(pred).copied()
    }

    /// Total stored facts across all relations (the cost model's default
    /// estimate for derived predicates, whose sizes are unknown before
    /// the fixpoint runs).
    pub fn total_facts(&self) -> usize {
        self.total
    }

    /// True if the snapshot covers no predicates.
    pub fn is_empty(&self) -> bool {
        self.cards.is_empty()
    }
}

/// The set of declared EDB predicates.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    schemas: BTreeMap<Sym, Schema>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds (or replaces) a schema. Returns the previous schema of the same
    /// name, if any.
    pub fn declare(&mut self, schema: Schema) -> Option<Schema> {
        self.schemas.insert(schema.name.clone(), schema)
    }

    /// Looks up a schema by predicate name.
    pub fn get(&self, name: &str) -> Option<&Schema> {
        self.schemas.get(name)
    }

    /// True if the predicate is declared.
    pub fn contains(&self, name: &str) -> bool {
        self.schemas.contains_key(name)
    }

    /// Iterates over schemas in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Schema> {
        self.schemas.values()
    }

    /// Number of declared predicates.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True if no predicates are declared.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut c = Catalog::new();
        c.declare(Schema::new("student", &["Sname", "Major", "Gpa"]));
        assert!(c.contains("student"));
        assert_eq!(c.get("student").unwrap().arity(), 3);
        assert!(!c.contains("professor"));
    }

    #[test]
    fn redeclare_returns_previous() {
        let mut c = Catalog::new();
        assert!(c.declare(Schema::new("p", &["A"])).is_none());
        let prev = c.declare(Schema::new("p", &["A", "B"])).unwrap();
        assert_eq!(prev.arity(), 1);
        assert_eq!(c.get("p").unwrap().arity(), 2);
    }

    #[test]
    fn display_matches_paper_style() {
        let s = Schema::new("student", &["Sname", "Major", "Gpa"]);
        assert_eq!(s.to_string(), "student(Sname, Major, Gpa)");
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Catalog::new();
        c.declare(Schema::new("teach", &["Pname", "Ctitle"]));
        c.declare(Schema::new("course", &["Ctitle", "Units"]));
        let names: Vec<_> = c.iter().map(|s| s.name.to_string()).collect();
        assert_eq!(names, ["course", "teach"]);
        assert_eq!(c.len(), 2);
    }
}
