//! Segmented append-only tuple storage with structural sharing.
//!
//! A [`TupleStore`] keeps its rows in fixed-size segments, each behind an
//! `Arc`. Cloning a store (the heart of epoch snapshots — see
//! [`epoch`](crate::epoch)) clones only the segment *handles*; the rows
//! themselves are shared between the writer and every snapshot. After a
//! clone, the first append copies just the partially filled tail segment
//! (at most `SEG_LEN - 1` rows); all full segments stay shared forever,
//! so the cost of an epoch is proportional to the batch, not the store.
//!
//! Row ids are dense and insertion-ordered, exactly as when the store was
//! a plain `Vec<Tuple>`, so index buckets of ascending ids, delta windows,
//! and the determinism contract are unchanged.

use crate::tuple::Tuple;
use std::sync::Arc;

/// Log2 of the segment length: 512 rows per segment.
const SEG_BITS: usize = 9;
/// Rows per segment.
const SEG_LEN: usize = 1 << SEG_BITS;

/// An append-only, insertion-ordered tuple sequence stored in `Arc`-shared
/// segments. Supports O(1) access by dense row id and cheap cloning with
/// copy-on-write appends.
#[derive(Clone, Debug, Default)]
pub(crate) struct TupleStore {
    segs: Vec<Arc<Vec<Tuple>>>,
    len: usize,
}

impl TupleStore {
    /// Number of stored rows.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// True if no rows are stored.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a row at the next dense id. Copies the tail segment first
    /// if a snapshot still shares it.
    pub(crate) fn push(&mut self, t: Tuple) {
        if self.len.is_multiple_of(SEG_LEN) {
            self.segs.push(Arc::new(Vec::with_capacity(SEG_LEN)));
        }
        let tail = self
            .segs
            .last_mut()
            .expect("tuple store tail segment exists after push check");
        Arc::make_mut(tail).push(t);
        self.len += 1;
    }

    /// The row stored at id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= len()`.
    pub(crate) fn get(&self, id: u32) -> &Tuple {
        let i = id as usize;
        debug_assert!(i < self.len, "row id {i} out of range (len {})", self.len);
        &self.segs[i >> SEG_BITS][i & (SEG_LEN - 1)]
    }

    /// Iterates all rows in id order.
    pub(crate) fn iter(&self) -> TupleIter<'_> {
        TupleIter {
            outer: self.segs.iter(),
            inner: [].iter(),
        }
    }

    /// Iterates the rows with ids in `start..end` (callers clamp).
    pub(crate) fn iter_range(&self, start: usize, end: usize) -> impl Iterator<Item = &Tuple> {
        debug_assert!(start <= end && end <= self.len, "window out of range");
        (start..end).map(move |i| self.get(i as u32))
    }

    /// Drops every row.
    pub(crate) fn clear(&mut self) {
        self.segs.clear();
        self.len = 0;
    }
}

/// Iterator over a [`TupleStore`]'s rows in id order (also the iterator
/// type of `&Relation`).
#[derive(Clone, Debug)]
pub struct TupleIter<'a> {
    outer: std::slice::Iter<'a, Arc<Vec<Tuple>>>,
    inner: std::slice::Iter<'a, Tuple>,
}

impl<'a> Iterator for TupleIter<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        loop {
            if let Some(t) = self.inner.next() {
                return Some(t);
            }
            match self.outer.next() {
                Some(seg) => self.inner = seg.iter(),
                None => return None,
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest: usize = self.outer.clone().map(|s| s.len()).sum();
        let n = self.inner.len() + rest;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i)])
    }

    #[test]
    fn push_get_iter_across_segment_boundaries() {
        let mut s = TupleStore::default();
        let n = SEG_LEN * 2 + 7;
        for i in 0..n {
            s.push(row(i as i64));
        }
        assert_eq!(s.len(), n);
        assert!(!s.is_empty());
        assert_eq!(s.get(0), &row(0));
        assert_eq!(s.get((SEG_LEN - 1) as u32), &row(SEG_LEN as i64 - 1));
        assert_eq!(s.get(SEG_LEN as u32), &row(SEG_LEN as i64));
        assert_eq!(s.get((n - 1) as u32), &row(n as i64 - 1));
        let all: Vec<i64> = s
            .iter()
            .map(|t| match t.get(0) {
                Some(Value::Int(i)) => *i,
                other => panic!("unexpected value {other:?}"),
            })
            .collect();
        assert_eq!(all, (0..n as i64).collect::<Vec<_>>());
        assert_eq!(s.iter().size_hint(), (n, Some(n)));
        let window: Vec<&Tuple> = s.iter_range(SEG_LEN - 2, SEG_LEN + 2).collect();
        assert_eq!(
            window,
            vec![
                &row(SEG_LEN as i64 - 2),
                &row(SEG_LEN as i64 - 1),
                &row(SEG_LEN as i64),
                &row(SEG_LEN as i64 + 1),
            ]
        );
    }

    #[test]
    fn clones_share_full_segments_and_copy_only_the_tail() {
        let mut s = TupleStore::default();
        for i in 0..(SEG_LEN + 3) {
            s.push(row(i as i64));
        }
        let snap = s.clone();
        // Appending to the original copies only the (shared) tail segment.
        s.push(row(-1));
        assert!(
            Arc::ptr_eq(&s.segs[0], &snap.segs[0]),
            "full segment shared"
        );
        assert!(
            !Arc::ptr_eq(&s.segs[1], &snap.segs[1]),
            "tail copied on write"
        );
        assert_eq!(snap.len(), SEG_LEN + 3);
        assert_eq!(s.len(), SEG_LEN + 4);
        assert_eq!(s.get((SEG_LEN + 3) as u32), &row(-1));
        // The snapshot never sees the append.
        assert_eq!(snap.iter().count(), SEG_LEN + 3);
    }

    #[test]
    fn clear_resets_and_reuse_works() {
        let mut s = TupleStore::default();
        s.push(row(1));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        s.push(row(2));
        assert_eq!(s.get(0), &row(2));
    }
}
