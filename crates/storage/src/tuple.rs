//! Stored rows.

use crate::Value;
use std::fmt;
use std::sync::Arc;

/// A stored row: a fixed-arity sequence of values.
///
/// Tuples are reference-counted so the evaluation layers can hand them
/// around (into deltas, answer sets, joins) without copying the values.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values.into())
    }

    /// The tuple's values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// The tuple's arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value at position `i`.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Lets hash containers keyed by `Tuple` answer lookups for a bare value
/// slice without constructing a tuple first (the fixpoint loops' dedup
/// check). Sound because the derived `Hash`/`Eq` delegate to the inner
/// `[Value]` slice.
impl std::borrow::Borrow<[Value]> for Tuple {
    fn borrow(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::new(vec![Value::sym("ann"), Value::Num(3.9)]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), Some(&Value::sym("ann")));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn clone_shares_storage() {
        let t = Tuple::new(vec![Value::Int(1)]);
        let u = t.clone();
        assert_eq!(t, u);
        assert!(Arc::ptr_eq(&t.0, &u.0));
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::sym("ann"), Value::Num(4.0), Value::Int(3)]);
        assert_eq!(t.to_string(), "(ann, 4.0, 3)");
    }

    #[test]
    fn borrowed_slice_lookup_matches_tuple_lookup() {
        use std::collections::HashMap;
        let mut m: HashMap<Tuple, u32> = HashMap::new();
        m.insert(Tuple::new(vec![Value::sym("ann"), Value::Int(4)]), 7);
        let hit: &[Value] = &[Value::sym("ann"), Value::Int(4)];
        let cross: &[Value] = &[Value::sym("ann"), Value::Num(4.0)];
        let miss: &[Value] = &[Value::sym("bob"), Value::Int(4)];
        assert_eq!(m.get(hit), Some(&7));
        // Int/Num cross-equality must survive the borrowed lookup, which
        // requires Value's Hash to agree with it.
        assert_eq!(m.get(cross), Some(&7));
        assert_eq!(m.get(miss), None);
    }

    #[test]
    fn equality_mixes_int_and_num() {
        let a = Tuple::new(vec![Value::Int(4)]);
        let b = Tuple::new(vec![Value::Num(4.0)]);
        assert_eq!(a, b);
    }
}
