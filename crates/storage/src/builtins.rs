//! Built-in comparison predicates.
//!
//! The paper's EDB includes the built-in predicates `=`, `≠`, `>`, `≥`,
//! `<`, `≤` (§2.2), whose extensions are "assumed to be known and treated
//! as if they are stored". This module evaluates them over [`Value`]s.
//! Ordering comparisons require both operands to be of comparable kinds
//! (numbers with numbers, symbols with symbols, …); evaluating an
//! incomparable pair is a type error surfaced to the caller rather than a
//! silent `false`.

use crate::error::{Result, StorageError};
use crate::Value;
use qdk_logic::{Atom, Subst, Term};

/// True if `name` is a built-in comparison predicate.
pub fn is_builtin(name: &str) -> bool {
    qdk_logic::Atom::new(name, vec![]).is_builtin()
}

/// Evaluates `l op r`.
pub fn eval(op: &str, l: &Value, r: &Value) -> Result<bool> {
    match op {
        "=" => Ok(l == r),
        "!=" => Ok(l != r),
        "<" | "<=" | ">" | ">=" => {
            if !l.comparable(r) {
                return Err(StorageError::NotComparable {
                    left: l.clone(),
                    right: r.clone(),
                });
            }
            Ok(match op {
                "<" => l < r,
                "<=" => l <= r,
                ">" => l > r,
                ">=" => l >= r,
                _ => unreachable!(),
            })
        }
        other => Err(StorageError::UnknownBuiltin(other.to_string())),
    }
}

/// Evaluates a built-in atom under a substitution. Returns:
///
/// * `Ok(Some(true/false))` if both arguments are ground after applying the
///   substitution;
/// * `Ok(None)` if either argument is still a variable (the comparison is
///   not yet decidable — callers typically defer it);
/// * `Err` for arity/type errors.
pub fn eval_atom(atom: &Atom, subst: &Subst) -> Result<Option<bool>> {
    if atom.args.len() != 2 {
        return Err(StorageError::ArityMismatch {
            predicate: atom.pred.to_string(),
            expected: 2,
            found: atom.args.len(),
        });
    }
    let l = subst.apply_term(&atom.args[0]);
    let r = subst.apply_term(&atom.args[1]);
    match (l, r) {
        (Term::Const(lc), Term::Const(rc)) => eval(atom.pred.as_str(), &lc, &rc).map(Some),
        _ => Ok(None),
    }
}

/// The negation of a comparison operator, e.g. `<` ↦ `>=`.
pub fn negate_op(op: &str) -> Option<&'static str> {
    Some(match op {
        "=" => "!=",
        "!=" => "=",
        "<" => ">=",
        "<=" => ">",
        ">" => "<=",
        ">=" => "<",
        _ => return None,
    })
}

/// The operator with its operands swapped, e.g. `X < Y` ⇔ `Y > X`.
pub fn flip_op(op: &str) -> Option<&'static str> {
    Some(match op {
        "=" => "=",
        "!=" => "!=",
        "<" => ">",
        "<=" => ">=",
        ">" => "<",
        ">=" => "<=",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::Var;

    #[test]
    fn numeric_comparisons() {
        assert!(eval(">", &Value::Num(3.9), &Value::Num(3.7)).unwrap());
        assert!(!eval(">", &Value::Num(3.5), &Value::Num(3.7)).unwrap());
        assert!(eval(">=", &Value::Int(4), &Value::Num(4.0)).unwrap());
        assert!(eval("<=", &Value::Int(3), &Value::Num(3.7)).unwrap());
        assert!(eval("<", &Value::Num(3.3), &Value::Int(4)).unwrap());
    }

    #[test]
    fn equality_on_all_kinds() {
        assert!(eval("=", &Value::sym("a"), &Value::sym("a")).unwrap());
        assert!(eval("!=", &Value::sym("a"), &Value::Int(1)).unwrap());
        assert!(!eval("=", &Value::str("a"), &Value::sym("a")).unwrap());
    }

    #[test]
    fn ordering_symbols_is_lexicographic() {
        assert!(eval("<", &Value::sym("algebra"), &Value::sym("calculus")).unwrap());
    }

    #[test]
    fn incomparable_kinds_error() {
        let e = eval("<", &Value::sym("a"), &Value::Int(1)).unwrap_err();
        assert!(matches!(e, StorageError::NotComparable { .. }));
    }

    #[test]
    fn unknown_operator_errors() {
        assert!(matches!(
            eval("~", &Value::Int(1), &Value::Int(2)),
            Err(StorageError::UnknownBuiltin(_))
        ));
    }

    #[test]
    fn eval_atom_ground_and_deferred() {
        let a = Atom::new(">", vec![Term::var("Z"), Term::num(3.7)]);
        let empty = Subst::new();
        assert_eq!(eval_atom(&a, &empty).unwrap(), None);
        let s: Subst = [(Var::new("Z"), Term::num(3.9))].into_iter().collect();
        assert_eq!(eval_atom(&a, &s).unwrap(), Some(true));
        let s2: Subst = [(Var::new("Z"), Term::num(3.5))].into_iter().collect();
        assert_eq!(eval_atom(&a, &s2).unwrap(), Some(false));
    }

    #[test]
    fn eval_atom_checks_arity() {
        let a = Atom::new(">", vec![Term::int(1)]);
        assert!(eval_atom(&a, &Subst::new()).is_err());
    }

    #[test]
    fn negate_and_flip() {
        assert_eq!(negate_op("<"), Some(">="));
        assert_eq!(negate_op("="), Some("!="));
        assert_eq!(flip_op("<"), Some(">"));
        assert_eq!(flip_op("="), Some("="));
        assert_eq!(negate_op("p"), None);
        // negate ∘ negate = identity
        for op in ["=", "!=", "<", "<=", ">", ">="] {
            assert_eq!(negate_op(negate_op(op).unwrap()), Some(op));
            assert_eq!(flip_op(flip_op(op).unwrap()), Some(op));
        }
    }
}
