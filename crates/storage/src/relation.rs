//! Indexed fact relations with copy-on-write snapshot semantics.
//!
//! Every piece of a [`Relation`] that queries read — the tuple store, the
//! per-column hash indexes, the composite indexes, the presence map — sits
//! behind an `Arc`. Cloning a relation is therefore a handful of reference
//! bumps, and the clone is a true snapshot: mutations on either side use
//! `Arc::make_mut`, copying a shared piece the first time it is touched
//! after the clone and mutating in place from then on. A relation that is
//! never cloned (the common single-owner case) pays nothing — its `Arc`s
//! stay unique and `make_mut` never copies.
//!
//! This is the storage half of epoch snapshots (see [`epoch`](crate::epoch)):
//! a published epoch holds a cloned `Edb`, and the writer keeps batching
//! into its own copy without disturbing readers.

use crate::error::{Result, StorageError};
use crate::store::{TupleIter, TupleStore};
use crate::tuple::Tuple;
use crate::Value;
use qdk_logic::fasthash::{FxHashMap, FxHasher};
use qdk_logic::Sym;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Hashes a projected key column-by-column so owned (`&[Value]`) and
/// borrowed (`&[&Value]`) keys land in the same bucket. The column count is
/// fixed per index, so no length prefix is needed.
fn hash_key<'a>(vals: impl Iterator<Item = &'a Value>) -> u64 {
    let mut h = FxHasher::default();
    for v in vals {
        v.hash(&mut h);
    }
    h.finish()
}

/// A demand-built hash index over a fixed set of columns (ascending,
/// distinct), mapping each combination of values in those columns to the
/// ascending row ids that carry it.
///
/// Composite indexes answer multi-bound probes in one hash lookup instead
/// of probing one column and filtering the rest tuple-by-tuple. They are
/// owned by their [`Relation`] (which keeps them consistent through
/// [`insert`](Relation::insert) / [`remove`](Relation::remove) /
/// [`clear`](Relation::clear)) and handed to callers as **frozen `Arc`
/// snapshots**: the per-frame probe path takes no lock, and a held handle
/// is never mutated by later relation mutations — maintenance goes through
/// `Arc::make_mut`, which copies the index out from under any outstanding
/// handle first. Re-fetch via [`composite`](Relation::composite) to observe
/// new rows. Buckets are keyed by the hash of the projected values and
/// disambiguated by equality, which lets [`probe`](CompositeIndex::probe)
/// accept borrowed values without cloning.
///
/// Row ids within a bucket are ascending (the build walks tuples in id
/// order and maintenance appends fresh ids), so windowed delta probes can
/// clip a bucket with a binary search and fact-id-ordered merges stay
/// byte-identical to single-column execution.
#[derive(Debug)]
pub struct CompositeIndex {
    cols: Vec<usize>,
    buckets: FxHashMap<u64, Bucket>,
    probes: AtomicU64,
}

/// One hash bucket: the projected keys that hashed here, each with its
/// ascending row ids.
type Bucket = Vec<(Vec<Value>, Vec<u32>)>;

impl Clone for CompositeIndex {
    fn clone(&self) -> Self {
        CompositeIndex {
            cols: self.cols.clone(),
            buckets: self.buckets.clone(),
            probes: AtomicU64::new(self.probes.load(Ordering::Relaxed)),
        }
    }
}

impl CompositeIndex {
    fn build<'a>(cols: Vec<usize>, tuples: impl Iterator<Item = &'a Tuple>) -> Self {
        let mut ix = CompositeIndex {
            cols,
            buckets: FxHashMap::default(),
            probes: AtomicU64::new(0),
        };
        for (id, t) in tuples.enumerate() {
            ix.add(id as u32, t);
        }
        ix
    }

    /// Registers a freshly inserted tuple under its projected key. `id`
    /// must be larger than every id already present (append-only), which
    /// keeps bucket ids ascending.
    fn add(&mut self, id: u32, t: &Tuple) {
        let vals = t.values();
        let h = hash_key(self.cols.iter().map(|&c| &vals[c]));
        let bucket = self.buckets.entry(h).or_default();
        match bucket
            .iter_mut()
            .find(|(k, _)| k.iter().zip(&self.cols).all(|(kv, &c)| kv == &vals[c]))
        {
            Some((_, ids)) => ids.push(id),
            None => {
                let key = self.cols.iter().map(|&c| vals[c].clone()).collect();
                bucket.push((key, vec![id]));
            }
        }
    }

    /// The (ascending, distinct) column positions this index covers.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Borrowed-key probe: the ascending row ids whose projection onto
    /// [`cols`](CompositeIndex::cols) equals `key` (one value per column,
    /// in column order). Returns an empty slice when absent.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `key.len()` differs from the column count.
    pub fn probe(&self, key: &[&Value]) -> &[u32] {
        debug_assert_eq!(key.len(), self.cols.len(), "composite key arity");
        self.probes.fetch_add(1, Ordering::Relaxed);
        let h = hash_key(key.iter().copied());
        self.buckets
            .get(&h)
            .and_then(|bucket| {
                bucket
                    .iter()
                    .find(|(k, _)| k.iter().zip(key).all(|(kv, &pv)| kv == pv))
            })
            .map(|(_, ids)| ids.as_slice())
            .unwrap_or(&[])
    }

    /// How many probes this index has answered since it was built (or
    /// since the owning relation's last [`clear`](Relation::clear)).
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

/// A read view of the suffix of a relation inserted by the last fixpoint
/// iteration: row ids in `start..end`.
///
/// Semi-naive delta joins probe this view instead of re-selecting from the
/// full relation and filtering by fact-id range — index buckets hold
/// ascending ids, so the view clips a probe result with two binary
/// searches rather than a linear filter.
#[derive(Clone, Copy, Debug)]
pub struct DeltaView<'a> {
    rel: &'a Relation,
    start: u32,
    end: u32,
}

impl<'a> DeltaView<'a> {
    /// Number of rows in the window.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The underlying relation.
    pub fn relation(&self) -> &'a Relation {
        self.rel
    }

    /// Clips an ascending id slice to the window.
    pub fn clip(&self, ids: &'a [u32]) -> &'a [u32] {
        let lo = ids.partition_point(|&id| id < self.start);
        let hi = ids.partition_point(|&id| id < self.end);
        &ids[lo..hi]
    }

    /// Iterates the window's tuples in id order.
    pub fn iter(&self) -> impl Iterator<Item = &'a Tuple> {
        self.rel
            .tuples
            .iter_range(self.start as usize, self.end as usize)
    }

    /// Single-column probe restricted to the window.
    pub fn probe(&self, col: usize, v: &Value) -> &'a [u32] {
        self.clip(self.rel.probe(col, v))
    }
}

/// A deduplicated, insertion-ordered set of tuples with a hash index on
/// every column.
///
/// Relations are the storage for one EDB predicate and also serve as the
/// working sets (totals and deltas) of bottom-up evaluation in the engine
/// crate. Selection by a partial binding pattern uses the most selective
/// available column index and verifies the remaining positions.
///
/// Every access-path decision is metered: [`probe`](Relation::probe) and
/// indexed selections bump [`index_probes`](Relation::index_probes), while
/// selections with no bound column bump [`full_scans`](Relation::full_scans).
/// The counters use relaxed atomics so the read paths stay `&self` (the
/// engine shares relations across worker threads); they survive
/// [`remove`](Relation::remove)/re-insert and reset only with
/// [`clear`](Relation::clear).
///
/// # Snapshots
///
/// `Relation::clone` is cheap: the tuple store, per-column indexes,
/// presence map, and promoted composite indexes are all `Arc`-shared with
/// the clone. Mutations on either side copy a shared piece on first touch
/// (`Arc::make_mut`), so a clone behaves as an immutable snapshot while
/// the original keeps accepting writes. Probe/scan counters start from the
/// current totals but advance independently per clone.
#[derive(Debug)]
pub struct Relation {
    name: Sym,
    arity: usize,
    tuples: TupleStore,
    present: Arc<FxHashMap<Tuple, u32>>,
    /// `indexes[c][v]` = row ids whose column `c` equals `v`.
    indexes: Vec<Arc<FxHashMap<Value, Vec<u32>>>>,
    /// Promoted composite indexes (at most one per column set): the
    /// lock-free lookup set shared with snapshots. Maintained in place by
    /// mutations (copy-on-write when a snapshot or caller handle still
    /// shares an entry).
    ready: Arc<Vec<Arc<CompositeIndex>>>,
    /// Composite indexes demand-built under `&self` (see
    /// [`composite`](Relation::composite)) that have not yet been promoted
    /// into [`ready`](Relation::ready). The lock is taken once per plan
    /// firing on the build path only, never per frame; the next mutation
    /// or [`promote_pending`](Relation::promote_pending) drains it.
    pending: Mutex<Vec<Arc<CompositeIndex>>>,
    probes: AtomicU64,
    scans: AtomicU64,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            name: self.name.clone(),
            arity: self.arity,
            tuples: self.tuples.clone(),
            present: Arc::clone(&self.present),
            indexes: self.indexes.iter().map(Arc::clone).collect(),
            ready: Arc::clone(&self.ready),
            pending: Mutex::new(lock_pending(&self.pending).clone()),
            probes: AtomicU64::new(self.probes.load(Ordering::Relaxed)),
            scans: AtomicU64::new(self.scans.load(Ordering::Relaxed)),
        }
    }
}

/// Locks the pending composite-index list, recovering from poison (the
/// guarded operations don't panic mid-update, so a poisoned lock is still
/// consistent).
fn lock_pending(m: &Mutex<Vec<Arc<CompositeIndex>>>) -> MutexGuard<'_, Vec<Arc<CompositeIndex>>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Relation {
    /// Creates an empty relation.
    pub fn new(name: impl Into<Sym>, arity: usize) -> Self {
        Relation {
            name: name.into(),
            arity,
            tuples: TupleStore::default(),
            present: Arc::new(FxHashMap::default()),
            indexes: (0..arity).map(|_| Arc::new(FxHashMap::default())).collect(),
            ready: Arc::new(Vec::new()),
            pending: Mutex::new(Vec::new()),
            probes: AtomicU64::new(0),
            scans: AtomicU64::new(0),
        }
    }

    /// How many index probes this relation has answered (via
    /// [`probe`](Relation::probe) or an indexed selection) since creation
    /// or the last [`clear`](Relation::clear).
    pub fn index_probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// How many full scans this relation has served (selections with no
    /// bound column) since creation or the last [`clear`](Relation::clear).
    pub fn full_scans(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    /// The relation's (predicate) name.
    pub fn name(&self) -> &Sym {
        &self.name
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns `Ok(true)` if it was not already present,
    /// or [`StorageError::ArityMismatch`] if the tuple's arity does not
    /// match the relation's (no panic — derived relations receive tuples
    /// from user programs, where a predicate defined at two arities is a
    /// reachable input, not a bug).
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.arity {
            return Err(StorageError::ArityMismatch {
                predicate: self.name.to_string(),
                expected: self.arity,
                found: t.arity(),
            });
        }
        if self.present.contains_key(&t) {
            return Ok(false);
        }
        self.promote_pending();
        let id = self.tuples.len() as u32;
        for (c, v) in t.values().iter().enumerate() {
            Arc::make_mut(&mut self.indexes[c])
                .entry(v.clone())
                .or_default()
                .push(id);
        }
        if !self.ready.is_empty() {
            for ix in Arc::make_mut(&mut self.ready) {
                Arc::make_mut(ix).add(id, &t);
            }
        }
        Arc::make_mut(&mut self.present).insert(t.clone(), id);
        self.tuples.push(t);
        Ok(true)
    }

    /// Moves demand-built composite indexes from the pending list into the
    /// promoted (lock-free) set. Called by every mutation before it
    /// maintains the set, and by the epoch writer at publish so snapshots
    /// probe promoted indexes without ever touching the pending lock.
    pub fn promote_pending(&mut self) {
        let pending = std::mem::take(self.pending_mut());
        if pending.is_empty() {
            return;
        }
        let ready = Arc::make_mut(&mut self.ready);
        for ix in pending {
            if !ready.iter().any(|r| r.cols() == ix.cols()) {
                ready.push(ix);
            }
        }
    }

    /// Ensures a promoted composite index over `cols` exists, building it
    /// if necessary; returns `false` (and builds nothing) for invalid
    /// column sets (see [`composite`](Relation::composite)). Used by the
    /// epoch writer to prebuild the indexes a compiled plan will probe, so
    /// snapshots never demand-build them per reader.
    pub fn ensure_composite(&mut self, cols: &[usize]) -> bool {
        if !self.valid_composite_cols(cols) {
            return false;
        }
        self.promote_pending();
        if self.ready.iter().any(|ix| ix.cols() == cols) {
            return true;
        }
        let ix = Arc::new(CompositeIndex::build(cols.to_vec(), self.tuples.iter()));
        Arc::make_mut(&mut self.ready).push(ix);
        true
    }

    /// Adopts the composite-index *definitions* of another relation
    /// (typically the previously published snapshot of this one, whose
    /// readers demand-built indexes the writer never saw), building any
    /// that are missing here. Contents are rebuilt from this relation's
    /// tuples; probe counters are not carried over.
    pub fn adopt_demand(&mut self, other: &Relation) {
        let mut wanted: Vec<Vec<usize>> = other.ready.iter().map(|ix| ix.cols().to_vec()).collect();
        wanted.extend(
            lock_pending(&other.pending)
                .iter()
                .map(|ix| ix.cols().to_vec()),
        );
        for cols in wanted {
            self.ensure_composite(&cols);
        }
    }

    /// Exclusive access to the pending list without locking (`&mut self`
    /// proves exclusivity); recovers from poison like [`lock_pending`].
    fn pending_mut(&mut self) -> &mut Vec<Arc<CompositeIndex>> {
        match self.pending.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }

    /// True if the tuple is stored.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.present.contains_key(t)
    }

    /// True if a tuple with exactly these values is stored, without
    /// allocating a [`Tuple`] for the lookup. This is the fixpoint
    /// loops' dedup check: most candidate rows a naive iteration derives
    /// are already known, and this lets them be rejected straight from
    /// the executor's row buffer.
    pub fn contains_slice(&self, values: &[Value]) -> bool {
        self.present.contains_key(values)
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter(&self) -> TupleIter<'_> {
        self.tuples.iter()
    }

    /// Selects the tuples matching a partial binding pattern:
    /// `pattern[i] = Some(v)` requires column `i` to equal `v`; `None` is a
    /// wildcard. Uses the most selective bound-column index.
    ///
    /// # Panics
    ///
    /// Panics if the pattern's length does not match the relation's arity.
    pub fn select<'a>(
        &'a self,
        pattern: &[Option<Value>],
    ) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
        assert_eq!(pattern.len(), self.arity, "pattern arity mismatch");
        // Pick the bound column with the fewest candidate rows.
        let best = pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| {
                p.as_ref().map(|v| {
                    let n = self.indexes[c].get(v).map_or(0, Vec::len);
                    (n, c, v)
                })
            })
            .min_by_key(|(n, _, _)| *n);
        match best {
            None => {
                self.scans.fetch_add(1, Ordering::Relaxed);
                Box::new(self.tuples.iter())
            }
            Some((_, c, v)) => {
                self.probes.fetch_add(1, Ordering::Relaxed);
                let rows = self.indexes[c].get(v).map(Vec::as_slice).unwrap_or(&[]);
                let pattern = pattern.to_vec();
                Box::new(rows.iter().map(|&id| self.tuples.get(id)).filter(move |t| {
                    t.values()
                        .iter()
                        .zip(&pattern)
                        .all(|(tv, pv)| pv.as_ref().is_none_or(|p| p == tv))
                }))
            }
        }
    }

    /// Borrowed-key index probe: the row ids whose column `col` equals
    /// `v`, without cloning the probe value. Returns an empty slice when
    /// the value is absent (or the relation has no column `col`).
    ///
    /// Together with [`tuple_at`](Relation::tuple_at) this is the
    /// primitive the compiled plan executor scans with: the planner picks
    /// the probe column, probes once per frame, and verifies the remaining
    /// positions against the candidate rows.
    pub fn probe(&self, col: usize, v: &Value) -> &[u32] {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.indexes
            .get(col)
            .and_then(|ix| ix.get(v))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The tuple stored at row id `id` (as handed out by
    /// [`probe`](Relation::probe)).
    pub fn tuple_at(&self, id: u32) -> &Tuple {
        self.tuples.get(id)
    }

    /// Slot-pattern selection over borrowed values: like
    /// [`select`](Relation::select) but the pattern borrows its probe
    /// values instead of owning clones. Picks the most selective bound
    /// column (first minimum in column order) and verifies the rest.
    pub fn select_ref<'a>(
        &'a self,
        pattern: &[Option<&'a Value>],
    ) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
        debug_assert_eq!(pattern.len(), self.arity, "pattern arity mismatch");
        let best = pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|v| (self.probe(c, v).len(), c, v)))
            .min_by_key(|(n, _, _)| *n);
        match best {
            None => {
                self.scans.fetch_add(1, Ordering::Relaxed);
                Box::new(self.tuples.iter())
            }
            Some((_, c, v)) => {
                let rows = self.probe(c, v);
                let pattern = pattern.to_vec();
                Box::new(rows.iter().map(|&id| self.tuple_at(id)).filter(move |t| {
                    t.values()
                        .iter()
                        .zip(&pattern)
                        .all(|(tv, pv)| pv.is_none_or(|p| p == tv))
                }))
            }
        }
    }

    /// Removes a tuple; returns `true` if it was present. Removal is a
    /// batch of one — see [`remove_batch`](Relation::remove_batch) for the
    /// cost model. Snapshots sharing the old store are unaffected.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.remove_batch(std::iter::once(t)) == 1
    }

    /// Removes a batch of tuples in one pass; returns how many were
    /// present. Removal renumbers the surviving row ids (they stay dense
    /// and insertion-ordered), but instead of rehashing everything it
    /// compacts the tuple store and patches the maps in place: doomed keys
    /// leave the presence map, and every index bucket drops its doomed ids
    /// and rewrites the survivors through a monotone old→new remap (which
    /// preserves the ascending-id invariant). Incremental maintenance
    /// (DRed's deletion phase) leans on this: retracting k facts from an
    /// n-row relation costs O(n) id rewrites, not a rehash and value clone
    /// per surviving row per index.
    pub fn remove_batch<'t>(&mut self, batch: impl IntoIterator<Item = &'t Tuple>) -> usize {
        // Resolve ids read-only first so a batch of absent tuples stays a
        // no-op (no copy-on-write of snapshot-shared maps).
        let mut doomed: Vec<u32> = batch
            .into_iter()
            .filter_map(|t| self.present.get(t).copied())
            .collect();
        if doomed.is_empty() {
            return 0;
        }
        self.promote_pending();
        doomed.sort_unstable();
        doomed.dedup();
        let present = Arc::make_mut(&mut self.present);
        present.retain(|_, id| doomed.binary_search(id).is_err());
        // Monotone remap from old row id to new; doomed slots stay 0 and
        // are never read back.
        let mut remap = vec![0u32; self.tuples.len()];
        {
            let mut next_doomed = doomed.iter().copied().peekable();
            let mut fresh = 0u32;
            for (old, slot) in remap.iter_mut().enumerate() {
                if next_doomed.peek() == Some(&(old as u32)) {
                    next_doomed.next();
                } else {
                    *slot = fresh;
                    fresh += 1;
                }
            }
        }
        // Compact the tuple store (tuple clones are reference bumps).
        let mut tuples = TupleStore::default();
        {
            let mut next_doomed = doomed.iter().copied().peekable();
            for (old, tuple) in self.tuples.iter().enumerate() {
                if next_doomed.peek() == Some(&(old as u32)) {
                    next_doomed.next();
                } else {
                    tuples.push(tuple.clone());
                }
            }
        }
        self.tuples = tuples;
        for id in present.values_mut() {
            *id = remap[*id as usize];
        }
        let survives = |id: u32| doomed.binary_search(&id).is_err();
        for index in &mut self.indexes {
            let index = Arc::make_mut(index);
            for ids in index.values_mut() {
                ids.retain(|&id| survives(id));
                for id in ids.iter_mut() {
                    *id = remap[*id as usize];
                }
            }
            index.retain(|_, ids| !ids.is_empty());
        }
        if !self.ready.is_empty() {
            for ix in Arc::make_mut(&mut self.ready) {
                let ix = Arc::make_mut(ix);
                for bucket in ix.buckets.values_mut() {
                    for (_, ids) in bucket.iter_mut() {
                        ids.retain(|&id| survives(id));
                        for id in ids.iter_mut() {
                            *id = remap[*id as usize];
                        }
                    }
                    bucket.retain(|(_, ids)| !ids.is_empty());
                }
                ix.buckets.retain(|_, bucket| !bucket.is_empty());
            }
        }
        doomed.len()
    }

    /// Removes all tuples and resets the probe/scan counters. Composite
    /// index *definitions* persist (they rebuild as new tuples arrive);
    /// their contents and probe counters reset with everything else.
    pub fn clear(&mut self) {
        self.promote_pending();
        self.tuples.clear();
        self.present = Arc::new(FxHashMap::default());
        self.indexes = (0..self.arity)
            .map(|_| Arc::new(FxHashMap::default()))
            .collect();
        self.ready = Arc::new(
            self.ready
                .iter()
                .map(|ix| {
                    Arc::new(CompositeIndex {
                        cols: ix.cols().to_vec(),
                        buckets: FxHashMap::default(),
                        probes: AtomicU64::new(0),
                    })
                })
                .collect(),
        );
        self.probes.store(0, Ordering::Relaxed);
        self.scans.store(0, Ordering::Relaxed);
    }

    /// True if `cols` is a valid composite column set: at least two
    /// positions, strictly ascending, all within the relation's arity.
    fn valid_composite_cols(&self, cols: &[usize]) -> bool {
        cols.len() >= 2
            && cols.windows(2).all(|w| w[0] < w[1])
            && cols.last().is_some_and(|&c| c < self.arity)
    }

    /// The composite index over `cols`, built on first demand and kept
    /// consistent by subsequent mutations. Returns `None` unless `cols`
    /// has at least two positions, strictly ascending, all within the
    /// relation's arity (callers sort their bound columns; a one-column
    /// request should use [`probe`](Relation::probe)).
    ///
    /// The returned `Arc` is a **frozen snapshot** of the index at call
    /// time: probing it takes no lock, and later inserts, removes, and
    /// clears never mutate it (maintenance copies the index out from under
    /// outstanding handles). Re-fetch after a mutation to observe new
    /// rows. Probes through a handle count toward
    /// [`composite_probes`](Relation::composite_probes) until the relation
    /// is mutated; a frozen (copied-out) handle's probes are its own.
    pub fn composite(&self, cols: &[usize]) -> Option<Arc<CompositeIndex>> {
        if !self.valid_composite_cols(cols) {
            return None;
        }
        // Promoted set first: lock-free, covers every index a snapshot or
        // plan prebuild produced.
        if let Some(ix) = self.ready.iter().find(|ix| ix.cols() == cols) {
            return Some(Arc::clone(ix));
        }
        let mut guard = lock_pending(&self.pending);
        if let Some(ix) = guard.iter().find(|ix| ix.cols() == cols) {
            return Some(Arc::clone(ix));
        }
        let ix = Arc::new(CompositeIndex::build(cols.to_vec(), self.tuples.iter()));
        guard.push(Arc::clone(&ix));
        Some(ix)
    }

    /// Borrowed-key multi-column probe: the row ids matching every
    /// `(column, value)` pair. One hash lookup against the matching
    /// composite index (demand-built on first use) instead of probing one
    /// column and filtering the rest.
    ///
    /// Degenerate patterns stay total: an empty pattern is a metered full
    /// scan returning every id, a single pair delegates to
    /// [`probe`](Relation::probe), duplicate columns collapse (equal
    /// values) or return no rows (conflicting values), and an
    /// out-of-range column matches nothing.
    pub fn probe_cols(&self, pattern: &[(usize, &Value)]) -> Vec<u32> {
        let mut sorted = pattern.to_vec();
        sorted.sort_by_key(|&(c, _)| c);
        let mut dedup: Vec<(usize, &Value)> = Vec::with_capacity(sorted.len());
        for (c, v) in sorted {
            match dedup.last() {
                Some(&(pc, pv)) if pc == c => {
                    if pv != v {
                        return Vec::new();
                    }
                }
                _ => dedup.push((c, v)),
            }
        }
        match dedup.as_slice() {
            [] => {
                self.scans.fetch_add(1, Ordering::Relaxed);
                (0..self.tuples.len() as u32).collect()
            }
            [(c, v)] => self.probe(*c, v).to_vec(),
            _ => {
                if dedup.last().is_some_and(|&(c, _)| c >= self.arity) {
                    return Vec::new();
                }
                let cols: Vec<usize> = dedup.iter().map(|&(c, _)| c).collect();
                let key: Vec<&Value> = dedup.iter().map(|&(_, v)| v).collect();
                match self.composite(&cols) {
                    Some(ix) => ix.probe(&key).to_vec(),
                    None => Vec::new(),
                }
            }
        }
    }

    /// Total probes answered by this relation's composite indexes since
    /// creation or the last [`clear`](Relation::clear).
    pub fn composite_probes(&self) -> u64 {
        let promoted: u64 = self.ready.iter().map(|ix| ix.probe_count()).sum();
        let pending: u64 = lock_pending(&self.pending)
            .iter()
            .map(|ix| ix.probe_count())
            .sum();
        promoted + pending
    }

    /// How many composite indexes have been demand-built on this relation.
    pub fn composite_count(&self) -> usize {
        self.ready.len() + lock_pending(&self.pending).len()
    }

    /// A [`DeltaView`] over row ids `start..end` (clamped to the stored
    /// range), i.e. the tuples a fixpoint iteration appended.
    pub fn delta(&self, start: usize, end: usize) -> DeltaView<'_> {
        let n = self.tuples.len();
        let end = end.min(n) as u32;
        let start = (start.min(n) as u32).min(end);
        DeltaView {
            rel: self,
            start,
            end,
        }
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = TupleIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let mut r = Relation::new("complete", 3);
        for t in [
            vec![Value::sym("ann"), Value::sym("databases"), Value::Num(4.0)],
            vec![Value::sym("bob"), Value::sym("databases"), Value::Num(3.5)],
            vec![Value::sym("ann"), Value::sym("calculus"), Value::Num(3.9)],
        ] {
            r.insert(Tuple::new(t)).unwrap();
        }
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new("p", 1);
        assert!(r.insert(Tuple::new(vec![Value::Int(1)])).unwrap());
        assert!(!r.insert(Tuple::new(vec![Value::Int(1)])).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn insert_arity_mismatch_is_an_error_not_a_panic() {
        let mut r = Relation::new("p", 2);
        let err = r.insert(Tuple::new(vec![Value::Int(1)])).unwrap_err();
        assert_eq!(
            err,
            StorageError::ArityMismatch {
                predicate: "p".to_string(),
                expected: 2,
                found: 1,
            }
        );
        // Nothing was stored and the relation remains usable.
        assert!(r.is_empty());
        assert!(r
            .insert(Tuple::new(vec![Value::Int(1), Value::Int(2)]))
            .unwrap());
    }

    #[test]
    fn select_unbound_returns_all() {
        let r = sample();
        assert_eq!(r.select(&[None, None, None]).count(), 3);
    }

    #[test]
    fn select_single_column() {
        let r = sample();
        let anns: Vec<_> = r.select(&[Some(Value::sym("ann")), None, None]).collect();
        assert_eq!(anns.len(), 2);
        assert!(anns.iter().all(|t| t.get(0) == Some(&Value::sym("ann"))));
    }

    #[test]
    fn select_multi_column_verifies_rest() {
        let r = sample();
        let hits: Vec<_> = r
            .select(&[Some(Value::sym("ann")), Some(Value::sym("databases")), None])
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get(2), Some(&Value::Num(4.0)));
    }

    #[test]
    fn select_absent_value_is_empty() {
        let r = sample();
        assert_eq!(r.select(&[Some(Value::sym("zoe")), None, None]).count(), 0);
    }

    #[test]
    fn select_numeric_equality_across_kinds() {
        let mut r = Relation::new("units", 1);
        r.insert(Tuple::new(vec![Value::Int(4)])).unwrap();
        // Num(4.0) equals Int(4) (and hashes identically).
        assert_eq!(r.select(&[Some(Value::Num(4.0))]).count(), 1);
    }

    #[test]
    fn probe_and_select_ref_agree_with_select() {
        let r = sample();
        let ann = Value::sym("ann");
        let db = Value::sym("databases");
        assert_eq!(r.probe(0, &ann).len(), 2);
        assert_eq!(r.probe(0, &Value::sym("zoe")).len(), 0);
        assert_eq!(r.probe(9, &ann).len(), 0);
        for id in r.probe(0, &ann) {
            assert_eq!(r.tuple_at(*id).get(0), Some(&ann));
        }
        let owned: Vec<_> = r
            .select(&[Some(ann.clone()), Some(db.clone()), None])
            .cloned()
            .collect();
        let borrowed: Vec<_> = r
            .select_ref(&[Some(&ann), Some(&db), None])
            .cloned()
            .collect();
        assert_eq!(owned, borrowed);
        assert_eq!(r.select_ref(&[None, None, None]).count(), 3);
    }

    #[test]
    fn insertion_order_is_preserved() {
        let r = sample();
        let firsts: Vec<_> = r.iter().map(|t| t.get(0).unwrap().clone()).collect();
        assert_eq!(
            firsts,
            vec![Value::sym("ann"), Value::sym("bob"), Value::sym("ann")]
        );
    }

    #[test]
    fn remove_rebuilds_indexes() {
        let mut r = sample();
        let gone = Tuple::new(vec![
            Value::sym("ann"),
            Value::sym("databases"),
            Value::Num(4.0),
        ]);
        assert!(r.remove(&gone));
        assert!(!r.remove(&gone));
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&gone));
        // Index lookups remain consistent after the rebuild.
        assert_eq!(r.select(&[Some(Value::sym("ann")), None, None]).count(), 1);
        assert_eq!(
            r.select(&[None, Some(Value::sym("databases")), None])
                .count(),
            1
        );
    }

    #[test]
    fn counters_track_probes_and_scans() {
        let r = sample();
        assert_eq!(r.index_probes(), 0);
        assert_eq!(r.full_scans(), 0);
        r.select(&[None, None, None]).count();
        assert_eq!(r.full_scans(), 1);
        assert_eq!(r.index_probes(), 0);
        r.select(&[Some(Value::sym("ann")), None, None]).count();
        assert_eq!(r.index_probes(), 1);
        r.probe(0, &Value::sym("ann"));
        assert_eq!(r.index_probes(), 2);
        // select_ref probes the index both to score bound columns and to
        // fetch the winner's rows.
        let ann = Value::sym("ann");
        r.select_ref(&[Some(&ann), None, None]).count();
        assert!(r.index_probes() >= 3);
        r.select_ref(&[None, None, None]).count();
        assert_eq!(r.full_scans(), 2);
    }

    #[test]
    fn counters_survive_remove_and_reinsert() {
        let mut r = sample();
        r.select(&[Some(Value::sym("ann")), None, None]).count();
        r.select(&[None, None, None]).count();
        let (p, s) = (r.index_probes(), r.full_scans());
        assert!(p > 0 && s > 0);
        let gone = Tuple::new(vec![
            Value::sym("ann"),
            Value::sym("databases"),
            Value::Num(4.0),
        ]);
        assert!(r.remove(&gone));
        assert_eq!((r.index_probes(), r.full_scans()), (p, s));
        r.insert(gone).unwrap();
        assert_eq!((r.index_probes(), r.full_scans()), (p, s));
        // Clones carry the current totals forward independently.
        let c = r.clone();
        c.probe(0, &Value::sym("bob"));
        assert_eq!(c.index_probes(), p + 1);
        assert_eq!(r.index_probes(), p);
    }

    #[test]
    fn clear_resets_counters() {
        let mut r = sample();
        r.select(&[Some(Value::sym("ann")), None, None]).count();
        r.select(&[None, None, None]).count();
        r.clear();
        assert_eq!(r.index_probes(), 0);
        assert_eq!(r.full_scans(), 0);
    }

    #[test]
    fn composite_probe_matches_scan() {
        let r = sample();
        let ann = Value::sym("ann");
        let db = Value::sym("databases");
        let ix = r.composite(&[0, 1]).unwrap();
        assert_eq!(ix.cols(), &[0, 1]);
        let ids = ix.probe(&[&ann, &db]);
        assert_eq!(ids, &[0]);
        // Ids come back ascending and point at the right tuples.
        let all_ann: Vec<u32> = r.probe_cols(&[(0, &ann)]);
        assert_eq!(all_ann, vec![0, 2]);
        assert_eq!(r.probe_cols(&[(1, &db), (0, &ann)]), vec![0]);
        assert!(ix.probe(&[&Value::sym("zoe"), &db]).is_empty());
        // Numeric cross-kind equality holds for composite keys too.
        let ix2 = r.composite(&[0, 2]).unwrap();
        assert_eq!(ix2.probe(&[&ann, &Value::Int(4)]), &[0]);
        // Same column set returns the same index, not a rebuild.
        assert_eq!(r.composite_count(), 2);
        r.composite(&[0, 1]).unwrap();
        assert_eq!(r.composite_count(), 2);
    }

    #[test]
    fn composite_rejects_invalid_column_sets() {
        let r = sample();
        assert!(r.composite(&[0]).is_none());
        assert!(r.composite(&[1, 0]).is_none());
        assert!(r.composite(&[0, 0]).is_none());
        assert!(r.composite(&[1, 3]).is_none());
        let mut r = r;
        assert!(!r.ensure_composite(&[1, 0]));
        assert!(!r.ensure_composite(&[2]));
    }

    #[test]
    fn probe_cols_degenerate_patterns() {
        let r = sample();
        let ann = Value::sym("ann");
        assert_eq!(r.probe_cols(&[]), vec![0, 1, 2]);
        assert_eq!(r.full_scans(), 1);
        assert_eq!(r.probe_cols(&[(0, &ann), (0, &ann)]), vec![0, 2]);
        assert!(r
            .probe_cols(&[(0, &ann), (0, &Value::sym("bob"))])
            .is_empty());
        assert!(r.probe_cols(&[(0, &ann), (7, &ann)]).is_empty());
    }

    #[test]
    fn composite_maintained_through_mutation() {
        let mut r = sample();
        let ann = Value::sym("ann");
        let db = Value::sym("databases");
        let ix = r.composite(&[0, 1]).unwrap();
        assert_eq!(ix.probe(&[&ann, &db]), &[0]);
        // Insert lands in the live index list (the old Arc is a frozen
        // snapshot; re-fetch sees the new row).
        r.insert(Tuple::new(vec![ann.clone(), db.clone(), Value::Num(2.0)]))
            .unwrap();
        let ix = r.composite(&[0, 1]).unwrap();
        assert_eq!(ix.probe(&[&ann, &db]), &[0, 3]);
        // Remove rebuilds with renumbered ids and carries the counter.
        let probes_before = r.composite_probes();
        assert!(r.remove(&Tuple::new(vec![ann.clone(), db.clone(), Value::Num(4.0),])));
        assert_eq!(r.composite_probes(), probes_before);
        let ix = r.composite(&[0, 1]).unwrap();
        assert_eq!(ix.probe(&[&ann, &db]), &[2]);
        // Clear keeps the definition, drops contents, resets counters.
        r.clear();
        assert_eq!(r.composite_count(), 1);
        assert_eq!(r.composite_probes(), 0);
        let ix = r.composite(&[0, 1]).unwrap();
        assert!(ix.probe(&[&ann, &db]).is_empty());
        r.insert(Tuple::new(vec![ann.clone(), db.clone(), Value::Num(3.0)]))
            .unwrap();
        let ix = r.composite(&[0, 1]).unwrap();
        assert_eq!(ix.probe(&[&ann, &db]), &[0]);
    }

    #[test]
    fn held_composite_handle_is_a_frozen_snapshot() {
        // Regression: `composite()` used to document a snapshot but hand
        // out a live handle that `Arc::make_mut` mutated in place when the
        // relation was the only other owner. Held handles must now be
        // immune to every later mutation.
        let mut r = sample();
        let ann = Value::sym("ann");
        let db = Value::sym("databases");
        let held = r.composite(&[0, 1]).unwrap();
        assert_eq!(held.probe(&[&ann, &db]), &[0]);

        // Insert: the held handle must not see the new row.
        r.insert(Tuple::new(vec![ann.clone(), db.clone(), Value::Num(1.5)]))
            .unwrap();
        assert_eq!(held.probe(&[&ann, &db]), &[0]);
        assert_eq!(r.composite(&[0, 1]).unwrap().probe(&[&ann, &db]), &[0, 3]);

        // Remove: the held handle keeps the old ids, not the renumbering.
        assert!(r.remove(&Tuple::new(vec![ann.clone(), db.clone(), Value::Num(4.0)])));
        assert_eq!(held.probe(&[&ann, &db]), &[0]);
        assert_eq!(r.composite(&[0, 1]).unwrap().probe(&[&ann, &db]), &[2]);

        // Clear: the held handle still answers from its frozen contents.
        r.clear();
        assert_eq!(held.probe(&[&ann, &db]), &[0]);
        assert!(r.composite(&[0, 1]).unwrap().probe(&[&ann, &db]).is_empty());
    }

    #[test]
    fn cloned_relation_is_an_isolated_snapshot() {
        let mut r = sample();
        let ann = Value::sym("ann");
        let snap = r.clone();
        r.insert(Tuple::new(vec![
            ann.clone(),
            Value::sym("algebra"),
            Value::Num(3.0),
        ]))
        .unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.probe(0, &ann).len(), 2);
        assert_eq!(r.probe(0, &ann).len(), 3);
        // Removal on the original leaves the snapshot intact too.
        assert!(r.remove(&Tuple::new(vec![
            ann.clone(),
            Value::sym("databases"),
            Value::Num(4.0)
        ])));
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.select(&[Some(ann.clone()), None, None]).count(),
            2,
            "snapshot indexes unaffected by writer mutations"
        );
        // And mutations on the snapshot leave the original alone.
        let mut snap = snap;
        snap.clear();
        assert!(snap.is_empty());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn promote_and_adopt_demand_carry_composite_definitions() {
        let mut r = sample();
        // Demand-build on a read-only view lands in the pending set.
        assert!(r.composite(&[0, 1]).is_some());
        assert_eq!(r.composite_count(), 1);
        let snap = r.clone();
        // A reader of the snapshot demand-builds another index the writer
        // never saw.
        assert!(snap.composite(&[1, 2]).is_some());
        // The writer adopts both definitions and promotes them.
        r.adopt_demand(&snap);
        r.promote_pending();
        assert_eq!(r.composite_count(), 2);
        let ann = Value::sym("ann");
        let db = Value::sym("databases");
        assert_eq!(
            r.composite(&[1, 2])
                .unwrap()
                .probe(&[&db, &Value::Num(3.5)]),
            &[1]
        );
        assert_eq!(r.composite(&[0, 1]).unwrap().probe(&[&ann, &db]), &[0]);
    }

    #[test]
    fn delta_view_clips_probes_and_iterates_window() {
        let mut r = Relation::new("edge", 2);
        for i in 0..6 {
            r.insert(Tuple::new(vec![Value::sym("a"), Value::Int(i)]))
                .unwrap();
        }
        let d = r.delta(2, 5);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(
            d.iter()
                .map(|t| t.get(1).unwrap().clone())
                .collect::<Vec<_>>(),
            vec![Value::Int(2), Value::Int(3), Value::Int(4)]
        );
        assert_eq!(d.probe(0, &Value::sym("a")), &[2, 3, 4]);
        assert!(d.probe(0, &Value::sym("b")).is_empty());
        // Out-of-range windows clamp.
        assert_eq!(r.delta(4, 99).len(), 2);
        assert!(r.delta(9, 12).is_empty());
    }

    #[test]
    fn clear_empties_indexes() {
        let mut r = sample();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.select(&[Some(Value::sym("ann")), None, None]).count(), 0);
        // Reinsertion after clear works and reindexes.
        r.insert(Tuple::new(vec![
            Value::sym("cara"),
            Value::sym("databases"),
            Value::Num(3.8),
        ]))
        .unwrap();
        assert_eq!(r.select(&[Some(Value::sym("cara")), None, None]).count(), 1);
    }
}
