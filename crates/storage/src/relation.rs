//! Indexed fact relations.

use crate::error::{Result, StorageError};
use crate::tuple::Tuple;
use crate::Value;
use qdk_logic::fasthash::FxHashMap;
use qdk_logic::Sym;
use std::sync::atomic::{AtomicU64, Ordering};

/// A deduplicated, insertion-ordered set of tuples with a hash index on
/// every column.
///
/// Relations are the storage for one EDB predicate and also serve as the
/// working sets (totals and deltas) of bottom-up evaluation in the engine
/// crate. Selection by a partial binding pattern uses the most selective
/// available column index and verifies the remaining positions.
///
/// Every access-path decision is metered: [`probe`](Relation::probe) and
/// indexed selections bump [`index_probes`](Relation::index_probes), while
/// selections with no bound column bump [`full_scans`](Relation::full_scans).
/// The counters use relaxed atomics so the read paths stay `&self` (the
/// engine shares relations across worker threads); they survive
/// [`remove`](Relation::remove)/re-insert and reset only with
/// [`clear`](Relation::clear).
#[derive(Debug)]
pub struct Relation {
    name: Sym,
    arity: usize,
    tuples: Vec<Tuple>,
    present: FxHashMap<Tuple, u32>,
    /// `indexes[c][v]` = row ids whose column `c` equals `v`.
    indexes: Vec<FxHashMap<Value, Vec<u32>>>,
    probes: AtomicU64,
    scans: AtomicU64,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            name: self.name.clone(),
            arity: self.arity,
            tuples: self.tuples.clone(),
            present: self.present.clone(),
            indexes: self.indexes.clone(),
            probes: AtomicU64::new(self.probes.load(Ordering::Relaxed)),
            scans: AtomicU64::new(self.scans.load(Ordering::Relaxed)),
        }
    }
}

impl Relation {
    /// Creates an empty relation.
    pub fn new(name: impl Into<Sym>, arity: usize) -> Self {
        Relation {
            name: name.into(),
            arity,
            tuples: Vec::new(),
            present: FxHashMap::default(),
            indexes: vec![FxHashMap::default(); arity],
            probes: AtomicU64::new(0),
            scans: AtomicU64::new(0),
        }
    }

    /// How many index probes this relation has answered (via
    /// [`probe`](Relation::probe) or an indexed selection) since creation
    /// or the last [`clear`](Relation::clear).
    pub fn index_probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// How many full scans this relation has served (selections with no
    /// bound column) since creation or the last [`clear`](Relation::clear).
    pub fn full_scans(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    /// The relation's (predicate) name.
    pub fn name(&self) -> &Sym {
        &self.name
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns `Ok(true)` if it was not already present,
    /// or [`StorageError::ArityMismatch`] if the tuple's arity does not
    /// match the relation's (no panic — derived relations receive tuples
    /// from user programs, where a predicate defined at two arities is a
    /// reachable input, not a bug).
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.arity {
            return Err(StorageError::ArityMismatch {
                predicate: self.name.to_string(),
                expected: self.arity,
                found: t.arity(),
            });
        }
        if self.present.contains_key(&t) {
            return Ok(false);
        }
        let id = self.tuples.len() as u32;
        for (c, v) in t.values().iter().enumerate() {
            self.indexes[c].entry(v.clone()).or_default().push(id);
        }
        self.present.insert(t.clone(), id);
        self.tuples.push(t);
        Ok(true)
    }

    /// True if the tuple is stored.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.present.contains_key(t)
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Selects the tuples matching a partial binding pattern:
    /// `pattern[i] = Some(v)` requires column `i` to equal `v`; `None` is a
    /// wildcard. Uses the most selective bound-column index.
    ///
    /// # Panics
    ///
    /// Panics if the pattern's length does not match the relation's arity.
    pub fn select<'a>(
        &'a self,
        pattern: &[Option<Value>],
    ) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
        assert_eq!(pattern.len(), self.arity, "pattern arity mismatch");
        // Pick the bound column with the fewest candidate rows.
        let best = pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| {
                p.as_ref().map(|v| {
                    let n = self.indexes[c].get(v).map_or(0, Vec::len);
                    (n, c, v)
                })
            })
            .min_by_key(|(n, _, _)| *n);
        match best {
            None => {
                self.scans.fetch_add(1, Ordering::Relaxed);
                Box::new(self.tuples.iter())
            }
            Some((_, c, v)) => {
                self.probes.fetch_add(1, Ordering::Relaxed);
                let rows = self.indexes[c].get(v).map(Vec::as_slice).unwrap_or(&[]);
                let pattern = pattern.to_vec();
                Box::new(
                    rows.iter()
                        .map(|&id| &self.tuples[id as usize])
                        .filter(move |t| {
                            t.values()
                                .iter()
                                .zip(&pattern)
                                .all(|(tv, pv)| pv.as_ref().is_none_or(|p| p == tv))
                        }),
                )
            }
        }
    }

    /// Borrowed-key index probe: the row ids whose column `col` equals
    /// `v`, without cloning the probe value. Returns an empty slice when
    /// the value is absent (or the relation has no column `col`).
    ///
    /// Together with [`tuple_at`](Relation::tuple_at) this is the
    /// primitive the compiled plan executor scans with: the planner picks
    /// the probe column, probes once per frame, and verifies the remaining
    /// positions against the candidate rows.
    pub fn probe(&self, col: usize, v: &Value) -> &[u32] {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.indexes
            .get(col)
            .and_then(|ix| ix.get(v))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The tuple stored at row id `id` (as handed out by
    /// [`probe`](Relation::probe)).
    pub fn tuple_at(&self, id: u32) -> &Tuple {
        &self.tuples[id as usize]
    }

    /// Slot-pattern selection over borrowed values: like
    /// [`select`](Relation::select) but the pattern borrows its probe
    /// values instead of owning clones. Picks the most selective bound
    /// column (first minimum in column order) and verifies the rest.
    pub fn select_ref<'a>(
        &'a self,
        pattern: &[Option<&'a Value>],
    ) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
        debug_assert_eq!(pattern.len(), self.arity, "pattern arity mismatch");
        let best = pattern
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|v| (self.probe(c, v).len(), c, v)))
            .min_by_key(|(n, _, _)| *n);
        match best {
            None => {
                self.scans.fetch_add(1, Ordering::Relaxed);
                Box::new(self.tuples.iter())
            }
            Some((_, c, v)) => {
                let rows = self.probe(c, v);
                let pattern = pattern.to_vec();
                Box::new(rows.iter().map(|&id| self.tuple_at(id)).filter(move |t| {
                    t.values()
                        .iter()
                        .zip(&pattern)
                        .all(|(tv, pv)| pv.is_none_or(|p| p == tv))
                }))
            }
        }
    }

    /// Removes a tuple; returns `true` if it was present. Indexes are
    /// rebuilt (removal is rare relative to insertion and selection, so a
    /// simple rebuild keeps the hot paths branch-free).
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let Some(&id) = self.present.get(t) else {
            return false;
        };
        self.tuples.remove(id as usize);
        self.present.clear();
        for ix in &mut self.indexes {
            ix.clear();
        }
        for (row, tuple) in self.tuples.iter().enumerate() {
            self.present.insert(tuple.clone(), row as u32);
            for (c, v) in tuple.values().iter().enumerate() {
                self.indexes[c]
                    .entry(v.clone())
                    .or_default()
                    .push(row as u32);
            }
        }
        true
    }

    /// Removes all tuples and resets the probe/scan counters.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.present.clear();
        for ix in &mut self.indexes {
            ix.clear();
        }
        self.probes.store(0, Ordering::Relaxed);
        self.scans.store(0, Ordering::Relaxed);
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let mut r = Relation::new("complete", 3);
        for t in [
            vec![Value::sym("ann"), Value::sym("databases"), Value::Num(4.0)],
            vec![Value::sym("bob"), Value::sym("databases"), Value::Num(3.5)],
            vec![Value::sym("ann"), Value::sym("calculus"), Value::Num(3.9)],
        ] {
            r.insert(Tuple::new(t)).unwrap();
        }
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new("p", 1);
        assert!(r.insert(Tuple::new(vec![Value::Int(1)])).unwrap());
        assert!(!r.insert(Tuple::new(vec![Value::Int(1)])).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn insert_arity_mismatch_is_an_error_not_a_panic() {
        let mut r = Relation::new("p", 2);
        let err = r.insert(Tuple::new(vec![Value::Int(1)])).unwrap_err();
        assert_eq!(
            err,
            StorageError::ArityMismatch {
                predicate: "p".to_string(),
                expected: 2,
                found: 1,
            }
        );
        // Nothing was stored and the relation remains usable.
        assert!(r.is_empty());
        assert!(r
            .insert(Tuple::new(vec![Value::Int(1), Value::Int(2)]))
            .unwrap());
    }

    #[test]
    fn select_unbound_returns_all() {
        let r = sample();
        assert_eq!(r.select(&[None, None, None]).count(), 3);
    }

    #[test]
    fn select_single_column() {
        let r = sample();
        let anns: Vec<_> = r.select(&[Some(Value::sym("ann")), None, None]).collect();
        assert_eq!(anns.len(), 2);
        assert!(anns.iter().all(|t| t.get(0) == Some(&Value::sym("ann"))));
    }

    #[test]
    fn select_multi_column_verifies_rest() {
        let r = sample();
        let hits: Vec<_> = r
            .select(&[Some(Value::sym("ann")), Some(Value::sym("databases")), None])
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get(2), Some(&Value::Num(4.0)));
    }

    #[test]
    fn select_absent_value_is_empty() {
        let r = sample();
        assert_eq!(r.select(&[Some(Value::sym("zoe")), None, None]).count(), 0);
    }

    #[test]
    fn select_numeric_equality_across_kinds() {
        let mut r = Relation::new("units", 1);
        r.insert(Tuple::new(vec![Value::Int(4)])).unwrap();
        // Num(4.0) equals Int(4) (and hashes identically).
        assert_eq!(r.select(&[Some(Value::Num(4.0))]).count(), 1);
    }

    #[test]
    fn probe_and_select_ref_agree_with_select() {
        let r = sample();
        let ann = Value::sym("ann");
        let db = Value::sym("databases");
        assert_eq!(r.probe(0, &ann).len(), 2);
        assert_eq!(r.probe(0, &Value::sym("zoe")).len(), 0);
        assert_eq!(r.probe(9, &ann).len(), 0);
        for id in r.probe(0, &ann) {
            assert_eq!(r.tuple_at(*id).get(0), Some(&ann));
        }
        let owned: Vec<_> = r
            .select(&[Some(ann.clone()), Some(db.clone()), None])
            .cloned()
            .collect();
        let borrowed: Vec<_> = r
            .select_ref(&[Some(&ann), Some(&db), None])
            .cloned()
            .collect();
        assert_eq!(owned, borrowed);
        assert_eq!(r.select_ref(&[None, None, None]).count(), 3);
    }

    #[test]
    fn insertion_order_is_preserved() {
        let r = sample();
        let firsts: Vec<_> = r.iter().map(|t| t.get(0).unwrap().clone()).collect();
        assert_eq!(
            firsts,
            vec![Value::sym("ann"), Value::sym("bob"), Value::sym("ann")]
        );
    }

    #[test]
    fn remove_rebuilds_indexes() {
        let mut r = sample();
        let gone = Tuple::new(vec![
            Value::sym("ann"),
            Value::sym("databases"),
            Value::Num(4.0),
        ]);
        assert!(r.remove(&gone));
        assert!(!r.remove(&gone));
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&gone));
        // Index lookups remain consistent after the rebuild.
        assert_eq!(r.select(&[Some(Value::sym("ann")), None, None]).count(), 1);
        assert_eq!(
            r.select(&[None, Some(Value::sym("databases")), None])
                .count(),
            1
        );
    }

    #[test]
    fn counters_track_probes_and_scans() {
        let r = sample();
        assert_eq!(r.index_probes(), 0);
        assert_eq!(r.full_scans(), 0);
        r.select(&[None, None, None]).count();
        assert_eq!(r.full_scans(), 1);
        assert_eq!(r.index_probes(), 0);
        r.select(&[Some(Value::sym("ann")), None, None]).count();
        assert_eq!(r.index_probes(), 1);
        r.probe(0, &Value::sym("ann"));
        assert_eq!(r.index_probes(), 2);
        // select_ref probes the index both to score bound columns and to
        // fetch the winner's rows.
        let ann = Value::sym("ann");
        r.select_ref(&[Some(&ann), None, None]).count();
        assert!(r.index_probes() >= 3);
        r.select_ref(&[None, None, None]).count();
        assert_eq!(r.full_scans(), 2);
    }

    #[test]
    fn counters_survive_remove_and_reinsert() {
        let mut r = sample();
        r.select(&[Some(Value::sym("ann")), None, None]).count();
        r.select(&[None, None, None]).count();
        let (p, s) = (r.index_probes(), r.full_scans());
        assert!(p > 0 && s > 0);
        let gone = Tuple::new(vec![
            Value::sym("ann"),
            Value::sym("databases"),
            Value::Num(4.0),
        ]);
        assert!(r.remove(&gone));
        assert_eq!((r.index_probes(), r.full_scans()), (p, s));
        r.insert(gone).unwrap();
        assert_eq!((r.index_probes(), r.full_scans()), (p, s));
        // Clones carry the current totals forward independently.
        let c = r.clone();
        c.probe(0, &Value::sym("bob"));
        assert_eq!(c.index_probes(), p + 1);
        assert_eq!(r.index_probes(), p);
    }

    #[test]
    fn clear_resets_counters() {
        let mut r = sample();
        r.select(&[Some(Value::sym("ann")), None, None]).count();
        r.select(&[None, None, None]).count();
        r.clear();
        assert_eq!(r.index_probes(), 0);
        assert_eq!(r.full_scans(), 0);
    }

    #[test]
    fn clear_empties_indexes() {
        let mut r = sample();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.select(&[Some(Value::sym("ann")), None, None]).count(), 0);
        // Reinsertion after clear works and reindexes.
        r.insert(Tuple::new(vec![
            Value::sym("cara"),
            Value::sym("databases"),
            Value::Num(3.8),
        ]))
        .unwrap();
        assert_eq!(r.select(&[Some(Value::sym("cara")), None, None]).count(), 1);
    }
}
