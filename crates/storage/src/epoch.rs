//! Epoch-versioned publication: snapshot cells and the single-writer EDB.
//!
//! The concurrency model is single-writer / multi-reader snapshot
//! isolation. A writer batches mutations into its private copy-on-write
//! state (see [`Relation`](crate::Relation) — clones share structure, so
//! the private copy costs only what the batch touches) and *publishes* it
//! as the next **epoch**: an immutable `Arc`-shared value in an
//! [`EpochCell`]. Readers pin the current epoch's `Arc` once and query it
//! with **zero locks** — the cell is consulted again only when a reader
//! explicitly [`refresh`](EpochCell::refresh)es, and even that is a single
//! atomic load unless a new epoch was actually published.
//!
//! Two invariants fall out of the types:
//!
//! * a reader opened before a publish never observes it — the pinned `Arc`
//!   is immutable and the writer's copy-on-write mutations cannot reach it;
//! * answers per snapshot are deterministic — every reader of one epoch
//!   holds literally the same data.
//!
//! [`EdbWriter`] packages the pattern for a bare [`Edb`]; the language
//! layer wraps whole knowledge bases the same way (an `EpochCell` is
//! generic over its payload).

use crate::database::Edb;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Identifier of a published epoch. Monotonically increasing, starting at
/// 1 for the initially published state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EpochId(pub u64);

impl std::fmt::Display for EpochId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A versioned slot holding the currently published epoch of a value.
///
/// Writers replace the slot atomically with [`publish`](EpochCell::publish);
/// readers [`load`](EpochCell::load) a `(version, Arc)` pair once, then
/// query the `Arc` without ever touching the cell again. The version
/// counter lets [`refresh`](EpochCell::refresh) detect "nothing changed"
/// with one atomic load — the internal mutex is taken only to swap or copy
/// the `Arc` handle (a few instructions, never held across user code), so
/// the read *path* stays lock-free: all data a query touches is behind the
/// pinned `Arc`.
pub struct EpochCell<T> {
    version: AtomicU64,
    slot: Mutex<Arc<T>>,
}

impl<T> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("version", &self.version())
            .finish_non_exhaustive()
    }
}

impl<T> EpochCell<T> {
    /// Creates a cell with `value` published as epoch 1.
    pub fn new(value: T) -> Self {
        Self::from_arc(Arc::new(value))
    }

    /// Creates a cell publishing an already-shared value as epoch 1.
    pub fn from_arc(value: Arc<T>) -> Self {
        EpochCell {
            version: AtomicU64::new(1),
            slot: Mutex::new(value),
        }
    }

    /// The currently published epoch number (one atomic load).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Pins the currently published epoch: its number and its value.
    pub fn load(&self) -> (u64, Arc<T>) {
        let guard = self.lock();
        (self.version.load(Ordering::Acquire), Arc::clone(&guard))
    }

    /// Publishes `value` as the next epoch; returns its number.
    pub fn publish(&self, value: T) -> u64 {
        self.publish_arc(Arc::new(value))
    }

    /// Publishes an already-shared value as the next epoch.
    pub fn publish_arc(&self, value: Arc<T>) -> u64 {
        let mut guard = self.lock();
        *guard = value;
        let next = self.version.load(Ordering::Relaxed) + 1;
        self.version.store(next, Ordering::Release);
        next
    }

    /// How many `Arc` handles to the *currently published* value are held
    /// outside the cell — the snapshot-pin count metrics gauges report.
    /// Readers still pinning older epochs are invisible here (their
    /// `Arc`s point at values the cell no longer holds).
    pub fn pinned(&self) -> u64 {
        let guard = self.lock();
        (Arc::strong_count(&guard) as u64).saturating_sub(1)
    }

    /// Re-pins `(version, cached)` to the latest epoch if one was
    /// published since; returns `true` if the pin moved. When nothing was
    /// published this is a single atomic load — the fast path for readers
    /// polling between queries.
    pub fn refresh(&self, version: &mut u64, cached: &mut Arc<T>) -> bool {
        if self.version.load(Ordering::Acquire) == *version {
            return false;
        }
        let (now, value) = self.load();
        let moved = now != *version;
        *version = now;
        *cached = value;
        moved
    }

    /// Locks the slot, recovering from poison (the guarded section is a
    /// handle swap that cannot panic mid-update).
    fn lock(&self) -> MutexGuard<'_, Arc<T>> {
        self.slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The single-writer side of an epoch-published [`Edb`].
///
/// The writer owns a private working copy; mutations batch into it through
/// [`edb_mut`](EdbWriter::edb_mut) without disturbing published epochs.
/// [`publish`](EdbWriter::publish) promotes demand-built indexes, adopts
/// index demand readers expressed on the previous epoch, and atomically
/// installs a snapshot of the working copy as the next epoch.
#[derive(Debug)]
pub struct EdbWriter {
    edb: Edb,
    cell: Arc<EpochCell<Edb>>,
    published: Arc<Edb>,
}

impl EdbWriter {
    /// Wraps a database, publishing its current state as epoch 1.
    pub fn new(edb: Edb) -> Self {
        let published = Arc::new(edb.clone());
        EdbWriter {
            edb,
            cell: Arc::new(EpochCell::from_arc(Arc::clone(&published))),
            published,
        }
    }

    /// The writer's private working copy (the next epoch under
    /// construction).
    pub fn edb(&self) -> &Edb {
        &self.edb
    }

    /// Mutable access to the working copy. Changes stay invisible to
    /// readers until [`publish`](EdbWriter::publish).
    pub fn edb_mut(&mut self) -> &mut Edb {
        &mut self.edb
    }

    /// The shared cell readers pin snapshots from (hand clones of this to
    /// reader threads).
    pub fn cell(&self) -> &Arc<EpochCell<Edb>> {
        &self.cell
    }

    /// The number of the most recently published epoch.
    pub fn epoch(&self) -> EpochId {
        EpochId(self.cell.version())
    }

    /// Pins the most recently published epoch (what a new reader sees).
    pub fn snapshot(&self) -> (EpochId, Arc<Edb>) {
        let (version, edb) = self.cell.load();
        (EpochId(version), edb)
    }

    /// Publishes the working copy as the next epoch and returns its id.
    /// Composite indexes demand-built by readers of the previous epoch are
    /// adopted and promoted first, so the new epoch answers the same plans
    /// lock-free from the start.
    pub fn publish(&mut self) -> EpochId {
        self.edb.adopt_index_demand(&self.published);
        self.edb.promote_indexes();
        let snapshot = Arc::new(self.edb.clone());
        self.published = Arc::clone(&snapshot);
        EpochId(self.cell.publish_arc(snapshot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tuple, Value};

    fn writer() -> EdbWriter {
        let mut edb = Edb::new();
        edb.declare("edge", &["From", "To"]).unwrap();
        for i in 0..4 {
            edb.insert_tuple("edge", Tuple::new(vec![Value::Int(i), Value::Int(i + 1)]))
                .unwrap();
        }
        EdbWriter::new(edb)
    }

    #[test]
    fn cell_pins_refreshes_and_versions() {
        let cell = EpochCell::new(10usize);
        assert_eq!(cell.version(), 1);
        let (mut v, mut pinned) = cell.load();
        assert_eq!((v, *pinned), (1, 10));
        // Nothing published: refresh is a no-op.
        assert!(!cell.refresh(&mut v, &mut pinned));
        assert_eq!(cell.publish(20), 2);
        // The pin is unaffected until refreshed.
        assert_eq!(*pinned, 10);
        assert!(cell.refresh(&mut v, &mut pinned));
        assert_eq!((v, *pinned), (2, 20));
        assert!(!cell.refresh(&mut v, &mut pinned));
    }

    #[test]
    fn readers_never_observe_unpublished_writes() {
        let mut w = writer();
        let (e1, snap) = w.snapshot();
        assert_eq!(e1, EpochId(1));
        assert_eq!(snap.fact_count(), 4);
        // Batch into the next epoch: the pinned snapshot and fresh loads
        // of the cell both still see epoch 1.
        w.edb_mut()
            .insert_tuple("edge", Tuple::new(vec![Value::Int(9), Value::Int(10)]))
            .unwrap();
        assert_eq!(snap.fact_count(), 4);
        assert_eq!(w.cell().load().1.fact_count(), 4);
        assert_eq!(w.edb().fact_count(), 5);
        // Publish: new pins see epoch 2, the old pin still epoch 1.
        assert_eq!(w.publish(), EpochId(2));
        let (e2, snap2) = w.snapshot();
        assert_eq!(e2, EpochId(2));
        assert_eq!(snap2.fact_count(), 5);
        assert_eq!(snap.fact_count(), 4);
    }

    #[test]
    fn publish_adopts_reader_index_demand() {
        let mut w = writer();
        let (_, snap) = w.snapshot();
        // A reader demand-builds a composite on its pinned snapshot; the
        // writer never saw the request.
        let rel = snap.relation("edge").unwrap();
        assert!(rel.composite(&[0, 1]).is_some());
        assert_eq!(w.edb().relation("edge").unwrap().composite_count(), 0);
        // The next publish carries the definition into the new epoch,
        // promoted (lock-free) from the start.
        w.publish();
        let (_, snap2) = w.snapshot();
        assert_eq!(snap2.relation("edge").unwrap().composite_count(), 1);
        assert_eq!(w.edb().relation("edge").unwrap().composite_count(), 1);
    }

    #[test]
    fn concurrent_readers_pin_distinct_epochs() {
        let mut w = writer();
        let cell = Arc::clone(w.cell());
        let (v0, snap0) = cell.load();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let (mut v, mut snap) = cell.load();
                    let mut counts = vec![snap.fact_count()];
                    for _ in 0..50 {
                        cell.refresh(&mut v, &mut snap);
                        counts.push(snap.fact_count());
                    }
                    counts
                })
            })
            .collect();
        for i in 0..8 {
            w.edb_mut()
                .insert_tuple(
                    "edge",
                    Tuple::new(vec![Value::Int(100 + i), Value::Int(101 + i)]),
                )
                .unwrap();
            w.publish();
        }
        for h in handles {
            let counts = h.join().unwrap();
            // Fact counts only grow: epochs are observed in publish order.
            assert!(counts.windows(2).all(|w| w[0] <= w[1]), "monotonic reads");
        }
        // The pre-churn pin still answers from epoch 1.
        let mut v = v0;
        let mut snap = snap0;
        assert_eq!(snap.fact_count(), 4);
        assert!(cell.refresh(&mut v, &mut snap));
        assert_eq!(snap.fact_count(), 12);
    }
}
