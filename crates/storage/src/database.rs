//! The extensional database.

use crate::catalog::{Catalog, Schema};
use crate::error::{Result, StorageError};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::{builtins, Value};
use qdk_logic::{Atom, Subst, Sym, Term};

/// The extensional database: a catalog of declared predicates and their
/// stored fact relations (the sets `P` and `R` of §2.1 — stored predicates
/// plus built-ins, which are evaluated rather than stored).
#[derive(Clone, Debug, Default)]
pub struct Edb {
    catalog: Catalog,
    relations: std::collections::HashMap<Sym, Relation>,
}

impl Edb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Edb::default()
    }

    /// Declares an EDB predicate with named attributes.
    pub fn declare(&mut self, name: &str, attrs: &[&str]) -> Result<()> {
        if builtins::is_builtin(name) {
            return Err(StorageError::ReservedPredicate(name.to_string()));
        }
        let schema = Schema::new(name, attrs);
        let arity = schema.arity();
        self.catalog.declare(schema);
        self.relations
            .entry(Sym::new(name))
            .or_insert_with(|| Relation::new(name, arity));
        Ok(())
    }

    /// The catalog of declared predicates.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// True if `name` is a declared EDB predicate (not a built-in).
    pub fn is_edb_predicate(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Checks that `name` may be declared (not a reserved built-in)
    /// without declaring it — the pre-flight check the durability layer
    /// runs before logging a declaration.
    pub fn validate_declare(&self, name: &str) -> Result<()> {
        if builtins::is_builtin(name) {
            return Err(StorageError::ReservedPredicate(name.to_string()));
        }
        Ok(())
    }

    /// Checks every condition [`Self::insert_fact`] (and
    /// [`Self::remove_fact`]) would: the atom is ground, its predicate is
    /// declared, and the arity matches — without touching the database.
    /// The write-ahead discipline validates first, then logs, then
    /// applies, so a mutation that reaches the log can no longer fail.
    pub fn validate_fact(&self, atom: &Atom) -> Result<()> {
        if !atom.is_ground() {
            return Err(StorageError::NotGround(atom.to_string()));
        }
        let rel = self
            .relations
            .get(&atom.pred)
            .ok_or_else(|| StorageError::UnknownPredicate(atom.pred.to_string()))?;
        if atom.arity() != rel.arity() {
            return Err(StorageError::ArityMismatch {
                predicate: atom.pred.to_string(),
                expected: rel.arity(),
                found: atom.arity(),
            });
        }
        Ok(())
    }

    /// Inserts a ground fact. The predicate must be declared and the fact
    /// ground with matching arity. Returns `true` if the fact is new.
    pub fn insert_fact(&mut self, atom: &Atom) -> Result<bool> {
        if !atom.is_ground() {
            return Err(StorageError::NotGround(atom.to_string()));
        }
        let rel = self
            .relations
            .get_mut(&atom.pred)
            .ok_or_else(|| StorageError::UnknownPredicate(atom.pred.to_string()))?;
        if atom.arity() != rel.arity() {
            return Err(StorageError::ArityMismatch {
                predicate: atom.pred.to_string(),
                expected: rel.arity(),
                found: atom.arity(),
            });
        }
        let tuple: Tuple = atom
            .args
            .iter()
            .map(|t| t.as_const().expect("ground").clone())
            .collect();
        rel.insert(tuple)
    }

    /// Inserts a tuple directly into a declared relation.
    pub fn insert_tuple(&mut self, pred: &str, tuple: Tuple) -> Result<bool> {
        let rel = self
            .relations
            .get_mut(pred)
            .ok_or_else(|| StorageError::UnknownPredicate(pred.to_string()))?;
        if tuple.arity() != rel.arity() {
            return Err(StorageError::ArityMismatch {
                predicate: pred.to_string(),
                expected: rel.arity(),
                found: tuple.arity(),
            });
        }
        rel.insert(tuple)
    }

    /// Removes a ground fact; returns `true` if it was stored.
    pub fn remove_fact(&mut self, atom: &Atom) -> Result<bool> {
        if !atom.is_ground() {
            return Err(StorageError::NotGround(atom.to_string()));
        }
        let rel = self
            .relations
            .get_mut(&atom.pred)
            .ok_or_else(|| StorageError::UnknownPredicate(atom.pred.to_string()))?;
        if atom.arity() != rel.arity() {
            return Err(StorageError::ArityMismatch {
                predicate: atom.pred.to_string(),
                expected: rel.arity(),
                found: atom.arity(),
            });
        }
        let tuple: Tuple = atom
            .args
            .iter()
            .map(|t| t.as_const().expect("ground").clone())
            .collect();
        Ok(rel.remove(&tuple))
    }

    /// Removes a tuple directly from a declared relation (the replay twin
    /// of [`Self::insert_tuple`] — it goes through the exact same
    /// [`Relation::remove`] path as [`Self::remove_fact`], so indexes and
    /// meters stay consistent under WAL replay).
    pub fn remove_tuple(&mut self, pred: &str, tuple: &Tuple) -> Result<bool> {
        let rel = self
            .relations
            .get_mut(pred)
            .ok_or_else(|| StorageError::UnknownPredicate(pred.to_string()))?;
        if tuple.arity() != rel.arity() {
            return Err(StorageError::ArityMismatch {
                predicate: pred.to_string(),
                expected: rel.arity(),
                found: tuple.arity(),
            });
        }
        Ok(rel.remove(tuple))
    }

    /// The relation stored for a predicate.
    pub fn relation(&self, pred: &str) -> Option<&Relation> {
        self.relations.get(pred)
    }

    /// Total number of stored facts.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Aggregate access-path counters over all relations:
    /// `(index_probes, full_scans)`. The engine reports deltas of these
    /// as the `index_probes` / `full_scans` observability counters.
    pub fn access_stats(&self) -> (u64, u64) {
        self.relations.values().fold((0, 0), |(p, s), r| {
            (p + r.index_probes(), s + r.full_scans())
        })
    }

    /// Total probes answered by composite indexes across all relations
    /// (the engine reports deltas of this as the `composite_probes`
    /// observability counter).
    pub fn composite_probes(&self) -> u64 {
        self.relations
            .values()
            .map(Relation::composite_probes)
            .sum()
    }

    /// Promotes every relation's demand-built composite indexes into its
    /// lock-free set (see [`Relation::promote_pending`]). The epoch writer
    /// calls this at publish so snapshot readers never touch the pending
    /// lock.
    pub fn promote_indexes(&mut self) {
        for rel in self.relations.values_mut() {
            rel.promote_pending();
        }
    }

    /// Adopts the composite-index definitions demand-built on `other`
    /// (typically the previously published snapshot of this database) into
    /// the matching relations here (see [`Relation::adopt_demand`]).
    /// Readers of the last epoch thereby seed the indexes of the next.
    pub fn adopt_index_demand(&mut self, other: &Edb) {
        for (name, rel) in &other.relations {
            if let Some(mine) = self.relations.get_mut(name) {
                mine.adopt_demand(rel);
            }
        }
    }

    /// Ensures a promoted composite index over `cols` exists on `pred`;
    /// returns `false` if the predicate is undeclared or the column set is
    /// invalid (see [`Relation::ensure_composite`]). The epoch writer uses
    /// this to prebuild the indexes a compiled plan will probe.
    pub fn ensure_composite(&mut self, pred: &str, cols: &[usize]) -> bool {
        self.relations
            .get_mut(pred)
            .is_some_and(|rel| rel.ensure_composite(cols))
    }

    /// A cardinality snapshot of the stored relations for the engine's
    /// cost model (one `len()` per relation; cheap enough to retake at
    /// every plan-cache fill).
    pub fn stats(&self) -> crate::catalog::CatalogStats {
        crate::catalog::CatalogStats::from_cards(
            self.relations
                .iter()
                .map(|(name, r)| (name.clone(), r.len())),
        )
    }

    /// Extends `subst` in all ways that make `atom` true against the stored
    /// facts, appending each extension to `out`.
    ///
    /// For a built-in atom this evaluates the comparison if ground (a
    /// still-variable comparison is an error here — callers order body
    /// literals so built-ins are evaluated last).
    pub fn match_atom(&self, atom: &Atom, subst: &Subst, out: &mut Vec<Subst>) -> Result<()> {
        if atom.is_builtin() {
            match builtins::eval_atom(atom, subst)? {
                Some(true) => out.push(subst.clone()),
                Some(false) => {}
                None => {
                    return Err(StorageError::NotGround(format!(
                        "comparison not decidable yet: {}",
                        subst.apply_atom(atom)
                    )))
                }
            }
            return Ok(());
        }
        let rel = self
            .relations
            .get(&atom.pred)
            .ok_or_else(|| StorageError::UnknownPredicate(atom.pred.to_string()))?;
        if atom.arity() != rel.arity() {
            return Err(StorageError::ArityMismatch {
                predicate: atom.pred.to_string(),
                expected: rel.arity(),
                found: atom.arity(),
            });
        }
        // Build the selection pattern from the bound positions.
        let resolved: Vec<Term> = atom.args.iter().map(|t| subst.apply_term(t)).collect();
        let pattern: Vec<Option<Value>> = resolved.iter().map(|t| t.as_const().cloned()).collect();
        'tuples: for tuple in rel.select(&pattern) {
            let mut s = subst.clone();
            for (term, value) in resolved.iter().zip(tuple.values()) {
                match term {
                    Term::Const(c) => {
                        if c != value {
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => {
                        let resolved_now = s.apply_term(&Term::Var(v.clone()));
                        match resolved_now {
                            Term::Const(c) => {
                                if &c != value {
                                    continue 'tuples;
                                }
                            }
                            Term::Var(w) => {
                                s.bind(w, Term::Const(value.clone()));
                            }
                        }
                    }
                }
            }
            out.push(s);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_atom;

    fn db() -> Edb {
        let mut edb = Edb::new();
        edb.declare("student", &["Sname", "Major", "Gpa"]).unwrap();
        edb.declare("enroll", &["Sname", "Ctitle"]).unwrap();
        for f in [
            "student(ann, math, 3.9)",
            "student(bob, physics, 3.5)",
            "student(cara, math, 3.8)",
            "enroll(ann, databases)",
            "enroll(bob, databases)",
        ] {
            edb.insert_fact(&parse_atom(f).unwrap()).unwrap();
        }
        edb
    }

    #[test]
    fn declaration_and_insertion() {
        let edb = db();
        assert_eq!(edb.fact_count(), 5);
        assert_eq!(edb.relation("student").unwrap().len(), 3);
        assert!(edb.is_edb_predicate("student"));
        assert!(!edb.is_edb_predicate("honor"));
    }

    #[test]
    fn reserved_and_unknown_predicates() {
        let mut edb = Edb::new();
        assert!(matches!(
            edb.declare("=", &["A", "B"]),
            Err(StorageError::ReservedPredicate(_))
        ));
        assert!(matches!(
            edb.insert_fact(&parse_atom("ghost(a)").unwrap()),
            Err(StorageError::UnknownPredicate(_))
        ));
    }

    #[test]
    fn non_ground_fact_rejected() {
        let mut edb = db();
        assert!(matches!(
            edb.insert_fact(&parse_atom("enroll(X, databases)").unwrap()),
            Err(StorageError::NotGround(_))
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut edb = db();
        assert!(matches!(
            edb.insert_fact(&parse_atom("enroll(ann)").unwrap()),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn match_atom_unbound_variable() {
        let edb = db();
        let mut out = Vec::new();
        edb.match_atom(
            &parse_atom("enroll(X, databases)").unwrap(),
            &Subst::new(),
            &mut out,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn match_atom_respects_existing_bindings() {
        let edb = db();
        let s: Subst = [(qdk_logic::Var::new("X"), Term::sym("ann"))]
            .into_iter()
            .collect();
        let mut out = Vec::new();
        edb.match_atom(&parse_atom("enroll(X, C)").unwrap(), &s, &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].apply_term(&Term::var("C")), Term::sym("databases"));
    }

    #[test]
    fn match_atom_repeated_variable() {
        let mut edb = Edb::new();
        edb.declare("pair", &["A", "B"]).unwrap();
        edb.insert_fact(&parse_atom("pair(a, a)").unwrap()).unwrap();
        edb.insert_fact(&parse_atom("pair(a, b)").unwrap()).unwrap();
        let mut out = Vec::new();
        edb.match_atom(&parse_atom("pair(X, X)").unwrap(), &Subst::new(), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].apply_term(&Term::var("X")), Term::sym("a"));
    }

    #[test]
    fn match_builtin_ground_and_undecidable() {
        let edb = db();
        let mut out = Vec::new();
        let s: Subst = [(qdk_logic::Var::new("Z"), Term::num(3.9))]
            .into_iter()
            .collect();
        edb.match_atom(&parse_atom("(Z > 3.7)").unwrap(), &s, &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        // False comparison adds nothing.
        let s2: Subst = [(qdk_logic::Var::new("Z"), Term::num(3.0))]
            .into_iter()
            .collect();
        edb.match_atom(&parse_atom("(Z > 3.7)").unwrap(), &s2, &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        // Undecidable comparison errors.
        assert!(edb
            .match_atom(&parse_atom("(Z > 3.7)").unwrap(), &Subst::new(), &mut out)
            .is_err());
    }

    #[test]
    fn duplicate_fact_insert_returns_false() {
        let mut edb = db();
        assert!(!edb
            .insert_fact(&parse_atom("enroll(ann, databases)").unwrap())
            .unwrap());
    }
}
