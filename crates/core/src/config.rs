//! Describe-engine configuration.

use crate::governor::{CancelToken, Governor, ResourceLimits};
use qdk_logic::obs::ObsSink;
use qdk_logic::Parallelism;
use std::time::Duration;
use threadpool::Pool;

/// When are one-level answers (plain IDB definitions) emitted?
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Figure 1's flag discipline, taken per rule: a root rule that
    /// produced no hypothesis-using theorem contributes its definition as
    /// a one-level answer (box 19). Faithful to the flowchart.
    #[default]
    PerRule,
    /// One-level answers are emitted only when *no* root rule (and no root
    /// identification) produced a hypothesis-using theorem — the behaviour
    /// the paper's printed examples exhibit (Example 6 lists no
    /// `prior ← prereq` answer). See EXPERIMENTS.md for the discrepancy
    /// discussion.
    Global,
}

/// Which rule transformation Algorithm 2 applies to recursive predicates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransformPolicy {
    /// Use the paper's *modified* transformation (reusing the recursive
    /// predicate itself, `p(X,Y) ← p(X,Z) ∧ p(Z,Y)`) whenever the
    /// recursion's shape permits it, falling back to the Imielinski
    /// transformation with an artificial `t` predicate otherwise. This
    /// yields the paper's "clearly preferable" answers (§5.3).
    #[default]
    PreferModified,
    /// Always use the Imielinski transformation (artificial predicate).
    AlwaysArtificial,
    /// Do not transform at all — Algorithm 1 behaviour, which on recursive
    /// subjects diverges (Examples 6–8); combine with a budget to
    /// demonstrate.
    None,
}

/// Options controlling `describe` evaluation.
#[derive(Clone, Debug)]
pub struct DescribeOptions {
    /// One-level-answer policy.
    pub fallback: FallbackPolicy,
    /// Transformation policy for recursive predicates.
    pub transform: TransformPolicy,
    /// Maximum applications of an *untyped* recursive rule per branch
    /// (§6: such rules are not transformed; their application count is
    /// controlled instead). Default 1: enough for the symmetric-
    /// reachability query of the introduction.
    pub untyped_rule_limit: usize,
    /// Unified resource limits (wall-clock deadline, work budget, tree
    /// depth, fact count) enforced by the shared [`Governor`]. With
    /// conforming IDBs every algorithm terminates; the limits bound
    /// Algorithm 1's divergence on recursive subjects (Examples 6–8) and
    /// runaway workloads generally. When a limit trips, `describe` returns
    /// the answers found so far tagged
    /// [`crate::Completeness::Truncated`] instead of erroring.
    pub limits: ResourceLimits,
    /// Cooperative cancellation token, checkable from another thread.
    pub cancel: Option<CancelToken>,
    /// Apply the comparison post-processing of §4 (drop implied
    /// comparisons, discard contradicted answers). Disabled only by the A1
    /// ablation benchmark.
    pub simplify_comparisons: bool,
    /// Remove θ-subsumed answers (§3.2's redundancy freedom). Disabled
    /// only by the A2 ablation benchmark.
    pub remove_redundant: bool,
    /// Worker count for the parallel derivation-tree enumeration
    /// (`Default` = available cores; [`Parallelism::SEQUENTIAL`] pins the
    /// exact sequential path). Root expansions fan out on the pool; the
    /// θ-subsumption and redundancy post-passes stay sequential, so the
    /// answer set is identical for every worker count.
    pub parallelism: Parallelism,
    /// Observability sink; Algorithm 1/2 spans and counters are emitted
    /// here (the default disabled sink records nothing and costs one
    /// branch).
    pub sink: ObsSink,
}

impl Default for DescribeOptions {
    fn default() -> Self {
        DescribeOptions {
            fallback: FallbackPolicy::default(),
            transform: TransformPolicy::default(),
            untyped_rule_limit: 1,
            limits: ResourceLimits::default(),
            cancel: None,
            simplify_comparisons: true,
            remove_redundant: true,
            parallelism: Parallelism::default(),
            sink: ObsSink::disabled(),
        }
    }
}

impl DescribeOptions {
    /// Options matching the paper's printed examples (global fallback).
    pub fn paper() -> Self {
        DescribeOptions {
            fallback: FallbackPolicy::Global,
            ..DescribeOptions::default()
        }
    }

    /// Sets the abstract work budget (tree operations).
    pub fn with_work_budget(mut self, budget: u64) -> Self {
        self.limits.work_budget = Some(budget);
        self
    }

    /// Sets a wall-clock deadline for the whole describe evaluation.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.limits.deadline = Some(deadline);
        self
    }

    /// Replaces all resource limits at once.
    pub fn with_limits(mut self, limits: ResourceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Sets the transformation policy.
    pub fn with_transform(mut self, policy: TransformPolicy) -> Self {
        self.transform = policy;
        self
    }

    /// Sets the fallback policy.
    pub fn with_fallback(mut self, policy: FallbackPolicy) -> Self {
        self.fallback = policy;
        self
    }

    /// Sets the maximum derivation-tree depth.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.limits.max_depth = Some(depth);
        self
    }

    /// Sets the worker count for the parallel enumeration.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Installs an observability sink.
    #[must_use]
    pub fn with_sink(mut self, sink: ObsSink) -> Self {
        self.sink = sink;
        self
    }

    /// Builds the governor for one describe evaluation.
    pub(crate) fn governor(&self) -> Governor {
        Governor::new(self.limits).with_cancel(self.cancel.clone())
    }

    /// Builds the worker pool for one enumeration. A finite work budget or
    /// fact cap forces the sequential pool: those limits trip at an exact
    /// tick, and the truncation point (hence the answer prefix) must be
    /// reproducible regardless of worker count. Deadline and cancellation
    /// are wall-clock events — nondeterministic even sequentially — so they
    /// do not disable parallelism.
    pub(crate) fn pool(&self) -> Pool {
        if self.limits.work_budget.is_some() || self.limits.max_facts.is_some() {
            Pool::new(1)
        } else {
            Pool::new(self.parallelism.get())
        }
    }
}
