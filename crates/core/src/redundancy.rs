//! Redundancy-free answers (§3.2).
//!
//! "An answer to a knowledge query is *free of redundancies* if none of
//! its formulas is a logical consequence of any of its other formulas."
//! Plain θ-subsumption catches most redundancies; two refinements close
//! gaps the paper itself points out (§6, first research direction):
//!
//! * **comparison-aware subsumption** — `p ← q(X,Z) ∧ (Z > 3)` subsumes
//!   `p ← q(X,Z) ∧ (Z > 4)` because `(Z > 4) ⊨ (Z > 3)`, though the atoms
//!   differ syntactically;
//! * **transitivity-aware subsumption** — after the §5.2 transformation,
//!   step predicates (and modified recursive predicates) are transitively
//!   closed by construction, so `p ← t(a,b) ∧ t(b,c)` is a consequence of
//!   `p ← t(a,c)`; the body of the more specific rule is closed under the
//!   transitivity rule before the subsumption test.

use crate::constraints::{self, Comparison};
use crate::Theorem;
use qdk_logic::{match_atom, Atom, Literal, Rule, Subst, Sym, Term, Var};
use std::collections::{BTreeSet, HashMap};

/// A literal's shape: predicate, arity, polarity. A general literal can
/// only map onto a specific literal of the same shape, so shape sets give
/// a subsumption prefilter that never changes the decision.
type Shape = (Sym, usize, bool);

fn shapes<'a>(lits: impl Iterator<Item = &'a Literal>) -> BTreeSet<Shape> {
    lits.filter(|l| !l.is_builtin())
        .map(|l| (l.atom.pred.clone(), l.atom.arity(), l.positive))
        .collect()
}

/// Standardizes a rule apart with reserved names (same trick as
/// `qdk_logic::subsume`, local so the semantic matcher controls it).
fn standardize(rule: &Rule) -> Rule {
    let renaming: Subst = rule
        .vars()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, Term::Var(Var::new(&format!("_sem{i}")))))
        .collect();
    renaming.apply_rule(rule)
}

/// Closes a body's non-builtin atoms under transitivity of the given
/// predicates: for `q ∈ trans`, `q(ā, b̄) ∧ q(b̄, c̄)` (splitting the
/// argument list in half) adds `q(ā, c̄)`. Bounded fixpoint.
fn transitive_closure(body: &[Literal], trans: &[Sym]) -> Vec<Literal> {
    let mut atoms: Vec<Literal> = body.to_vec();
    loop {
        let mut added = false;
        let snapshot: Vec<Atom> = atoms
            .iter()
            .filter(|l| l.positive && !l.is_builtin())
            .map(|l| l.atom.clone())
            .collect();
        for a in &snapshot {
            if !trans.contains(&a.pred) || a.arity() % 2 != 0 {
                continue;
            }
            let m = a.arity() / 2;
            for b in &snapshot {
                if b.pred != a.pred || a.args[m..] != b.args[..m] {
                    continue;
                }
                let composed = Atom::new(
                    a.pred.clone(),
                    a.args[..m].iter().chain(&b.args[m..]).cloned().collect(),
                );
                let lit = Literal::pos(composed);
                if !atoms.contains(&lit) {
                    atoms.push(lit);
                    added = true;
                }
            }
        }
        if !added || atoms.len() > 64 {
            return atoms;
        }
    }
}

/// The general side of a subsumption test, preprocessed: standardized
/// apart, with the body partitioned into database and comparison literals.
/// Pure function of the rule, so N×N subsumption sweeps prepare each rule
/// once instead of once per pair.
pub struct PreparedGeneral {
    head: Atom,
    db_lits: Vec<Literal>,
    cmp_lits: Vec<Literal>,
    /// Shapes of `db_lits` — must be a subset of the specific side's
    /// [`PreparedSpecific::shapes`] for subsumption to be possible.
    shapes: BTreeSet<Shape>,
}

/// The specific side of a subsumption test, preprocessed: the body closed
/// under transitivity with its comparisons extracted. Pure function of the
/// rule and `trans`.
pub struct PreparedSpecific {
    head: Atom,
    closed: Vec<Literal>,
    comps: Vec<Comparison>,
    /// Shapes of the closed body's database literals.
    shapes: BTreeSet<Shape>,
}

/// Preprocesses a rule for use as the general side of [`subsumes_prepared`].
pub fn prepare_general(rule: &Rule) -> PreparedGeneral {
    let std = standardize(rule);
    let (db_lits, cmp_lits): (Vec<Literal>, Vec<Literal>) =
        std.body.iter().cloned().partition(|l| !l.is_builtin());
    let shapes = shapes(db_lits.iter());
    PreparedGeneral {
        head: std.head,
        db_lits,
        cmp_lits,
        shapes,
    }
}

/// Preprocesses a rule for use as the specific side of [`subsumes_prepared`].
pub fn prepare_specific(rule: &Rule, trans: &[Sym]) -> PreparedSpecific {
    let closed = transitive_closure(&rule.body, trans);
    let comps = closed
        .iter()
        .filter(|l| l.positive && l.is_builtin())
        .filter_map(|l| Comparison::from_atom(&l.atom))
        .collect();
    let shapes = shapes(closed.iter());
    PreparedSpecific {
        head: rule.head.clone(),
        closed,
        comps,
        shapes,
    }
}

/// Semantic θ-subsumption: `general` subsumes `specific` when a
/// substitution σ (binding only `general`'s variables) maps its head onto
/// `specific`'s head, maps every non-builtin body literal onto some
/// literal of `specific`'s (transitively closed) body, and makes every
/// comparison literal either ground-true or entailed by some comparison
/// of `specific`'s body.
pub fn semantic_subsumes(general: &Rule, specific: &Rule, trans: &[Sym]) -> bool {
    subsumes_prepared(
        &prepare_general(general),
        &prepare_specific(specific, trans),
    )
}

/// [`semantic_subsumes`] over preprocessed sides — the form the reduction
/// passes call.
pub fn subsumes_prepared(general: &PreparedGeneral, specific: &PreparedSpecific) -> bool {
    // Shape prefilter: every general literal needs a same-shape target, so
    // a missing shape refutes the test before any matching. Equivalent to
    // (but much cheaper than) discovering an empty candidate list below.
    if !general.shapes.is_subset(&specific.shapes) {
        return false;
    }
    let mut s = Subst::new();
    if !match_atom(&general.head, &specific.head, &mut s) {
        return false;
    }
    // Resolve each general literal's candidate targets (same predicate,
    // sign, and arity) up front: an empty candidate list refutes the test
    // without any backtracking, and trying the most-constrained literal
    // first prunes the search. Neither changes the decision — a match the
    // full scan would have found is found here and vice versa.
    let mut cands: Vec<(&Literal, Vec<&Literal>)> = Vec::with_capacity(general.db_lits.len());
    for g in &general.db_lits {
        let c: Vec<&Literal> = specific
            .closed
            .iter()
            .filter(|l| {
                l.positive == g.positive
                    && !l.is_builtin()
                    && l.atom.pred == g.atom.pred
                    && l.atom.arity() == g.atom.arity()
            })
            .collect();
        if c.is_empty() {
            return false;
        }
        cands.push((g, c));
    }
    cands.sort_by_key(|(_, c)| c.len());
    map_db_literals(&cands, s, &general.cmp_lits, &specific.comps)
}

fn map_db_literals(
    remaining: &[(&Literal, Vec<&Literal>)],
    s: Subst,
    comparisons: &[Literal],
    specific_comps: &[Comparison],
) -> bool {
    let Some(((first, cands), rest)) = remaining.split_first() else {
        // All database literals mapped; now the comparisons must follow.
        return comparisons.iter().all(|l| {
            let inst = s.apply_atom(&l.atom);
            match Comparison::from_atom(&inst) {
                Some(Comparison::Ground(Some(true))) | Some(Comparison::SameVar(true)) => {
                    l.positive
                }
                Some(c) if l.positive => {
                    specific_comps.iter().any(|sc| constraints::implies(sc, &c))
                }
                _ => false,
            }
        });
    };
    for lit in cands {
        let mut s2 = s.clone();
        if match_atom(&first.atom, &lit.atom, &mut s2)
            && map_db_literals(rest, s2, comparisons, specific_comps)
        {
            return true;
        }
    }
    false
}

/// Saturates a body under the IDB rules (bounded forward chaining at the
/// term level): whenever a rule's database literals map into the body —
/// with its comparison literals entailed by the body's comparisons — the
/// instantiated head is added. Used for *subsumption modulo definitions*:
/// `p ← student(X,Y,Z) ∧ (Z > 3.7) ∧ …` is a consequence of
/// `p ← honor(X) ∧ …` because saturation derives `honor(X)` in the first
/// body.
pub fn saturate_body(body: &[Literal], idb: &qdk_engine::Idb, rounds: usize) -> Vec<Literal> {
    let mut lits: Vec<Literal> = body.to_vec();
    for _ in 0..rounds {
        let mut added = false;
        for rule in idb.rules() {
            let std_rule = standardize(rule);
            let comps: Vec<Comparison> = lits
                .iter()
                .filter(|l| l.positive && l.is_builtin())
                .filter_map(|l| Comparison::from_atom(&l.atom))
                .collect();
            let (db, cmp): (Vec<&Literal>, Vec<&Literal>) =
                std_rule.body.iter().partition(|l| !l.is_builtin());
            let mut matches = Vec::new();
            collect_matches(&db, &lits, Subst::new(), &cmp, &comps, &mut matches);
            for s in matches {
                let head = s.apply_atom(&std_rule.head);
                let lit = Literal::pos(head);
                if !lits.contains(&lit) {
                    lits.push(lit);
                    added = true;
                }
            }
            if lits.len() > 96 {
                return lits;
            }
        }
        if !added {
            break;
        }
    }
    lits
}

/// Like [`map_db_literals`] but collecting every successful substitution.
fn collect_matches(
    remaining: &[&Literal],
    specific: &[Literal],
    s: Subst,
    comparisons: &[&Literal],
    specific_comps: &[Comparison],
    out: &mut Vec<Subst>,
) {
    let Some((first, rest)) = remaining.split_first() else {
        let ok = comparisons.iter().all(|l| {
            let inst = s.apply_atom(&l.atom);
            match Comparison::from_atom(&inst) {
                Some(Comparison::Ground(Some(true))) | Some(Comparison::SameVar(true)) => {
                    l.positive
                }
                Some(c) if l.positive => {
                    specific_comps.iter().any(|sc| constraints::implies(sc, &c))
                }
                _ => false,
            }
        });
        if ok {
            out.push(s);
        }
        return;
    };
    for lit in specific {
        if lit.positive != first.positive || lit.is_builtin() {
            continue;
        }
        let mut s2 = s.clone();
        if match_atom(&first.atom, &lit.atom, &mut s2) {
            collect_matches(rest, specific, s2, comparisons, specific_comps, out);
        }
    }
}

/// Semantic subsumption *modulo the IDB's definitions*: the specific body
/// is saturated under the rules before the subsumption test, so a concept
/// and its unfolding are interchangeable.
pub fn subsumes_modulo_idb(
    general: &Rule,
    specific: &Rule,
    idb: &qdk_engine::Idb,
    trans: &[Sym],
) -> bool {
    let saturated =
        Rule::with_literals(specific.head.clone(), saturate_body(&specific.body, idb, 3));
    semantic_subsumes(general, &saturated, trans)
}

/// Removes redundant theorems: any theorem semantically subsumed by
/// another is dropped (first of an equivalent pair wins). `trans` lists
/// transitively-closed predicates (step predicates and modified recursive
/// predicates).
///
/// Theorems are bucketed by head signature (predicate and arity):
/// subsumption in either direction starts by matching the heads, so only
/// same-bucket pairs are ever compared — with mixed-subject answer sets
/// (tagged/typed transforms emit several head predicates) the quadratic
/// sweep shrinks to the sum of squared bucket sizes. Within a bucket the
/// shape prefilter in [`subsumes_prepared`] rejects most pairs without a
/// matching attempt. Survivors keep arrival order exactly like the
/// unbucketed sweep did.
pub fn remove_redundant(theorems: Vec<Theorem>, trans: &[Sym]) -> Vec<Theorem> {
    struct Entry {
        arrival: usize,
        theorem: Theorem,
        general: PreparedGeneral,
        specific: PreparedSpecific,
    }
    let mut buckets: HashMap<(Sym, usize), Vec<Entry>> = HashMap::new();
    'outer: for (arrival, t) in theorems.into_iter().enumerate() {
        let general = prepare_general(&t.rule);
        let specific = prepare_specific(&t.rule, trans);
        let key = (t.rule.head.pred.clone(), t.rule.head.arity());
        let kept = buckets.entry(key).or_default();
        for k in kept.iter() {
            if subsumes_prepared(&k.general, &specific) {
                continue 'outer;
            }
        }
        kept.retain(|k| !subsumes_prepared(&general, &k.specific));
        kept.push(Entry {
            arrival,
            theorem: t,
            general,
            specific,
        });
    }
    let mut survivors: Vec<Entry> = buckets.into_values().flatten().collect();
    survivors.sort_by_key(|e| e.arrival);
    survivors.into_iter().map(|e| e.theorem).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_rule;
    use std::collections::BTreeSet;

    fn r(src: &str) -> Rule {
        parse_rule(src).unwrap()
    }

    fn theorem(src: &str) -> Theorem {
        Theorem {
            rule: r(src),
            used_hypothesis: BTreeSet::new(),
            root_rule: None,
            one_level: false,
            derivation: Vec::new(),
        }
    }

    #[test]
    fn plain_subsumption_still_works() {
        assert!(semantic_subsumes(
            &r("p(X) :- q(X, Y)."),
            &r("p(X) :- q(X, databases)."),
            &[],
        ));
        assert!(!semantic_subsumes(
            &r("p(X) :- q(X, databases)."),
            &r("p(X) :- q(X, Y)."),
            &[],
        ));
    }

    #[test]
    fn comparison_aware_subsumption() {
        // (Z > 4) ⊨ (Z > 3): the tighter rule is redundant.
        let general = r("p(X) :- q(X, Z), Z > 3.");
        let specific = r("p(X) :- q(X, Z), Z > 4.");
        assert!(semantic_subsumes(&general, &specific, &[]));
        assert!(!semantic_subsumes(&specific, &general, &[]));
    }

    #[test]
    fn ground_true_comparison_is_free() {
        let general = r("p(X) :- q(X), 3 < 4.");
        let specific = r("p(X) :- q(X).");
        assert!(semantic_subsumes(&general, &specific, &[]));
    }

    #[test]
    fn comparison_must_be_entailed_not_merely_present() {
        let general = r("p(X) :- q(X, Z), Z > 5.");
        let specific = r("p(X) :- q(X, Z), Z > 3.");
        // (Z > 3) does not entail (Z > 5).
        assert!(!semantic_subsumes(&general, &specific, &[]));
    }

    #[test]
    fn transitivity_aware_subsumption() {
        // prior is transitively closed: prior(X, db) subsumes the chain
        // prior(X, Z) ∧ prior(Z, db).
        let trans = [Sym::new("prior")];
        let general = r("p(X, Y) :- prior(X, databases).");
        let specific = r("p(X, Y) :- prior(X, Z), prior(Z, databases).");
        assert!(semantic_subsumes(&general, &specific, &trans));
        // Without the transitivity declaration it is not subsumed.
        assert!(!semantic_subsumes(&general, &specific, &[]));
    }

    #[test]
    fn transitivity_with_arity_four_step_predicate() {
        let trans = [Sym::new("t_acc")];
        let general = r("p(X) :- t_acc(A, B, E, F).");
        let specific = r("p(X) :- t_acc(A, B, C, D), t_acc(C, D, E, F).");
        assert!(semantic_subsumes(&general, &specific, &trans));
    }

    #[test]
    fn remove_redundant_prefers_general() {
        let out = remove_redundant(
            vec![
                theorem("p(X) :- q(X, Z), Z > 4."),
                theorem("p(X) :- q(X, Z), Z > 3."),
                theorem("p(X) :- r(X)."),
            ],
            &[],
        );
        let rendered: Vec<String> = out.iter().map(|t| t.rule.to_string()).collect();
        assert_eq!(rendered, vec!["p(X) :- q(X, Z), (Z > 3).", "p(X) :- r(X)."]);
    }

    #[test]
    fn general_with_fewer_literals_still_subsumes() {
        // {q} ⊂ {q, r}: the shape prefilter must admit strict-subset
        // generals, not just equal-shape pairs.
        assert!(semantic_subsumes(
            &r("p(X) :- q(X, Y)."),
            &r("p(X) :- q(X, databases), r(X)."),
            &[],
        ));
    }

    #[test]
    fn mixed_head_signatures_reduce_per_bucket_and_keep_order() {
        let out = remove_redundant(
            vec![
                theorem("p(X) :- q(X, Z), Z > 4."),
                theorem("s(X) :- q(X, Y)."),
                theorem("p(X) :- q(X, Z), Z > 3."),
                // Same predicate, different arity: its own bucket.
                theorem("p(X, Y) :- q(X, Y)."),
                // Variant of the s-theorem: dropped, first wins.
                theorem("s(A) :- q(A, B)."),
            ],
            &[],
        );
        let rendered: Vec<String> = out.iter().map(|t| t.rule.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "s(X) :- q(X, Y).",
                "p(X) :- q(X, Z), (Z > 3).",
                "p(X, Y) :- q(X, Y).",
            ]
        );
    }

    #[test]
    fn equivalent_theorems_keep_first() {
        let out = remove_redundant(
            vec![theorem("p(X) :- q(X, Y)."), theorem("p(A) :- q(A, B).")],
            &[],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule.to_string(), "p(X) :- q(X, Y).");
    }

    #[test]
    fn negative_literals_respected() {
        let a = r("p(X) :- q(X), not r(X).");
        let b = r("p(X) :- q(X).");
        assert!(!semantic_subsumes(&a, &b, &[]));
        assert!(semantic_subsumes(&b, &a, &[]));
    }
}
