//! Derivation-tree enumeration: the engine shared by Algorithms 1 and 2.
//!
//! Figure 1's flowchart is a pointer machine walking one derivation tree
//! with in-place state saving (`hyp(q)`, `rule(q)`, `prev`/`next`). This
//! module realizes the same search as a recursive enumeration of
//! *branches*: at every tree formula the algorithm's three possibilities
//! are explored —
//!
//! 1. **identify** the formula with a hypothesis formula (boxes 2–5): the
//!    unifier applies to the whole tree, so it is threaded as one global
//!    substitution per branch;
//! 2. **leave** the formula as a leaf: it becomes a conjunct of the answer
//!    body (the identification "failure" path, boxes 6–7 — an unidentified
//!    sibling does not abort the rule);
//! 3. **expand** the formula with a rule whose head unifies with it
//!    (boxes 8–9), *productively*: a subtree that contains no hypothesis
//!    leaf is cut off below its root (§4 — "answers use the most general
//!    concepts possible"), which the enumeration realizes by discarding
//!    expansion branches whose subtree identified nothing (possibility 2
//!    already covers the collapsed form).
//!
//! Algorithm 2's additions (Figure 3, boxes 9a–9e) are handled in the same
//! walk: every recursive-rule application is gated by the node's *tag* and
//! assigns children tags per the paper's table, and identification
//! substitutions must *preserve typing* — a substitution that makes some
//! predicate's occurrences hold one variable in two different argument
//! positions (where they did not before) is disqualified.
//!
//! The output of enumeration is a set of [`RawAnswer`]s — substitution,
//! unidentified leaves, used hypothesis indexes, root provenance — which
//! the driver assembles into theorems.

use crate::config::DescribeOptions;
use crate::governor::{Exhausted, Governor, Resource};
use crate::transform::{RuleKind, TransformedIdb};
use qdk_logic::{unify_atoms, Atom, Const, Subst, Sym, Term, Var, VarGen};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use threadpool::Pool;

/// Algorithm 2's node tags (§5.3): `None` is untagged; tag 0 prohibits
/// applying a recursive rule to the node; tags 1 and 2 permit it and bound
/// how far continuation rules may nest (Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Tag {
    Untagged,
    Zero,
    One,
    Two,
}

/// Work counters accumulated during one enumeration, reported through the
/// observability layer (`trees_expanded`, `leaves_identified`, `cuts`).
/// Plain integers: workers each count their own task and the coordinator
/// sums in task order, so the totals are identical at every worker count.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct EnumStats {
    /// Successful rule applications (a tree formula expanded, boxes 8–9).
    pub trees_expanded: u64,
    /// Successful identifications with a hypothesis formula (boxes 2–5).
    pub leaves_identified: u64,
    /// Expansion branches discarded by the §4 productivity cut.
    pub cuts: u64,
}

impl EnumStats {
    fn merge(&mut self, other: EnumStats) {
        self.trees_expanded += other.trees_expanded;
        self.leaves_identified += other.leaves_identified;
        self.cuts += other.cuts;
    }
}

/// One enumerated derivation: everything the driver needs to assemble a
/// theorem.
#[derive(Clone, Debug)]
pub(crate) struct RawAnswer {
    /// The accumulated global substitution of the branch.
    pub subst: Subst,
    /// Unidentified leaf formulas (un-substituted; apply `subst`).
    pub leaves: Vec<Atom>,
    /// Hypothesis indexes identified somewhere in the tree.
    pub used: BTreeSet<usize>,
    /// Rule applied at the root (`None` = the subject itself was
    /// identified with a hypothesis formula).
    pub root_rule: Option<usize>,
    /// Human-readable derivation steps, in application order — the
    /// derivation tree of Figure 1, flattened depth-first.
    pub trace: Vec<String>,
    /// Every formula of the derivation tree (inner nodes and leaves),
    /// un-substituted. Used by the negated-hypothesis generalization: a
    /// theorem whose tree mentions a forbidden concept depends on it.
    pub tree_atoms: Vec<Atom>,
}

/// A persistent append-only sequence. Extending hands back a new tail
/// node `Arc`-linked to the previous chain, so cloning a [`Branch`] is a
/// couple of reference-count bumps instead of a deep copy of every atom
/// and trace line accumulated so far. Those deep copies dominated
/// enumeration: the tower workload spent ~20µs per expansion mostly
/// re-copying ever-growing occurrence and trace vectors through every
/// branch clone (each visited node clones its context two or more times),
/// and the copies grow linearly with depth. Chains cut the depth-8 tower
/// enumeration ~2.3×. Tail nodes also belong to the task that created
/// them, which keeps clone traffic off other workers' cache lines on
/// multi-core hosts.
#[derive(Clone, Debug)]
struct Chain<T>(Option<Arc<ChainNode<T>>>);

#[derive(Debug)]
struct ChainNode<T> {
    items: Vec<T>,
    parent: Chain<T>,
    /// Items in the whole chain up to and including this node.
    len: usize,
}

impl<T: Clone> Chain<T> {
    fn new() -> Self {
        Chain(None)
    }

    fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |n| n.len)
    }

    /// Appends `items`, returning the extended chain (`self` unchanged).
    fn extend(&self, items: Vec<T>) -> Self {
        if items.is_empty() {
            return self.clone();
        }
        let len = self.len() + items.len();
        Chain(Some(Arc::new(ChainNode {
            items,
            parent: self.clone(),
            len,
        })))
    }

    fn push(&self, item: T) -> Self {
        self.extend(vec![item])
    }

    /// Materializes the items from index `from` onward, in append order.
    fn collect_from(&self, from: usize) -> Vec<T> {
        let mut segs: Vec<&Vec<T>> = Vec::new();
        let mut cur = self;
        let base = loop {
            match cur.0.as_deref() {
                Some(n) if n.len > from => {
                    segs.push(&n.items);
                    cur = &n.parent;
                }
                node => break node.map_or(0, |n| n.len),
            }
        };
        let mut out: Vec<T> = Vec::with_capacity(self.len().saturating_sub(from));
        for (k, seg) in segs.iter().rev().enumerate() {
            // `from` may fall inside the earliest collected node.
            let skip = if k == 0 { from.saturating_sub(base) } else { 0 };
            out.extend(seg[skip..].iter().cloned());
        }
        out
    }
}

impl<T> Drop for ChainNode<T> {
    fn drop(&mut self) {
        // Unroll the tail-recursive drop of a uniquely owned parent chain
        // so guard-length derivations cannot overflow the stack.
        let mut parent = std::mem::replace(&mut self.parent, Chain(None));
        while let Some(arc) = parent.0.take() {
            match Arc::try_unwrap(arc) {
                Ok(mut node) => parent = std::mem::replace(&mut node.parent, Chain(None)),
                Err(_) => break,
            }
        }
    }
}

/// One branch state during enumeration of a subtree.
#[derive(Clone, Debug)]
struct Branch {
    subst: Subst,
    /// Every atom occurrence created so far in the whole tree (plus the
    /// subject and hypothesis), un-substituted — the "formulas of the
    /// tree" that typing preservation quantifies over.
    occurrences: Chain<Atom>,
    /// Applications of each untyped-controlled rule on this branch.
    untyped_uses: HashMap<usize, usize>,
    /// Leaves contributed by the subtree under enumeration.
    leaves: Vec<Atom>,
    /// Hypothesis indexes identified in the subtree under enumeration.
    used: BTreeSet<usize>,
    /// Derivation steps along this branch.
    trace: Chain<String>,
}

/// The enumerator.
pub(crate) struct Enumerator<'a> {
    tidb: &'a TransformedIdb,
    /// Non-comparison hypothesis atoms with their original indexes.
    hyp_atoms: Vec<(usize, Atom)>,
    /// Whether typing preservation is enforced (Algorithm 2).
    check_typing: bool,
    /// Exhaustive mode (completeness audits): the §4 productivity cut is
    /// disabled, so unproductive expansions are enumerated too.
    exhaustive: bool,
    opts: &'a DescribeOptions,
    gen: VarGen,
    /// Resource accountant for this enumeration. Budget, deadline, fact
    /// and cancellation trips are *hard*: enumeration soft-stops (loops
    /// drain, incomplete subtrees are discarded) and the sticky diagnostic
    /// is reported through [`Enumerator::truncation`].
    gov: Governor,
    /// Depth pruning is *soft*: a branch that reaches the depth bound is
    /// cut (exactly as before), the walk continues elsewhere, and the
    /// first prune is recorded here so the driver can tag the answer
    /// `Truncated` instead of silently under-reporting.
    depth_trunc: Option<Exhausted>,
    /// Set when the *built-in* recursion guard (not a user-configured
    /// `max_depth`) cut the walk: the subject is genuinely divergent and
    /// the guard-length chain answers are pathological — post-processing
    /// must be skipped on them.
    guard_prune: bool,
    /// Worker pool for root-expansion fan-out (see [`DescribeOptions::pool`];
    /// sequential when a deterministic-truncation limit is configured).
    pool: Pool,
    /// Task-local symbol copies, keyed by name. Renamed rule atoms (and the
    /// worker's hypothesis copies) are rebuilt through this cache so their
    /// `Sym` allocations belong to this worker: symbols equal by content
    /// behave identically everywhere, but every clone of a symbol shared
    /// across workers is an atomic refcount bump on a shared allocation,
    /// and on multi-core hosts those cache lines ping-pong between the
    /// workers' cores. Measured neutral on a single core; it exists for
    /// clone locality when the root fan-out really does run in parallel.
    syms: HashMap<String, Sym>,
    /// Observability counters for this enumeration.
    stats: EnumStats,
}

impl<'a> Enumerator<'a> {
    /// Creates an enumerator over a (possibly transformed) IDB and the
    /// hypothesis conjunction. Only positive non-comparison literals take
    /// part in identification (comparisons per §4; negative literals per
    /// the §6 generalization are handled by the driver's post-filter).
    pub fn new(
        tidb: &'a TransformedIdb,
        hypothesis: &[qdk_logic::Literal],
        check_typing: bool,
        opts: &'a DescribeOptions,
    ) -> Self {
        let hyp_atoms = hypothesis
            .iter()
            .enumerate()
            .filter(|(_, l)| l.positive && !l.is_builtin())
            .map(|(i, l)| (i, l.atom.clone()))
            .collect();
        Enumerator {
            tidb,
            hyp_atoms,
            check_typing,
            exhaustive: false,
            opts,
            gen: VarGen::new(),
            gov: opts.governor(),
            depth_trunc: None,
            guard_prune: false,
            pool: opts.pool(),
            syms: HashMap::new(),
            stats: EnumStats::default(),
        }
    }

    /// Switches the enumerator to exhaustive mode (no productivity cut).
    pub fn exhaustive(mut self) -> Self {
        self.exhaustive = true;
        self
    }

    /// A worker for one root-expansion task: shares the governor (one
    /// budget, one deadline, one sticky trip across all workers) but owns a
    /// fresh [`VarGen`] and its own soft-prune flags. Fresh-variable names
    /// are only required to be distinct *within* one derivation, and every
    /// rendering canonicalizes them, so per-task numbering makes each
    /// task's output independent of the others — identical whether the
    /// tasks ran inline in order or on worker threads.
    fn worker(&self) -> Enumerator<'a> {
        let mut w = Enumerator {
            tidb: self.tidb,
            hyp_atoms: Vec::new(),
            check_typing: self.check_typing,
            exhaustive: self.exhaustive,
            opts: self.opts,
            gen: VarGen::new(),
            gov: self.gov.clone(),
            depth_trunc: None,
            guard_prune: false,
            pool: Pool::new(1),
            syms: HashMap::new(),
            stats: EnumStats::default(),
        };
        // The worker unifies against the hypothesis at every visited node;
        // give it symbol copies it owns.
        w.hyp_atoms = self
            .hyp_atoms
            .iter()
            .map(|(i, a)| (*i, w.detach_atom(a)))
            .collect();
        w
    }

    /// A task-local copy of `s` (see the `syms` field).
    fn local_sym(&mut self, s: &Sym) -> Sym {
        if let Some(l) = self.syms.get(s.as_str()) {
            return l.clone();
        }
        let l = Sym::new(s.as_str());
        self.syms.insert(s.as_str().to_string(), l.clone());
        l
    }

    /// Rebuilds `a` with this worker's symbol allocations. Fresh variables
    /// already allocate per-worker (the worker's own [`VarGen`] makes
    /// them), so only the predicate and symbolic constants need rebinding.
    fn detach_atom(&mut self, a: &Atom) -> Atom {
        let pred = self.local_sym(&a.pred);
        let args = a
            .args
            .iter()
            .map(|t| match t {
                Term::Const(Const::Sym(s)) => Term::Const(Const::Sym(self.local_sym(s))),
                Term::Const(Const::Str(s)) => Term::Const(Const::Str(self.local_sym(s))),
                other => other.clone(),
            })
            .collect();
        Atom::new(pred, args)
    }

    /// Records one unit of work. The governor's trip (if any) is sticky,
    /// so the error is dropped here and observed via [`Self::stopped`].
    fn tick(&mut self) {
        let _ = self.gov.tick();
    }

    /// True once a hard limit (budget, deadline, facts, cancellation) has
    /// tripped; enumeration loops drain when this turns true.
    fn stopped(&self) -> bool {
        self.gov.tripped().is_some()
    }

    /// Records a branch cut at the depth bound (first prune wins).
    fn prune_depth(&mut self, depth: usize, limit: usize) {
        if self.depth_trunc.is_none() {
            self.depth_trunc = Some(Exhausted {
                resource: Resource::Depth,
                spent: depth as u64,
                limit: limit as u64,
            });
        }
    }

    /// The diagnostic to attach to the answer, if enumeration was cut
    /// short anywhere: a hard governor trip takes precedence over soft
    /// depth pruning.
    pub fn truncation(&self) -> Option<Exhausted> {
        self.gov.tripped().or(self.depth_trunc)
    }

    /// True when the driver must skip the O(n²) post-processing passes:
    /// either a hard resource trip (the evaluation is already over its
    /// allowance) or the built-in recursion guard fired (the walk is
    /// divergent and its guard-length chain bodies make θ-subsumption
    /// intractable). User-configured `max_depth` prunes are *not* hard:
    /// the bounded walk completed and its answer prefix is post-processed
    /// exactly.
    pub fn hard_stop(&self) -> bool {
        self.gov.tripped().is_some() || self.guard_prune
    }

    /// Number of tree operations performed (work metric for experiments;
    /// also reported as the governor spend at truncation).
    pub fn ops(&self) -> u64 {
        self.gov.work_spent()
    }

    /// Observability counters accumulated so far (coordinator totals).
    pub fn stats(&self) -> EnumStats {
        self.stats
    }

    /// Enumerates all derivations for `subject`. Also returns the set of
    /// root-rule indexes that produced at least one hypothesis-using
    /// derivation (for the one-level fallback logic).
    ///
    /// Never errors: when a resource limit trips, the derivations
    /// completed so far are returned and [`Self::truncation`] reports the
    /// diagnostic.
    pub fn enumerate(&mut self, subject: &Atom) -> (Vec<RawAnswer>, BTreeSet<usize>) {
        let mut answers = Vec::new();
        let mut productive_rules = BTreeSet::new();

        let base_occurrences: Vec<Atom> = std::iter::once(subject.clone())
            .chain(self.hyp_atoms.iter().map(|(_, a)| a.clone()))
            .collect();
        let base_chain = Chain::new().extend(base_occurrences.clone());

        // Root identification with a hypothesis formula (Example 6's
        // `prior(X, Y) ← (X = databases)` answers).
        for (i, h) in self.hyp_atoms.clone() {
            self.tick();
            if self.stopped() {
                break;
            }
            if let Some(mgu) = unify_atoms(subject, &h) {
                if self.typing_ok(&base_chain, &Subst::new(), &mgu) {
                    self.stats.leaves_identified += 1;
                    answers.push(RawAnswer {
                        subst: mgu,
                        leaves: Vec::new(),
                        used: [i].into(),
                        root_rule: None,
                        trace: vec![format!("{subject} identified with hypothesis {h}")],
                        tree_atoms: vec![subject.clone()],
                    });
                }
            }
        }

        // Root expansions, one independent task per rule of the subject's
        // predicate (read off the compiled program's head index). Each task
        // runs on its own worker — fresh `VarGen`, shared governor — so the
        // frontier fans out on the pool and the merged result, assembled in
        // task order below, is identical for every worker count. A worker
        // that observes the sticky governor trip drains immediately, which
        // is the parallel form of the sequential loop's early `break`.
        let tidb = self.tidb;
        let rule_idxs: Vec<usize> = tidb.rule_indexes_for(&subject.pred).to_vec();
        let tasks: Vec<_> = rule_idxs
            .iter()
            .map(|&ri| {
                let mut w = self.worker();
                // Each task roots its own chain node so tail extensions —
                // and the refcounts branch clones bump — stay local to the
                // worker that owns them.
                let base = Branch {
                    subst: Subst::new(),
                    occurrences: Chain::new().extend(base_occurrences.clone()),
                    untyped_uses: HashMap::new(),
                    leaves: Vec::new(),
                    used: BTreeSet::new(),
                    trace: Chain::new(),
                };
                move || {
                    let branches = w.apply_rule(subject, ri, Tag::Untagged, &base, 0);
                    (branches, w.depth_trunc, w.guard_prune, w.stats)
                }
            })
            .collect();
        let results = self.pool.join_all(tasks);
        for (&ri, (branches, depth_trunc, guard_prune, stats)) in rule_idxs.iter().zip(results) {
            // Soft-prune state merges in task order: the first recorded
            // depth prune wins (matching the sequential walk's first-prune
            // rule), guard prunes accumulate, counters sum.
            if self.depth_trunc.is_none() {
                self.depth_trunc = depth_trunc;
            }
            self.guard_prune |= guard_prune;
            self.stats.merge(stats);
            for b in branches {
                // Root context is empty, so subtree-only equals total here.
                if b.used.is_empty() && !self.exhaustive {
                    // Tracked separately: the rule's unproductive branches
                    // are represented by its one-level answer (driver).
                    self.stats.cuts += 1;
                    continue;
                }
                if !b.used.is_empty() {
                    productive_rules.insert(ri);
                }
                answers.push(RawAnswer {
                    subst: b.subst,
                    leaves: b.leaves,
                    used: b.used,
                    root_rule: Some(ri),
                    trace: b.trace.collect_from(0),
                    tree_atoms: std::iter::once(subject.clone())
                        .chain(b.occurrences.collect_from(base_occurrences.len()))
                        .collect(),
                });
            }
        }
        (answers, productive_rules)
    }

    /// Applies rule `ri` to `node` (boxes 8–9 / 9a–9e): unify the renamed
    /// rule head with the node, then enumerate the children left to right,
    /// threading the branch state.
    fn apply_rule(
        &mut self,
        node: &Atom,
        ri: usize,
        node_tag: Tag,
        ctx: &Branch,
        depth: usize,
    ) -> Vec<Branch> {
        self.tick();
        if self.stopped() {
            return Vec::new();
        }
        // Hard recursion guard: a derivation this deep only arises from a
        // divergent (untransformed recursive) enumeration; cut the branch
        // instead of overflowing the stack. Both the configured bound and
        // the guard record the prune so the driver reports `Truncated`
        // rather than silently under-answering.
        const MAX_TREE_DEPTH: usize = 128;
        let depth_cap = self
            .opts
            .limits
            .max_depth
            .map_or(MAX_TREE_DEPTH, |m| m.min(MAX_TREE_DEPTH));
        if depth >= depth_cap {
            if self
                .opts
                .limits
                .max_depth
                .is_none_or(|m| m > MAX_TREE_DEPTH)
            {
                self.guard_prune = true;
            }
            self.prune_depth(depth, depth_cap);
            return Vec::new();
        }
        let kind = &self.tidb.kinds[ri];
        match kind {
            RuleKind::Transform { .. } | RuleKind::Continuation | RuleKind::Modified => {
                if node_tag == Tag::Zero {
                    return Vec::new();
                }
            }
            RuleKind::UntypedControlled => {
                if ctx.untyped_uses.get(&ri).copied().unwrap_or(0) >= self.opts.untyped_rule_limit {
                    return Vec::new();
                }
            }
            RuleKind::Ordinary => {}
        }

        // Standardize apart through the compiled rule's slot maps — the
        // same per-rule metadata the retrieve executor runs — instead of
        // re-collecting variables from the textual rule.
        let tidb = self.tidb;
        let compiled = &tidb.program.plans()[ri].compiled;
        let rule = &compiled.source;
        let renamed = {
            // Rebind through the task-local symbol cache so every clone the
            // subtree makes below stays off other workers' cache lines.
            let r = compiled.rename_apart(&mut self.gen);
            let head = self.detach_atom(&r.head);
            let body = r
                .body
                .iter()
                .map(|l| qdk_logic::Literal {
                    positive: l.positive,
                    atom: self.detach_atom(&l.atom),
                })
                .collect();
            qdk_logic::Rule::with_literals(head, body)
        };
        let node_now = ctx.subst.apply_atom(node);
        let Some(mgu) = unify_atoms(&node_now, &renamed.head) else {
            return Vec::new();
        };

        // Child tags per Figure 3 box 9e.
        let children: Vec<&Atom> = renamed.body.iter().map(|l| &l.atom).collect();
        let child_tags = self.child_tags(kind, node_tag, &children);

        self.stats.trees_expanded += 1;
        let mut start = ctx.clone();
        start.subst = ctx.subst.compose(&mgu);
        start.trace = ctx.trace.push(format!(
            "{:indent$}{node_now} expanded by rule {ri}: {rule}",
            "",
            indent = depth * 2
        ));
        start.occurrences = ctx
            .occurrences
            .extend(children.iter().map(|a| (*a).clone()).collect());
        if *kind == RuleKind::UntypedControlled {
            *start.untyped_uses.entry(ri).or_insert(0) += 1;
        }
        // The subtree's own leaves/used accumulate from empty.
        start.leaves = Vec::new();
        start.used = BTreeSet::new();

        // Enumerate children sequentially (sibling results thread the
        // global substitution exactly like the flowchart's left-to-right
        // walk).
        let mut frontier = vec![start];
        for (child, tag) in children.iter().zip(child_tags) {
            let mut next = Vec::new();
            for b in &frontier {
                next.extend(self.visit(child, tag, b, depth + 1));
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        // A hard trip mid-children leaves the frontier's branches without
        // their remaining siblings' leaves — discard them rather than
        // return derivations with missing conjuncts.
        if self.stopped() {
            return Vec::new();
        }

        // Branches come back with *subtree-only* leaves/used; callers
        // merge with their own accumulators (so productivity can be judged
        // on the subtree's own identifications, even when an earlier
        // sibling already identified the same hypothesis index).
        frontier
    }

    fn child_tags(&self, kind: &RuleKind, node_tag: Tag, children: &[&Atom]) -> Vec<Tag> {
        match kind {
            RuleKind::Ordinary | RuleKind::UntypedControlled => {
                vec![Tag::Untagged; children.len()]
            }
            RuleKind::Transform { step_pred } => children
                .iter()
                .map(|a| {
                    if a.pred == *step_pred {
                        Tag::Two
                    } else {
                        Tag::Zero
                    }
                })
                .collect(),
            RuleKind::Continuation => {
                // Children tags (1, 0) under tag 2; (0, 0) under tag 1.
                // An untagged t-node (queried directly) behaves like tag 2.
                let first = match node_tag {
                    Tag::Two | Tag::Untagged => Tag::One,
                    _ => Tag::Zero,
                };
                let mut tags = vec![Tag::Zero; children.len()];
                if let Some(t) = tags.first_mut() {
                    *t = first;
                }
                tags
            }
            RuleKind::Modified => {
                // The doubling rule plays both r_T and r_C: the second
                // recursive child may nest (tag 2 → 1 → 0), the first may
                // not.
                let second = match node_tag {
                    Tag::Untagged | Tag::Two => Tag::One,
                    _ => Tag::Zero,
                };
                let mut tags = vec![Tag::Zero; children.len()];
                if let Some(t) = tags.last_mut() {
                    *t = second;
                }
                tags
            }
        }
    }

    /// Visits one tree formula: identification, leaf, or productive
    /// expansion.
    fn visit(&mut self, node: &Atom, tag: Tag, ctx: &Branch, depth: usize) -> Vec<Branch> {
        self.tick();
        if self.stopped() {
            return Vec::new();
        }
        let mut out = Vec::new();

        // Comparisons are never identified and never expanded (§4).
        if node.is_builtin() {
            let mut b = ctx.clone();
            b.leaves.push(node.clone());
            return vec![b];
        }

        // (1) Identify with a hypothesis formula. Indexed loop: cloning
        // one candidate pair per attempt instead of the whole hypothesis
        // vector per visited node.
        for k in 0..self.hyp_atoms.len() {
            self.tick();
            if self.stopped() {
                return Vec::new();
            }
            let (i, h) = self.hyp_atoms[k].clone();
            let node_now = ctx.subst.apply_atom(node);
            let h_now = ctx.subst.apply_atom(&h);
            if let Some(mgu) = unify_atoms(&node_now, &h_now) {
                if self.typing_ok(&ctx.occurrences, &ctx.subst, &mgu) {
                    self.stats.leaves_identified += 1;
                    let mut b = ctx.clone();
                    b.subst = ctx.subst.compose(&mgu);
                    b.used.insert(i);
                    b.trace = ctx.trace.push(format!(
                        "{:indent$}{node_now} identified with hypothesis {h_now}",
                        "",
                        indent = depth * 2
                    ));
                    out.push(b);
                }
            }
        }

        // (2) Leave as an unidentified leaf.
        {
            let mut b = ctx.clone();
            b.leaves.push(node.clone());
            out.push(b);
        }

        // (3) Expand with each rule of the node's predicate, keeping only
        // subtrees that identified something (the cut of §4). A formula
        // whose predicate has no entry in the compiled head index is
        // necessarily a leaf — no rule scan needed to decide.
        {
            let tidb = self.tidb;
            for &ri in tidb.rule_indexes_for(&node.pred) {
                if self.stopped() {
                    return Vec::new();
                }
                // The child subtree accumulates its own used/leaves; pass a
                // context whose counters are the caller's (apply_rule
                // resets them and merges back).
                let branches = self.apply_rule(node, ri, tag, ctx, depth);
                for mut b in branches {
                    // apply_rule returns subtree-only leaves/used: the §4
                    // cut tests exactly the subtree's identifications.
                    if b.used.is_empty() && !self.exhaustive {
                        self.stats.cuts += 1;
                        continue;
                    }
                    let mut leaves = ctx.leaves.clone();
                    leaves.append(&mut b.leaves);
                    b.leaves = leaves;
                    let mut used = ctx.used.clone();
                    used.extend(b.used.iter().copied());
                    b.used = used;
                    out.push(b);
                }
            }
        }

        out
    }

    /// Typing preservation (Algorithm 2, box 4 refinement): a substitution
    /// is disqualified if applying it to the tree's formulas *newly* makes
    /// some predicate hold one variable in two different argument
    /// positions. Pre-existing position conflicts (e.g. the chained
    /// `prereq(X, Z₁) ∧ prereq(Z₁, Z₂)` shape that linear recursion
    /// legitimately builds) are tolerated; only conflicts the candidate
    /// substitution *introduces* disqualify it.
    fn typing_ok(&self, occurrences: &Chain<Atom>, before: &Subst, mgu: &Subst) -> bool {
        if !self.check_typing {
            return true;
        }
        // Materialized only on the (Algorithm 2) typing path; the conflict
        // scan below walks every occurrence anyway, so the snapshot does
        // not change the asymptotics.
        let occurrences = occurrences.collect_from(0);
        let after = before.compose(mgu);
        let conflicts_before = conflicts(&occurrences, before);
        let conflicts_after = conflicts(&occurrences, &after);
        conflicts_after.is_subset(&conflicts_before)
    }
}

/// The set of (predicate, variable) pairs where the variable occurs at two
/// or more distinct argument positions across the substituted occurrences.
fn conflicts(occurrences: &[Atom], subst: &Subst) -> BTreeSet<(String, Var)> {
    let mut position_of: HashMap<(String, Var), usize> = HashMap::new();
    let mut bad = BTreeSet::new();
    for atom in occurrences {
        let a = subst.apply_atom(atom);
        for (i, t) in a.args.iter().enumerate() {
            if let Term::Var(v) = t {
                let key = (a.pred.to_string(), v.clone());
                match position_of.get(&key) {
                    Some(&p) if p != i => {
                        bad.insert(key);
                    }
                    Some(_) => {}
                    None => {
                        position_of.insert(key, i);
                    }
                }
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransformPolicy;
    use crate::transform::transform_idb;
    use qdk_engine::Idb;
    use qdk_logic::parser::{parse_atom, parse_body, parse_program};

    fn tidb(src: &str, policy: TransformPolicy) -> TransformedIdb {
        let idb = Idb::from_rules(parse_program(src).unwrap().rules).unwrap();
        transform_idb(&idb, policy).unwrap()
    }

    fn university_src() -> &'static str {
        "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
         can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).\n\
         can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4.0)."
    }

    #[test]
    fn no_hypothesis_yields_no_deep_answers() {
        // With an empty hypothesis nothing can identify: all rules are
        // unproductive and enumeration returns no raw answers (the driver
        // supplies the one-level answers).
        let t = tidb(university_src(), TransformPolicy::PreferModified);
        let opts = DescribeOptions::default();
        let mut e = Enumerator::new(&t, &[], false, &opts);
        let (answers, productive) = e.enumerate(&parse_atom("honor(X)").unwrap());
        assert!(answers.is_empty());
        assert!(productive.is_empty());
        assert_eq!(e.truncation(), None);
    }

    #[test]
    fn identification_inside_expansion() {
        // describe can_ta(X, Y) where honor(X): rule bodies' honor(X)
        // leaves identify; both rules are productive.
        let t = tidb(university_src(), TransformPolicy::PreferModified);
        let opts = DescribeOptions::default();
        let hyp = parse_body("honor(H)").unwrap();
        let mut e = Enumerator::new(&t, &hyp, false, &opts);
        let (answers, productive) = e.enumerate(&parse_atom("can_ta(X, Y)").unwrap());
        assert_eq!(productive.len(), 2);
        // Each rule yields exactly one hypothesis-using derivation (honor
        // identified), since nothing else matches.
        assert_eq!(answers.len(), 2);
        for a in &answers {
            assert_eq!(a.used.len(), 1);
            assert!(a.root_rule.is_some());
            // honor does not appear among the leaves (it was identified).
            assert!(a.leaves.iter().all(|l| l.pred != "honor"));
        }
    }

    #[test]
    fn unproductive_subtree_is_cut() {
        // describe can_ta(X, Y) where student(S, M, G): honor's expansion
        // (student ∧ gpa) can identify the student atom — the subtree IS
        // productive. But with a hypothesis matching nothing inside honor,
        // honor must stay an unexpanded leaf.
        let t = tidb(university_src(), TransformPolicy::PreferModified);
        let opts = DescribeOptions::default();
        let hyp = parse_body("teach(susan, C)").unwrap();
        let mut e = Enumerator::new(&t, &hyp, false, &opts);
        let (answers, _) = e.enumerate(&parse_atom("can_ta(X, Y)").unwrap());
        // Only rule 1 mentions teach; its derivation keeps honor as a leaf
        // (never expanded — expanding it would identify nothing).
        assert_eq!(answers.len(), 1);
        let a = &answers[0];
        assert!(a.leaves.iter().any(|l| l.pred == "honor"));
        assert!(a.leaves.iter().all(|l| l.pred != "student"));
        assert!(a.leaves.iter().all(|l| l.pred != "teach"));
    }

    #[test]
    fn nested_identification_through_expansion() {
        // describe can_ta(X, databases) where student(X, math, V), V > 3.7
        // (Example 3): honor expands, its student leaf identifies, its
        // comparison becomes a leaf.
        let t = tidb(university_src(), TransformPolicy::PreferModified);
        let opts = DescribeOptions::default();
        let hyp = parse_body("student(X, math, V), V > 3.7").unwrap();
        let mut e = Enumerator::new(&t, &hyp, false, &opts);
        let (answers, productive) = e.enumerate(&parse_atom("can_ta(X, databases)").unwrap());
        assert_eq!(productive.len(), 2);
        // Every answer identified the student hypothesis (index 0).
        assert!(answers.iter().all(|a| a.used.contains(&0)));
        // Some answer from rule 0 contains the (Z > 3.7) comparison leaf
        // from honor's definition.
        assert!(answers
            .iter()
            .any(|a| a.leaves.iter().any(|l| l.pred == ">")));
    }

    #[test]
    fn tags_bound_recursive_applications() {
        let t = tidb(
            "prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            TransformPolicy::AlwaysArtificial,
        );
        let opts = DescribeOptions::default();
        let hyp = parse_body("prior(databases, Y)").unwrap();
        let mut e = Enumerator::new(&t, &hyp, true, &opts);
        // Terminates (no budget needed) — the whole point of Algorithm 2.
        let (answers, _) = e.enumerate(&parse_atom("prior(X, Y)").unwrap());
        assert!(!answers.is_empty());
        // Root identification is among them.
        assert!(answers.iter().any(|a| a.root_rule.is_none()));
        // No limit tripped: the transformed enumeration is complete.
        assert_eq!(e.truncation(), None);
    }

    #[test]
    fn untransformed_recursion_soft_stops_at_budget() {
        let t = tidb(
            "prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            TransformPolicy::None,
        );
        // Small enough to trip before the walk exhausts the built-in
        // recursion guard (the guarded walk itself is finite).
        let opts = DescribeOptions::default().with_work_budget(500);
        let hyp = parse_body("prior(databases, Y)").unwrap();
        let mut e = Enumerator::new(&t, &hyp, false, &opts);
        // The divergent walk no longer errors: it drains and reports.
        let (_, _) = e.enumerate(&parse_atom("prior(X, Y)").unwrap());
        let trunc = e.truncation().expect("budget must trip");
        assert_eq!(trunc.resource, Resource::WorkBudget);
        assert_eq!(trunc.limit, 500);
        assert!(trunc.spent > trunc.limit);
        assert!(e.hard_stop());
    }

    #[test]
    fn untransformed_recursion_with_depth_bound_shows_chain_family() {
        let t = tidb(
            "prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            TransformPolicy::None,
        );
        let opts = DescribeOptions::default().with_max_depth(6);
        let hyp = parse_body("prior(databases, Y)").unwrap();
        let mut e = Enumerator::new(&t, &hyp, false, &opts);
        let (answers, _) = e.enumerate(&parse_atom("prior(X, Y)").unwrap());
        // One chain answer per depth: prereq(X, db); prereq(X,Z1) ∧
        // prereq(Z1, db); … — the deeper the bound, the more answers.
        let chain_answers = answers.iter().filter(|a| a.root_rule.is_some()).count();
        assert!(chain_answers >= 3, "got {chain_answers}");
        // The depth prune is reported, not silent — but a configured bound
        // is not a hard stop: post-processing still runs on the prefix.
        let trunc = e.truncation().expect("depth prune must be recorded");
        assert_eq!(trunc.resource, Resource::Depth);
        assert_eq!(trunc.limit, 6);
        assert!(!e.hard_stop());
    }

    #[test]
    fn typing_check_blocks_example7_loops() {
        let t = tidb(
            "prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            TransformPolicy::None,
        );
        // Hypothesis prior(X, databases) — Example 7. With typing checks
        // and a depth bound, no prereq-loop answers appear.
        let opts = DescribeOptions::default().with_max_depth(6);
        let hyp = parse_body("prior(X, databases)").unwrap();
        let mut e = Enumerator::new(&t, &hyp, true, &opts);
        let (answers, _) = e.enumerate(&parse_atom("prior(X, Y)").unwrap());
        for a in &answers {
            // No leaf may be a prereq atom whose two arguments were forced
            // to the same variable, or that closes a loop back to X.
            for l in &a.leaves {
                let l = a.subst.apply_atom(l);
                if l.pred == "prereq" {
                    assert_ne!(l.args[0], l.args[1], "unsound loop: {l}");
                }
            }
        }
        // The root identification (Y = databases rendering) survives.
        assert!(answers.iter().any(|a| a.root_rule.is_none()));
    }

    #[test]
    fn without_typing_check_example7_loops_appear() {
        let t = tidb(
            "prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            TransformPolicy::None,
        );
        let opts = DescribeOptions::default().with_max_depth(6);
        let hyp = parse_body("prior(X, databases)").unwrap();
        let mut e = Enumerator::new(&t, &hyp, false, &opts);
        let (answers, _) = e.enumerate(&parse_atom("prior(X, Y)").unwrap());
        let mut found_loop = false;
        for a in &answers {
            for l in &a.leaves {
                let l = a.subst.apply_atom(l);
                if l.pred == "prereq" && l.args[0] == l.args[1] {
                    found_loop = true;
                }
            }
        }
        assert!(found_loop, "expected the paper's unsound prereq(X, X) leaf");
    }

    #[test]
    fn untyped_rule_application_is_capped() {
        let t = tidb(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- reach(Y, X).",
            TransformPolicy::PreferModified,
        );
        let opts = DescribeOptions::default(); // limit 1
        let hyp = parse_body("reach(B, A)").unwrap();
        let mut e = Enumerator::new(&t, &hyp, true, &opts);
        // Terminates despite the symmetric rule; finds the derivation that
        // applies it once and identifies the flipped hypothesis.
        let (answers, _) = e.enumerate(&parse_atom("reach(A, B)").unwrap());
        assert!(answers
            .iter()
            .any(|a| a.root_rule.is_some() && a.leaves.is_empty() && !a.used.is_empty()));
    }

    #[test]
    fn budget_counts_work() {
        let t = tidb(university_src(), TransformPolicy::PreferModified);
        let opts = DescribeOptions::default();
        let hyp = parse_body("honor(H)").unwrap();
        let mut e = Enumerator::new(&t, &hyp, false, &opts);
        e.enumerate(&parse_atom("can_ta(X, Y)").unwrap());
        assert!(e.ops() > 0);
    }

    #[test]
    fn same_hypothesis_index_identifies_in_two_sibling_subtrees() {
        // Regression: productivity of an expansion is judged on the
        // subtree's own identifications — a subtree re-identifying an
        // index an earlier sibling already used must not be cut.
        let t = tidb(
            "p(X) :- a(X), b(X).\n\
             a(X) :- e(X), f(X).\n\
             b(X) :- e(X), g(X).",
            TransformPolicy::PreferModified,
        );
        let opts = DescribeOptions::default();
        let hyp = parse_body("e(H)").unwrap();
        let mut en = Enumerator::new(&t, &hyp, false, &opts);
        let (answers, _) = en.enumerate(&parse_atom("p(X)").unwrap());
        // The both-expanded derivation exists: leaves f and g only.
        assert!(
            answers.iter().any(|a| {
                let preds: Vec<&str> = a.leaves.iter().map(|l| l.pred.as_str()).collect();
                preds == ["f", "g"]
            }),
            "missing double-identification derivation"
        );
    }
}
