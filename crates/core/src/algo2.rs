//! Algorithm 2 (§5.3, Figures 2–3): knowledge answers in the general
//! case.
//!
//! Entry point that always prepares the IDB with the §5.2 transformation
//! (per the options' [`crate::TransformPolicy`]) and runs the enumeration
//! with tag bounding and typing-preserving identification enabled. This is
//! what [`crate::describe::describe`] dispatches to when the subject
//! involves recursion; calling it on a non-recursive subject is harmless
//! (the transformation leaves such predicates alone and the typing check
//! never triggers on conforming trees).

use crate::config::DescribeOptions;
use crate::describe::{self, Describe};
use crate::error::Result;
use crate::transform::transform_idb;
use crate::DescribeAnswer;
use qdk_engine::Idb;

/// Runs Algorithm 2: transformation + tags + typing preservation.
pub fn run(idb: &Idb, query: &Describe, opts: &DescribeOptions) -> Result<DescribeAnswer> {
    query.validate(idb)?;
    let tidb = transform_idb(idb, opts.transform)?;
    describe::run(&tidb, query, true, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransformPolicy;
    use qdk_logic::parser::{parse_atom, parse_body, parse_program};

    fn idb(src: &str) -> Idb {
        Idb::from_rules(parse_program(src).unwrap().rules).unwrap()
    }

    fn prior_idb() -> Idb {
        idb("prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).")
    }

    #[test]
    fn example6_terminates_without_budget() {
        let q = Describe::new(
            parse_atom("prior(X, Y)").unwrap(),
            parse_body("prior(databases, Y)").unwrap(),
        );
        let a = run(&prior_idb(), &q, &DescribeOptions::paper()).unwrap();
        assert_eq!(
            a.rendered(),
            vec![
                "prior(X, Y) ← (X = databases)",
                "prior(X, Y) ← prior(X, databases)",
            ]
        );
    }

    #[test]
    fn example8_terminates() {
        // The query that made Algorithm 1 hang (Example 8) terminates.
        let i = idb("p(X, Y) :- q(X, Z), r(Z, Y).\n\
             q(X, Y) :- q(X, Z), s(Z, Y).\n\
             q(X, Y) :- r(X, Y).");
        let q = Describe::new(
            parse_atom("p(X, Y)").unwrap(),
            parse_body("r(a, Y)").unwrap(),
        );
        let a = run(&i, &q, &DescribeOptions::paper()).unwrap();
        assert!(!a.is_empty());
        // The direct derivation through q's exit rule identifies r(a, Y):
        // p(X, Y) ← … with X bound to a appears in some form.
        assert!(
            a.rendered()
                .iter()
                .any(|s| s.contains("(X = a)") || s.contains("r(a")),
            "{:?}",
            a.rendered()
        );
    }

    #[test]
    fn symmetric_reachability_question() {
        // The introduction's sixth query: "When x is reachable from y, is
        // it guaranteed that y is also reachable from x?" With the
        // symmetric rule present, describe reach(X, Y) where reach(Y, X)
        // yields the unconditional theorem reach(X, Y) ← (empty body).
        let i = idb("reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- reach(Y, X).");
        let q = Describe::new(
            parse_atom("reach(X, Y)").unwrap(),
            parse_body("reach(Y, X)").unwrap(),
        );
        let a = run(&i, &q, &DescribeOptions::paper()).unwrap();
        assert!(
            a.contains_rendered("reach(X, Y)"),
            "expected the unconditional theorem, got {:?}",
            a.rendered()
        );
    }

    #[test]
    fn symmetric_reachability_absent_without_rule() {
        // Without the symmetric rule the guarantee does not hold and no
        // unconditional theorem appears.
        let i = idb("reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).");
        let q = Describe::new(
            parse_atom("reach(X, Y)").unwrap(),
            parse_body("reach(Y, X)").unwrap(),
        );
        let a = run(&i, &q, &DescribeOptions::paper()).unwrap();
        assert!(!a.contains_rendered("reach(X, Y)"), "{:?}", a.rendered());
    }

    #[test]
    fn works_on_nonrecursive_subjects_too() {
        let i = idb("honor(X) :- student(X, Y, Z), Z > 3.7.");
        let q = Describe::new(parse_atom("honor(X)").unwrap(), vec![]);
        let a = run(&i, &q, &DescribeOptions::paper()).unwrap();
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn artificial_and_modified_agree_up_to_step_naming() {
        let q = Describe::new(
            parse_atom("prior(X, Y)").unwrap(),
            parse_body("prior(databases, Y)").unwrap(),
        );
        let modified = run(&prior_idb(), &q, &DescribeOptions::paper()).unwrap();
        let artificial = run(
            &prior_idb(),
            &q,
            &DescribeOptions::paper().with_transform(TransformPolicy::AlwaysArtificial),
        )
        .unwrap();
        assert_eq!(modified.len(), artificial.len());
        // The artificial phrasing mentions the step predicate; the
        // modified one mentions prior itself.
        assert!(artificial.rendered().iter().any(|s| s.contains("t_prior")));
        assert!(modified.rendered().iter().all(|s| !s.contains("t_prior")));
    }
}
