//! Expansion of concepts to extensional vocabulary.
//!
//! The §6 extensions (hypothetical possibility, `compare`) need the
//! *meaning* of a concept spelled out in EDB terms: the disjunction of
//! conjunctive definitions obtained by unfolding IDB predicates through
//! their rules. This module computes that DNF, bounding recursion by a
//! per-predicate unfolding cap per branch (recursive concepts have
//! infinitely many unfoldings; the bounded prefix is what the §6
//! comparisons need, and the cap is configurable).

use crate::config::DescribeOptions;
use crate::error::Result;
use crate::governor::Governor;
use qdk_engine::Idb;
use qdk_logic::{rename_rule_apart, unify_atoms, Atom, Literal, Subst, VarGen};
use std::collections::HashMap;

/// One conjunctive definition: a conjunction of EDB atoms and comparisons.
pub type Conjunct = Vec<Literal>;

/// Expands an atom into its DNF of extensional definitions.
///
/// Non-IDB atoms expand to themselves. Each IDB rule contributes the
/// expansions of its body. A predicate is unfolded at most
/// `opts.untyped_rule_limit + 1` times along any one branch, which bounds
/// recursive concepts.
///
/// Unlike `describe` (which returns truncated answers), expansion has no
/// meaningful partial result — a prefix of a DNF misrepresents the
/// concept's meaning — so resource exhaustion here is an error
/// ([`crate::DescribeError::Exhausted`]).
pub fn expand_atom(idb: &Idb, atom: &Atom, opts: &DescribeOptions) -> Result<Vec<Conjunct>> {
    let mut gen = VarGen::new();
    let mut out = Vec::new();
    let mut gov = opts.governor();
    let user_vars = atom.vars();
    expand_rec(
        idb,
        atom,
        &Subst::new(),
        &HashMap::new(),
        opts.untyped_rule_limit + 1,
        &mut gen,
        &mut gov,
        &mut |conj, subst| {
            out.push(finalize(conj, subst, &user_vars));
        },
    )?;
    Ok(out)
}

/// Applies the final substitution and restores the user's vocabulary: a
/// user variable that unified with a fresh rule variable is renamed back.
fn finalize(conj: &Conjunct, subst: &Subst, user_vars: &[qdk_logic::Var]) -> Conjunct {
    let mut inversion = Subst::new();
    for v in user_vars {
        if let qdk_logic::Term::Var(f) = subst.apply_term(&qdk_logic::Term::Var(v.clone())) {
            if f.is_fresh() && inversion.get(&f).is_none() {
                inversion.bind(f, qdk_logic::Term::Var(v.clone()));
            }
        }
    }
    let full = subst.compose(&inversion);
    conj.iter().map(|l| full.apply_literal(l)).collect()
}

/// Expands a conjunction: the cross product of its atoms' expansions,
/// threading one global substitution (shared variables stay shared).
pub fn expand_conjunction(
    idb: &Idb,
    atoms: &[Atom],
    opts: &DescribeOptions,
) -> Result<Vec<Conjunct>> {
    let mut gen = VarGen::new();
    let mut gov = opts.governor();
    let mut user_vars = Vec::new();
    for a in atoms {
        for v in a.vars() {
            if !user_vars.contains(&v) {
                user_vars.push(v);
            }
        }
    }
    let mut frontier: Vec<(Conjunct, Subst)> = vec![(Vec::new(), Subst::new())];
    for atom in atoms {
        let mut next = Vec::new();
        for (prefix, subst) in &frontier {
            expand_rec(
                idb,
                atom,
                subst,
                &HashMap::new(),
                opts.untyped_rule_limit + 1,
                &mut gen,
                &mut gov,
                &mut |conj, s| {
                    let mut combined = prefix.clone();
                    combined.extend(conj.iter().cloned());
                    next.push((combined, s.clone()));
                },
            )?;
        }
        frontier = next;
    }
    Ok(frontier
        .into_iter()
        .map(|(conj, subst)| finalize(&conj, &subst, &user_vars))
        .collect())
}

#[allow(clippy::too_many_arguments)]
fn expand_rec(
    idb: &Idb,
    atom: &Atom,
    subst: &Subst,
    depth_of: &HashMap<String, usize>,
    max_unfold: usize,
    gen: &mut VarGen,
    gov: &mut Governor,
    emit: &mut dyn FnMut(&Conjunct, &Subst),
) -> Result<()> {
    gov.tick()?;
    let pred = atom.pred.as_str();
    if atom.is_builtin() || !idb.defines(pred) {
        emit(&vec![Literal::pos(atom.clone())], subst);
        return Ok(());
    }
    let unfolds = depth_of.get(pred).copied().unwrap_or(0);
    if unfolds >= max_unfold {
        // Cap reached: leave the atom folded (it names the concept).
        emit(&vec![Literal::pos(atom.clone())], subst);
        return Ok(());
    }
    let mut depth2 = depth_of.clone();
    *depth2.entry(pred.to_string()).or_insert(0) += 1;

    let rules: Vec<_> = idb.rules_for(pred).cloned().collect();
    for rule in rules {
        let (renamed, _) = rename_rule_apart(&rule, gen);
        let atom_now = subst.apply_atom(atom);
        let Some(mgu) = unify_atoms(&atom_now, &renamed.head) else {
            continue;
        };
        let s0 = subst.compose(&mgu);
        // Expand the body atoms sequentially under the threaded subst.
        let mut frontier: Vec<(Conjunct, Subst)> = vec![(Vec::new(), s0)];
        for lit in &renamed.body {
            if !lit.positive {
                // Negative literals pass through unexpanded.
                for (conj, _) in &mut frontier {
                    conj.push(lit.clone());
                }
                continue;
            }
            let mut next = Vec::new();
            for (prefix, s) in &frontier {
                expand_rec(
                    idb,
                    &lit.atom,
                    s,
                    &depth2,
                    max_unfold,
                    gen,
                    gov,
                    &mut |conj, s2| {
                        let mut combined = prefix.clone();
                        combined.extend(conj.iter().cloned());
                        next.push((combined, s2.clone()));
                    },
                )?;
            }
            frontier = next;
        }
        for (conj, s) in frontier {
            emit(&conj, &s);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_program};

    fn idb(src: &str) -> Idb {
        Idb::from_rules(parse_program(src).unwrap().rules).unwrap()
    }

    fn rendered(conjs: &[Conjunct]) -> Vec<String> {
        let mut v: Vec<String> = conjs
            .iter()
            .map(|c| {
                c.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" ∧ ")
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn edb_atom_expands_to_itself() {
        let i = idb("honor(X) :- student(X, Y, Z), Z > 3.7.");
        let e = expand_atom(
            &i,
            &parse_atom("student(A, B, C)").unwrap(),
            &DescribeOptions::default(),
        )
        .unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].len(), 1);
    }

    #[test]
    fn single_rule_unfolds() {
        let i = idb("honor(X) :- student(X, Y, Z), Z > 3.7.");
        let e = expand_atom(
            &i,
            &parse_atom("honor(A)").unwrap(),
            &DescribeOptions::default(),
        )
        .unwrap();
        assert_eq!(e.len(), 1);
        let conj = &e[0];
        assert_eq!(conj.len(), 2);
        assert_eq!(conj[0].atom.pred, "student");
        // Head variable A propagates into the expansion.
        assert_eq!(conj[0].atom.args[0], qdk_logic::Term::var("A"));
    }

    #[test]
    fn multiple_rules_give_disjuncts() {
        let i = idb("can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3.\n\
             can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4.0).\n\
             honor(X) :- student(X, Y, Z), Z > 3.7.");
        let e = expand_atom(
            &i,
            &parse_atom("can_ta(A, B)").unwrap(),
            &DescribeOptions::default(),
        )
        .unwrap();
        // Two rules × one honor expansion each.
        assert_eq!(e.len(), 2);
        for conj in &e {
            assert!(conj.iter().any(|l| l.atom.pred == "student"));
            assert!(conj.iter().all(|l| l.atom.pred != "honor"));
        }
    }

    #[test]
    fn recursive_unfolding_is_capped() {
        let i = idb("prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).");
        let e = expand_atom(
            &i,
            &parse_atom("prior(A, B)").unwrap(),
            &DescribeOptions::default(),
        )
        .unwrap();
        // Terminates; folded prior atoms mark the cap.
        assert!(!e.is_empty());
        assert!(e.iter().any(|c| c.iter().any(|l| l.atom.pred == "prior")));
    }

    #[test]
    fn conjunction_expansion_shares_variables() {
        let i = idb("honor(X) :- student(X, Y, Z), Z > 3.7.");
        let atoms = vec![
            parse_atom("honor(A)").unwrap(),
            parse_atom("enroll(A, databases)").unwrap(),
        ];
        let e = expand_conjunction(&i, &atoms, &DescribeOptions::default()).unwrap();
        assert_eq!(e.len(), 1);
        let conj = &e[0];
        // The student atom and the enroll atom share A.
        let student = conj.iter().find(|l| l.atom.pred == "student").unwrap();
        let enroll = conj.iter().find(|l| l.atom.pred == "enroll").unwrap();
        assert_eq!(student.atom.args[0], enroll.atom.args[0]);
        let _ = rendered(&e);
    }

    #[test]
    fn budget_applies() {
        let i = idb("prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).");
        let err = expand_atom(
            &i,
            &parse_atom("prior(A, B)").unwrap(),
            &DescribeOptions::default().with_work_budget(2),
        )
        .unwrap_err();
        let crate::DescribeError::Exhausted(e) = err else {
            panic!("expected Exhausted, got {err:?}");
        };
        assert_eq!(e.resource, crate::governor::Resource::WorkBudget);
        assert_eq!(e.limit, 2);
    }
}
