//! Completeness auditing — §6's first research direction, made
//! executable.
//!
//! "An answer to a knowledge query is *complete* if no other sound and
//! nonredundant formula exists" (§3.2), and §6 admits that "in certain
//! queries, some sound formulas are not generated". This module measures
//! that gap: it re-enumerates derivations *exhaustively* (the §4
//! productivity cut disabled, every identification subset explored) up to
//! a depth bound, assembles every candidate theorem, and reports those not
//! redundant with respect to the official answer — where redundancy is
//! judged semantically *modulo the IDB's definitions* (a concept and its
//! unfolding are interchangeable) and modulo the hypothesis.
//!
//! On the paper's worked examples the audit comes back clean (see the
//! tests); on adversarial inputs it surfaces exactly the
//! generality-reducing identifications §6 warns about.

use crate::answer::DescribeAnswer;
use crate::config::{DescribeOptions, TransformPolicy};
use crate::describe::{self, Describe};
use crate::error::Result;
use crate::redundancy;
use crate::transform::{transform_idb, TransformedIdb};
use qdk_engine::graph::DependencyGraph;
use qdk_engine::Idb;
use qdk_logic::{Literal, Rule};
use std::fmt;

/// The result of a completeness audit.
#[derive(Clone, Debug)]
pub struct CompletenessReport {
    /// Candidate theorems enumerated (before redundancy checks).
    pub candidates: usize,
    /// Sound theorems not covered by the official answer (empty = the
    /// answer is complete up to the audited depth).
    pub missing: Vec<Rule>,
}

impl CompletenessReport {
    /// True if no uncovered theorem was found.
    pub fn complete(&self) -> bool {
        self.missing.is_empty()
    }
}

impl fmt::Display for CompletenessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.complete() {
            writeln!(
                f,
                "complete: {} candidates all covered by the answer",
                self.candidates
            )
        } else {
            writeln!(
                f,
                "incomplete: {} of {} candidates uncovered:",
                self.missing.len(),
                self.candidates
            )?;
            for r in &self.missing {
                writeln!(f, "  {}", qdk_logic::pretty::answer_rule(r))?;
            }
            Ok(())
        }
    }
}

/// Audits the official `describe` answer for completeness up to
/// derivation depth `depth`.
pub fn audit_completeness(
    idb: &Idb,
    query: &Describe,
    opts: &DescribeOptions,
    depth: usize,
) -> Result<CompletenessReport> {
    let official = describe::describe(idb, query, opts)?;
    audit_against(idb, query, &official, opts, depth)
}

/// Audits an arbitrary answer (perhaps produced under different options,
/// or hand-curated) against the exhaustive enumeration.
pub fn audit_against(
    idb: &Idb,
    query: &Describe,
    official: &DescribeAnswer,
    opts: &DescribeOptions,
    depth: usize,
) -> Result<CompletenessReport> {
    // Exhaustive candidate enumeration at bounded depth, over the same
    // (possibly transformed) program the official run used.
    let graph = DependencyGraph::build(idb);
    let recursive = graph.involves_recursion(query.subject.pred.as_str());
    let tidb: TransformedIdb = if recursive {
        transform_idb(idb, opts.transform)?
    } else {
        TransformedIdb::untransformed(idb)
    };
    let mut audit_opts = opts.clone();
    audit_opts.limits.max_depth = Some(depth);
    audit_opts.remove_redundant = false;
    let candidates = describe::run_exhaustive(
        &tidb,
        query,
        recursive && opts.transform != TransformPolicy::None,
        &audit_opts,
    )?;

    let mut trans: Vec<qdk_logic::Sym> = tidb.step_preds.values().cloned().collect();
    trans.extend(tidb.modified.iter().cloned());

    let covered =
        |candidate: &Rule| covers(official, candidate, &query.hypothesis, &tidb.idb, &trans);
    let missing: Vec<Rule> = candidates
        .theorems
        .iter()
        .map(|t| t.rule.clone())
        .filter(|r| !covered(r))
        .collect();

    // Deduplicate the leftovers among themselves.
    let mut unique: Vec<Rule> = Vec::new();
    for m in missing {
        if !unique
            .iter()
            .any(|u| redundancy::subsumes_modulo_idb(u, &m, &tidb.idb, &trans))
        {
            unique.push(m);
        }
    }

    Ok(CompletenessReport {
        candidates: candidates.theorems.len(),
        missing: unique,
    })
}

/// Is `candidate` a consequence of some official theorem, given the
/// hypothesis and the IDB definitions?
fn covers(
    official: &DescribeAnswer,
    candidate: &Rule,
    hypothesis: &[Literal],
    idb: &Idb,
    trans: &[qdk_logic::Sym],
) -> bool {
    // The candidate holds under ψ; an official theorem t covers it when
    // t's body (with ψ available) maps into the candidate's saturated
    // body (with ψ conjoined).
    let mut augmented_body = candidate.body.clone();
    augmented_body.extend(hypothesis.iter().cloned());
    let augmented = Rule::with_literals(candidate.head.clone(), augmented_body);
    official
        .theorems
        .iter()
        .any(|t| redundancy::subsumes_modulo_idb(&t.rule, &augmented, idb, trans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_body, parse_program};

    fn university_idb() -> Idb {
        Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
                 can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).\n\
                 can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4.0).",
            )
            .unwrap()
            .rules,
        )
        .unwrap()
    }

    fn q(subject: &str, hyp: &str) -> Describe {
        Describe::new(
            parse_atom(subject).unwrap(),
            if hyp.is_empty() {
                vec![]
            } else {
                parse_body(hyp).unwrap()
            },
        )
    }

    #[test]
    fn example4_answer_is_complete() {
        let report = audit_completeness(
            &university_idb(),
            &q("honor(X)", ""),
            &DescribeOptions::paper(),
            3,
        )
        .unwrap();
        assert!(report.complete(), "{report}");
        assert!(report.candidates >= 1);
    }

    #[test]
    fn example3_answer_is_complete() {
        let report = audit_completeness(
            &university_idb(),
            &q("can_ta(X, databases)", "student(X, math, V), V > 3.7"),
            &DescribeOptions::paper(),
            3,
        )
        .unwrap();
        assert!(report.complete(), "{report}");
        // Exhaustive mode enumerated strictly more candidates than the
        // answer keeps.
        assert!(report.candidates > 2, "{}", report.candidates);
    }

    #[test]
    fn example5_exhibits_the_generality_caveat() {
        // §6: "the identification process … may sometimes also reduce the
        // generality of the answer." The audit quantifies it on Example 5:
        // the paper's printed answer specializes taught's professor to
        // susan, losing the more general theorem with teach(V, Y) in the
        // body — which the audit reports as uncovered.
        let report = audit_completeness(
            &university_idb(),
            &q("can_ta(X, Y)", "honor(X), teach(susan, Y)"),
            &DescribeOptions::paper(),
            3,
        )
        .unwrap();
        assert!(!report.complete(), "{report}");
        assert_eq!(report.missing.len(), 1, "{report}");
        let shown = report.to_string();
        assert!(shown.contains("teach(V, Y)"), "{shown}");
    }

    #[test]
    fn example6_fallback_policies_differ_in_completeness() {
        // The paper's printed E6 answer (Global fallback) omits the plain
        // definitions — sound, nonredundant formulas, so by §3.2 that
        // answer is incomplete; the flowchart-faithful PerRule policy
        // emits them and audits clean.
        let idb = Idb::from_rules(
            parse_program(
                "prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let query = q("prior(X, Y)", "prior(databases, Y)");
        let printed = audit_completeness(&idb, &query, &DescribeOptions::paper(), 3).unwrap();
        assert!(!printed.complete(), "{printed}");
        assert!(printed.to_string().contains("prereq(X, Y)"), "{printed}");

        // The flowchart-faithful policy recovers the exit-rule definition;
        // what remains uncovered is exactly one transformation artifact:
        // the doubling rule's own definition (the transformed program's
        // recursion, not expressible from the official theorems).
        let faithful = audit_completeness(&idb, &query, &DescribeOptions::default(), 3).unwrap();
        assert_eq!(faithful.missing.len(), 1, "{faithful}");
        assert_eq!(
            qdk_logic::pretty::answer_rule(&faithful.missing[0]),
            "prior(X, Y) ← prior(X, Z) ∧ prior(Z, Y)"
        );
    }

    #[test]
    fn empty_answer_is_flagged_via_audit_against() {
        let idb = university_idb();
        let query = q("can_ta(X, databases)", "student(X, math, V), V > 3.7");
        let empty = DescribeAnswer::default();
        let report = audit_against(&idb, &query, &empty, &DescribeOptions::paper(), 3).unwrap();
        assert!(!report.complete(), "{report}");
        assert!(report.missing.len() >= 2, "{report}");
        assert!(report.to_string().contains("incomplete"));
    }
}
