//! The **describe engine** — the primary contribution of *Querying
//! Database Knowledge* (Motro & Yuan, SIGMOD 1990).
//!
//! A `describe` statement (§3.2) is the knowledge-query twin of
//! `retrieve`:
//!
//! ```text
//! describe p
//! where ψ
//! ```
//!
//! finds theorems `p ← φ` (φ a positive formula) logically derived from
//! the IDB under the hypothesis ψ — it asks *what a concept means under
//! specified circumstances*, and answers with knowledge rather than data.
//!
//! This crate implements:
//!
//! * [`describe::describe`] — the entry point, dispatching between the
//!   paper's two algorithms based on dependency analysis;
//! * [`algo1`] — Algorithm 1 (§4, Figure 1): derivation-tree construction
//!   with hypothesis identification, for non-recursive subjects;
//! * [`transform`] — Imielinski's rule transformation (§5.2) and the
//!   paper's *modified* transformation that avoids artificial predicates;
//! * [`algo2`] — Algorithm 2 (§5.3, Figures 2–3): the recursive case, with
//!   tag-bounded application of transformed recursive rules and
//!   typing-preserving substitutions;
//! * [`constraints`] — the comparison-formula reasoning of §4 (implied
//!   comparisons are dropped from answers; contradictory answers are
//!   discarded; a wholly-contradicted query yields a special answer);
//! * [`redundancy`] — redundancy-free answers via θ-subsumption extended
//!   with semantic comparison implication;
//! * [`extensions`] — the §6 extensions: `where necessary`, negated
//!   hypotheses, subjectless (hypothetical-possibility) describes,
//!   wildcard subjects, and controlled application of untyped recursive
//!   rules;
//! * [`compare`] — the §6 `compare … with …` statement (maximal shared
//!   concept, subsumption, unrelatedness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stderr, clippy::print_stdout)]

pub mod algo1;
pub mod algo2;
mod answer;
pub mod audit;
pub mod cache;
pub mod compare;
mod config;
pub mod constraints;
pub mod describe;
mod error;
pub mod expand;
pub mod extensions;
pub mod governor;
pub mod redundancy;
pub mod transform;
mod tree;

pub use answer::{Completeness, DescribeAnswer, Theorem};
pub use cache::{CacheStats, DescribeCache};
pub use config::{DescribeOptions, FallbackPolicy, TransformPolicy};
pub use describe::{describe, Describe};
pub use error::{DescribeError, Result};
pub use governor::{CancelToken, Exhausted, Governor, Resource, ResourceLimits};
