//! Comparison-formula reasoning (§4).
//!
//! Built-in comparison formulas are never *identified* with hypothesis
//! formulas. Instead, after an answer is generated, every comparison β of
//! its body is checked against every comparison α of the hypothesis over
//! the same variables:
//!
//! * if α ⊨ β, then β is redundant and removed from the answer;
//! * if α ∧ β is unsatisfiable, the answer is discarded (and if *every*
//!   answer is discarded this way, the special "hypothesis contradicts the
//!   IDB" answer is issued).
//!
//! This module is the decision procedure for those two judgements over the
//! comparison fragment: atoms `t₁ op t₂` with `op ∈ {=, !=, <, <=, >, >=}`
//! and each `tᵢ` a variable or constant. The domain is treated as a dense
//! linear order (numbers; symbols/strings order lexicographically), which
//! makes the judgements exact for variable–constant and variable–variable
//! comparisons over identical variables.

use qdk_logic::{Atom, Term, Var};
use qdk_storage::Value;

/// A comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Op {
    /// Parses an operator symbol.
    pub fn parse(s: &str) -> Option<Op> {
        Some(match s {
            "=" => Op::Eq,
            "!=" => Op::Ne,
            "<" => Op::Lt,
            "<=" => Op::Le,
            ">" => Op::Gt,
            ">=" => Op::Ge,
            _ => return None,
        })
    }

    /// The operator with operands swapped: `x op y ⇔ y op.flip() x`.
    pub fn flip(self) -> Op {
        match self {
            Op::Eq => Op::Eq,
            Op::Ne => Op::Ne,
            Op::Lt => Op::Gt,
            Op::Le => Op::Ge,
            Op::Gt => Op::Lt,
            Op::Ge => Op::Le,
        }
    }

    /// The operator's symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        }
    }

    /// Evaluates the operator on constants (`None` when an ordering is
    /// applied to incomparable kinds).
    pub fn eval(self, l: &Value, r: &Value) -> Option<bool> {
        match self {
            Op::Eq => Some(l == r),
            Op::Ne => Some(l != r),
            _ if !l.comparable(r) => None,
            Op::Lt => Some(l < r),
            Op::Le => Some(l <= r),
            Op::Gt => Some(l > r),
            Op::Ge => Some(l >= r),
        }
    }

    /// The relation set over {<, =, >} denoted by the operator, encoded as
    /// a bitmask (bit 0 = <, bit 1 = =, bit 2 = >). Used for
    /// variable–variable reasoning.
    fn relset(self) -> u8 {
        match self {
            Op::Lt => 0b001,
            Op::Eq => 0b010,
            Op::Gt => 0b100,
            Op::Le => 0b011,
            Op::Ge => 0b110,
            Op::Ne => 0b101,
        }
    }
}

/// A normalized comparison formula.
#[derive(Clone, Debug, PartialEq)]
pub enum Comparison {
    /// `var op value` (constant side normalized to the right).
    VarConst {
        /// The variable.
        var: Var,
        /// The operator (after normalization).
        op: Op,
        /// The constant bound.
        val: Value,
    },
    /// `left op right` over two distinct variables, with `left < right`
    /// lexicographically (normalized by flipping).
    VarVar {
        /// The smaller-named variable.
        left: Var,
        /// The operator (after normalization).
        op: Op,
        /// The larger-named variable.
        right: Var,
    },
    /// A ground comparison, already evaluated. `None` means the operands
    /// were incomparable kinds (an error surfaced by the caller).
    Ground(Option<bool>),
    /// `X op X` — the same variable on both sides; truth is fixed by the
    /// operator (`=`, `<=`, `>=` hold; `!=`, `<`, `>` do not).
    SameVar(bool),
}

impl Comparison {
    /// Normalizes a built-in atom into a [`Comparison`]. Returns `None` if
    /// the atom is not a binary built-in comparison.
    pub fn from_atom(atom: &Atom) -> Option<Comparison> {
        let op = Op::parse(atom.pred.as_str())?;
        if atom.args.len() != 2 {
            return None;
        }
        Some(match (&atom.args[0], &atom.args[1]) {
            (Term::Var(v), Term::Const(c)) => Comparison::VarConst {
                var: v.clone(),
                op,
                val: c.clone(),
            },
            (Term::Const(c), Term::Var(v)) => Comparison::VarConst {
                var: v.clone(),
                op: op.flip(),
                val: c.clone(),
            },
            (Term::Const(a), Term::Const(b)) => Comparison::Ground(op.eval(a, b)),
            (Term::Var(a), Term::Var(b)) => {
                if a == b {
                    Comparison::SameVar(matches!(op, Op::Eq | Op::Le | Op::Ge))
                } else if a <= b {
                    Comparison::VarVar {
                        left: a.clone(),
                        op,
                        right: b.clone(),
                    }
                } else {
                    Comparison::VarVar {
                        left: b.clone(),
                        op: op.flip(),
                        right: a.clone(),
                    }
                }
            }
        })
    }

    /// Renders the comparison back to an atom.
    pub fn to_atom(&self) -> Atom {
        match self {
            Comparison::VarConst { var, op, val } => Atom::new(
                op.symbol(),
                vec![Term::Var(var.clone()), Term::Const(val.clone())],
            ),
            Comparison::VarVar { left, op, right } => Atom::new(
                op.symbol(),
                vec![Term::Var(left.clone()), Term::Var(right.clone())],
            ),
            Comparison::Ground(b) => {
                let t = Term::int(0);
                // A canonical ground form: 0 = 0 or 0 != 0.
                match b {
                    Some(true) => Atom::new("=", vec![t.clone(), t]),
                    _ => Atom::new("!=", vec![t.clone(), t]),
                }
            }
            Comparison::SameVar(b) => {
                let v = Term::var("X");
                match b {
                    true => Atom::new("=", vec![v.clone(), v]),
                    false => Atom::new("!=", vec![v.clone(), v]),
                }
            }
        }
    }
}

/// Is `region(op1, a) ⊆ region(op2, b)` over a dense linear order?
/// Returns `false` when the bounds are incomparable kinds.
fn region_subset(op1: Op, a: &Value, op2: Op, b: &Value) -> bool {
    let lt = |x: &Value, y: &Value| Op::Lt.eval(x, y).unwrap_or(false);
    let le = |x: &Value, y: &Value| Op::Le.eval(x, y).unwrap_or(false);
    let eq = |x: &Value, y: &Value| x == y;
    match op2 {
        Op::Lt => match op1 {
            Op::Lt => le(a, b),
            Op::Le => lt(a, b),
            Op::Eq => lt(a, b),
            _ => false,
        },
        Op::Le => match op1 {
            Op::Lt | Op::Le | Op::Eq => le(a, b),
            _ => false,
        },
        Op::Gt => match op1 {
            Op::Gt => le(b, a),
            Op::Ge => lt(b, a),
            Op::Eq => lt(b, a),
            _ => false,
        },
        Op::Ge => match op1 {
            Op::Gt | Op::Ge | Op::Eq => le(b, a),
            _ => false,
        },
        Op::Eq => matches!(op1, Op::Eq) && eq(a, b),
        Op::Ne => match op1 {
            Op::Eq => !eq(a, b),
            Op::Ne => eq(a, b),
            Op::Lt => le(b, a),
            Op::Le => lt(b, a),
            Op::Gt => le(a, b),
            Op::Ge => lt(a, b),
        },
    }
}

/// Is `region(op1, a) ∩ region(op2, b) = ∅` over a dense linear order?
fn region_disjoint(op1: Op, a: &Value, op2: Op, b: &Value) -> bool {
    let lt = |x: &Value, y: &Value| Op::Lt.eval(x, y).unwrap_or(false);
    let le = |x: &Value, y: &Value| Op::Le.eval(x, y).unwrap_or(false);
    match (op1, op2) {
        (Op::Eq, Op::Eq) => a != b,
        (Op::Eq, Op::Ne) | (Op::Ne, Op::Eq) => a == b,
        (Op::Eq, o) => {
            !region_subset(Op::Eq, a, o, b) && {
                // A point is disjoint from a region iff it is not inside it.
                true
            }
        }
        (o, Op::Eq) => region_disjoint(Op::Eq, b, o, a),
        // Two lower-bounded or two upper-bounded regions always overlap.
        (Op::Gt | Op::Ge, Op::Gt | Op::Ge) => false,
        (Op::Lt | Op::Le, Op::Lt | Op::Le) => false,
        // Ne removes a single point: never disjoint from an interval.
        (Op::Ne, _) | (_, Op::Ne) => false,
        // Upper-bounded vs lower-bounded:
        (Op::Lt, Op::Gt) | (Op::Gt, Op::Lt) => {
            let (hi, lo) = if op1 == Op::Lt { (a, b) } else { (b, a) };
            le(hi, lo)
        }
        (Op::Lt, Op::Ge) | (Op::Ge, Op::Lt) => {
            let (hi, lo) = if op1 == Op::Lt { (a, b) } else { (b, a) };
            le(hi, lo)
        }
        (Op::Le, Op::Gt) | (Op::Gt, Op::Le) => {
            let (hi, lo) = if op1 == Op::Le { (a, b) } else { (b, a) };
            le(hi, lo)
        }
        (Op::Le, Op::Ge) | (Op::Ge, Op::Le) => {
            let (hi, lo) = if op1 == Op::Le { (a, b) } else { (b, a) };
            lt(hi, lo)
        }
    }
}

/// Does α entail β (α ⊨ β)? Defined only for comparisons over identical
/// corresponding variables (§4); everything else returns `false`.
pub fn implies(alpha: &Comparison, beta: &Comparison) -> bool {
    match (alpha, beta) {
        (_, Comparison::Ground(Some(true))) | (_, Comparison::SameVar(true)) => true,
        (Comparison::Ground(Some(false)), _) | (Comparison::SameVar(false), _) => true,
        (
            Comparison::VarConst {
                var: v1,
                op: o1,
                val: c1,
            },
            Comparison::VarConst {
                var: v2,
                op: o2,
                val: c2,
            },
        ) => v1 == v2 && region_subset(*o1, c1, *o2, c2),
        (
            Comparison::VarVar {
                left: l1,
                op: o1,
                right: r1,
            },
            Comparison::VarVar {
                left: l2,
                op: o2,
                right: r2,
            },
        ) => l1 == l2 && r1 == r2 && (o1.relset() & !o2.relset()) == 0,
        _ => false,
    }
}

/// Is α ∧ β unsatisfiable? Defined only for comparisons over identical
/// corresponding variables; everything else returns `false` (satisfiable
/// as far as this procedure can tell).
pub fn contradicts(alpha: &Comparison, beta: &Comparison) -> bool {
    match (alpha, beta) {
        (Comparison::Ground(Some(false)), _)
        | (_, Comparison::Ground(Some(false)))
        | (Comparison::SameVar(false), _)
        | (_, Comparison::SameVar(false)) => true,
        (
            Comparison::VarConst {
                var: v1,
                op: o1,
                val: c1,
            },
            Comparison::VarConst {
                var: v2,
                op: o2,
                val: c2,
            },
        ) => v1 == v2 && region_disjoint(*o1, c1, *o2, c2),
        (
            Comparison::VarVar {
                left: l1,
                op: o1,
                right: r1,
            },
            Comparison::VarVar {
                left: l2,
                op: o2,
                right: r2,
            },
        ) => l1 == l2 && r1 == r2 && (o1.relset() & o2.relset()) == 0,
        _ => false,
    }
}

/// Checks a conjunction of comparisons for satisfiability.
///
/// Complete for: ground comparisons, per-variable constant bounds
/// (including `=` and finitely many `!=` exclusions over a dense order),
/// and pairwise variable–variable comparisons. Transitive variable chains
/// (`X < Y ∧ Y < Z ∧ Z < X`) are *not* detected; the procedure is sound
/// (never reports an unsatisfiable conjunction as unsatisfiable when it is
/// satisfiable — it errs toward "satisfiable"), which is the safe
/// direction for the hypothetical-possibility extension.
pub fn satisfiable(comps: &[Comparison]) -> bool {
    for c in comps {
        if matches!(
            c,
            Comparison::Ground(Some(false)) | Comparison::SameVar(false)
        ) {
            return false;
        }
    }
    for (i, a) in comps.iter().enumerate() {
        for b in &comps[i + 1..] {
            if contradicts(a, b) {
                return false;
            }
        }
    }
    // Per-variable interval check across more than two constraints:
    // contradictions among ≥3 constraints on one variable reduce to a
    // pairwise contradiction over a dense order *except* Eq-vs-bounds,
    // which pairwise already covers. Pairwise is therefore complete for
    // VarConst sets; nothing further needed.
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_atom;

    fn c(src: &str) -> Comparison {
        Comparison::from_atom(&parse_atom(src).unwrap()).unwrap()
    }

    #[test]
    fn normalization_flips_constant_left() {
        let a = c("(3.7 < Z)");
        assert_eq!(a, c("(Z > 3.7)"));
        let b = c("(Z >= 3.7)");
        assert!(matches!(b, Comparison::VarConst { op: Op::Ge, .. }));
    }

    #[test]
    fn normalization_orders_variables() {
        assert_eq!(c("(Y < X)"), c("(X > Y)"));
        assert_eq!(c("(X = Y)"), c("(Y = X)"));
    }

    #[test]
    fn ground_and_samevar() {
        assert_eq!(c("(3 < 4)"), Comparison::Ground(Some(true)));
        assert_eq!(c("(4 <= 3)"), Comparison::Ground(Some(false)));
        assert_eq!(c("(X = X)"), Comparison::SameVar(true));
        assert_eq!(c("(X < X)"), Comparison::SameVar(false));
        assert_eq!(c("(X >= X)"), Comparison::SameVar(true));
        // Incomparable kinds: Ground(None).
        assert_eq!(c("(a < 3)"), Comparison::Ground(None));
    }

    #[test]
    fn paper_example3_implication() {
        // Hypothesis (V > 3.7) implies body (V > 3.3): the body comparison
        // is dropped (Example 3's first theorem keeps U > 3.3 because U is
        // a different variable; when variables coincide it is removed).
        assert!(implies(&c("(V > 3.7)"), &c("(V > 3.3)")));
        assert!(!implies(&c("(V > 3.3)"), &c("(V > 3.7)")));
        // Different variables never relate.
        assert!(!implies(&c("(V > 3.7)"), &c("(U > 3.3)")));
    }

    #[test]
    fn varconst_implication_table() {
        assert!(implies(&c("(X > 4)"), &c("(X > 3)")));
        assert!(implies(&c("(X > 3)"), &c("(X >= 3)")));
        assert!(implies(&c("(X >= 4)"), &c("(X > 3)")));
        assert!(!implies(&c("(X >= 3)"), &c("(X > 3)")));
        assert!(implies(&c("(X = 4)"), &c("(X > 3)")));
        assert!(implies(&c("(X = 4)"), &c("(X != 3)")));
        assert!(implies(&c("(X < 2)"), &c("(X <= 2)")));
        assert!(implies(&c("(X < 2)"), &c("(X != 2)")));
        assert!(implies(&c("(X <= 2)"), &c("(X < 3)")));
        assert!(!implies(&c("(X <= 3)"), &c("(X < 3)")));
        assert!(implies(&c("(X != 3)"), &c("(X != 3)")));
        assert!(!implies(&c("(X != 3)"), &c("(X != 4)")));
        assert!(implies(&c("(X = 3)"), &c("(X = 3)")));
        assert!(!implies(&c("(X = 3)"), &c("(X = 4)")));
        // Equality bound edge cases.
        assert!(implies(&c("(X > 3)"), &c("(X >= 3)")));
        assert!(implies(&c("(X >= 3)"), &c("(X > 2)")));
    }

    #[test]
    fn varconst_contradiction_table() {
        assert!(contradicts(&c("(X > 3.7)"), &c("(X < 3.5)")));
        assert!(contradicts(&c("(X > 3)"), &c("(X <= 3)")));
        assert!(contradicts(&c("(X >= 3)"), &c("(X < 3)")));
        assert!(!contradicts(&c("(X >= 3)"), &c("(X <= 3)"))); // X = 3
        assert!(contradicts(&c("(X = 3)"), &c("(X = 4)")));
        assert!(contradicts(&c("(X = 3)"), &c("(X != 3)")));
        assert!(contradicts(&c("(X = 3)"), &c("(X > 3)")));
        assert!(!contradicts(&c("(X = 3)"), &c("(X >= 3)")));
        assert!(!contradicts(&c("(X != 3)"), &c("(X != 4)")));
        assert!(!contradicts(&c("(X > 2)"), &c("(X > 5)")));
        assert!(!contradicts(&c("(X < 2)"), &c("(X < 5)")));
        assert!(contradicts(&c("(X < 2)"), &c("(X > 5)")));
        // Symmetry.
        assert!(contradicts(&c("(X < 3.5)"), &c("(X > 3.7)")));
    }

    #[test]
    fn varvar_reasoning() {
        assert!(implies(&c("(X < Y)"), &c("(X <= Y)")));
        assert!(implies(&c("(X < Y)"), &c("(X != Y)")));
        assert!(implies(&c("(X = Y)"), &c("(X <= Y)")));
        assert!(implies(&c("(X = Y)"), &c("(X >= Y)")));
        assert!(!implies(&c("(X <= Y)"), &c("(X < Y)")));
        assert!(contradicts(&c("(X < Y)"), &c("(X > Y)")));
        assert!(contradicts(&c("(X < Y)"), &c("(X = Y)")));
        assert!(contradicts(&c("(X = Y)"), &c("(X != Y)")));
        assert!(!contradicts(&c("(X <= Y)"), &c("(X >= Y)")));
        // Flipped rendering is normalized before comparison.
        assert!(implies(&c("(Y > X)"), &c("(X <= Y)")));
    }

    #[test]
    fn symbol_comparisons_order_lexicographically() {
        assert!(implies(&c("(X > calculus)"), &c("(X > algebra)")));
        assert!(contradicts(&c("(X < algebra)"), &c("(X > calculus)")));
    }

    #[test]
    fn satisfiability_of_conjunctions() {
        assert!(satisfiable(&[c("(X > 3)"), c("(X < 5)")]));
        assert!(!satisfiable(&[c("(X > 3.7)"), c("(X < 3.5)")]));
        assert!(!satisfiable(&[c("(X > 3)"), c("(Y < 5)"), c("(X = 2)")]));
        assert!(satisfiable(&[c("(X != 3)"), c("(X != 4)"), c("(X > 0)")]));
        assert!(!satisfiable(&[c("(3 > 4)")]));
        assert!(satisfiable(&[]));
        // The documented incompleteness: cyclic var-var chains pass.
        assert!(satisfiable(&[c("(X < Y)"), c("(Y < Z)"), c("(Z < X)")]));
    }

    #[test]
    fn roundtrip_to_atom() {
        for src in ["(Z > 3.7)", "(X <= Y)", "(X != 4)"] {
            let comp = c(src);
            let back = Comparison::from_atom(&comp.to_atom()).unwrap();
            assert_eq!(comp, back, "{src}");
        }
    }
}
