//! The rule transformation of §5.2.
//!
//! Algorithm 1 applied to a recursive subject either generates infinitely
//! many answers, hangs, or (with type-violating substitutions) produces
//! unsound answers (§5.1, Examples 6–8). The fix restructures every
//! recursive predicate using a transformation due to Imielinski: the set
//! `C` of strongly linear, typed recursive rules with head `p` is replaced
//! by
//!
//! * one *transformed* rule `r_T`: `p(x̄) ← p(ȳ) ∧ t(z̄, x̄_α)` — the
//!   recursion rotated through a fresh *step* predicate `t` of arity `2m`,
//!   where `α` (|α| = m) is the set of argument positions that change
//!   through the recursion or are shared with the non-recursive part `wᵢ`;
//! * one *initialization* rule `r_I` per original recursive rule:
//!   `t(ā, c̄) ← wᵢ` — one step of the recursion;
//! * one *continuation* rule `r_C`: `t(x̄, z̄) ← t(x̄, ȳ) ∧ t(ȳ, z̄)` —
//!   `t` is transitively closed.
//!
//! The transformation preserves the extension of `p` (shown in the paper's
//! reference [4]; verified here by property tests against bottom-up
//! evaluation). Its value for `describe` is structural: after it, the tag
//! discipline of Algorithm 2 can bound the number of recursive-rule
//! applications without losing answers (Figure 2).
//!
//! §5.3 also exhibits a *modified* transformation that avoids the
//! artificial predicate when the recursion is a plain transitive closure
//! (`p(A,B) ← q(A,B)` plus `p(A,B) ← q(A,C) ∧ p(C,B)`): the recursive rule
//! is replaced by the doubling rule `p(A,B) ← p(A,C) ∧ p(C,B)`, giving
//! answers phrased in terms of `p` itself — "clearly preferable" since
//! mechanically named predicates "tend to have little significance".

use crate::config::TransformPolicy;
use crate::error::{DescribeError, Result};
use qdk_engine::analysis::{classify_rule, RuleShape};
use qdk_engine::graph::DependencyGraph;
use qdk_engine::{Idb, ProgramPlan};
use qdk_logic::{Atom, Rule, Sym, Term, Var};
use std::collections::HashMap;

/// How a rule of the (possibly transformed) IDB behaves under Algorithm
/// 2's tag discipline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleKind {
    /// A non-recursive rule (or one whose recursion the subject cannot
    /// reach): applied freely; children stay untagged.
    Ordinary,
    /// A transformed rule `r_T`: applicable only to nodes not tagged 0.
    /// The `t`-child is tagged 2, the same-predicate child 0.
    Transform {
        /// The step predicate introduced for this rule's head predicate.
        step_pred: Sym,
    },
    /// A continuation rule `r_C`: applicable only to nodes not tagged 0;
    /// children are tagged (1, 0) under a 2-tag and (0, 0) under a 1-tag.
    Continuation,
    /// The modified transformation's doubling rule `p ← p ∧ p`: the same
    /// tag discipline as `r_T`/`r_C` combined, with the second recursive
    /// child playing the `t` role.
    Modified,
    /// An untyped strongly-linear recursive rule of the §6 "certain
    /// structure": left untransformed; its applications per branch are
    /// counted and capped instead.
    UntypedControlled,
}

/// The result of preparing an IDB for Algorithm 2.
#[derive(Clone, Debug)]
pub struct TransformedIdb {
    /// The rewritten IDB.
    pub idb: Idb,
    /// Kind of each rule, parallel to `idb.rules()`.
    pub kinds: Vec<RuleKind>,
    /// Step predicates introduced: recursive predicate → its `t`.
    pub step_preds: HashMap<Sym, Sym>,
    /// Recursive predicates that received the modified transformation.
    pub modified: Vec<Sym>,
    /// The rewritten IDB compiled once — the same program representation
    /// the `retrieve` executor runs. The tree enumerator reuses its
    /// per-rule head/body slot maps to standardize rules apart and to
    /// decide which tree formulas are expandable (leaf identification),
    /// instead of re-deriving both from the textual rules at every node.
    pub program: ProgramPlan,
    /// Rule indexes grouped by head predicate, derived from the compiled
    /// heads (parallel to `idb.rules()` / `program.plans()` order).
    by_head: HashMap<Sym, Vec<usize>>,
}

impl TransformedIdb {
    /// Wraps an IDB with no transformation (Algorithm 1 / policy None):
    /// every rule is Ordinary and recursion is unrestricted.
    pub fn untransformed(idb: &Idb) -> TransformedIdb {
        TransformedIdb::assemble(
            idb.clone(),
            vec![RuleKind::Ordinary; idb.len()],
            HashMap::new(),
            Vec::new(),
        )
    }

    /// Compiles the (possibly rewritten) IDB and indexes its rules by
    /// compiled head predicate.
    fn assemble(
        idb: Idb,
        kinds: Vec<RuleKind>,
        step_preds: HashMap<Sym, Sym>,
        modified: Vec<Sym>,
    ) -> TransformedIdb {
        let program = ProgramPlan::compile(&idb);
        let mut by_head: HashMap<Sym, Vec<usize>> = HashMap::new();
        for (i, plan) in program.plans().iter().enumerate() {
            by_head
                .entry(plan.compiled.head.pred.clone())
                .or_default()
                .push(i);
        }
        TransformedIdb {
            idb,
            kinds,
            step_preds,
            modified,
            program,
            by_head,
        }
    }

    /// Indexes of the rules whose head predicate is `pred`, in source
    /// order — read off the compiled program, not recomputed by scanning
    /// the rule list.
    pub fn rule_indexes_for(&self, pred: &Sym) -> &[usize] {
        self.by_head.get(pred).map_or(&[], Vec::as_slice)
    }
}

/// The name of the step predicate for `p`. A leading digit-free, `%`-free
/// scheme the parser cannot produce would be invisible to users, but the
/// paper stresses that these names surface in answers — so the name stays
/// readable: `t_p`.
fn step_name(p: &str) -> Sym {
    Sym::new(&format!("t_{p}"))
}

/// Checks whether a recursive predicate is a plain binary transitive
/// closure eligible for the modified transformation: every recursive rule
/// is `p(A,B) ← q(A,C) ∧ p(C,B)` or `p(A,B) ← p(A,C) ∧ q(C,B)` for a
/// single non-recursive step atom `q`, and some exit rule is
/// `p(A,B) ← q(A,B)` with the same `q`.
fn modified_applicable(pred: &str, recursive: &[&Rule], exits: &[&Rule]) -> bool {
    for rule in recursive {
        if rule.head.arity() != 2 || rule.body.len() != 2 {
            return false;
        }
        let (h0, h1) = match (&rule.head.args[0], &rule.head.args[1]) {
            (Term::Var(a), Term::Var(b)) if a != b => (a, b),
            _ => return false,
        };
        let p_atom = rule.body.iter().map(|l| &l.atom).find(|a| a.pred == pred);
        let q_atom = rule.body.iter().map(|l| &l.atom).find(|a| a.pred != pred);
        let (Some(p_atom), Some(q_atom)) = (p_atom, q_atom) else {
            return false;
        };
        if q_atom.is_builtin() || q_atom.arity() != 2 {
            return false;
        }
        // Shape 1: q(A, C) ∧ p(C, B);  Shape 2: p(A, C) ∧ q(C, B).
        let shape1 = q_atom.args[0] == Term::Var(h0.clone())
            && p_atom.args[1] == Term::Var(h1.clone())
            && q_atom.args[1] == p_atom.args[0]
            && matches!(&q_atom.args[1], Term::Var(c) if c != h0 && c != h1);
        let shape2 = p_atom.args[0] == Term::Var(h0.clone())
            && q_atom.args[1] == Term::Var(h1.clone())
            && p_atom.args[1] == q_atom.args[0]
            && matches!(&p_atom.args[1], Term::Var(c) if c != h0 && c != h1);
        if !(shape1 || shape2) {
            return false;
        }
        // An exit rule p(A,B) ← q(A,B) with the same step predicate.
        let has_exit = exits.iter().any(|e| {
            e.body.len() == 1
                && e.body[0].atom.pred == q_atom.pred
                && e.body[0].atom.args == e.head.args
                && e.head.args.iter().all(|t| matches!(t, Term::Var(_)))
        });
        if !has_exit {
            return false;
        }
    }
    !recursive.is_empty()
}

/// True if a strongly-linear recursive rule has the §6 "certain structure"
/// that is handled by application counting instead of transformation:
/// `p(x̄) ← p(ȳ)` possibly conjoined with atoms not dependent on `p`.
fn untyped_controllable(rule: &Rule, graph: &DependencyGraph) -> bool {
    let head = rule.head.pred.as_str();
    rule.body_db_atoms()
        .all(|a| a.pred == rule.head.pred || !graph.depends_on(a.pred.as_str(), head))
}

/// Applies the §5.2 transformation (per `policy`) to every recursive
/// predicate of the IDB, returning the rewritten IDB with rule kinds.
///
/// Requirements (§2.1): recursive rules must be strongly linear; typed
/// recursive rules are transformed, untyped ones must have the controllable
/// structure above. Violations yield [`DescribeError::UnsupportedIdb`].
pub fn transform_idb(idb: &Idb, policy: TransformPolicy) -> Result<TransformedIdb> {
    if policy == TransformPolicy::None {
        return Ok(TransformedIdb::untransformed(idb));
    }
    let graph = DependencyGraph::build(idb);
    let mut out_rules: Vec<(Rule, RuleKind)> = Vec::new();
    let mut step_preds = HashMap::new();
    let mut modified = Vec::new();

    // Group rules by head predicate, preserving order of first appearance.
    let preds = idb.predicates();
    for pred in &preds {
        let rules: Vec<&Rule> = idb.rules_for(pred.as_str()).collect();
        if !graph.is_recursive(pred.as_str()) {
            for r in rules {
                out_rules.push(((*r).clone(), RuleKind::Ordinary));
            }
            continue;
        }
        let (recursive, exits): (Vec<&Rule>, Vec<&Rule>) = rules
            .into_iter()
            .partition(|r| classify_rule(r, &graph) != RuleShape::NonRecursive);

        // Validate strong linearity.
        for r in &recursive {
            match classify_rule(r, &graph) {
                RuleShape::StronglyLinear => {}
                shape => {
                    return Err(DescribeError::UnsupportedIdb(format!(
                        "recursive rule must be strongly linear (found {shape:?}): {r}"
                    )))
                }
            }
        }

        let (typed, untyped): (Vec<&Rule>, Vec<&Rule>) = recursive
            .iter()
            .partition(|r| r.is_typed_wrt(pred.as_str()));

        for r in &untyped {
            if !untyped_controllable(r, &graph) {
                return Err(DescribeError::UnsupportedIdb(format!(
                    "untyped recursive rule is not of the controllable structure: {r}"
                )));
            }
        }

        // Exit rules pass through unchanged.
        for r in &exits {
            out_rules.push(((*r).clone(), RuleKind::Ordinary));
        }
        // Untyped rules are kept but application-counted.
        for r in &untyped {
            out_rules.push(((*r).clone(), RuleKind::UntypedControlled));
        }
        if typed.is_empty() {
            continue;
        }

        if policy == TransformPolicy::PreferModified
            && modified_applicable(pred.as_str(), &typed, &exits)
        {
            // Modified transformation: a single doubling rule.
            let doubling = Rule::new(
                Atom::new(pred.clone(), vec![Term::var("A"), Term::var("B")]),
                vec![
                    Atom::new(pred.clone(), vec![Term::var("A"), Term::var("C")]),
                    Atom::new(pred.clone(), vec![Term::var("C"), Term::var("B")]),
                ],
            );
            out_rules.push((doubling, RuleKind::Modified));
            modified.push(pred.clone());
            continue;
        }

        // Imielinski transformation with an artificial step predicate.
        let (rules, t) = imielinski(pred, &typed)?;
        step_preds.insert(pred.clone(), t.clone());
        for (r, k) in rules {
            out_rules.push((r, k));
        }
    }

    let mut idb_out = Idb::new();
    let mut kinds = Vec::with_capacity(out_rules.len());
    for (r, k) in out_rules {
        idb_out.add_rule(r).map_err(DescribeError::from)?;
        kinds.push(k);
    }
    Ok(TransformedIdb::assemble(
        idb_out, kinds, step_preds, modified,
    ))
}

/// The Imielinski transformation proper, for one predicate's typed,
/// strongly-linear recursive rules. Returns the replacement rules
/// (`r_T`, the `r_I`s, `r_C`) and the step predicate's name.
fn imielinski(pred: &Sym, recursive: &[&Rule]) -> Result<(Vec<(Rule, RuleKind)>, Sym)> {
    let n = recursive[0].head.arity();
    let t = step_name(pred.as_str());

    // Per rule: head variables, body-occurrence variables, and w.
    struct Parts<'a> {
        head_vars: Vec<Var>,
        body_vars: Vec<Var>,
        w: Vec<&'a qdk_logic::Literal>,
    }
    let mut parts: Vec<Parts<'_>> = Vec::with_capacity(recursive.len());
    for rule in recursive {
        if rule.head.arity() != n {
            return Err(DescribeError::UnsupportedIdb(format!(
                "inconsistent arity for {pred}: {rule}"
            )));
        }
        let head_vars = all_vars(&rule.head)?;
        let mut body_vars = None;
        let mut w = Vec::new();
        for lit in &rule.body {
            if lit.positive && lit.atom.pred == *pred && body_vars.is_none() {
                body_vars = Some(all_vars(&lit.atom)?);
            } else {
                w.push(lit);
            }
        }
        let body_vars = body_vars.ok_or_else(|| {
            DescribeError::UnsupportedIdb(format!(
                "recursive rule lacks a {pred} body atom: {rule}"
            ))
        })?;
        parts.push(Parts {
            head_vars,
            body_vars,
            w,
        });
    }

    // α: positions that change through the recursion or are shared with w.
    let mut alpha: Vec<usize> = Vec::new();
    for p in &parts {
        let w_vars: Vec<Var> = {
            let mut vs = Vec::new();
            for lit in &p.w {
                lit.atom.collect_vars(&mut vs);
            }
            vs
        };
        for i in 0..n {
            let in_alpha = p.head_vars[i] != p.body_vars[i]
                || w_vars.contains(&p.head_vars[i])
                || w_vars.contains(&p.body_vars[i]);
            if in_alpha && !alpha.contains(&i) {
                alpha.push(i);
            }
        }
    }
    alpha.sort_unstable();
    if alpha.is_empty() {
        return Err(DescribeError::UnsupportedIdb(format!(
            "degenerate recursion for {pred}: no argument position changes"
        )));
    }

    let mut out = Vec::new();

    // r_T: p(X̄) ← p(Ȳ) ∧ t(Z̄, X̄_α), where Yᵢ = Xᵢ off α and Zᵢ on α.
    let xs: Vec<Var> = (0..n).map(|i| Var::new(&format!("X{i}"))).collect();
    let zs: Vec<Var> = alpha.iter().map(|i| Var::new(&format!("Z{i}"))).collect();
    let head = Atom::new(pred.clone(), xs.iter().cloned().map(Term::Var).collect());
    let body_p = Atom::new(
        pred.clone(),
        (0..n)
            .map(|i| {
                if let Some(k) = alpha.iter().position(|&a| a == i) {
                    Term::Var(zs[k].clone())
                } else {
                    Term::Var(xs[i].clone())
                }
            })
            .collect(),
    );
    let t_atom = Atom::new(
        t.clone(),
        zs.iter()
            .cloned()
            .map(Term::Var)
            .chain(alpha.iter().map(|&i| Term::Var(xs[i].clone())))
            .collect(),
    );
    out.push((
        Rule::new(head, vec![body_p, t_atom]),
        RuleKind::Transform {
            step_pred: t.clone(),
        },
    ));

    // r_I per original recursive rule: t(b̄_α, h̄_α) ← wᵢ.
    for p in &parts {
        let t_head = Atom::new(
            t.clone(),
            alpha
                .iter()
                .map(|&i| Term::Var(p.body_vars[i].clone()))
                .chain(alpha.iter().map(|&i| Term::Var(p.head_vars[i].clone())))
                .collect(),
        );
        out.push((
            Rule::with_literals(t_head, p.w.iter().map(|&l| l.clone()).collect()),
            RuleKind::Ordinary,
        ));
    }

    // r_C: t(Ū, W̄) ← t(Ū, V̄) ∧ t(V̄, W̄).
    let m = alpha.len();
    let us: Vec<Term> = (0..m).map(|i| Term::var(&format!("U{i}"))).collect();
    let vs: Vec<Term> = (0..m).map(|i| Term::var(&format!("V{i}"))).collect();
    let ws: Vec<Term> = (0..m).map(|i| Term::var(&format!("W{i}"))).collect();
    out.push((
        Rule::new(
            Atom::new(t.clone(), us.iter().chain(&ws).cloned().collect()),
            vec![
                Atom::new(t.clone(), us.iter().chain(&vs).cloned().collect()),
                Atom::new(t.clone(), vs.iter().chain(&ws).cloned().collect()),
            ],
        ),
        RuleKind::Continuation,
    ));

    Ok((out, t))
}

/// Extracts the arguments of a `p`-occurrence as variables, rejecting
/// constants (the transformation's variable bookkeeping requires them).
fn all_vars(atom: &Atom) -> Result<Vec<Var>> {
    atom.args
        .iter()
        .map(|tm| match tm {
            Term::Var(v) => Ok(v.clone()),
            Term::Const(_) => Err(DescribeError::UnsupportedIdb(format!(
                "recursive-predicate occurrence has a constant argument: {atom}"
            ))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_program;

    fn idb(src: &str) -> Idb {
        Idb::from_rules(parse_program(src).unwrap().rules).unwrap()
    }

    fn prior_src() -> &'static str {
        "prior(X, Y) :- prereq(X, Y).\n\
         prior(X, Y) :- prereq(X, Z), prior(Z, Y)."
    }

    #[test]
    fn prior_artificial_transformation_matches_paper() {
        let t = transform_idb(&idb(prior_src()), TransformPolicy::AlwaysArtificial).unwrap();
        let rendered: Vec<String> = t.idb.rules().iter().map(ToString::to_string).collect();
        // Paper §5.2 (modulo variable names and step-predicate name):
        //   prior(X, Y) ← prereq(X, Y)
        //   prior(X, Y) ← prior(Z, Y) ∧ t(Z, X)
        //   t(Z, X) ← prereq(X, Z)
        //   t(X, Y) ← t(X, Z) ∧ t(Z, Y)
        assert_eq!(
            rendered,
            vec![
                "prior(X, Y) :- prereq(X, Y).",
                "prior(X0, X1) :- prior(Z0, X1), t_prior(Z0, X0).",
                "t_prior(Z, X) :- prereq(X, Z).",
                "t_prior(U0, W0) :- t_prior(U0, V0), t_prior(V0, W0).",
            ]
        );
        assert_eq!(t.kinds.len(), 4);
        assert!(matches!(t.kinds[1], RuleKind::Transform { .. }));
        assert_eq!(t.kinds[3], RuleKind::Continuation);
        assert_eq!(t.step_preds.get("prior").unwrap().as_str(), "t_prior");
    }

    #[test]
    fn prior_modified_transformation_matches_paper() {
        let t = transform_idb(&idb(prior_src()), TransformPolicy::PreferModified).unwrap();
        let rendered: Vec<String> = t.idb.rules().iter().map(ToString::to_string).collect();
        // Paper §5.3: prior ← prereq unchanged; recursion becomes doubling.
        assert_eq!(
            rendered,
            vec![
                "prior(X, Y) :- prereq(X, Y).",
                "prior(A, B) :- prior(A, C), prior(C, B).",
            ]
        );
        assert_eq!(t.kinds[1], RuleKind::Modified);
        assert_eq!(t.modified, vec![qdk_logic::Sym::new("prior")]);
        assert!(t.step_preds.is_empty());
    }

    #[test]
    fn right_step_transitive_closure_also_modified() {
        let src = "path(X, Y) :- edge(X, Y).\n\
                   path(X, Y) :- path(X, Z), edge(Z, Y).";
        let t = transform_idb(&idb(src), TransformPolicy::PreferModified).unwrap();
        assert_eq!(t.modified.len(), 1);
    }

    #[test]
    fn example8_q_is_transformed() {
        let src = "p(X, Y) :- q(X, Z), r(Z, Y).\n\
                   q(X, Y) :- q(X, Z), s(Z, Y).\n\
                   q(X, Y) :- r(X, Y).";
        // q's step uses s, its exit uses r — not a plain closure, so even
        // PreferModified must fall back to the artificial transformation.
        let t = transform_idb(&idb(src), TransformPolicy::PreferModified).unwrap();
        assert!(t.step_preds.contains_key("q"));
        let rendered: Vec<String> = t.idb.rules().iter().map(ToString::to_string).collect();
        assert!(
            rendered.contains(&"t_q(Z, Y) :- s(Z, Y).".to_string()),
            "{rendered:?}"
        );
    }

    #[test]
    fn alpha_covers_changing_positions_only() {
        // Three-place recursion where only position 1 changes.
        let src = "acc(A, N, B) :- base(A, N, B).\n\
                   acc(A, N, B) :- step(N, M), acc(A, M, B).";
        let t = transform_idb(&idb(src), TransformPolicy::AlwaysArtificial).unwrap();
        let rt = t
            .idb
            .rules()
            .iter()
            .find(|r| r.head.pred == "acc" && r.body.len() == 2 && r.body[1].atom.pred == "t_acc")
            .expect("r_T present");
        // t has arity 2 (m = 1): only the changing position participates.
        assert_eq!(rt.body[1].atom.arity(), 2);
    }

    #[test]
    fn untyped_controllable_rule_is_kept_counted() {
        let src = "reach(X, Y) :- edge(X, Y).\n\
                   reach(X, Y) :- reach(Y, X).";
        let t = transform_idb(&idb(src), TransformPolicy::PreferModified).unwrap();
        let kinds: Vec<&RuleKind> = t.kinds.iter().collect();
        assert!(kinds.contains(&&RuleKind::UntypedControlled));
        // The rule itself is unchanged.
        assert!(t
            .idb
            .rules()
            .iter()
            .any(|r| r.to_string() == "reach(X, Y) :- reach(Y, X)."));
    }

    #[test]
    fn nonlinear_recursion_is_rejected() {
        let src = "p(X, Y) :- e(X, Y).\n\
                   p(X, Y) :- p(X, Z), p(Z, Y).";
        let err = transform_idb(&idb(src), TransformPolicy::AlwaysArtificial).unwrap_err();
        assert!(matches!(err, DescribeError::UnsupportedIdb(_)));
    }

    #[test]
    fn policy_none_is_identity() {
        let t = transform_idb(&idb(prior_src()), TransformPolicy::None).unwrap();
        assert_eq!(t.idb.len(), 2);
        assert!(t.kinds.iter().all(|k| *k == RuleKind::Ordinary));
    }

    #[test]
    fn nonrecursive_idb_passes_through() {
        let src = "honor(X) :- student(X, Y, Z), Z > 3.7.";
        let t = transform_idb(&idb(src), TransformPolicy::PreferModified).unwrap();
        assert_eq!(t.idb.len(), 1);
        assert_eq!(t.kinds, vec![RuleKind::Ordinary]);
    }

    #[test]
    fn constant_in_recursive_occurrence_rejected() {
        let src = "p(X, Y) :- e(X, Y).\n\
                   p(X, c) :- e(X, Z), p(Z, c).";
        let err = transform_idb(&idb(src), TransformPolicy::AlwaysArtificial).unwrap_err();
        assert!(matches!(err, DescribeError::UnsupportedIdb(_)));
    }
}
