//! The `describe` statement (§3.2): validation, dispatch, and answer
//! assembly.

use crate::answer::{Completeness, DescribeAnswer, Theorem};
use crate::config::{DescribeOptions, FallbackPolicy, TransformPolicy};
use crate::constraints::{self, Comparison};
use crate::error::{DescribeError, Result};
use crate::redundancy;
use crate::transform::{transform_idb, TransformedIdb};
use crate::tree::{Enumerator, RawAnswer};
use qdk_engine::graph::DependencyGraph;
use qdk_engine::Idb;
use qdk_logic::{unify_atoms, Atom, Literal, Subst, Sym, Term, VarGen};
use std::collections::BTreeSet;
use std::fmt;

/// A parsed `describe` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Describe {
    /// The subject `p`: an atomic formula with an IDB predicate.
    pub subject: Atom,
    /// The qualifier (hypothesis) `ψ`: a positive formula.
    pub hypothesis: Vec<Literal>,
}

impl Describe {
    /// Creates a describe statement.
    pub fn new(subject: Atom, hypothesis: Vec<Literal>) -> Self {
        Describe {
            subject,
            hypothesis,
        }
    }

    /// Validates the statement against an IDB (§3.1–3.2's restrictions).
    pub fn validate(&self, idb: &Idb) -> Result<()> {
        if self.subject.is_builtin() || !idb.defines(self.subject.pred.as_str()) {
            return Err(DescribeError::SubjectNotIdb(self.subject.pred.to_string()));
        }
        for l in &self.hypothesis {
            if !l.positive && l.is_builtin() {
                // Negated comparisons: rewrite with the complement op
                // instead (the parser and callers do this); reject here.
                return Err(DescribeError::NegativeHypothesis(l.to_string()));
            }
            if l.atom.pred.as_str() == "="
                && l.atom.args.len() == 2
                && l.atom.args.iter().all(|t| matches!(t, Term::Var(_)))
            {
                return Err(DescribeError::EqualityInHypothesis(l.atom.to_string()));
            }
        }
        Ok(())
    }

    /// The hypothesis as plain atoms.
    pub fn hypothesis_atoms(&self) -> Vec<Atom> {
        self.hypothesis.iter().map(|l| l.atom.clone()).collect()
    }
}

impl fmt::Display for Describe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "describe {}", self.subject)?;
        if !self.hypothesis.is_empty() {
            let parts: Vec<String> = self.hypothesis.iter().map(ToString::to_string).collect();
            write!(f, " where {}", parts.join(" and "))?;
        }
        Ok(())
    }
}

/// Evaluates a `describe` statement, dispatching between Algorithm 1
/// (non-recursive subject) and Algorithm 2 (transformation + tags +
/// typing) per the dependency analysis of §4/§5.
pub fn describe(idb: &Idb, query: &Describe, opts: &DescribeOptions) -> Result<DescribeAnswer> {
    query.validate(idb)?;
    let graph = DependencyGraph::build(idb);
    let recursive = graph.involves_recursion(query.subject.pred.as_str());
    let tidb = {
        let _span = opts.sink.span("transform", u64::from(recursive));
        if recursive {
            transform_idb(idb, opts.transform)?
        } else {
            TransformedIdb::untransformed(idb)
        }
    };
    let check_typing = recursive && opts.transform != TransformPolicy::None;
    run(&tidb, query, check_typing, opts)
}

/// [`describe`] that additionally respects integrity constraints (§2.1's
/// second Horn-clause form): a theorem whose body — conjoined with the
/// hypothesis — contains a forbidden combination (some constraint's body
/// maps into it) is discarded, since no database satisfying the
/// constraints can instantiate it. If the constraints discard every
/// theorem, the special contradiction answer is raised.
pub fn describe_with_constraints(
    idb: &Idb,
    integrity: &[qdk_logic::Constraint],
    query: &Describe,
    opts: &DescribeOptions,
) -> Result<DescribeAnswer> {
    let mut answer = describe(idb, query, opts)?;
    if integrity.is_empty() {
        return Ok(answer);
    }
    let forbidden = |theorem: &Theorem| {
        let mut lits: Vec<Literal> = theorem.rule.body.clone();
        lits.extend(query.hypothesis.iter().cloned());
        integrity.iter().any(|c| {
            let body: Vec<Literal> = c.body.iter().cloned().map(Literal::pos).collect();
            qdk_logic::subsume::body_subsumes(&body, &lits)
        })
    };
    let before = answer.theorems.len();
    answer.theorems.retain(|t| !forbidden(t));
    if answer.theorems.is_empty() && before > 0 {
        answer.hypothesis_contradicts_idb = true;
    }
    Ok(answer)
}

/// Runs the enumeration over a prepared (possibly transformed) IDB and
/// assembles the final answer. Exposed for the algo1/algo2 entry points
/// and the benchmarks.
pub fn run(
    tidb: &TransformedIdb,
    query: &Describe,
    check_typing: bool,
    opts: &DescribeOptions,
) -> Result<DescribeAnswer> {
    let obs = opts.sink.clone();
    let mut enumerator = Enumerator::new(tidb, &query.hypothesis, check_typing, opts);
    let (raw, productive) = {
        let _span = obs.span("enumerate", 0);
        enumerator.enumerate(&query.subject)
    };
    let truncation = enumerator.truncation();
    let hard_truncation = enumerator.hard_stop();
    if obs.enabled() {
        let stats = enumerator.stats();
        obs.counter("trees_expanded", stats.trees_expanded);
        obs.counter("leaves_identified", stats.leaves_identified);
        obs.counter("cuts", stats.cuts);
        if truncation.is_some() {
            obs.counter("governor_spend_at_truncation", enumerator.ops());
        }
    }

    let hyp_comps: Vec<(usize, Atom)> = query
        .hypothesis
        .iter()
        .enumerate()
        .filter(|(_, l)| l.positive && l.is_builtin())
        .map(|(i, l)| (i, l.atom.clone()))
        .collect();
    // §6 generalization: negative hypothesis literals forbid the concept —
    // a theorem whose derivation tree mentions a formula unifying with a
    // negated atom depends on that concept and is discarded.
    let negated: Vec<&Atom> = query
        .hypothesis
        .iter()
        .filter(|l| !l.positive)
        .map(|l| &l.atom)
        .collect();
    let tainted = |r: &RawAnswer| {
        negated.iter().any(|n| {
            r.tree_atoms
                .iter()
                .any(|a| qdk_logic::unify_atoms(&r.subst.apply_atom(a), n).is_some())
        })
    };

    let mut theorems = Vec::new();
    let mut discarded_contradictory = 0usize;

    let assemble_span = obs.span("assemble", raw.len() as u64);
    for r in &raw {
        if tainted(r) {
            continue;
        }
        match assemble(&query.subject, r, &hyp_comps, opts) {
            Assembled::Theorem(t) => theorems.push(t),
            Assembled::Contradicts => discarded_contradictory += 1,
            Assembled::Vacuous => {}
        }
    }

    // One-level fallback (Figure 1 box 19 / the paper's printed
    // behaviour). A derivation that used the hypothesis counts as
    // productive even if comparison post-processing later discarded it —
    // a contradicted hypothesis must yield the special answer, not the
    // plain definitions.
    let any_productive = raw.iter().any(|r| !r.used.is_empty());
    let rule_indexes = tidb.rule_indexes_for(&query.subject.pred);
    let emit_fallback_for = |ri: &usize| match opts.fallback {
        FallbackPolicy::PerRule => !productive.contains(ri),
        FallbackPolicy::Global => !any_productive,
    };
    let mut gen = VarGen::new();
    for ri in rule_indexes.iter().filter(|ri| emit_fallback_for(ri)) {
        // One-level answers rename through the same compiled slot maps the
        // enumerator (and the retrieve executor) use.
        let renamed = tidb.program.plans()[*ri].compiled.rename_apart(&mut gen);
        let Some(mgu) = unify_atoms(&query.subject, &renamed.head) else {
            continue;
        };
        let raw = RawAnswer {
            subst: mgu,
            leaves: renamed.body.iter().map(|l| l.atom.clone()).collect(),
            used: BTreeSet::new(),
            root_rule: Some(*ri),
            trace: vec![format!("definition: {}", tidb.idb.rules()[*ri])],
            tree_atoms: std::iter::once(query.subject.clone())
                .chain(renamed.body.iter().map(|l| l.atom.clone()))
                .collect(),
        };
        if tainted(&raw) {
            continue;
        }
        match assemble(&query.subject, &raw, &hyp_comps, opts) {
            Assembled::Theorem(mut t) => {
                t.one_level = true;
                theorems.push(t);
            }
            Assembled::Contradicts => discarded_contradictory += 1,
            Assembled::Vacuous => {}
        }
    }
    drop(assemble_span);

    // Redundancy elimination (§3.2). When the enumerator hard-stopped —
    // a hard limit (deadline, budget, facts, cancellation) tripped, or the
    // built-in recursion guard cut a divergent walk — the O(n²)
    // subsumption passes are skipped too: the evaluation is already over
    // its allowance (or its guard-length chain bodies make θ-subsumption
    // intractable), and a truncated answer makes no minimality promise.
    // A configured-depth-only truncation keeps the full post-processing:
    // the walk completed within its per-branch bound, and the paper's
    // depth-bounded demonstrations (Example 6 under Algorithm 1) rely on
    // the reduced form.
    if opts.remove_redundant && !hard_truncation {
        // This span is the θ-subsumption pass timing: dominance plus the
        // remove_redundant reduction below.
        let _span = obs.span("reduce", theorems.len() as u64);
        // Hypothesis-aware dominance (the Example 5 behaviour; cf. §6's
        // remark that identification "may reduce the generality of the
        // answer"): a theorem is dropped when a more-identified theorem
        // from the same root rule subsumes it once the hypothesis is
        // conjoined — the less-identified variant says nothing the
        // identified one plus the hypothesis does not.
        // Both subsumption sides are pure functions of one theorem, so
        // prepare each side once instead of once per pair — and only when
        // some pair actually passes the hypothesis-set guard: an answer
        // set whose theorems all used the same hypothesis indexes (the
        // common case) skips the preparation work entirely.
        let guard = |a: &Theorem, b: &Theorem| {
            a.root_rule == b.root_rule
                && a.used_hypothesis.len() > b.used_hypothesis.len()
                && a.used_hypothesis.is_superset(&b.used_hypothesis)
        };
        let any_candidate = theorems
            .iter()
            .any(|b| theorems.iter().any(|a| guard(a, b)));
        if any_candidate {
            let generals: Vec<_> = theorems
                .iter()
                .map(|b| redundancy::prepare_general(&b.rule))
                .collect();
            let augmented: Vec<_> = theorems
                .iter()
                .map(|a| {
                    let mut aug = a.rule.clone();
                    aug.body.extend(query.hypothesis.iter().cloned());
                    redundancy::prepare_specific(&aug, &[])
                })
                .collect();
            let dominated: Vec<bool> = theorems
                .iter()
                .enumerate()
                .map(|(bi, b)| {
                    theorems.iter().enumerate().any(|(ai, a)| {
                        guard(a, b) && redundancy::subsumes_prepared(&generals[bi], &augmented[ai])
                    })
                })
                .collect();
            let mut it = dominated.iter();
            theorems.retain(|_| !*it.next().expect("parallel"));
        }

        let mut trans: Vec<Sym> = tidb.step_preds.values().cloned().collect();
        trans.extend(tidb.modified.iter().cloned());
        theorems = redundancy::remove_redundant(theorems, &trans);
    }

    Ok(DescribeAnswer {
        hypothesis_contradicts_idb: theorems.is_empty() && discarded_contradictory > 0,
        theorems,
        completeness: truncation.map_or(Completeness::Complete, Completeness::Truncated),
    })
}

/// Exhaustive-mode enumeration (no productivity cut, no fallback, no
/// dominance): every derivation within `opts.limits.max_depth` becomes a
/// candidate theorem. Used by the completeness audit.
pub fn run_exhaustive(
    tidb: &TransformedIdb,
    query: &Describe,
    check_typing: bool,
    opts: &DescribeOptions,
) -> Result<DescribeAnswer> {
    let mut enumerator = Enumerator::new(tidb, &query.hypothesis, check_typing, opts).exhaustive();
    let (raw, _) = enumerator.enumerate(&query.subject);
    let truncation = enumerator.truncation();
    let hyp_comps: Vec<(usize, Atom)> = query
        .hypothesis
        .iter()
        .enumerate()
        .filter(|(_, l)| l.positive && l.is_builtin())
        .map(|(i, l)| (i, l.atom.clone()))
        .collect();
    let mut theorems = Vec::new();
    for r in &raw {
        if let Assembled::Theorem(t) = assemble(&query.subject, r, &hyp_comps, opts) {
            theorems.push(t);
        }
    }
    Ok(DescribeAnswer {
        theorems,
        hypothesis_contradicts_idb: false,
        completeness: truncation.map_or(Completeness::Complete, Completeness::Truncated),
    })
}

enum Assembled {
    Theorem(Theorem),
    /// Discarded because a body comparison contradicts the hypothesis.
    Contradicts,
    /// Discarded for other vacuity (ground-false comparison).
    Vacuous,
}

/// Assembles a theorem from a raw derivation: normalizes fresh variables,
/// renders subject-variable bindings as body equalities, and applies the
/// §4 comparison post-processing.
fn assemble(
    subject: &Atom,
    raw: &RawAnswer,
    hyp_comps: &[(usize, Atom)],
    opts: &DescribeOptions,
) -> Assembled {
    // Invert bindings subject-var → fresh-var so heads stay in the user's
    // vocabulary.
    let subject_vars = subject.vars();
    let mut inversion = Subst::new();
    for v in &subject_vars {
        if let Term::Var(f) = raw.subst.apply_term(&Term::Var(v.clone())) {
            if f.is_fresh() && inversion.get(&f).is_none() {
                inversion.bind(f, Term::Var(v.clone()));
            }
        }
    }
    let subst = raw.subst.compose(&inversion);

    // Body: the substituted leaves…
    let mut body: Vec<Literal> = Vec::with_capacity(raw.leaves.len() + subject_vars.len());
    for leaf in &raw.leaves {
        body.push(Literal::pos(subst.apply_atom(leaf)));
    }
    // …plus an equality for every subject variable the derivation bound
    // (Example 6's `prior(X, Y) ← (X = databases)`).
    for v in &subject_vars {
        let t = subst.apply_term(&Term::Var(v.clone()));
        if t != Term::Var(v.clone()) {
            body.push(Literal::pos(Atom::new("=", vec![Term::Var(v.clone()), t])));
        }
    }

    let mut used = raw.used.clone();

    // §4 comparison post-processing.
    if opts.simplify_comparisons {
        let hyp: Vec<(usize, Comparison)> = hyp_comps
            .iter()
            .filter_map(|(i, a)| Comparison::from_atom(&subst.apply_atom(a)).map(|c| (*i, c)))
            .collect();
        let mut kept: Vec<Literal> = Vec::with_capacity(body.len());
        for lit in body {
            if !lit.is_builtin() || !lit.positive {
                kept.push(lit);
                continue;
            }
            let Some(c) = Comparison::from_atom(&lit.atom) else {
                kept.push(lit);
                continue;
            };
            match c {
                Comparison::Ground(Some(true)) | Comparison::SameVar(true) => {}
                Comparison::Ground(Some(false))
                | Comparison::Ground(None)
                | Comparison::SameVar(false) => return Assembled::Vacuous,
                ref c => {
                    if let Some((i, _)) = hyp.iter().find(|(_, a)| constraints::contradicts(a, c)) {
                        used.insert(*i);
                        return Assembled::Contradicts;
                    }
                    if let Some((i, _)) = hyp.iter().find(|(_, a)| constraints::implies(a, c)) {
                        used.insert(*i);
                        // β dropped: implied by the hypothesis.
                    } else {
                        kept.push(lit);
                    }
                }
            }
        }
        body = kept;
    }

    // Duplicate conjuncts carry nothing; a theorem whose body contains its
    // own head is a tautology (`p ← p` says nothing) — both arise from
    // identifications that collapse variables (e.g. the symmetric-rule
    // hypothesis) and are dropped here.
    let mut deduped: Vec<Literal> = Vec::with_capacity(body.len());
    for lit in body {
        if !deduped.contains(&lit) {
            deduped.push(lit);
        }
    }
    if deduped.iter().any(|l| l.positive && l.atom == *subject) {
        return Assembled::Vacuous;
    }

    Assembled::Theorem(Theorem {
        rule: qdk_logic::Rule::with_literals(subject.clone(), deduped),
        used_hypothesis: used,
        root_rule: raw.root_rule,
        one_level: false,
        derivation: raw.trace.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_body, parse_program};

    /// The paper's full example IDB (§2.2).
    fn university_idb() -> Idb {
        Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
                 prior(X, Y) :- prereq(X, Y).\n\
                 prior(X, Y) :- prereq(X, Z), prior(Z, Y).\n\
                 can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).\n\
                 can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4.0).",
            )
            .unwrap()
            .rules,
        )
        .unwrap()
    }

    fn q(subject: &str, hyp: &str) -> Describe {
        Describe::new(
            parse_atom(subject).unwrap(),
            if hyp.is_empty() {
                vec![]
            } else {
                parse_body(hyp).unwrap()
            },
        )
    }

    #[test]
    fn example4_describe_honor() {
        // Paper Example 4: describe honor(X) — the definition itself.
        let idb = university_idb();
        let a = describe(&idb, &q("honor(X)", ""), &DescribeOptions::paper()).unwrap();
        assert_eq!(
            a.rendered(),
            vec!["honor(X) ← student(X, Y, Z) ∧ (Z > 3.7)"]
        );
        assert!(a.theorems[0].one_level);
    }

    #[test]
    fn example3_describe_can_ta_for_math_students() {
        // Paper Example 3: describe can_ta(X, databases) where
        // student(X, math, V) and (V > 3.7).
        let idb = university_idb();
        let a = describe(
            &idb,
            &q("can_ta(X, databases)", "student(X, math, V), V > 3.7"),
            &DescribeOptions::paper(),
        )
        .unwrap();
        let rendered = a.rendered();
        assert_eq!(
            rendered,
            vec![
                "can_ta(X, databases) ← complete(X, databases, Y, 4.0)",
                "can_ta(X, databases) ← complete(X, databases, Y, Z) ∧ (Z > 3.3) ∧ taught(U, databases, Y, V) ∧ teach(U, databases)",
            ]
        );
        // Both theorems used the student hypothesis.
        assert!(a.theorems.iter().all(|t| t.used_hypothesis.contains(&0)));
    }

    #[test]
    fn example5_describe_can_ta_taught_by_susan() {
        // Paper Example 5: describe can_ta(X, Y) where honor(X) and
        // teach(susan, Y).
        let idb = university_idb();
        let a = describe(
            &idb,
            &q("can_ta(X, Y)", "honor(X), teach(susan, Y)"),
            &DescribeOptions::paper(),
        )
        .unwrap();
        assert_eq!(
            a.rendered(),
            vec![
                "can_ta(X, Y) ← complete(X, Y, Z, 4.0)",
                "can_ta(X, Y) ← complete(X, Y, Z, U) ∧ (U > 3.3) ∧ taught(susan, Y, Z, V)",
            ]
        );
    }

    #[test]
    fn example6_recursive_describe_with_modified_transformation() {
        // Paper Example 6 (§5.3): describe prior(X, Y) where
        // prior(databases, Y) — the preferred finite answer.
        let idb = university_idb();
        let a = describe(
            &idb,
            &q("prior(X, Y)", "prior(databases, Y)"),
            &DescribeOptions::paper(),
        )
        .unwrap();
        assert_eq!(
            a.rendered(),
            vec![
                "prior(X, Y) ← (X = databases)",
                "prior(X, Y) ← prior(X, databases)",
            ]
        );
    }

    #[test]
    fn example6_with_artificial_transformation() {
        // Same query under the unmodified Imielinski transformation: the
        // second answer is phrased with the step predicate.
        let idb = university_idb();
        let a = describe(
            &idb,
            &q("prior(X, Y)", "prior(databases, Y)"),
            &DescribeOptions::paper().with_transform(TransformPolicy::AlwaysArtificial),
        )
        .unwrap();
        assert_eq!(
            a.rendered(),
            vec![
                "prior(X, Y) ← (X = databases)",
                "prior(X, Y) ← t_prior(databases, X)",
            ]
        );
    }

    #[test]
    fn example7_typing_restriction() {
        // Paper Example 7: describe prior(X, Y) where prior(X, databases).
        // Type-violating identifications are rejected: no prereq-loop
        // answers; the sound root identification remains.
        let idb = university_idb();
        let a = describe(
            &idb,
            &q("prior(X, Y)", "prior(X, databases)"),
            &DescribeOptions::paper(),
        )
        .unwrap();
        for t in &a.theorems {
            for l in &t.rule.body {
                if l.atom.pred == "prereq" {
                    assert_ne!(l.atom.args[0], l.atom.args[1], "loop in {}", t.rule);
                }
            }
        }
        assert!(a.contains_rendered("prior(X, Y) ← (Y = databases)"));
    }

    #[test]
    fn example6_per_rule_fallback_adds_definition() {
        // Under the flowchart-faithful per-rule policy, the unproductive
        // exit rule contributes its one-level answer as well.
        let idb = university_idb();
        let a = describe(
            &idb,
            &q("prior(X, Y)", "prior(databases, Y)"),
            &DescribeOptions::default(),
        )
        .unwrap();
        let rendered = a.rendered();
        assert!(rendered.contains(&"prior(X, Y) ← prereq(X, Y)".to_string()));
        assert!(rendered.contains(&"prior(X, Y) ← prior(X, databases)".to_string()));
    }

    #[test]
    fn hypothesis_contradiction_yields_special_answer() {
        // describe honor(X) where student(X, math, V) and V < 3.5: the
        // definition's (Z > 3.7) with Z identified to V contradicts.
        let idb = university_idb();
        let a = describe(
            &idb,
            &q("honor(X)", "student(X, math, V), V < 3.5"),
            &DescribeOptions::paper(),
        )
        .unwrap();
        assert!(a.hypothesis_contradicts_idb, "{a}");
        assert!(a.theorems.is_empty());
    }

    #[test]
    fn implied_comparison_is_dropped() {
        // describe honor(X) where student(X, math, V) and V > 3.8: the
        // body comparison (V > 3.7) is implied and dropped.
        let idb = university_idb();
        let a = describe(
            &idb,
            &q("honor(X)", "student(X, math, V), V > 3.8"),
            &DescribeOptions::paper(),
        )
        .unwrap();
        // The body empties entirely: under this hypothesis, the subject
        // holds outright.
        assert_eq!(a.rendered(), vec!["honor(X)"]);
    }

    #[test]
    fn subject_must_be_idb() {
        let idb = university_idb();
        assert!(matches!(
            describe(
                &idb,
                &q("student(X, Y, Z)", ""),
                &DescribeOptions::default()
            ),
            Err(DescribeError::SubjectNotIdb(_))
        ));
        assert!(matches!(
            describe(&idb, &q("ghost(X)", ""), &DescribeOptions::default()),
            Err(DescribeError::SubjectNotIdb(_))
        ));
    }

    #[test]
    fn hypothesis_restrictions_enforced() {
        let idb = university_idb();
        // Negated comparisons are rejected (write the complement instead).
        let neg_cmp = Describe::new(
            parse_atom("honor(X)").unwrap(),
            vec![Literal::neg(parse_atom("(Z > 3.7)").unwrap())],
        );
        assert!(matches!(
            describe(&idb, &neg_cmp, &DescribeOptions::default()),
            Err(DescribeError::NegativeHypothesis(_))
        ));
        assert!(matches!(
            describe(&idb, &q("honor(X)", "X = Y"), &DescribeOptions::default()),
            Err(DescribeError::EqualityInHypothesis(_))
        ));
        // Var = const equalities are fine.
        assert!(describe(
            &idb,
            &q("honor(X)", "student(X, M, G), M = math"),
            &DescribeOptions::paper()
        )
        .is_ok());
    }

    #[test]
    fn mixed_negated_hypothesis_filters_dependent_theorems() {
        // §6 generalization: describe can_ta(X, Y) where teach(susan, Y)
        // and not honor(X) — rule 1 identifies teach but its tree also
        // mentions honor, which the negation forbids; rule 2's tree
        // mentions honor too. Nothing survives.
        let idb = university_idb();
        let a = describe(
            &idb,
            &q("can_ta(X, Y)", "teach(susan, Y), not honor(X)"),
            &DescribeOptions::paper(),
        )
        .unwrap();
        assert!(a.theorems.is_empty(), "{:?}", a.rendered());
        // Forbidding something absent from the derivations changes nothing.
        let b = describe(
            &idb,
            &q("can_ta(X, Y)", "teach(susan, Y), not prior(C, D)"),
            &DescribeOptions::paper(),
        )
        .unwrap();
        assert!(!b.theorems.is_empty());
    }

    #[test]
    fn constraints_discard_forbidden_theorems() {
        // married_ta requires foreign(X) ∧ unmarried(X) in one rule —
        // which the constraint forbids; the other rule survives.
        let idb = Idb::from_rules(
            qdk_logic::parser::parse_program(
                "candidate(X) :- foreign(X), unmarried(X), applied(X).\n\
                 candidate(X) :- domestic(X), applied(X).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let constraint = qdk_logic::parser::parse_program(":- foreign(X), unmarried(X).")
            .unwrap()
            .constraints;
        let query = q("candidate(X)", "");
        let unfiltered = describe(&idb, &query, &DescribeOptions::paper()).unwrap();
        assert_eq!(unfiltered.len(), 2);
        let filtered =
            describe_with_constraints(&idb, &constraint, &query, &DescribeOptions::paper())
                .unwrap();
        assert_eq!(
            filtered.rendered(),
            vec!["candidate(X) ← domestic(X) ∧ applied(X)"]
        );
        // All theorems forbidden ⇒ the special answer.
        let idb2 = Idb::from_rules(
            qdk_logic::parser::parse_program(
                "candidate(X) :- foreign(X), unmarried(X), applied(X).",
            )
            .unwrap()
            .rules,
        )
        .unwrap();
        let all_gone =
            describe_with_constraints(&idb2, &constraint, &query, &DescribeOptions::paper())
                .unwrap();
        assert!(all_gone.hypothesis_contradicts_idb);
    }

    #[test]
    fn theorems_carry_derivation_traces() {
        // Example 3's first theorem was derived by expanding honor and
        // identifying the student hypothesis — the trace says so.
        let idb = university_idb();
        let a = describe(
            &idb,
            &q("can_ta(X, databases)", "student(X, math, V), V > 3.7"),
            &DescribeOptions::paper(),
        )
        .unwrap();
        let t = a
            .theorems
            .iter()
            .find(|t| t.rule.body.iter().any(|l| l.atom.pred == "taught"))
            .expect("rule-1 theorem");
        let explain = t.explain();
        assert!(explain.contains("expanded by rule"), "{explain}");
        assert!(explain.contains("identified with hypothesis"), "{explain}");
        assert!(explain.contains("student"), "{explain}");
        // One-level answers carry their definition as the trace.
        let plain = describe(&idb, &q("honor(X)", ""), &DescribeOptions::paper()).unwrap();
        assert!(plain.theorems[0].explain().contains("definition:"));
    }

    #[test]
    fn display_of_statement() {
        let d = q("can_ta(X, databases)", "student(X, math, V), V > 3.7");
        assert_eq!(
            d.to_string(),
            "describe can_ta(X, databases) where student(X, math, V) and (V > 3.7)"
        );
    }
}
