//! Resource governance for the describe pipeline — re-exported from
//! [`qdk_logic::governor`].
//!
//! The governor's types are *defined* in `qdk-logic` (the dependency-free
//! base crate) rather than here, because `qdk-engine` sits *below*
//! `qdk-core` in the crate graph and must bound its strategies with the
//! very same `Governor`/`Exhausted` types that `describe` reports. Placing
//! the implementation in the shared base and re-exporting it here keeps a
//! single type identity across both evaluation stacks while letting facade
//! users reach everything through `qdk_core::governor` (or the root `qdk`
//! crate).
//!
//! See [`ResourceLimits`] for the unified limit vocabulary, [`Governor`]
//! for the amortized runtime accountant, [`CancelToken`] for cooperative
//! cross-thread cancellation, and [`Exhausted`] for the structured
//! diagnostic surfaced in [`crate::answer::Completeness::Truncated`]
//! answers and [`crate::DescribeError::Exhausted`] errors.

pub use qdk_logic::governor::{CancelToken, Exhausted, Governor, Resource, ResourceLimits};
