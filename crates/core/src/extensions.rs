//! The §6 extensions to the `describe` statement.
//!
//! The paper sketches four extensions; all are implemented here:
//!
//! 1. **`where necessary ψ`** — keep only answers whose derivation
//!    actually used *every* hypothesis formula (plain `describe` ignores
//!    hypothesis formulas unnecessary for the derivation);
//! 2. **negated hypotheses** — `describe can_ta(X, Y) where not honor(X)`
//!    asks whether the subject is derivable *without* the negated concept;
//!    answer `false` means the concept is necessary;
//! 3. **subjectless describes** — `describe where ψ` asks whether the
//!    hypothetical situation ψ is possible, i.e. whether some expansion of
//!    ψ to extensional vocabulary is consistent (comparisons satisfiable
//!    after merging key-equal atoms);
//! 4. **wildcard subjects** — `describe * where ψ` reports every IDB
//!    concept derivable *from* the hypothesis (subjects whose answers used
//!    it).

use crate::answer::DescribeAnswer;
use crate::config::DescribeOptions;
use crate::constraints::{self, Comparison};
use crate::describe::{describe, Describe};
use crate::error::{DescribeError, Result};
use crate::expand;
use qdk_engine::Idb;
use qdk_logic::{unify_atoms, Atom, Literal, Subst, Sym};
use std::collections::HashMap;

/// `describe p where necessary ψ`: answers whose derivations used every
/// hypothesis formula. A hypothesis comparison counts as used when it
/// simplified or contradicted a body comparison (§4's post-processing).
pub fn describe_necessary(
    idb: &Idb,
    query: &Describe,
    opts: &DescribeOptions,
) -> Result<DescribeAnswer> {
    let mut answer = describe(idb, query, opts)?;
    let all: Vec<usize> = (0..query.hypothesis.len()).collect();
    answer
        .theorems
        .retain(|t| all.iter().all(|i| t.used_hypothesis.contains(i)));
    Ok(answer)
}

/// `describe p where ψ₁ or ψ₂ or …` — §6's second research direction
/// (generalizing the qualifier to disjunctions).
///
/// A theorem `p ← φ` is derivable under `ψ₁ ∨ ψ₂` exactly when it is
/// derivable under *each* disjunct (`φ ∧ (ψ₁ ∨ ψ₂) → p` distributes).
/// The implementation therefore intersects the per-disjunct answers by
/// semantic subsumption: a theorem of one disjunct survives when every
/// other disjunct has a theorem at least as general (which then entails
/// it). One-level answers (plain definitions) hold under any hypothesis
/// and always survive.
pub fn describe_disjunctive(
    idb: &Idb,
    subject: &Atom,
    disjuncts: &[Vec<Literal>],
    opts: &DescribeOptions,
) -> Result<DescribeAnswer> {
    if disjuncts.is_empty() {
        return describe(idb, &Describe::new(subject.clone(), vec![]), opts);
    }
    if disjuncts.len() == 1 {
        return describe(
            idb,
            &Describe::new(subject.clone(), disjuncts[0].clone()),
            opts,
        );
    }
    let mut per: Vec<DescribeAnswer> = Vec::with_capacity(disjuncts.len());
    for d in disjuncts {
        per.push(describe(
            idb,
            &Describe::new(subject.clone(), d.clone()),
            opts,
        )?);
    }
    // A contradiction with any disjunct does not contradict the
    // disjunction; the whole query contradicts only if every disjunct did.
    let all_contradict = per.iter().all(|a| a.hypothesis_contradicts_idb);
    let mut kept: Vec<crate::Theorem> = Vec::new();
    for (i, answer) in per.iter().enumerate() {
        'theorems: for t in &answer.theorems {
            if t.one_level {
                // Definitions hold unconditionally.
                if !kept
                    .iter()
                    .any(|k| crate::redundancy::semantic_subsumes(&k.rule, &t.rule, &[]))
                {
                    kept.push(t.clone());
                }
                continue;
            }
            for (j, other) in per.iter().enumerate() {
                if i == j {
                    continue;
                }
                let entailed = other
                    .theorems
                    .iter()
                    .any(|o| crate::redundancy::semantic_subsumes(&o.rule, &t.rule, &[]));
                if !entailed {
                    continue 'theorems;
                }
            }
            if !kept
                .iter()
                .any(|k| crate::redundancy::semantic_subsumes(&k.rule, &t.rule, &[]))
            {
                kept.push(t.clone());
            }
        }
    }
    // The disjunction's answer is only complete if every disjunct's was;
    // the first truncation diagnostic is carried through.
    let completeness = per.iter().find_map(|a| a.completeness.exhausted()).map_or(
        crate::Completeness::Complete,
        crate::Completeness::Truncated,
    );
    Ok(DescribeAnswer {
        hypothesis_contradicts_idb: all_contradict && kept.is_empty(),
        theorems: kept,
        completeness,
    })
}

/// The answer to a negated-hypothesis describe.
#[derive(Clone, Debug, PartialEq)]
pub struct NegationAnswer {
    /// True if the subject is derivable without the negated concept —
    /// i.e. the concept is *not* necessary.
    pub derivable_without: bool,
    /// The extensional definitions witnessing derivability (empty when
    /// `derivable_without` is false).
    pub witnesses: Vec<expand::Conjunct>,
}

impl std::fmt::Display for NegationAnswer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.derivable_without {
            writeln!(f, "true — derivable without the negated concept")
        } else {
            writeln!(f, "false — the negated concept is necessary")
        }
    }
}

/// `describe p where not h`: is `p` derivable without `h`?
///
/// A derivation is *tainted* when any formula in it unifies with `h`
/// (appearing even as an inner node counts: expanding the concept away
/// does not remove the dependence). The answer is `false` — the paper's
/// "honor status is necessary for teaching assistantship" — exactly when
/// every derivation is tainted.
pub fn describe_without(
    idb: &Idb,
    subject: &Atom,
    negated: &Atom,
    _opts: &DescribeOptions,
) -> Result<NegationAnswer> {
    if !idb.defines(subject.pred.as_str()) {
        return Err(DescribeError::SubjectNotIdb(subject.pred.to_string()));
    }
    // Expand the subject, pruning derivations through h at every level
    // (the subject itself unifying with h is immediately tainted).
    let mut conjs = Vec::new();
    expand_avoiding(idb, subject, negated, &mut Vec::new(), &mut conjs)?;
    Ok(NegationAnswer {
        derivable_without: !conjs.is_empty(),
        witnesses: conjs,
    })
}

/// Depth-first unfolding that refuses to *create* any node unifying with
/// the taboo atom.
fn expand_avoiding(
    idb: &Idb,
    atom: &Atom,
    taboo: &Atom,
    path: &mut Vec<Sym>,
    out: &mut Vec<expand::Conjunct>,
) -> Result<()> {
    if unify_atoms(atom, taboo).is_some() {
        return Ok(());
    }
    if atom.is_builtin() || !idb.defines(atom.pred.as_str()) {
        out.push(vec![Literal::pos(atom.clone())]);
        return Ok(());
    }
    // Cycle guard: a minimal untainted derivation never unfolds the same
    // predicate twice along one path (dropping the loop yields a smaller
    // untainted derivation).
    if path.contains(&atom.pred) {
        return Ok(());
    }
    path.push(atom.pred.clone());
    let rules: Vec<_> = idb.rules_for(atom.pred.as_str()).cloned().collect();
    for rule in rules {
        let mut gen = qdk_logic::VarGen::new();
        let (renamed, _) = qdk_logic::rename_rule_apart(&rule, &mut gen);
        let Some(mgu) = unify_atoms(atom, &renamed.head) else {
            continue;
        };
        // Expand each body atom independently; any tainted body atom
        // taints the rule branch.
        let mut disjuncts_per_atom: Vec<Vec<expand::Conjunct>> = Vec::new();
        let mut tainted = false;
        for lit in &renamed.body {
            if !lit.positive {
                disjuncts_per_atom.push(vec![vec![lit.clone()]]);
                continue;
            }
            let inst = mgu.apply_atom(&lit.atom);
            let mut sub = Vec::new();
            expand_avoiding(idb, &inst, taboo, path, &mut sub)?;
            if sub.is_empty() && !inst.is_builtin() && idb.defines(inst.pred.as_str()) {
                tainted = true;
                break;
            }
            if sub.is_empty() {
                sub.push(vec![Literal::pos(inst.clone())]);
            }
            disjuncts_per_atom.push(sub);
        }
        if tainted {
            continue;
        }
        // Cross product of the per-atom disjuncts.
        let mut combos: Vec<expand::Conjunct> = vec![Vec::new()];
        for ds in &disjuncts_per_atom {
            let mut next = Vec::new();
            for c in &combos {
                for d in ds {
                    let mut c2 = c.clone();
                    c2.extend(d.iter().cloned());
                    next.push(c2);
                }
            }
            combos = next;
        }
        out.extend(combos);
    }
    path.pop();
    Ok(())
}

/// The answer to a subjectless (hypothetical-possibility) describe.
#[derive(Clone, Debug, PartialEq)]
pub struct PossibilityAnswer {
    /// True when some expansion of the hypothesis is consistent.
    pub possible: bool,
    /// A consistent expansion, if any (the witness).
    pub witness: Option<expand::Conjunct>,
}

impl std::fmt::Display for PossibilityAnswer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.possible {
            writeln!(f, "true — the hypothetical situation is possible")
        } else {
            writeln!(
                f,
                "false — the hypothetical situation contradicts the knowledge"
            )
        }
    }
}

/// `describe where ψ` (§6's third extension): is the hypothetical
/// situation possible?
///
/// Every IDB atom of ψ is expanded to extensional vocabulary; within each
/// expansion, atoms of the same predicate whose *key* argument prefixes
/// are unifiable are merged (the keys express functional dependencies —
/// e.g. a student has one GPA — without which no contradiction between
/// separately-mentioned atoms is detectable); the comparisons of the
/// merged conjunct are then checked for satisfiability, and against every
/// integrity constraint (a constraint whose body maps into the situation —
/// at the conceptual level or after expansion — forbids it; the
/// introduction's "Must all foreign students be married?" is exactly a
/// constraint hit).
pub fn describe_possible(
    idb: &Idb,
    hypothesis: &[Atom],
    keys: &HashMap<Sym, usize>,
    integrity: &[qdk_logic::Constraint],
    opts: &DescribeOptions,
) -> Result<PossibilityAnswer> {
    let forbidden = |lits: &[Literal]| {
        integrity.iter().any(|c| {
            let body: Vec<Literal> = c.body.iter().cloned().map(Literal::pos).collect();
            qdk_logic::subsume::body_subsumes(&body, lits)
        })
    };
    // Constraints may be stated over IDB concepts: check the hypothesis
    // itself before expansion.
    let conceptual: Vec<Literal> = hypothesis.iter().cloned().map(Literal::pos).collect();
    if forbidden(&conceptual) {
        return Ok(PossibilityAnswer {
            possible: false,
            witness: None,
        });
    }
    let expansions = expand::expand_conjunction(idb, hypothesis, opts)?;
    for conj in &expansions {
        if let Some(merged) = merge_by_keys(conj, keys) {
            if forbidden(&merged) {
                continue;
            }
            let comps: Vec<Comparison> = merged
                .iter()
                .filter(|l| l.positive && l.is_builtin())
                .filter_map(|l| Comparison::from_atom(&l.atom))
                .collect();
            if constraints::satisfiable(&comps) {
                return Ok(PossibilityAnswer {
                    possible: true,
                    witness: Some(merged),
                });
            }
        }
    }
    Ok(PossibilityAnswer {
        possible: false,
        witness: None,
    })
}

/// Unifies same-predicate atoms whose key prefixes are unifiable. Returns
/// `None` when a required merge fails outright (conflicting constants in
/// non-key positions make the conjunct unsatisfiable already).
fn merge_by_keys(conj: &expand::Conjunct, keys: &HashMap<Sym, usize>) -> Option<expand::Conjunct> {
    let mut subst = Subst::new();
    let atoms: Vec<&Atom> = conj
        .iter()
        .filter(|l| l.positive && !l.is_builtin())
        .map(|l| &l.atom)
        .collect();
    for (i, a) in atoms.iter().enumerate() {
        for b in &atoms[i + 1..] {
            if a.pred != b.pred {
                continue;
            }
            let Some(&klen) = keys.get(&a.pred) else {
                continue;
            };
            let a_now = subst.apply_atom(a);
            let b_now = subst.apply_atom(b);
            if a_now.args.len() < klen || b_now.args.len() < klen {
                continue;
            }
            // Keys must be syntactically unifiable to force a merge.
            let key_a = Atom::new(a.pred.clone(), a_now.args[..klen].to_vec());
            let key_b = Atom::new(a.pred.clone(), b_now.args[..klen].to_vec());
            if let Some(kmgu) = unify_atoms(&key_a, &key_b) {
                // Same key ⇒ the whole tuples must unify.
                let a2 = kmgu.apply_atom(&a_now);
                let b2 = kmgu.apply_atom(&b_now);
                match unify_atoms(&a2, &b2) {
                    Some(full) => {
                        subst = subst.compose(&kmgu).compose(&full);
                    }
                    None => return None,
                }
            }
        }
    }
    Some(conj.iter().map(|l| subst.apply_literal(l)).collect())
}

/// `describe * where ψ`: every IDB concept whose describe-answer used the
/// hypothesis, with those answers.
pub fn describe_wildcard(
    idb: &Idb,
    hypothesis: &[Literal],
    opts: &DescribeOptions,
) -> Result<Vec<(Sym, DescribeAnswer)>> {
    let mut out = Vec::new();
    for pred in idb.predicates() {
        // Build a subject atom with fresh distinct variables matching the
        // predicate's arity (taken from its first rule's head).
        let head = &idb
            .rules_for(pred.as_str())
            .next()
            .expect("predicate has a rule")
            .head;
        let subject = Atom::new(
            pred.clone(),
            (0..head.arity())
                .map(|i| qdk_logic::Term::var(&format!("S{i}")))
                .collect(),
        );
        let q = Describe::new(subject, hypothesis.to_vec());
        let mut answer = describe(idb, &q, opts)?;
        answer.theorems.retain(|t| !t.used_hypothesis.is_empty());
        if !answer.theorems.is_empty() {
            out.push((pred.clone(), answer));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_body, parse_program};

    fn university_idb() -> Idb {
        Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
                 can_ta(X, Y) :- honor(X), complete(X, Y, Z, U), U > 3.3, taught(V, Y, Z, W), teach(V, Y).\n\
                 can_ta(X, Y) :- honor(X), complete(X, Y, Z, 4.0).",
            )
            .unwrap()
            .rules,
        )
        .unwrap()
    }

    #[test]
    fn disjunctive_hypothesis_intersects() {
        // describe can_ta(X, Y) where honor(X) or teach(susan, Y):
        // the honor-identified theorems hold only under the first
        // disjunct, the teach-identified ones only under the second —
        // nothing except the definitions is valid under the disjunction.
        let idb = university_idb();
        let subject = parse_atom("can_ta(X, Y)").unwrap();
        let d1 = parse_body("honor(X)").unwrap();
        let d2 = parse_body("teach(susan, Y)").unwrap();
        let a = describe_disjunctive(
            &idb,
            &subject,
            &[d1.clone(), d2.clone()],
            &DescribeOptions::paper(),
        )
        .unwrap();
        // No hypothesis-using theorem survives the intersection here.
        assert!(
            a.theorems.iter().all(|t| !t.uses_hypothesis()),
            "{:?}",
            a.rendered()
        );

        // But a disjunction whose disjuncts both entail the same theorem
        // keeps it: honor(X) or (student(X, M, G) and G > 3.8) — both
        // make honor derivable, so can_ta's honor subtree discharges
        // under each.
        let d3 = parse_body("student(X, M, G), G > 3.8").unwrap();
        let b = describe_disjunctive(&idb, &subject, &[d1, d3], &DescribeOptions::paper()).unwrap();
        assert!(
            b.theorems.iter().any(|t| t.uses_hypothesis()),
            "{:?}",
            b.rendered()
        );
    }

    #[test]
    fn disjunctive_hypothesis_degenerate_cases() {
        let idb = university_idb();
        let subject = parse_atom("honor(X)").unwrap();
        // Zero disjuncts = plain describe.
        let a = describe_disjunctive(&idb, &subject, &[], &DescribeOptions::paper()).unwrap();
        assert_eq!(a.len(), 1);
        // One disjunct = ordinary hypothesis.
        let b = describe_disjunctive(
            &idb,
            &subject,
            &[parse_body("student(X, math, V), V > 3.8").unwrap()],
            &DescribeOptions::paper(),
        )
        .unwrap();
        assert_eq!(b.rendered(), vec!["honor(X)"]);
    }

    #[test]
    fn necessary_filters_unused_hypotheses() {
        // §6's example: describe honor(X) where necessary
        // complete(X, Y, Z, U) and (U > 3.3) — honor's derivation never
        // uses complete, so nothing survives.
        let idb = university_idb();
        let q = Describe::new(
            parse_atom("honor(X)").unwrap(),
            parse_body("complete(X, Y, Z, U), U > 3.3").unwrap(),
        );
        let plain = describe(&idb, &q, &DescribeOptions::default()).unwrap();
        assert!(!plain.is_empty()); // ordinary describe ignores ψ
        let strict = describe_necessary(&idb, &q, &DescribeOptions::default()).unwrap();
        assert!(strict.theorems.is_empty());
    }

    #[test]
    fn necessary_keeps_fully_used_hypotheses() {
        let idb = university_idb();
        let q = Describe::new(
            parse_atom("can_ta(X, Y)").unwrap(),
            parse_body("honor(X)").unwrap(),
        );
        let strict = describe_necessary(&idb, &q, &DescribeOptions::paper()).unwrap();
        assert_eq!(strict.len(), 2);
        assert!(strict
            .theorems
            .iter()
            .all(|t| t.used_hypothesis.contains(&0)));
    }

    #[test]
    fn honor_is_necessary_for_ta() {
        // §6's second extension: describe can_ta(X, Y) where not honor(X)
        // answers false — honor status is necessary.
        let idb = university_idb();
        let a = describe_without(
            &idb,
            &parse_atom("can_ta(X, Y)").unwrap(),
            &parse_atom("honor(W)").unwrap(),
            &DescribeOptions::default(),
        )
        .unwrap();
        assert!(!a.derivable_without);
        assert!(a.to_string().contains("false"));
    }

    #[test]
    fn teach_is_not_necessary_for_ta() {
        // The 4.0 rule derives can_ta without teach: not necessary.
        let idb = university_idb();
        let a = describe_without(
            &idb,
            &parse_atom("can_ta(X, Y)").unwrap(),
            &parse_atom("teach(P, C)").unwrap(),
            &DescribeOptions::default(),
        )
        .unwrap();
        assert!(a.derivable_without);
        assert!(!a.witnesses.is_empty());
    }

    #[test]
    fn possibility_low_gpa_ta_is_contradicted() {
        // §6's third extension: "are students with GPA under 3.5 allowed
        // to be teaching assistants?" — with student keyed on its first
        // attribute, can_ta's honor expansion forces GPA > 3.7,
        // contradicting Z < 3.5.
        let idb = university_idb();
        let keys: HashMap<Sym, usize> = [(Sym::new("student"), 1)].into_iter().collect();
        let hyp = vec![
            parse_atom("student(X, Y, Z)").unwrap(),
            parse_atom("(Z < 3.5)").unwrap(),
            parse_atom("can_ta(X, U)").unwrap(),
        ];
        let a = describe_possible(&idb, &hyp, &keys, &[], &DescribeOptions::default()).unwrap();
        assert!(!a.possible, "{a}");
    }

    #[test]
    fn possibility_high_gpa_ta_is_possible() {
        let idb = university_idb();
        let keys: HashMap<Sym, usize> = [(Sym::new("student"), 1)].into_iter().collect();
        let hyp = vec![
            parse_atom("student(X, Y, Z)").unwrap(),
            parse_atom("(Z > 3.9)").unwrap(),
            parse_atom("can_ta(X, U)").unwrap(),
        ];
        let a = describe_possible(&idb, &hyp, &keys, &[], &DescribeOptions::default()).unwrap();
        assert!(a.possible, "{a}");
        assert!(a.witness.is_some());
    }

    #[test]
    fn possibility_without_keys_finds_no_contradiction() {
        // Without the functional dependency, the two student atoms are
        // unrelated and no contradiction is detectable (documented
        // substitution for the paper's under-specified check).
        let idb = university_idb();
        let hyp = vec![
            parse_atom("student(X, Y, Z)").unwrap(),
            parse_atom("(Z < 3.5)").unwrap(),
            parse_atom("can_ta(X, U)").unwrap(),
        ];
        let a = describe_possible(
            &idb,
            &hyp,
            &HashMap::new(),
            &[],
            &DescribeOptions::default(),
        )
        .unwrap();
        assert!(a.possible);
    }

    #[test]
    fn wildcard_lists_derivable_concepts() {
        // §6's fourth extension: describe * where honor(X) — what follows
        // from honor status? can_ta does (both rules use it); honor
        // itself does (root identification).
        let idb = university_idb();
        let hyp = parse_body("honor(H)").unwrap();
        let out = describe_wildcard(&idb, &hyp, &DescribeOptions::paper()).unwrap();
        let preds: Vec<String> = out.iter().map(|(p, _)| p.to_string()).collect();
        assert!(preds.contains(&"can_ta".to_string()), "{preds:?}");
        let can_ta = &out.iter().find(|(p, _)| p.as_str() == "can_ta").unwrap().1;
        assert_eq!(can_ta.len(), 2);
    }
}
