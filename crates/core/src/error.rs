//! Describe-engine errors.

use crate::governor::Exhausted;
use std::fmt;

/// Errors raised by the describe engine.
#[derive(Clone, Debug, PartialEq)]
pub enum DescribeError {
    /// The subject of a describe query must be an IDB predicate (§3.2).
    SubjectNotIdb(String),
    /// The hypothesis contained a negative literal outside the negated-
    /// hypothesis extension entry point.
    NegativeHypothesis(String),
    /// The hypothesis contained an `X = Y` atom, which §3.1 forbids in
    /// qualifiers.
    EqualityInHypothesis(String),
    /// The IDB violates the paper's assumptions (recursive rules must be
    /// strongly linear and typed) in a way no implemented handling covers.
    UnsupportedIdb(String),
    /// Evaluation exceeded a configured resource limit in a context where
    /// no partial answer can be returned (e.g. rule-body expansion). The
    /// main `describe` path instead returns a
    /// [`crate::Completeness::Truncated`] answer; this error carries the
    /// same structured diagnostic for the paths that must abort.
    Exhausted(Exhausted),
    /// An engine-layer error (dependency analysis, validation).
    Engine(String),
}

impl fmt::Display for DescribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescribeError::SubjectNotIdb(p) => {
                write!(f, "describe subject must be an IDB predicate: {p}")
            }
            DescribeError::NegativeHypothesis(l) => {
                write!(f, "hypothesis must be a positive formula, found: {l}")
            }
            DescribeError::EqualityInHypothesis(a) => {
                write!(f, "qualifier may not contain a variable equality: {a}")
            }
            DescribeError::UnsupportedIdb(msg) => write!(f, "unsupported IDB: {msg}"),
            DescribeError::Exhausted(e) => write!(f, "describe stopped: {e}"),
            DescribeError::Engine(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DescribeError {}

impl From<qdk_engine::EngineError> for DescribeError {
    fn from(e: qdk_engine::EngineError) -> Self {
        // Preserve the structured exhaustion diagnostic across the layer
        // boundary; everything else is carried as a message.
        match e {
            qdk_engine::EngineError::Exhausted(x) => DescribeError::Exhausted(x),
            other => DescribeError::Engine(other.to_string()),
        }
    }
}

impl From<Exhausted> for DescribeError {
    fn from(e: Exhausted) -> Self {
        DescribeError::Exhausted(e)
    }
}

/// Result alias for describe operations.
pub type Result<T> = std::result::Result<T, DescribeError>;
