//! Describe-engine errors.

use std::fmt;

/// Errors raised by the describe engine.
#[derive(Clone, Debug, PartialEq)]
pub enum DescribeError {
    /// The subject of a describe query must be an IDB predicate (§3.2).
    SubjectNotIdb(String),
    /// The hypothesis contained a negative literal outside the negated-
    /// hypothesis extension entry point.
    NegativeHypothesis(String),
    /// The hypothesis contained an `X = Y` atom, which §3.1 forbids in
    /// qualifiers.
    EqualityInHypothesis(String),
    /// The IDB violates the paper's assumptions (recursive rules must be
    /// strongly linear and typed) in a way no implemented handling covers.
    UnsupportedIdb(String),
    /// Enumeration exceeded the configured work budget. With the paper's
    /// assumptions satisfied this cannot happen; the budget exists to
    /// demonstrate Algorithm 1's divergence on recursive subjects
    /// (Examples 6–8) without hanging.
    BudgetExhausted {
        /// The budget that was exceeded (number of tree operations).
        budget: u64,
    },
    /// An engine-layer error (dependency analysis, validation).
    Engine(String),
}

impl fmt::Display for DescribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescribeError::SubjectNotIdb(p) => {
                write!(f, "describe subject must be an IDB predicate: {p}")
            }
            DescribeError::NegativeHypothesis(l) => {
                write!(f, "hypothesis must be a positive formula, found: {l}")
            }
            DescribeError::EqualityInHypothesis(a) => {
                write!(f, "qualifier may not contain a variable equality: {a}")
            }
            DescribeError::UnsupportedIdb(msg) => write!(f, "unsupported IDB: {msg}"),
            DescribeError::BudgetExhausted { budget } => {
                write!(f, "describe exceeded work budget of {budget} tree operations")
            }
            DescribeError::Engine(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DescribeError {}

impl From<qdk_engine::EngineError> for DescribeError {
    fn from(e: qdk_engine::EngineError) -> Self {
        DescribeError::Engine(e.to_string())
    }
}

/// Result alias for describe operations.
pub type Result<T> = std::result::Result<T, DescribeError>;
