//! Describe-answer caching with subsumption-driven invalidation.
//!
//! A `describe` answer depends only on the IDB rules and integrity
//! constraints — never on stored facts — so knowledge answers can survive
//! arbitrary fact churn untouched. What *does* invalidate them is a
//! change to the rule set, and even then only selectively: each cached
//! entry records the predicate closure its subject could reach when the
//! answer was computed, and a new rule evicts exactly the entries whose
//! closure contains the rule's head. One refinement comes from the
//! θ-subsumption machinery of [`crate::redundancy`]: a new rule that is
//! subsumed by an existing rule with the same head can contribute no new
//! theorems (redundancy elimination would discard anything it produced),
//! so entries survive it — the caller performs that check, since it owns
//! the IDB, and reports it through the `redundant` flag.
//!
//! Entries are bucketed by subject predicate, so invalidation scans one
//! bucket's closures instead of every cached answer.

use crate::answer::DescribeAnswer;
use qdk_logic::Sym;
use std::collections::HashMap;

/// Soft cap on cached entries; the oldest entry in the fullest bucket is
/// dropped when reached. Knowledge answers are small (rules, not data),
/// so the cap exists only to bound a pathological workload.
const MAX_ENTRIES: usize = 256;

/// One cached describe answer.
#[derive(Clone, Debug)]
struct Entry {
    /// Full cache key: the rendered describe statement plus an options
    /// fingerprint (answers vary with fallback/transform policies).
    key: String,
    /// The predicates the subject could reach through the rule set when
    /// the answer was computed — the invalidation footprint.
    closure: Vec<Sym>,
    answer: DescribeAnswer,
}

/// Cumulative cache counters, exposed so mutation reports can show how
/// many knowledge answers survived a change.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached answer.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted by rule or constraint changes.
    pub evicted: u64,
    /// Entries that survived a rule change because the new rule was
    /// subsumed by an existing one.
    pub survived: u64,
}

/// A cache of complete describe answers, bucketed by subject predicate
/// and invalidated through predicate closures (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct DescribeCache {
    buckets: HashMap<String, Vec<Entry>>,
    len: usize,
    stats: CacheStats,
}

impl DescribeCache {
    /// An empty cache.
    pub fn new() -> Self {
        DescribeCache::default()
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up the answer cached under `key` for `subject_pred`, counting
    /// a hit or miss.
    pub fn get(&mut self, subject_pred: &str, key: &str) -> Option<DescribeAnswer> {
        let found = self
            .buckets
            .get(subject_pred)
            .and_then(|b| b.iter().find(|e| e.key == key))
            .map(|e| e.answer.clone());
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Caches `answer` under `key`, recording the subject's predicate
    /// `closure` for invalidation. Replaces an existing entry with the
    /// same key.
    pub fn insert(
        &mut self,
        subject_pred: &str,
        key: String,
        closure: Vec<Sym>,
        answer: DescribeAnswer,
    ) {
        if let Some(e) = self
            .buckets
            .get_mut(subject_pred)
            .and_then(|b| b.iter_mut().find(|e| e.key == key))
        {
            e.closure = closure;
            e.answer = answer;
            return;
        }
        if self.len >= MAX_ENTRIES {
            self.drop_oldest();
        }
        let bucket = self.buckets.entry(subject_pred.to_string()).or_default();
        bucket.push(Entry {
            key,
            closure,
            answer,
        });
        self.len += 1;
    }

    fn drop_oldest(&mut self) {
        if let Some(bucket) = self
            .buckets
            .values_mut()
            .max_by_key(|b| b.len())
            .filter(|b| !b.is_empty())
        {
            bucket.remove(0);
            self.len -= 1;
        }
    }

    /// Applies a rule addition whose head is `head`. When `redundant` is
    /// true (the caller proved the new rule θ-subsumed by an existing
    /// same-head rule) every entry survives; otherwise entries whose
    /// closure contains `head` are evicted. Returns
    /// `(survived, evicted)` counts over the affected entries.
    pub fn rule_added(&mut self, head: &str, redundant: bool) -> (usize, usize) {
        let mut survived = 0;
        let mut evicted = 0;
        for bucket in self.buckets.values_mut() {
            bucket.retain(|e| {
                if !e.closure.iter().any(|p| p.as_str() == head) {
                    return true;
                }
                if redundant {
                    survived += 1;
                    true
                } else {
                    evicted += 1;
                    false
                }
            });
        }
        self.len -= evicted;
        self.stats.survived += survived as u64;
        self.stats.evicted += evicted as u64;
        (survived, evicted)
    }

    /// Applies a constraint addition mentioning `preds`: evicts every
    /// entry whose closure intersects them (constraint reasoning prunes
    /// describe answers, so any reachable predicate can change the
    /// theorem set). Returns how many entries were evicted.
    pub fn constraint_added(&mut self, preds: &[Sym]) -> usize {
        let mut evicted = 0;
        for bucket in self.buckets.values_mut() {
            bucket.retain(|e| {
                if e.closure.iter().any(|p| preds.contains(p)) {
                    evicted += 1;
                    false
                } else {
                    true
                }
            });
        }
        self.len -= evicted;
        self.stats.evicted += evicted as u64;
        evicted
    }

    /// Drops every entry (counters survive).
    pub fn clear(&mut self) {
        let dropped = self.len;
        self.buckets.clear();
        self.len = 0;
        self.stats.evicted += dropped as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer() -> DescribeAnswer {
        DescribeAnswer::default()
    }

    fn syms(names: &[&str]) -> Vec<Sym> {
        names.iter().map(|n| Sym::new(n)).collect()
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = DescribeCache::new();
        assert!(c.get("p", "describe p|k1").is_none());
        c.insert("p", "describe p|k1".into(), syms(&["p", "q"]), answer());
        assert!(c.get("p", "describe p|k1").is_some());
        assert!(c.get("p", "describe p|k2").is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn rule_on_closure_predicate_evicts() {
        let mut c = DescribeCache::new();
        c.insert("p", "k".into(), syms(&["p", "q"]), answer());
        c.insert("r", "k".into(), syms(&["r"]), answer());
        let (survived, evicted) = c.rule_added("q", false);
        assert_eq!((survived, evicted), (0, 1));
        assert!(c.get("p", "k").is_none());
        assert!(c.get("r", "k").is_some());
    }

    #[test]
    fn subsumed_rule_lets_entries_survive() {
        let mut c = DescribeCache::new();
        c.insert("p", "k".into(), syms(&["p", "q"]), answer());
        let (survived, evicted) = c.rule_added("q", true);
        assert_eq!((survived, evicted), (1, 0));
        assert!(c.get("p", "k").is_some());
    }

    #[test]
    fn constraint_evicts_intersecting_closures() {
        let mut c = DescribeCache::new();
        c.insert("p", "k".into(), syms(&["p", "q"]), answer());
        c.insert("r", "k".into(), syms(&["r"]), answer());
        assert_eq!(c.constraint_added(&syms(&["q"])), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut c = DescribeCache::new();
        for i in 0..(MAX_ENTRIES + 10) {
            c.insert("p", format!("k{i}"), syms(&["p"]), answer());
        }
        assert!(c.len() <= MAX_ENTRIES);
    }
}
