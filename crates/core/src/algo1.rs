//! Algorithm 1 (§4, Figure 1): knowledge answers in the non-recursive
//! case.
//!
//! This is a thin entry point over the shared derivation-tree enumeration
//! of [`crate::describe::run`]: no rule transformation and no typing
//! checks — exactly the flowchart of Figure 1. On subjects that are
//! recursive (or depend on a recursive predicate) this algorithm exhibits
//! the §5.1 failure modes; [`run_unchecked`] exists precisely to
//! demonstrate them under a budget or depth bound (Examples 6–8), while
//! [`run`] rejects such subjects the way §4 scopes the algorithm.

use crate::config::DescribeOptions;
use crate::describe::{self, Describe};
use crate::error::{DescribeError, Result};
use crate::transform::TransformedIdb;
use crate::DescribeAnswer;
use qdk_engine::graph::DependencyGraph;
use qdk_engine::Idb;

/// Runs Algorithm 1. Errors with [`DescribeError::UnsupportedIdb`] if the
/// subject is recursive or depends on a recursive predicate (§4's scope).
pub fn run(idb: &Idb, query: &Describe, opts: &DescribeOptions) -> Result<DescribeAnswer> {
    query.validate(idb)?;
    let graph = DependencyGraph::build(idb);
    if graph.involves_recursion(query.subject.pred.as_str()) {
        return Err(DescribeError::UnsupportedIdb(format!(
            "Algorithm 1 requires a non-recursive subject; {} is or depends on a recursive predicate (use Algorithm 2)",
            query.subject.pred
        )));
    }
    let tidb = TransformedIdb::untransformed(idb);
    describe::run(&tidb, query, false, opts)
}

/// Runs Algorithm 1 without the non-recursion scope check — the §5.1
/// demonstrations. Set a work budget or deadline (divergence soft-stops
/// with a [`crate::Completeness::Truncated`] answer carrying the
/// exhaustion diagnostic) or a depth bound (a finite prefix of the
/// infinite answer family is returned, also tagged truncated) in `opts`.
pub fn run_unchecked(
    idb: &Idb,
    query: &Describe,
    opts: &DescribeOptions,
) -> Result<DescribeAnswer> {
    query.validate(idb)?;
    let tidb = TransformedIdb::untransformed(idb);
    describe::run(&tidb, query, false, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::{parse_atom, parse_body, parse_program};

    fn idb(src: &str) -> Idb {
        Idb::from_rules(parse_program(src).unwrap().rules).unwrap()
    }

    fn prior_idb() -> Idb {
        idb("prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).")
    }

    #[test]
    fn rejects_recursive_subject() {
        let q = Describe::new(parse_atom("prior(X, Y)").unwrap(), vec![]);
        let err = run(&prior_idb(), &q, &DescribeOptions::default()).unwrap_err();
        assert!(matches!(err, DescribeError::UnsupportedIdb(_)));
    }

    #[test]
    fn example6_divergence_demonstration_budget() {
        // §5.1: Algorithm 1 on Example 6 generates an infinite answer.
        // The work budget converts the divergence into a truncated answer
        // carrying the structured diagnostic — not an error, not silence.
        let q = Describe::new(
            parse_atom("prior(X, Y)").unwrap(),
            parse_body("prior(databases, Y)").unwrap(),
        );
        // The budget must be smaller than the (finite) guard-bounded walk,
        // so it trips mid-enumeration.
        let a = run_unchecked(
            &prior_idb(),
            &q,
            &DescribeOptions::default().with_work_budget(500),
        )
        .unwrap();
        let e = a.completeness.exhausted().expect("must be truncated");
        assert_eq!(e.resource, crate::governor::Resource::WorkBudget);
        assert_eq!(e.limit, 500);
    }

    #[test]
    fn example6_chain_family_prefix() {
        // With a depth bound instead, the chain family materializes:
        //   prior(X,Y) ← (X = databases)
        //   prior(X,Y) ← prereq(X, databases)
        //   prior(X,Y) ← prereq(X, Z1) ∧ prereq(Z1, databases)  …
        let q = Describe::new(
            parse_atom("prior(X, Y)").unwrap(),
            parse_body("prior(databases, Y)").unwrap(),
        );
        let a = run_unchecked(
            &prior_idb(),
            &q,
            &DescribeOptions::paper().with_max_depth(8),
        )
        .unwrap();
        assert!(a.contains_rendered("prior(X, Y) ← (X = databases)"));
        assert!(a.contains_rendered("prior(X, Y) ← prereq(X, databases)"));
        // The depth bound cut the infinite family: the answer says so.
        assert!(a.is_truncated());
        assert!(
            a.contains_rendered("prior(X, Y) ← prereq(X, Y1) ∧ prereq(Y1, databases)")
                || a.rendered()
                    .iter()
                    .any(|s| s.matches("prereq").count() == 2),
            "{:?}",
            a.rendered()
        );
        // Deeper bound ⇒ strictly more answers: the family is infinite.
        let deeper = run_unchecked(
            &prior_idb(),
            &q,
            &DescribeOptions::paper().with_max_depth(12),
        )
        .unwrap();
        assert!(deeper.len() > a.len());
    }

    #[test]
    fn example8_hangs_demonstration() {
        // §5.1 Example 8: p depends on recursive q; Algorithm 1 "hangs"
        // constructing an infinite derivation tree. The budget converts
        // the hang into an observable truncation.
        let i = idb("p(X, Y) :- q(X, Z), r(Z, Y).\n\
             q(X, Y) :- q(X, Z), s(Z, Y).\n\
             q(X, Y) :- r(X, Y).");
        let q = Describe::new(
            parse_atom("p(X, Y)").unwrap(),
            parse_body("r(a, Y)").unwrap(),
        );
        let a = run_unchecked(&i, &q, &DescribeOptions::default().with_work_budget(500)).unwrap();
        let e = a.completeness.exhausted().expect("must be truncated");
        assert_eq!(e.resource, crate::governor::Resource::WorkBudget);
        assert!(e.spent > e.limit);
    }

    #[test]
    fn nonrecursive_subject_works() {
        let i = idb("honor(X) :- student(X, Y, Z), Z > 3.7.");
        let q = Describe::new(parse_atom("honor(X)").unwrap(), vec![]);
        let a = run(&i, &q, &DescribeOptions::default()).unwrap();
        assert_eq!(a.len(), 1);
    }
}
