//! Knowledge answers.

use crate::governor::Exhausted;
use qdk_logic::{pretty, Rule};
use std::collections::BTreeSet;
use std::fmt;

/// Whether a describe answer covers the full theorem set or was cut short
/// by a resource limit. Truncation is a *reported* outcome, never a silent
/// one: when depth, budget, deadline, fact limits or cancellation stop the
/// enumeration, the answers found so far are returned with the governor's
/// diagnostic attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Completeness {
    /// Every derivable theorem (under the configured policies) is present.
    #[default]
    Complete,
    /// Enumeration stopped early; the attached diagnostic says which
    /// resource ran out and how much was spent.
    Truncated(Exhausted),
}

impl Completeness {
    /// True when the answer was cut short.
    pub fn is_truncated(&self) -> bool {
        matches!(self, Completeness::Truncated(_))
    }

    /// The exhaustion diagnostic, if the answer was cut short.
    pub fn exhausted(&self) -> Option<Exhausted> {
        match self {
            Completeness::Complete => None,
            Completeness::Truncated(e) => Some(*e),
        }
    }
}

/// One theorem `p ← φ` of a knowledge answer, with provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct Theorem {
    /// The theorem itself.
    pub rule: Rule,
    /// Indexes (into the hypothesis conjunction) of the hypothesis
    /// formulas that were identified somewhere in this theorem's
    /// derivation tree. Empty for one-level (plain IDB definition)
    /// answers — §6's observation that unnecessary hypothesis formulas
    /// are simply ignored, and the basis of the `where necessary`
    /// extension.
    pub used_hypothesis: BTreeSet<usize>,
    /// Index of the IDB rule applied at the root of the derivation tree,
    /// or `None` when the subject was identified directly with a
    /// hypothesis formula (the `p ← (X = c)` answers of Example 6).
    pub root_rule: Option<usize>,
    /// True if this is a one-level answer: the IDB rule itself, emitted
    /// because the rule produced no hypothesis-using theorem (Figure 1,
    /// box 19).
    pub one_level: bool,
    /// The derivation tree that produced this theorem, flattened
    /// depth-first: one line per rule application or hypothesis
    /// identification (Figure 1's tree, as provenance).
    pub derivation: Vec<String>,
}

impl Theorem {
    /// True if the theorem's derivation used at least one hypothesis
    /// formula.
    pub fn uses_hypothesis(&self) -> bool {
        !self.used_hypothesis.is_empty()
    }

    /// Renders the theorem with its derivation tree — "how do you know?".
    pub fn explain(&self) -> String {
        let mut out = format!("{self}\n");
        if self.derivation.is_empty() {
            out.push_str("  (definition)\n");
        }
        for step in &self.derivation {
            out.push_str("  ");
            out.push_str(step);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Theorem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&pretty::answer_rule(&self.rule))
    }
}

/// The answer to a `describe` query: a set of theorems `p ← φ` logically
/// derived under the hypothesis, free of redundancies (§3.2).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DescribeAnswer {
    /// The theorems, in generation order after redundancy elimination.
    pub theorems: Vec<Theorem>,
    /// True if every candidate answer was discarded because its
    /// comparisons contradicted the hypothesis — the paper's special
    /// answer indicating that *the hypothesis in the query contradicts
    /// the IDB* (§4).
    pub hypothesis_contradicts_idb: bool,
    /// Whether the theorem set is complete or was truncated by a resource
    /// limit.
    pub completeness: Completeness,
}

impl DescribeAnswer {
    /// Number of theorems.
    pub fn len(&self) -> usize {
        self.theorems.len()
    }

    /// True if the answer has no theorems (and no contradiction flag).
    pub fn is_empty(&self) -> bool {
        self.theorems.is_empty() && !self.hypothesis_contradicts_idb
    }

    /// True when enumeration stopped early on a resource limit.
    pub fn is_truncated(&self) -> bool {
        self.completeness.is_truncated()
    }

    /// The theorems as plain rules.
    pub fn rules(&self) -> Vec<Rule> {
        self.theorems.iter().map(|t| t.rule.clone()).collect()
    }

    /// Canonical renderings (paper notation, friendly variables), sorted —
    /// a stable form for tests and experiment records.
    pub fn rendered(&self) -> Vec<String> {
        let mut v: Vec<String> = self.theorems.iter().map(ToString::to_string).collect();
        v.sort();
        v
    }

    /// True if some theorem renders (canonically) exactly as `expected`.
    pub fn contains_rendered(&self, expected: &str) -> bool {
        self.theorems.iter().any(|t| t.to_string() == expected)
    }
}

impl fmt::Display for DescribeAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hypothesis_contradicts_idb {
            return writeln!(f, "the hypothesis contradicts the IDB");
        }
        if self.theorems.is_empty() {
            if let Completeness::Truncated(e) = self.completeness {
                return writeln!(f, "no theorems found before truncation ({e})");
            }
            return writeln!(f, "no theorems derivable");
        }
        for t in &self.theorems {
            writeln!(f, "{t}")?;
        }
        if let Completeness::Truncated(e) = self.completeness {
            writeln!(f, "-- truncated: {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_logic::parser::parse_rule;

    fn theorem(src: &str, used: &[usize]) -> Theorem {
        Theorem {
            rule: parse_rule(src).unwrap(),
            used_hypothesis: used.iter().copied().collect(),
            root_rule: Some(0),
            one_level: used.is_empty(),
            derivation: Vec::new(),
        }
    }

    #[test]
    fn display_uses_paper_notation() {
        let t = theorem("honor(X) :- student(X, Y, Z), Z > 3.7.", &[]);
        assert_eq!(t.to_string(), "honor(X) ← student(X, Y, Z) ∧ (Z > 3.7)");
    }

    #[test]
    fn contradiction_answer_renders_specially() {
        let a = DescribeAnswer {
            theorems: vec![],
            hypothesis_contradicts_idb: true,
            completeness: Completeness::Complete,
        };
        assert!(a.to_string().contains("contradicts"));
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_answer() {
        let a = DescribeAnswer::default();
        assert!(a.is_empty());
        assert!(a.to_string().contains("no theorems"));
    }

    #[test]
    fn provenance_accessors() {
        let t = theorem("p(X) :- q(X).", &[1]);
        assert!(t.uses_hypothesis());
        let u = theorem("p(X) :- q(X).", &[]);
        assert!(!u.uses_hypothesis());
    }

    #[test]
    fn rendered_is_sorted_and_stable() {
        let a = DescribeAnswer {
            theorems: vec![theorem("p(X) :- r(X).", &[]), theorem("p(X) :- q(X).", &[])],
            hypothesis_contradicts_idb: false,
            completeness: Completeness::Complete,
        };
        assert_eq!(a.rendered(), vec!["p(X) ← q(X)", "p(X) ← r(X)"]);
        assert!(a.contains_rendered("p(X) ← q(X)"));
        assert!(!a.contains_rendered("p(X) ← s(X)"));
    }
}
