//! The §6 `compare` statement.
//!
//! ```text
//! compare (describe p₁ where ψ₁) with (describe p₂ where ψ₂)
//! ```
//!
//! "The answer should elucidate the maximal shared concept (if it is
//! empty then the two concepts are unrelated; if it is equal to one of
//! the given concepts, then one concept subsumes the other)."
//!
//! Concepts are compared on their extensional expansions: each subject is
//! unfolded to DNF (hypothesis atoms conjoined), the second concept's head
//! variables are aligned with the first's positionally, and the
//! relationship is classified by semantic subsumption in both directions;
//! otherwise the maximal shared literal set of the best-matching pair of
//! conjuncts is reported, together with each side's residue — the
//! "difference between an honor student and a Dean's-List student".

use crate::config::DescribeOptions;
use crate::describe::Describe;
use crate::error::{DescribeError, Result};
use crate::expand::{expand_conjunction, Conjunct};
use crate::redundancy::semantic_subsumes;
use qdk_logic::{Atom, Literal, Rule, Subst, Term};
use std::fmt;

/// The relationship between two compared concepts.
#[derive(Clone, Debug, PartialEq)]
pub enum Relationship {
    /// The concepts are equivalent.
    Equivalent,
    /// The first concept subsumes (is more general than) the second.
    FirstSubsumesSecond,
    /// The second concept subsumes the first.
    SecondSubsumesFirst,
    /// The concepts overlap: a nonempty maximal shared concept exists.
    Overlapping,
    /// No shared concept: the concepts are unrelated.
    Unrelated,
}

/// The answer to a `compare` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct CompareAnswer {
    /// The classified relationship.
    pub relationship: Relationship,
    /// The maximal shared concept (literals common to the best pair of
    /// definitions), empty when unrelated.
    pub shared: Vec<Literal>,
    /// Literals only in the first concept's definition.
    pub only_first: Vec<Literal>,
    /// Literals only in the second concept's definition.
    pub only_second: Vec<Literal>,
}

impl fmt::Display for CompareAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.relationship {
            Relationship::Equivalent => writeln!(f, "the concepts are equivalent")?,
            Relationship::FirstSubsumesSecond => {
                writeln!(f, "the first concept subsumes the second")?
            }
            Relationship::SecondSubsumesFirst => {
                writeln!(f, "the second concept subsumes the first")?
            }
            Relationship::Overlapping => writeln!(f, "the concepts overlap")?,
            Relationship::Unrelated => return writeln!(f, "the concepts are unrelated"),
        }
        let render = |lits: &[Literal]| {
            lits.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ∧ ")
        };
        if !self.shared.is_empty() {
            writeln!(f, "shared concept: {}", render(&self.shared))?;
        }
        if !self.only_first.is_empty() {
            writeln!(f, "only the first requires: {}", render(&self.only_first))?;
        }
        if !self.only_second.is_empty() {
            writeln!(f, "only the second requires: {}", render(&self.only_second))?;
        }
        Ok(())
    }
}

/// Evaluates `compare (describe p₁ where ψ₁) with (describe p₂ where ψ₂)`.
pub fn compare(
    idb: &qdk_engine::Idb,
    first: &Describe,
    second: &Describe,
    opts: &DescribeOptions,
) -> Result<CompareAnswer> {
    first.validate(idb)?;
    second.validate(idb)?;
    if first.subject.arity() != second.subject.arity() {
        return Err(DescribeError::UnsupportedIdb(format!(
            "compared concepts must have equal arity: {} vs {}",
            first.subject, second.subject
        )));
    }

    // Align the second subject's variables with the first's positionally.
    let align: Subst = second
        .subject
        .args
        .iter()
        .zip(&first.subject.args)
        .filter_map(|(from, to)| match (from, to) {
            (Term::Var(v), t) => Some((v.clone(), t.clone())),
            _ => None,
        })
        .collect();

    let d1 = definitions(idb, first, opts)?;
    let d2: Vec<Conjunct> = definitions(idb, second, opts)?
        .into_iter()
        .map(|c| c.iter().map(|l| align.apply_literal(l)).collect())
        .collect();

    // Subsumption of DNFs: D ≤ D' when every conjunct of D is subsumed by
    // some conjunct of D' (then D implies D', i.e. D' is more general).
    let head = Atom::new("_cmp", first.subject.args.clone());
    let as_rule = |c: &Conjunct| Rule::with_literals(head.clone(), c.clone());
    let dnf_le = |specific: &[Conjunct], general: &[Conjunct]| {
        specific.iter().all(|cs| {
            general
                .iter()
                .any(|cg| semantic_subsumes(&as_rule(cg), &as_rule(cs), &[]))
        })
    };
    let first_ge_second = dnf_le(&d2, &d1); // first subsumes second
    let second_ge_first = dnf_le(&d1, &d2);

    // Maximal shared concept over the best pair of conjuncts.
    let mut best: (usize, Vec<Literal>, Vec<Literal>, Vec<Literal>) =
        (0, Vec::new(), Vec::new(), Vec::new());
    for c1 in &d1 {
        for c2 in &d2 {
            let (shared, r1, r2) = shared_concept(c1, c2);
            if shared.len() > best.0 || (best.0 == 0 && best.1.is_empty()) {
                best = (shared.len(), shared, r1, r2);
            }
        }
    }
    let (_, shared, only_first, only_second) = best;

    let relationship = match (first_ge_second, second_ge_first) {
        (true, true) => Relationship::Equivalent,
        (true, false) => Relationship::FirstSubsumesSecond,
        (false, true) => Relationship::SecondSubsumesFirst,
        (false, false) if shared.is_empty() => Relationship::Unrelated,
        _ => Relationship::Overlapping,
    };

    // Canonicalize the three literal lists jointly (one renaming scope) so
    // machine-generated variables don't leak into the report.
    let sizes = (shared.len(), only_first.len());
    let mut all = shared;
    all.extend(only_first);
    all.extend(only_second);
    let canonical = qdk_logic::pretty::canonicalize_rule(&Rule::with_literals(
        Atom::new("_cmp", first.subject.args.clone()),
        all,
    ));
    let mut body = canonical.body;
    let only_second = body.split_off(sizes.0 + sizes.1);
    let only_first = body.split_off(sizes.0);
    let shared = body;

    Ok(CompareAnswer {
        relationship,
        shared,
        only_first,
        only_second,
    })
}

/// The concept of a describe statement: the subject's expansions with the
/// hypothesis atoms conjoined.
fn definitions(
    idb: &qdk_engine::Idb,
    d: &Describe,
    opts: &DescribeOptions,
) -> Result<Vec<Conjunct>> {
    let mut atoms = vec![d.subject.clone()];
    atoms.extend(d.hypothesis.iter().map(|l| l.atom.clone()));
    // Expand the subject (and any IDB hypothesis atoms) together so shared
    // variables stay shared; drop the leading subject occurrence from each
    // result? The subject is IDB-defined, so expansion replaces it.
    expand_conjunction(idb, &atoms, opts)
}

/// Greedy maximal common literal set between two conjuncts: repeatedly
/// unifies a literal of `c1` with one of `c2` under a threaded
/// substitution, then reports residues. The shared concept is the
/// unified (most general common) form.
fn shared_concept(c1: &Conjunct, c2: &Conjunct) -> (Vec<Literal>, Vec<Literal>, Vec<Literal>) {
    let mut shared = Vec::new();
    let mut used2 = vec![false; c2.len()];
    let mut subst = Subst::new();
    let mut residue1 = Vec::new();
    for l1 in c1 {
        let mut matched = false;
        for (j, l2) in c2.iter().enumerate() {
            if used2[j] || l1.positive != l2.positive {
                continue;
            }
            let a1 = subst.apply_atom(&l1.atom);
            let a2 = subst.apply_atom(&l2.atom);
            if let Some(mgu) = qdk_logic::unify_atoms(&a1, &a2) {
                shared.push(Literal {
                    positive: l1.positive,
                    atom: mgu.apply_atom(&a1),
                });
                used2[j] = true;
                subst = subst.compose(&mgu);
                matched = true;
                break;
            }
        }
        if !matched {
            residue1.push(subst.apply_literal(l1));
        }
    }
    let residue2: Vec<Literal> = c2
        .iter()
        .zip(&used2)
        .filter(|(_, used)| !**used)
        .map(|(l, _)| subst.apply_literal(l))
        .collect();
    (shared, residue1, residue2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_engine::Idb;
    use qdk_logic::parser::{parse_atom, parse_program};

    fn idb() -> Idb {
        Idb::from_rules(
            parse_program(
                "honor(X) :- student(X, Y, Z), Z > 3.7.\n\
                 deans_list(X) :- student(X, Y, Z), Z > 3.9.\n\
                 athlete(X) :- plays(X, S).\n\
                 top_math(X) :- student(X, math, Z), Z > 3.7.",
            )
            .unwrap()
            .rules,
        )
        .unwrap()
    }

    fn d(subject: &str) -> Describe {
        Describe::new(parse_atom(subject).unwrap(), vec![])
    }

    #[test]
    fn honor_subsumes_deans_list() {
        // The introduction's fourth query: the difference between an honor
        // student and a Dean's-List student. Dean's List requires a higher
        // GPA, so honor subsumes it.
        let a = compare(
            &idb(),
            &d("honor(X)"),
            &d("deans_list(X)"),
            &DescribeOptions::default(),
        )
        .unwrap();
        assert_eq!(a.relationship, Relationship::FirstSubsumesSecond);
        // The shared concept is the student atom.
        assert!(a.shared.iter().any(|l| l.atom.pred == "student"));
        let shown = a.to_string();
        assert!(shown.contains("subsumes"), "{shown}");
    }

    #[test]
    fn subsumption_direction_flips() {
        let a = compare(
            &idb(),
            &d("deans_list(X)"),
            &d("honor(X)"),
            &DescribeOptions::default(),
        )
        .unwrap();
        assert_eq!(a.relationship, Relationship::SecondSubsumesFirst);
    }

    #[test]
    fn concept_is_equivalent_to_itself() {
        let a = compare(
            &idb(),
            &d("honor(X)"),
            &d("honor(A)"),
            &DescribeOptions::default(),
        )
        .unwrap();
        assert_eq!(a.relationship, Relationship::Equivalent);
    }

    #[test]
    fn unrelated_concepts() {
        let a = compare(
            &idb(),
            &d("honor(X)"),
            &d("athlete(X)"),
            &DescribeOptions::default(),
        )
        .unwrap();
        assert_eq!(a.relationship, Relationship::Unrelated);
        assert!(a.shared.is_empty());
        assert!(a.to_string().contains("unrelated"));
    }

    #[test]
    fn overlapping_concepts_report_differences() {
        // honor vs top_math: same GPA bound, but top_math restricts the
        // major; honor subsumes it. Compare top_math against deans_list
        // instead: neither subsumes (major vs higher GPA) but they share
        // the student atom.
        let a = compare(
            &idb(),
            &d("top_math(X)"),
            &d("deans_list(X)"),
            &DescribeOptions::default(),
        )
        .unwrap();
        assert_eq!(a.relationship, Relationship::Overlapping);
        assert!(!a.shared.is_empty());
        assert!(!a.only_first.is_empty() || !a.only_second.is_empty());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let i = Idb::from_rules(
            parse_program("p(X) :- e(X).\nq(X, Y) :- e2(X, Y).")
                .unwrap()
                .rules,
        )
        .unwrap();
        assert!(compare(
            &i,
            &Describe::new(parse_atom("p(X)").unwrap(), vec![]),
            &Describe::new(parse_atom("q(X, Y)").unwrap(), vec![]),
            &DescribeOptions::default(),
        )
        .is_err());
    }

    #[test]
    fn hypotheses_join_the_concepts() {
        // compare (honor where plays(X, S)) with (athlete where ...):
        // hypothesis atoms become part of the concept.
        let a = compare(
            &idb(),
            &Describe::new(
                parse_atom("athlete(X)").unwrap(),
                qdk_logic::parser::parse_body("student(X, M, G)").unwrap(),
            ),
            &Describe::new(parse_atom("honor(X)").unwrap(), vec![]),
            &DescribeOptions::default(),
        )
        .unwrap();
        // Now the concepts share the student atom.
        assert_ne!(a.relationship, Relationship::Unrelated);
    }
}
