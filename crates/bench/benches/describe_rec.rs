//! E6/E7/E8 — the paper's recursive knowledge queries (§5): Algorithm 1's
//! failure modes against Algorithm 2's bounded evaluation, plus the F2 tag
//! discipline. The *shape* reproduced: Algorithm 1 diverges (its work is
//! measured up to a budget, and its answer-family size grows with the
//! depth bound), while Algorithm 2 terminates in microseconds regardless.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdk_core::{algo1, algo2, Describe, DescribeOptions, TransformPolicy};
use qdk_engine::Idb;
use qdk_logic::parser::{parse_atom, parse_body, parse_program};
use std::hint::black_box;

fn prior_idb() -> Idb {
    Idb::from_rules(
        parse_program(
            "prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
        )
        .unwrap()
        .rules,
    )
    .unwrap()
}

fn example6_query() -> Describe {
    Describe::new(
        parse_atom("prior(X, Y)").unwrap(),
        parse_body("prior(databases, Y)").unwrap(),
    )
}

/// E6, Algorithm 2: terminating evaluation under both transformations.
fn e6_algorithm2(c: &mut Criterion) {
    let idb = prior_idb();
    let q = example6_query();
    let mut group = c.benchmark_group("e6_algorithm2");
    for (name, policy) in [
        ("modified", TransformPolicy::PreferModified),
        ("artificial", TransformPolicy::AlwaysArtificial),
    ] {
        let opts = DescribeOptions::paper().with_transform(policy);
        group.bench_function(name, |b| {
            b.iter(|| black_box(algo2::run(&idb, &q, &opts).unwrap()))
        });
    }
    group.finish();
}

/// E6, Algorithm 1 under a depth bound: cost (and answer count) grows
/// with the bound — the finite prefix of the infinite answer family.
fn e6_algorithm1_depth_sweep(c: &mut Criterion) {
    let idb = prior_idb();
    let q = example6_query();
    let mut group = c.benchmark_group("e6_algorithm1_depth");
    for depth in [4usize, 8, 12, 16] {
        let opts = DescribeOptions::paper().with_max_depth(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| black_box(algo1::run_unchecked(&idb, &q, &opts).unwrap()))
        });
    }
    group.finish();
}

/// E7: the typed query — Algorithm 2 terminates and rejects the unsound
/// substitutions.
fn e7_typing(c: &mut Criterion) {
    let idb = prior_idb();
    let q = Describe::new(
        parse_atom("prior(X, Y)").unwrap(),
        parse_body("prior(X, databases)").unwrap(),
    );
    let opts = DescribeOptions::paper();
    c.bench_function("e7_algorithm2_typing", |b| {
        b.iter(|| black_box(algo2::run(&idb, &q, &opts).unwrap()))
    });
}

/// E8: the indirectly recursive subject that made Algorithm 1 hang.
fn e8_indirect_recursion(c: &mut Criterion) {
    let idb = Idb::from_rules(
        parse_program(
            "p(X, Y) :- q(X, Z), r(Z, Y).\n\
             q(X, Y) :- q(X, Z), s(Z, Y).\n\
             q(X, Y) :- r(X, Y).",
        )
        .unwrap()
        .rules,
    )
    .unwrap();
    let q = Describe::new(
        parse_atom("p(X, Y)").unwrap(),
        parse_body("r(a, Y)").unwrap(),
    );
    let mut group = c.benchmark_group("e8");
    let opts2 = DescribeOptions::paper();
    group.bench_function("algorithm2", |b| {
        b.iter(|| black_box(algo2::run(&idb, &q, &opts2).unwrap()))
    });
    // Algorithm 1's hang, made measurable: work done before a fixed
    // budget truncates it. The budget (not completion) bounds the time.
    let opts1 = DescribeOptions::paper().with_work_budget(2_000);
    group.bench_function("algorithm1_hang_to_budget", |b| {
        b.iter(|| {
            let r = algo1::run_unchecked(&idb, &q, &opts1).unwrap();
            debug_assert!(r.is_truncated());
            black_box(r)
        })
    });
    group.finish();
}

/// The untyped-rule control (§6, introduction's symmetric-reachability
/// question) on the routing IDB.
fn symmetric_reachability(c: &mut Criterion) {
    let idb = Idb::from_rules(
        parse_program(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).\n\
             reach(X, Y) :- reach(Y, X).",
        )
        .unwrap()
        .rules,
    )
    .unwrap();
    let q = Describe::new(
        parse_atom("reach(X, Y)").unwrap(),
        parse_body("reach(Y, X)").unwrap(),
    );
    let opts = DescribeOptions::paper();
    c.bench_function("q4_symmetric_reachability", |b| {
        b.iter(|| black_box(algo2::run(&idb, &q, &opts).unwrap()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = e6_algorithm2, e6_algorithm1_depth_sweep, e7_typing, e8_indirect_recursion,
        symmetric_reachability
);
criterion_main!(benches);
