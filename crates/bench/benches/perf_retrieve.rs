//! P1 — retrieve-strategy scaling. Not a table in the paper (its
//! evaluation is qualitative); this sweep validates the substrate the
//! paper presumes: semi-naive beats naive with growing EDB size, and the
//! goal-directed strategy wins on constant-bound queries by touching only
//! the relevant slice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qdk_bench::{chain_edb, prior_idb, random_graph_edb};
use qdk_engine::{query, Retrieve, Strategy};
use qdk_logic::parser::parse_atom;
use std::hint::black_box;
use std::time::Duration;

fn strategies() -> [(&'static str, Strategy); 5] {
    [
        ("naive", Strategy::Naive),
        ("seminaive", Strategy::SemiNaive),
        ("topdown", Strategy::TopDown),
        ("magic", Strategy::Magic),
        ("qsq", Strategy::Qsq),
    ]
}

/// Full transitive closure of a chain: the classic semi-naive-vs-naive
/// separation (closure size is quadratic in the chain length).
fn p1_full_closure_chain(c: &mut Criterion) {
    let idb = prior_idb();
    let q = Retrieve::new(parse_atom("prior(X, Y)").unwrap(), vec![]);
    let mut group = c.benchmark_group("p1_full_closure_chain");
    group.measurement_time(Duration::from_secs(4));
    for n in [16usize, 32, 64, 128] {
        let edb = chain_edb(n);
        group.throughput(Throughput::Elements(n as u64));
        for (name, strategy) in strategies() {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| black_box(query::retrieve(&edb, &idb, black_box(&q), strategy).unwrap()))
            });
        }
    }
    group.finish();
}

/// Constant-bound query `prior(c0-ish, Y)` on random graphs: the
/// goal-directed strategy restricts work to the reachable slice.
fn p1_bound_query_random(c: &mut Criterion) {
    let idb = prior_idb();
    let mut group = c.benchmark_group("p1_bound_query_random");
    group.measurement_time(Duration::from_secs(4));
    for edges in [64usize, 128, 256, 512] {
        let nodes = edges / 2;
        let edb = random_graph_edb(nodes, edges, 42);
        let q = Retrieve::new(parse_atom("prior(c0, Y)").unwrap(), vec![]);
        group.throughput(Throughput::Elements(edges as u64));
        for (name, strategy) in strategies() {
            group.bench_with_input(BenchmarkId::new(name, edges), &edges, |b, _| {
                b.iter(|| black_box(query::retrieve(&edb, &idb, black_box(&q), strategy).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = p1_full_closure_chain, p1_bound_query_random
);
criterion_main!(benches);
