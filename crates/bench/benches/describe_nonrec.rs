//! E3/E4/E5 — the paper's non-recursive knowledge queries (§3.2, §4:
//! Algorithm 1 / Figure 1), timed on the §2.2 university database.

use criterion::{criterion_group, criterion_main, Criterion};
use qdk_bench::university;
use qdk_core::Describe;
use qdk_logic::parser::{parse_atom, parse_body};
use std::hint::black_box;

fn e3_describe_can_ta_math(c: &mut Criterion) {
    let kb = university();
    let q = Describe::new(
        parse_atom("can_ta(X, databases)").unwrap(),
        parse_body("student(X, math, V), V > 3.7").unwrap(),
    );
    c.bench_function("e3_describe_can_ta_math", |b| {
        b.iter(|| black_box(kb.describe(black_box(&q)).unwrap()))
    });
}

fn e4_describe_honor(c: &mut Criterion) {
    let kb = university();
    let q = Describe::new(parse_atom("honor(X)").unwrap(), vec![]);
    c.bench_function("e4_describe_honor", |b| {
        b.iter(|| black_box(kb.describe(black_box(&q)).unwrap()))
    });
}

fn e5_describe_can_ta_susan(c: &mut Criterion) {
    let kb = university();
    let q = Describe::new(
        parse_atom("can_ta(X, Y)").unwrap(),
        parse_body("honor(X), teach(susan, Y)").unwrap(),
    );
    c.bench_function("e5_describe_can_ta_susan", |b| {
        b.iter(|| black_box(kb.describe(black_box(&q)).unwrap()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = e3_describe_can_ta_math, e4_describe_honor, e5_describe_can_ta_susan
);
criterion_main!(benches);
