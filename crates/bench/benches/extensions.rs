//! Q1–Q3 and X1–X3 — the introduction's motivating queries and the §6
//! extensions, timed through the unified language on the extended
//! university database.

use criterion::{criterion_group, criterion_main, Criterion};
use qdk_bench::university;
use std::hint::black_box;

fn bench_statement(c: &mut Criterion, id: &str, stmt: &str) {
    let kb = university();
    let parsed = qdk_lang::parser::parse_statement(stmt).unwrap();
    c.bench_function(id, |b| {
        b.iter_batched(
            || kb.clone(),
            |mut kb| black_box(kb.execute(black_box(&parsed)).unwrap()),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn q1_must_foreign_be_married(c: &mut Criterion) {
    bench_statement(
        c,
        "q1_must_foreign_be_married",
        "describe where foreign(X) and unmarried(X).",
    );
}

fn q2_could_honor_be_foreign(c: &mut Criterion) {
    bench_statement(
        c,
        "q2_could_honor_be_foreign",
        "describe where honor(X) and foreign(X).",
    );
}

fn q2b_low_gpa_ta_impossible(c: &mut Criterion) {
    bench_statement(
        c,
        "q2b_low_gpa_ta_impossible",
        "describe where student(X, Y, Z) and Z < 3.5 and can_ta(X, U).",
    );
}

fn q3_compare_honor_deans_list(c: &mut Criterion) {
    bench_statement(
        c,
        "q3_compare_honor_deans_list",
        "compare (describe honor(X)) with (describe deans_list(X)).",
    );
}

fn x1_where_necessary(c: &mut Criterion) {
    bench_statement(
        c,
        "x1_where_necessary",
        "describe can_ta(X, Y) where necessary honor(X) and teach(susan, Y).",
    );
}

fn x2_negated_hypothesis(c: &mut Criterion) {
    bench_statement(
        c,
        "x2_negated_hypothesis",
        "describe can_ta(X, Y) where not honor(X).",
    );
}

fn x3_wildcard(c: &mut Criterion) {
    bench_statement(c, "x3_wildcard", "describe * where honor(X).");
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = q1_must_foreign_be_married, q2_could_honor_be_foreign,
        q2b_low_gpa_ta_impossible, q3_compare_honor_deans_list,
        x1_where_necessary, x2_negated_hypothesis, x3_wildcard
);
criterion_main!(benches);
