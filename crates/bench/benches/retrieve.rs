//! E1/E2 — the paper's data queries (§3.1, Examples 1–2), timed per
//! evaluation strategy on the §2.2 university database.

use criterion::{criterion_group, criterion_main, Criterion};
use qdk_bench::university;
use qdk_engine::{Retrieve, Strategy};
use qdk_logic::parser::{parse_atom, parse_body};
use std::hint::black_box;

fn strategies() -> [(&'static str, Strategy); 4] {
    [
        ("naive", Strategy::Naive),
        ("seminaive", Strategy::SemiNaive),
        ("topdown", Strategy::TopDown),
        ("qsq", Strategy::Qsq),
    ]
}

fn e1_retrieve_honor_enrolled(c: &mut Criterion) {
    let kb = university();
    let q = Retrieve::new(
        parse_atom("honor(X)").unwrap(),
        parse_body("enroll(X, databases)").unwrap(),
    );
    let mut group = c.benchmark_group("e1_retrieve_honor_enrolled");
    for (name, strategy) in strategies() {
        let kb = kb.clone().with_strategy(strategy);
        group.bench_function(name, |b| {
            b.iter(|| black_box(kb.retrieve(black_box(&q)).unwrap()))
        });
    }
    group.finish();
}

fn e2_retrieve_fresh_answer(c: &mut Criterion) {
    let kb = university();
    let q = Retrieve::new(
        parse_atom("answer(X)").unwrap(),
        parse_body("can_ta(X, databases), student(X, math, V), V > 3.7").unwrap(),
    );
    let mut group = c.benchmark_group("e2_retrieve_fresh_answer");
    for (name, strategy) in strategies() {
        let kb = kb.clone().with_strategy(strategy);
        group.bench_function(name, |b| {
            b.iter(|| black_box(kb.retrieve(black_box(&q)).unwrap()))
        });
    }
    group.finish();
}

fn recursive_retrieve_prior(c: &mut Criterion) {
    let kb = university();
    let q = Retrieve::new(parse_atom("prior(databases, Y)").unwrap(), vec![]);
    let mut group = c.benchmark_group("retrieve_prior_databases");
    for (name, strategy) in strategies() {
        let kb = kb.clone().with_strategy(strategy);
        group.bench_function(name, |b| {
            b.iter(|| black_box(kb.retrieve(black_box(&q)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = e1_retrieve_honor_enrolled, e2_retrieve_fresh_answer, recursive_retrieve_prior
);
criterion_main!(benches);
