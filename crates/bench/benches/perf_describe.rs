//! P2/P3/A1/A2 — describe-engine scaling and ablations.
//!
//! * P2: Algorithm 1 latency versus IDB rule-tower depth and fan-out, and
//!   versus hypothesis size;
//! * P3: Algorithm 2 transformation policies (modified vs artificial) and
//!   the cost of recursion handling relative to a non-recursive baseline;
//! * A1: the §4 comparison post-processing on/off;
//! * A2: redundancy elimination on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdk_bench::{redundant_idb, tower_hypothesis, tower_idb, university};
use qdk_core::{algo2, describe, Describe, DescribeOptions, TransformPolicy};
use qdk_engine::Idb;
use qdk_logic::parser::{parse_atom, parse_body, parse_program};
use std::hint::black_box;
use std::time::Duration;

/// P2a: latency vs tower depth (fan-out fixed at 2).
fn p2_depth_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_describe_vs_depth");
    group.measurement_time(Duration::from_secs(3));
    for depth in [2usize, 4, 6, 8] {
        let idb = tower_idb(depth, 2);
        let q = Describe::new(parse_atom("p0(X)").unwrap(), tower_hypothesis(depth));
        let opts = DescribeOptions::paper();
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| black_box(describe::describe(&idb, &q, &opts).unwrap()))
        });
    }
    group.finish();
}

/// P2b: latency vs fan-out (depth fixed at 4).
fn p2_fanout_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2_describe_vs_fanout");
    group.measurement_time(Duration::from_secs(3));
    for fanout in [1usize, 2, 3, 4] {
        let idb = tower_idb(4, fanout);
        let q = Describe::new(parse_atom("p0(X)").unwrap(), tower_hypothesis(4));
        let opts = DescribeOptions::paper();
        group.bench_with_input(BenchmarkId::from_parameter(fanout), &fanout, |b, _| {
            b.iter(|| black_box(describe::describe(&idb, &q, &opts).unwrap()))
        });
    }
    group.finish();
}

/// P2c: latency vs hypothesis size on the university database.
fn p2_hypothesis_sweep(c: &mut Criterion) {
    let kb = university();
    let hyps = [
        "honor(X)",
        "honor(X), teach(susan, Y)",
        "honor(X), teach(susan, Y), complete(X, Y, S, G)",
        "honor(X), teach(susan, Y), complete(X, Y, S, G), G > 3.0",
    ];
    let mut group = c.benchmark_group("p2_describe_vs_hypothesis_size");
    for (i, h) in hyps.iter().enumerate() {
        let q = Describe::new(parse_atom("can_ta(X, Y)").unwrap(), parse_body(h).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(i + 1), &i, |b, _| {
            b.iter(|| black_box(kb.describe(black_box(&q)).unwrap()))
        });
    }
    group.finish();
}

/// P3: transformation policies on the recursive Example 6 query.
fn p3_transform_policies(c: &mut Criterion) {
    let idb = Idb::from_rules(
        parse_program(
            "prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
        )
        .unwrap()
        .rules,
    )
    .unwrap();
    let q = Describe::new(
        parse_atom("prior(X, Y)").unwrap(),
        parse_body("prior(databases, Y)").unwrap(),
    );
    let mut group = c.benchmark_group("p3_transform_policy");
    for (name, policy) in [
        ("modified", TransformPolicy::PreferModified),
        ("artificial", TransformPolicy::AlwaysArtificial),
    ] {
        let opts = DescribeOptions::paper().with_transform(policy);
        group.bench_function(name, |b| {
            b.iter(|| black_box(algo2::run(&idb, &q, &opts).unwrap()))
        });
    }
    group.finish();
}

/// A1: comparison post-processing on/off (Example 3, whose answers carry
/// comparisons the hypothesis implies).
fn a1_comparison_postprocessing(c: &mut Criterion) {
    let kb = university();
    let q = Describe::new(
        parse_atom("can_ta(X, databases)").unwrap(),
        parse_body("student(X, math, V), V > 3.7").unwrap(),
    );
    let mut group = c.benchmark_group("a1_comparison_postprocessing");
    for (name, simplify) in [("on", true), ("off", false)] {
        let mut opts = DescribeOptions::paper();
        opts.simplify_comparisons = simplify;
        let idb = kb.idb().clone();
        group.bench_function(name, |b| {
            b.iter(|| black_box(describe::describe(&idb, &q, &opts).unwrap()))
        });
    }
    group.finish();
}

/// A2: redundancy elimination on/off (threshold-shifted rules that all
/// collapse to the weakest under comparison-aware subsumption).
fn a2_redundancy_elimination(c: &mut Criterion) {
    let idb = redundant_idb(12);
    let q = Describe::new(parse_atom("p0(X)").unwrap(), vec![]);
    let mut group = c.benchmark_group("a2_redundancy_elimination");
    for (name, dedup) in [("on", true), ("off", false)] {
        let mut opts = DescribeOptions::paper();
        opts.remove_redundant = dedup;
        group.bench_function(name, |b| {
            b.iter(|| black_box(describe::describe(&idb, &q, &opts).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = p2_depth_sweep, p2_fanout_sweep, p2_hypothesis_sweep,
        p3_transform_policies, a1_comparison_postprocessing, a2_redundancy_elimination
);
criterion_main!(benches);
