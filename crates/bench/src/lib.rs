//! Workload generators for the benchmark harness.
//!
//! Each generator corresponds to a workload named in DESIGN.md §7 /
//! EXPERIMENTS.md: the paper's university database, prerequisite chains
//! and random graphs for the recursive experiments, and synthetic rule
//! towers for the describe-latency sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qdk_engine::Idb;
use qdk_logic::parser::{parse_atom, parse_program};
use qdk_logic::{Atom, Rule, Term};
use qdk_storage::Edb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A prerequisite chain `c1 → c0, c2 → c1, …` of `n` edges.
pub fn chain_edb(n: usize) -> Edb {
    let mut edb = Edb::new();
    edb.declare("prereq", &["Ctitle", "Ptitle"]).unwrap();
    for i in 0..n {
        edb.insert_fact(&parse_atom(&format!("prereq(c{}, c{})", i + 1, i)).unwrap())
            .unwrap();
    }
    edb
}

/// A random directed graph over `nodes` vertices with `edges` edges
/// (duplicates collapse), deterministic per `seed`.
pub fn random_graph_edb(nodes: usize, edges: usize, seed: u64) -> Edb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edb = Edb::new();
    edb.declare("prereq", &["Ctitle", "Ptitle"]).unwrap();
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        edb.insert_fact(&parse_atom(&format!("prereq(c{a}, c{b})")).unwrap())
            .unwrap();
    }
    edb
}

/// The transitive-closure IDB over `prereq` (the paper's `prior`).
pub fn prior_idb() -> Idb {
    Idb::from_rules(
        parse_program(
            "prior(X, Y) :- prereq(X, Y).\n\
             prior(X, Y) :- prereq(X, Z), prior(Z, Y).",
        )
        .unwrap()
        .rules,
    )
    .unwrap()
}

/// A join-heavy IDB over `prereq`: `triangle` closes a directed 3-cycle
/// and `path3` composes three hops. Both rules are multi-literal joins
/// whose cost is dominated by literal order and index choice, so they
/// exercise the selectivity-ordered planner harder than the closure
/// workloads do.
pub fn join_idb() -> Idb {
    Idb::from_rules(
        parse_program(
            "triangle(X, Y, Z) :- prereq(X, Y), prereq(Y, Z), prereq(Z, X).\n\
             path3(X, W) :- prereq(X, Y), prereq(Y, Z), prereq(Z, W).",
        )
        .unwrap()
        .rules,
    )
    .unwrap()
}

/// The paper's Example 8 program: `p` joins the recursive `q` (a
/// left-linear closure over `s` seeded by `r`) with one more `r` step.
pub fn example8_idb() -> Idb {
    Idb::from_rules(
        parse_program(
            "p(X, Y) :- q(X, Z), r(Z, Y).\n\
             q(X, Y) :- q(X, Z), s(Z, Y).\n\
             q(X, Y) :- r(X, Y).",
        )
        .unwrap()
        .rules,
    )
    .unwrap()
}

/// An EDB for [`example8_idb`]: parallel `r` and `s` chains of `n` edges
/// over the same `n + 1` nodes, so `q` walks the `s` chain from every
/// `r` seed and `p` closes each walk with a final `r` hop.
pub fn example8_edb(n: usize) -> Edb {
    let mut edb = Edb::new();
    edb.declare("r", &["From", "To"]).unwrap();
    edb.declare("s", &["From", "To"]).unwrap();
    for i in 0..n {
        edb.insert_fact(&parse_atom(&format!("r(n{i}, n{})", i + 1)).unwrap())
            .unwrap();
        edb.insert_fact(&parse_atom(&format!("s(n{i}, n{})", i + 1)).unwrap())
            .unwrap();
    }
    edb
}

/// A non-recursive rule tower of the given `depth` and `fanout`:
/// `p0(X) ← p1(X) ∧ e0(X)`, …, with `fanout` alternative rules per level
/// and EDB leaves `e{level}` plus a comparison at the bottom. Derivation
/// trees for `describe p0(X)` grow with both parameters — the P2 sweep.
pub fn tower_idb(depth: usize, fanout: usize) -> Idb {
    let mut idb = Idb::new();
    for level in 0..depth {
        for alt in 0..fanout {
            let head = Atom::new(format!("p{level}").as_str(), vec![Term::var("X")]);
            let mut body = vec![Atom::new(
                format!("e{level}_{alt}").as_str(),
                vec![Term::var("X"), Term::var("V")],
            )];
            if level + 1 < depth {
                body.insert(
                    0,
                    Atom::new(format!("p{}", level + 1).as_str(), vec![Term::var("X")]),
                );
            } else {
                body.push(Atom::new(">", vec![Term::var("V"), Term::num(3.7)]));
            }
            idb.add_rule(Rule::new(head, body)).unwrap();
        }
    }
    idb
}

/// A hypothesis that identifies at the bottom of the tower: the level-
/// `depth-1`, alternative-0 EDB atom.
pub fn tower_hypothesis(depth: usize) -> Vec<qdk_logic::Literal> {
    qdk_logic::parser::parse_body(&format!("e{}_0(X, V), V > 3.7", depth.saturating_sub(1)))
        .unwrap()
}

/// An IDB whose `describe p0(X)` answers are massively redundant: `n`
/// rules differing only in a comparison threshold, so comparison-aware
/// subsumption collapses them to the single weakest rule. The A2
/// ablation's workload.
pub fn redundant_idb(n: usize) -> Idb {
    let mut idb = Idb::new();
    for i in 0..n {
        idb.add_rule(Rule::new(
            Atom::new("p0", vec![Term::var("X")]),
            vec![
                Atom::new("e", vec![Term::var("X"), Term::var("V")]),
                Atom::new(">", vec![Term::var("V"), Term::int(i as i64)]),
            ],
        ))
        .unwrap();
    }
    idb
}

/// The paper's university knowledge base (re-exported for benches).
pub fn university() -> qdk_lang::KnowledgeBase {
    qdk_lang::datasets::university_extended()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdk_engine::seminaive;

    #[test]
    fn chain_has_n_edges() {
        let edb = chain_edb(10);
        assert_eq!(edb.fact_count(), 10);
    }

    #[test]
    fn random_graph_is_deterministic() {
        let a = random_graph_edb(10, 20, 7);
        let b = random_graph_edb(10, 20, 7);
        assert_eq!(a.fact_count(), b.fact_count());
    }

    #[test]
    fn chain_closure_size_is_triangular() {
        let edb = chain_edb(8);
        let derived = seminaive::eval(&edb, &prior_idb()).unwrap();
        assert_eq!(derived.relation("prior").unwrap().len(), 36);
    }

    #[test]
    fn join_idb_finds_triangles_and_three_hop_paths() {
        let mut edb = Edb::new();
        edb.declare("prereq", &["Ctitle", "Ptitle"]).unwrap();
        for (a, b) in [("c0", "c1"), ("c1", "c2"), ("c2", "c0"), ("c2", "c3")] {
            edb.insert_fact(&parse_atom(&format!("prereq({a}, {b})")).unwrap())
                .unwrap();
        }
        let derived = seminaive::eval(&edb, &join_idb()).unwrap();
        // One 3-cycle, seen from each of its three rotations.
        assert_eq!(derived.relation("triangle").unwrap().len(), 3);
        // c0→c1→c2→{c0,c3}, c1→c2→c0→c1, c2→c0→c1→c2.
        assert_eq!(derived.relation("path3").unwrap().len(), 4);
    }

    #[test]
    fn example8_p_closes_every_s_walk() {
        // Over parallel chains of n edges, q(i, j) holds for every i < j
        // (n(n+1)/2 pairs) and p shifts each pair one r-hop further, so it
        // holds exactly for the pairs at distance ≥ 2 ((n-1)n/2 pairs).
        let derived = seminaive::eval(&example8_edb(6), &example8_idb()).unwrap();
        assert_eq!(derived.relation("q").unwrap().len(), 21);
        assert_eq!(derived.relation("p").unwrap().len(), 15);
    }

    #[test]
    fn tower_is_nonrecursive_and_describable() {
        let idb = tower_idb(4, 2);
        assert_eq!(idb.len(), 8);
        let q = qdk_core::Describe::new(parse_atom("p0(X)").unwrap(), tower_hypothesis(4));
        let a = qdk_core::describe(&idb, &q, &qdk_core::DescribeOptions::paper()).unwrap();
        assert!(!a.theorems.is_empty());
        // The hypothesis-using derivation reached the bottom of the tower.
        assert!(a.theorems.iter().any(|t| t.uses_hypothesis()));
    }
}
