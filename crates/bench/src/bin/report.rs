//! Prints the EXPERIMENTS.md series as compact markdown tables, using
//! direct timing (median of repeated runs) rather than Criterion's full
//! statistics — a quick reproduction check — and writes the same series
//! as machine-readable `BENCH_retrieve.json` / `BENCH_describe.json` /
//! `BENCH_obs.json` (the observability overhead guard) /
//! `BENCH_wal.json` (WAL ingest and recovery replay) /
//! `BENCH_concurrency.json` (mixed read/write serving) /
//! `BENCH_churn.json` (incremental view maintenance vs recompute under
//! fact churn). Every row of every artifact carries the same `run_id`,
//! so rows from one invocation can be joined across files.
//!
//! Run with `cargo run --release -p qdk-bench --bin report`.
//!
//! `-- --check` runs the same series and, instead of writing artifacts,
//! compares every fresh median against the committed baselines in
//! `crates/bench/baselines/` (25% tolerance). A fresh median more than
//! 25% slower than its baseline row fails the process — the CI
//! regression guard. To refresh the baselines after intentional
//! performance changes, run the report normally and copy the artifacts:
//! `cp BENCH_retrieve.json crates/bench/baselines/retrieve.json` (same
//! for describe).

use qdk_bench::{
    chain_edb, example8_edb, example8_idb, join_idb, prior_idb, random_graph_edb, redundant_idb,
    tower_hypothesis, tower_idb, university,
};
use qdk_core::{algo1, algo2, describe, Describe, DescribeOptions, TransformPolicy};
use qdk_engine::{query, retrieve_with, EvalOptions, ProgramPlan, Retrieve, Strategy};
use qdk_logic::obs::{NullSink, ObsSink};
use qdk_logic::parser::{parse_atom, parse_body};
use qdk_logic::Parallelism;
use std::sync::Arc;
use std::time::Instant;

/// Median wall time of `runs` executions, in microseconds.
fn median_micros(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::Naive => "naive",
        Strategy::SemiNaive => "semi-naive",
        Strategy::TopDown => "top-down",
        Strategy::Magic => "magic",
        Strategy::Qsq => "qsq",
    }
}

/// All five retrieve strategies, in reporting order.
const STRATEGIES: [Strategy; 5] = [
    Strategy::Naive,
    Strategy::SemiNaive,
    Strategy::TopDown,
    Strategy::Magic,
    Strategy::Qsq,
];

/// Asserts every strategy returns the same answer set for `q` before any
/// timing happens — a wrong-but-fast strategy must fail the bench, not
/// win it. Returns the agreed answer count for the report.
fn assert_strategies_agree(
    edb: &qdk_storage::Edb,
    idb: &qdk_engine::Idb,
    plan: &ProgramPlan,
    q: &Retrieve,
    context: &str,
) -> usize {
    let mut reference: Option<Vec<qdk_storage::Tuple>> = None;
    for strategy in STRATEGIES {
        let rows = query::retrieve_compiled(edb, idb, plan, q, strategy, EvalOptions::default())
            .unwrap()
            .sorted();
        if let Some(expected) = &reference {
            assert_eq!(
                rows.len(),
                expected.len(),
                "{context}: {} returned {} answers, {} returned {}",
                strategy_name(strategy),
                rows.len(),
                strategy_name(STRATEGIES[0]),
                expected.len(),
            );
            assert_eq!(
                &rows,
                expected,
                "{context}: {} disagrees with {}",
                strategy_name(strategy),
                strategy_name(STRATEGIES[0]),
            );
        } else {
            reference = Some(rows);
        }
    }
    reference.map_or(0, |r| r.len())
}

/// One flat JSON object from pre-rendered key/value pairs. Keys and
/// string values here are ASCII identifiers, so no escaping is needed.
fn json_record(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    format!("{{{}}}", body.join(", "))
}

fn json_str(s: &str) -> String {
    format!("\"{s}\"")
}

/// Writes `{ "unit": ..., "run_id": ..., "series": [records...] }` to
/// `path`, tagging every series row with the shared `run_id`.
fn write_json(path: &str, records: &[String], run_id: &str) {
    let mut out = String::from("{\n  \"unit\": \"microseconds (median wall time)\",\n");
    out.push_str(&format!("  \"run_id\": \"{run_id}\",\n"));
    out.push_str("  \"series\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        // Each record is a rendered `{...}` object; splice the run_id in
        // as its first field.
        let tagged = format!("{{\"run_id\": \"{run_id}\", {}", &r[1..]);
        out.push_str(&format!("    {tagged}{sep}\n"));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn p1_full_closure(records: &mut Vec<String>) {
    println!("## P1a — full transitive closure of a chain (µs, median of 5)\n");
    println!("| n (edges) | naive | semi-naive | top-down | magic | qsq |");
    println!("|-----------|-------|------------|----------|-------|-----|");
    let idb = prior_idb();
    let q = Retrieve::new(parse_atom("prior(X, Y)").unwrap(), vec![]);
    for n in [16usize, 32, 64, 128] {
        let edb = chain_edb(n);
        let mut row = format!("| {n} ");
        for strategy in STRATEGIES {
            let us = median_micros(5, || {
                query::retrieve(&edb, &idb, &q, strategy).unwrap();
            });
            row.push_str(&format!("| {us:.0} "));
            records.push(json_record(&[
                ("section", json_str("p1_full_closure")),
                ("workload", json_str("chain")),
                ("n", n.to_string()),
                ("strategy", json_str(strategy_name(strategy))),
                ("micros", format!("{us:.1}")),
            ]));
        }
        println!("{row}|");
    }
    println!();
}

/// Bound queries are served from a compiled plan (the `KnowledgeBase`
/// serving path): the `ProgramPlan` is compiled once per EDB and every
/// strategy is timed through `retrieve_compiled`. Before any timing, all
/// five strategies must return the same answer set — the per-row answer
/// count is reported, and a disagreement aborts the bench.
fn p1_bound_query(records: &mut Vec<String>) {
    println!(
        "## P1b — constant-bound prior(c0, Y) on random graphs, cached plan (µs, median of 15)\n"
    );
    println!("| edges | answers | naive | semi-naive | top-down | magic | qsq |");
    println!("|-------|---------|-------|------------|----------|-------|-----|");
    let idb = prior_idb();
    for edges in [64usize, 128, 256, 512] {
        let edb = random_graph_edb(edges / 2, edges, 42);
        let plan = ProgramPlan::compile_with_stats(&idb, edb.stats());
        let q = Retrieve::new(parse_atom("prior(c0, Y)").unwrap(), vec![]);
        let answers =
            assert_strategies_agree(&edb, &idb, &plan, &q, &format!("p1_bound_query n={edges}"));
        let mut row = format!("| {edges} | {answers} ");
        for strategy in STRATEGIES {
            let us = median_micros(15, || {
                query::retrieve_compiled(&edb, &idb, &plan, &q, strategy, EvalOptions::default())
                    .unwrap();
            });
            row.push_str(&format!("| {us:.0} "));
            records.push(json_record(&[
                ("section", json_str("p1_bound_query")),
                ("workload", json_str("random_graph")),
                ("n", edges.to_string()),
                ("strategy", json_str(strategy_name(strategy))),
                ("micros", format!("{us:.1}")),
            ]));
        }
        println!("{row}|");
    }
    println!();
}

/// Join-heavy workloads on random graphs: the `triangle` 3-cycle query
/// (an unbound 3-way self-join) and the 3-literal `path3(c0, W)` bound
/// query. Both stress the selectivity-ordered planner and the composite
/// indexes rather than fixpoint depth. Served from a plan compiled once
/// per EDB, with cross-strategy answer equality asserted before timing
/// (see [`p1_bound_query`]).
fn j1_join_heavy(records: &mut Vec<String>) {
    println!("## J1 — join-heavy queries on random graphs, cached plan (µs, median of 15)\n");
    println!("| edges | query | answers | naive | semi-naive | top-down | magic | qsq |");
    println!("|-------|-------|---------|-------|------------|----------|-------|-----|");
    let idb = join_idb();
    for edges in [64usize, 128, 256] {
        let edb = random_graph_edb(edges / 2, edges, 42);
        let plan = ProgramPlan::compile_with_stats(&idb, edb.stats());
        for (label, section, q) in [
            (
                "triangle(X,Y,Z)",
                "j1_triangle",
                Retrieve::new(parse_atom("triangle(X, Y, Z)").unwrap(), vec![]),
            ),
            (
                "path3(c0,W)",
                "j1_bound_path3",
                Retrieve::new(parse_atom("path3(c0, W)").unwrap(), vec![]),
            ),
        ] {
            let answers =
                assert_strategies_agree(&edb, &idb, &plan, &q, &format!("{section} n={edges}"));
            let mut row = format!("| {edges} | {label} | {answers} ");
            for strategy in STRATEGIES {
                let us = median_micros(15, || {
                    query::retrieve_compiled(
                        &edb,
                        &idb,
                        &plan,
                        &q,
                        strategy,
                        EvalOptions::default(),
                    )
                    .unwrap();
                });
                row.push_str(&format!("| {us:.0} "));
                records.push(json_record(&[
                    ("section", json_str(section)),
                    ("workload", json_str("random_graph")),
                    ("n", edges.to_string()),
                    ("strategy", json_str(strategy_name(strategy))),
                    ("micros", format!("{us:.1}")),
                ]));
            }
            println!("{row}|");
        }
    }
    println!();
}

/// The compile-then-execute comparison: `query::retrieve` recompiles the
/// program plan on every call (the pre-refactor cost model, and still
/// the one-shot API), while `query::retrieve_compiled` reuses a plan
/// compiled once — the path the `KnowledgeBase` cache takes.
fn compiled_vs_percall(records: &mut Vec<String>) {
    println!("## C1 — cached compiled plan vs per-call compilation (µs, median of 9)\n");
    println!("| workload | strategy | per-call compile | cached plan | cached/per-call |");
    println!("|----------|----------|------------------|-------------|-----------------|");
    let run = |workload: &str,
               edb: &qdk_storage::Edb,
               idb: &qdk_engine::Idb,
               plan: &ProgramPlan,
               q: &Retrieve,
               records: &mut Vec<String>| {
        for strategy in STRATEGIES {
            let per_call = median_micros(9, || {
                query::retrieve(edb, idb, q, strategy).unwrap();
            });
            let cached = median_micros(9, || {
                query::retrieve_compiled(edb, idb, plan, q, strategy, EvalOptions::default())
                    .unwrap();
            });
            println!(
                "| {workload} | {} | {per_call:.0} | {cached:.0} | {:.2} |",
                strategy_name(strategy),
                cached / per_call,
            );
            records.push(json_record(&[
                ("section", json_str("compiled_vs_percall")),
                ("workload", json_str(workload)),
                ("strategy", json_str(strategy_name(strategy))),
                ("per_call_micros", format!("{per_call:.1}")),
                ("cached_micros", format!("{cached:.1}")),
            ]));
        }
    };

    let idb = prior_idb();
    let plan = ProgramPlan::compile(&idb);
    let q = Retrieve::new(parse_atom("prior(X, Y)").unwrap(), vec![]);
    for n in [16usize, 64, 128] {
        let edb = chain_edb(n);
        run(&format!("chain-{n}"), &edb, &idb, &plan, &q, records);
    }

    let idb8 = example8_idb();
    let plan8 = ProgramPlan::compile(&idb8);
    let q8 = Retrieve::new(parse_atom("p(X, Y)").unwrap(), vec![]);
    for n in [16usize, 48] {
        let edb8 = example8_edb(n);
        run(&format!("example8-{n}"), &edb8, &idb8, &plan8, &q8, records);
    }
    println!();
}

/// Worker-count sweep for the fixpoint engines: the chain-128 full
/// closure (the PR 2 baseline workload) at 1/2/4/8 workers. Answers are
/// byte-identical at every count; only latency moves.
fn t1_retrieve_threads(records: &mut Vec<String>) {
    println!("## T1 — retrieve threads sweep, chain-128 full closure (µs, median of 5)\n");
    println!("| workers | naive | semi-naive | top-down | magic | qsq |");
    println!("|---------|-------|------------|----------|-------|-----|");
    let idb = prior_idb();
    let edb = chain_edb(128);
    let q = Retrieve::new(parse_atom("prior(X, Y)").unwrap(), vec![]);
    for workers in [1usize, 2, 4, 8] {
        let mut row = format!("| {workers} ");
        for strategy in STRATEGIES {
            let opts = EvalOptions::default().with_parallelism(Parallelism::workers(workers));
            let us = median_micros(5, || {
                retrieve_with(&edb, &idb, &q, strategy, opts.clone()).unwrap();
            });
            row.push_str(&format!("| {us:.0} "));
            records.push(json_record(&[
                ("section", json_str("t1_threads_sweep")),
                ("workload", json_str("chain")),
                ("n", "128".to_string()),
                ("workers", workers.to_string()),
                ("strategy", json_str(strategy_name(strategy))),
                ("micros", format!("{us:.1}")),
            ]));
        }
        println!("{row}|");
    }
    println!();
}

/// Worker-count sweep for derivation-tree enumeration: the depth-8
/// fan-out-2 rule tower (the PR 2 baseline workload) at 1/2/4/8 workers.
fn t2_describe_threads(records: &mut Vec<String>) {
    println!("## T2 — describe threads sweep, tower depth 8 fan-out 2 (µs, median of 9)\n");
    println!("| workers | µs | theorems |");
    println!("|---------|----|----------|");
    let idb = tower_idb(8, 2);
    let q = Describe::new(parse_atom("p0(X)").unwrap(), tower_hypothesis(8));
    for workers in [1usize, 2, 4, 8] {
        let opts = DescribeOptions::paper().with_parallelism(Parallelism::workers(workers));
        let answers = describe::describe(&idb, &q, &opts).unwrap();
        let us = median_micros(9, || {
            describe::describe(&idb, &q, &opts).unwrap();
        });
        println!("| {workers} | {us:.0} | {} |", answers.len());
        records.push(json_record(&[
            ("section", json_str("t2_threads_sweep")),
            ("depth", "8".to_string()),
            ("fanout", "2".to_string()),
            ("workers", workers.to_string()),
            ("micros", format!("{us:.1}")),
            ("theorems", answers.len().to_string()),
        ]));
    }
    println!();
}

/// Mixed read/write serving throughput: one writer committing durable
/// (fsync-on-append) batches on a fixed cadence while 1/2/4/8 reader
/// threads run the chain-8 `path` closure for a fixed wall-clock slice.
///
/// The rule set deliberately includes a block of 384 wide-bodied
/// auxiliary rules over an empty relation: they cost almost nothing to
/// *evaluate* (the first scan is empty) but make *compilation* — join
/// ordering across six-atom bodies — a real fraction of a query. That is
/// the realistic shape of a grown knowledge base, and exactly what
/// separates the two modes:
///
/// * `locked` — the pre-epoch cost model: every thread shares one
///   `Mutex<KnowledgeBase>`; the writer holds the lock through log +
///   fsync, and — as every mutation did before plan retention — drops
///   the compiled plan on each commit, so readers serialize behind the
///   writer *and* recompile the whole program per query.
/// * `snapshot` — the epoch path: the writer publishes through a
///   [`qdk_lang::shared::Publisher`]; readers pin `Arc` snapshots whose
///   compiled plan rides along, and query with zero locks, refreshing
///   between queries.
///
/// The writer's cadence (a batch every ~1ms) is identical in both modes,
/// so the modes differ only in how reads and writes coordinate. The
/// artifact records aggregate microseconds per query (lower is better —
/// the regression-guard direction); queries/sec rides along as a non-key
/// field. Every reader asserts the full per-snapshot answer (36 rows for
/// the chain-8 closure) on every query.
fn c1_concurrency(records: &mut Vec<String>) {
    use qdk_durability::{DurabilityOptions, FsyncPolicy};
    use qdk_lang::shared::Publisher;
    use qdk_lang::KnowledgeBase;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    const MEASURE: Duration = Duration::from_millis(250);
    const WRITE_PAUSE: Duration = Duration::from_millis(1);
    const CHAIN: usize = 8;
    const AUX_RULES: usize = 384;
    const EXPECTED_ROWS: usize = CHAIN * (CHAIN + 1) / 2;

    let mut script = String::from(
        "predicate edge(F, T).\n\
         predicate tick(K).\n\
         predicate sparse(A, B).\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- edge(X, Y), path(Y, Z).\n\
         tick(t0).\n",
    );
    for i in 0..CHAIN {
        script.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
    }
    for k in 0..AUX_RULES {
        script.push_str(&format!(
            "aux{k}(X, Z) :- sparse(X, A), sparse(A, B), sparse(B, C), \
             sparse(C, D), sparse(D, E), sparse(E, Z).\n"
        ));
    }
    let durable = DurabilityOptions {
        fsync: FsyncPolicy::Always,
        checkpoint_every_ops: None,
    };
    let mut fresh_dir = {
        let mut n = 0u32;
        move || {
            n += 1;
            std::env::temp_dir().join(format!("qdk-bench-conc-{}-{n}", std::process::id()))
        }
    };
    let q = Retrieve::new(parse_atom("path(X, Y)").unwrap(), vec![]);
    // One churn batch: replace the tick marker (size-stable EDB).
    let churn = |kb: &mut KnowledgeBase, i: u64| {
        let prev = parse_atom(&format!("tick(t{})", i - 1)).unwrap();
        let next = parse_atom(&format!("tick(t{i})")).unwrap();
        kb.transaction(|kb| {
            kb.retract_fact(&prev)?;
            kb.add_fact(&next).map(|_| ())
        })
        .unwrap();
    };

    println!(
        "## C1 — mixed read/write serving throughput, chain-{CHAIN} closure + {AUX_RULES} aux rules (median of 3 × 250ms slices)\n"
    );
    println!("| mode | readers | µs/query (aggregate) | queries/sec |");
    println!("|------|---------|----------------------|-------------|");
    for mode in ["locked", "snapshot"] {
        for readers in [1usize, 2, 4, 8] {
            let mut run_slice = || {
                let dir = fresh_dir();
                let queries = AtomicU64::new(0);
                let stop = AtomicBool::new(false);
                match mode {
                    "locked" => {
                        let mut kb = KnowledgeBase::open_durable_with(&dir, durable).unwrap();
                        kb.load(&script).unwrap();
                        let shared = Mutex::new(kb);
                        std::thread::scope(|s| {
                            s.spawn(|| {
                                let mut i = 0u64;
                                while !stop.load(Ordering::Relaxed) {
                                    i += 1;
                                    {
                                        let mut kb = shared.lock().unwrap();
                                        churn(&mut kb, i);
                                        // The pre-epoch cache model: every commit
                                        // dropped the compiled plan.
                                        kb.invalidate_plan();
                                    }
                                    std::thread::sleep(WRITE_PAUSE);
                                }
                            });
                            for _ in 0..readers {
                                s.spawn(|| {
                                    while !stop.load(Ordering::Relaxed) {
                                        let kb = shared.lock().unwrap();
                                        let a = kb
                                            .retrieve_with_options(
                                                &q,
                                                Strategy::SemiNaive,
                                                EvalOptions::default(),
                                            )
                                            .unwrap();
                                        assert_eq!(a.rows.len(), EXPECTED_ROWS);
                                        queries.fetch_add(1, Ordering::Relaxed);
                                    }
                                });
                            }
                            std::thread::sleep(MEASURE);
                            stop.store(true, Ordering::Relaxed);
                        });
                    }
                    _ => {
                        let mut kb = KnowledgeBase::open_durable_with(&dir, durable).unwrap();
                        kb.load(&script).unwrap();
                        let mut publisher = Publisher::new(&mut kb).unwrap();
                        let cell = publisher.cell();
                        std::thread::scope(|s| {
                            // The writer owns the KB and publisher; it shares
                            // only the stop flag and the churn helper.
                            let (stop, churn) = (&stop, &churn);
                            s.spawn(move || {
                                let mut i = 0u64;
                                while !stop.load(Ordering::Relaxed) {
                                    i += 1;
                                    churn(&mut kb, i);
                                    publisher.publish(&mut kb).unwrap();
                                    std::thread::sleep(WRITE_PAUSE);
                                }
                            });
                            for _ in 0..readers {
                                s.spawn(|| {
                                    let (mut version, mut state) = cell.load();
                                    while !stop.load(Ordering::Relaxed) {
                                        cell.refresh(&mut version, &mut state);
                                        let a = state
                                            .kb
                                            .retrieve_with_plan(
                                                &state.plan,
                                                &q,
                                                Strategy::SemiNaive,
                                                EvalOptions::default(),
                                            )
                                            .unwrap();
                                        assert_eq!(a.rows.len(), EXPECTED_ROWS);
                                        queries.fetch_add(1, Ordering::Relaxed);
                                    }
                                });
                            }
                            std::thread::sleep(MEASURE);
                            stop.store(true, Ordering::Relaxed);
                        });
                    }
                }
                std::fs::remove_dir_all(&dir).ok();
                queries.load(Ordering::Relaxed).max(1)
            };
            // Median of three slices: serving throughput on a shared 1-CPU
            // host is scheduling-sensitive, and the regression guard wants
            // a number that reproduces.
            let mut totals = [run_slice(), run_slice(), run_slice()];
            totals.sort_unstable();
            let total = totals[1];
            let us = MEASURE.as_secs_f64() * 1e6 / total as f64;
            let qps = total as f64 / MEASURE.as_secs_f64();
            println!("| {mode} | {readers} | {us:.1} | {qps:.0} |");
            records.push(json_record(&[
                ("section", json_str("c1_concurrency")),
                ("workload", json_str("chain8_wide_aux_tick_churn")),
                ("mode", json_str(mode)),
                ("readers", readers.to_string()),
                ("micros", format!("{us:.2}")),
                ("qps", format!("{qps:.0}")),
            ]));
        }
    }
    println!();
}

fn p2_sweeps(records: &mut Vec<String>) {
    println!("## P2a — describe latency vs rule-tower depth (fan-out 2)\n");
    println!("| depth | µs (median of 9) | theorems |");
    println!("|-------|------------------|----------|");
    for depth in [2usize, 4, 6, 8] {
        let idb = tower_idb(depth, 2);
        let q = Describe::new(parse_atom("p0(X)").unwrap(), tower_hypothesis(depth));
        let opts = DescribeOptions::paper();
        let answers = describe::describe(&idb, &q, &opts).unwrap();
        let us = median_micros(9, || {
            describe::describe(&idb, &q, &opts).unwrap();
        });
        println!("| {depth} | {us:.0} | {} |", answers.len());
        records.push(json_record(&[
            ("section", json_str("p2_depth")),
            ("depth", depth.to_string()),
            ("fanout", "2".to_string()),
            ("micros", format!("{us:.1}")),
            ("theorems", answers.len().to_string()),
        ]));
    }
    println!();

    println!("## P2b — describe latency vs fan-out (depth 4)\n");
    println!("| fan-out | µs (median of 9) | theorems |");
    println!("|---------|------------------|----------|");
    for fanout in [1usize, 2, 3, 4] {
        let idb = tower_idb(4, fanout);
        let q = Describe::new(parse_atom("p0(X)").unwrap(), tower_hypothesis(4));
        let opts = DescribeOptions::paper();
        let answers = describe::describe(&idb, &q, &opts).unwrap();
        let us = median_micros(9, || {
            describe::describe(&idb, &q, &opts).unwrap();
        });
        println!("| {fanout} | {us:.0} | {} |", answers.len());
        records.push(json_record(&[
            ("section", json_str("p2_fanout")),
            ("depth", "4".to_string()),
            ("fanout", fanout.to_string()),
            ("micros", format!("{us:.1}")),
            ("theorems", answers.len().to_string()),
        ]));
    }
    println!();
}

fn e6_family(records: &mut Vec<String>) {
    println!("## E6 — Algorithm 1's infinite answer family vs depth bound\n");
    println!("| max depth | answers | µs (median of 5) |");
    println!("|-----------|---------|------------------|");
    let idb = prior_idb();
    let q = Describe::new(
        parse_atom("prior(X, Y)").unwrap(),
        parse_body("prior(databases, Y)").unwrap(),
    );
    for depth in [4usize, 8, 12, 16] {
        let opts = DescribeOptions::paper().with_max_depth(depth);
        let answers = algo1::run_unchecked(&idb, &q, &opts).unwrap();
        let us = median_micros(5, || {
            algo1::run_unchecked(&idb, &q, &opts).unwrap();
        });
        println!("| {depth} | {} | {us:.0} |", answers.len());
        records.push(json_record(&[
            ("section", json_str("e6_algo1")),
            ("max_depth", depth.to_string()),
            ("micros", format!("{us:.1}")),
            ("answers", answers.len().to_string()),
        ]));
    }
    let opts2 = DescribeOptions::paper();
    let a2 = algo2::run(&idb, &q, &opts2).unwrap();
    let us2 = median_micros(9, || {
        algo2::run(&idb, &q, &opts2).unwrap();
    });
    println!("| Algorithm 2 | {} (finite) | {us2:.0} |", a2.len());
    records.push(json_record(&[
        ("section", json_str("e6_algo2")),
        ("micros", format!("{us2:.1}")),
        ("answers", a2.len().to_string()),
    ]));
    println!();
}

fn p3_policies(records: &mut Vec<String>) {
    println!("## P3 — Algorithm 2 transformation policies (E6 query)\n");
    println!("| policy | µs (median of 9) | answers |");
    println!("|--------|------------------|---------|");
    let idb = prior_idb();
    let q = Describe::new(
        parse_atom("prior(X, Y)").unwrap(),
        parse_body("prior(databases, Y)").unwrap(),
    );
    for (name, policy) in [
        ("modified", TransformPolicy::PreferModified),
        ("artificial", TransformPolicy::AlwaysArtificial),
    ] {
        let opts = DescribeOptions::paper().with_transform(policy);
        let answers = algo2::run(&idb, &q, &opts).unwrap();
        let us = median_micros(9, || {
            algo2::run(&idb, &q, &opts).unwrap();
        });
        println!("| {name} | {us:.0} | {} |", answers.len());
        records.push(json_record(&[
            ("section", json_str("p3_policies")),
            ("policy", json_str(name)),
            ("micros", format!("{us:.1}")),
            ("answers", answers.len().to_string()),
        ]));
    }
    println!();
}

fn ablations() {
    println!("## A1/A2 — ablations (answer counts)\n");
    let kb = university();
    let q = Describe::new(
        parse_atom("can_ta(X, databases)").unwrap(),
        parse_body("student(X, math, V), V > 3.7").unwrap(),
    );
    let idb = kb.idb().clone();
    let mut on = DescribeOptions::paper();
    let mut off = DescribeOptions::paper();
    off.simplify_comparisons = false;
    let a_on = describe::describe(&idb, &q, &on).unwrap();
    let a_off = describe::describe(&idb, &q, &off).unwrap();
    let body_comparisons = |a: &qdk_core::DescribeAnswer| {
        a.theorems
            .iter()
            .map(|t| t.rule.body.iter().filter(|l| l.is_builtin()).count())
            .sum::<usize>()
    };
    println!(
        "A1 comparison post-processing: on → {} theorems / {} body comparisons; off → {} / {}",
        a_on.len(),
        body_comparisons(&a_on),
        a_off.len(),
        body_comparisons(&a_off),
    );
    on.remove_redundant = false;
    let redundant = redundant_idb(12);
    let tq = Describe::new(parse_atom("p0(X)").unwrap(), vec![]);
    let dedup_on = describe::describe(&redundant, &tq, &DescribeOptions::paper()).unwrap();
    let dedup_off = describe::describe(&redundant, &tq, &on).unwrap();
    println!(
        "A2 redundancy elimination (12 threshold-shifted rules): on → {} theorem(s); off → {} theorems",
        dedup_on.len(),
        dedup_off.len(),
    );
    println!();
}

/// The durability costs: WAL ingest throughput under the bulk-load fsync
/// policy (`EveryN(64)`), and recovery-replay latency — the time
/// `open_durable` takes to rebuild the knowledge base from a pure WAL
/// (no checkpoint). Every run uses a fresh store directory; the rows are
/// identified by fact count, so they join the regression guard like any
/// other section.
fn w1_durability(records: &mut Vec<String>) {
    use qdk_durability::{DurabilityOptions, FsyncPolicy};
    use qdk_lang::KnowledgeBase;

    let opts = DurabilityOptions {
        fsync: FsyncPolicy::EveryN(64),
        checkpoint_every_ops: None,
    };
    let mut fresh_dir = {
        let mut n = 0u32;
        move || {
            n += 1;
            std::env::temp_dir().join(format!("qdk-bench-wal-{}-{n}", std::process::id()))
        }
    };
    let facts: Vec<String> = (0..1024usize)
        .map(|i| format!("edge(n{i}, n{}).", i + 1))
        .collect();

    println!("## W1a — WAL ingest, fsync EveryN(64), no checkpoints (median of 5)\n");
    println!("| facts | µs | facts/sec |");
    println!("|-------|----|-----------|");
    for n in [256usize, 1024] {
        let mut dirs = Vec::new();
        let us = median_micros(5, || {
            let dir = fresh_dir();
            let mut kb = KnowledgeBase::open_durable_with(&dir, opts).unwrap();
            kb.run("predicate edge(F, T).").unwrap();
            for f in &facts[..n] {
                kb.run(f).unwrap();
            }
            kb.sync().unwrap();
            dirs.push(dir);
        });
        for dir in dirs {
            std::fs::remove_dir_all(dir).ok();
        }
        let per_sec = n as f64 / (us / 1e6);
        println!("| {n} | {us:.0} | {per_sec:.0} |");
        records.push(json_record(&[
            ("section", json_str("w1_wal_ingest")),
            ("workload", json_str("chain_facts")),
            ("n", n.to_string()),
            ("fsync", json_str("every64")),
            ("micros", format!("{us:.1}")),
        ]));
    }
    println!();

    println!("## W1b — recovery replay from a pure WAL (median of 9)\n");
    println!("| logged ops | µs |");
    println!("|------------|----|");
    for n in [256usize, 1024] {
        let dir = fresh_dir();
        {
            let mut kb = KnowledgeBase::open_durable_with(&dir, opts).unwrap();
            kb.run("predicate edge(F, T).").unwrap();
            for f in &facts[..n] {
                kb.run(f).unwrap();
            }
            kb.sync().unwrap();
        }
        let us = median_micros(9, || {
            let kb = KnowledgeBase::open_durable_with(&dir, opts).unwrap();
            assert_eq!(kb.recovery_report().unwrap().replayed, n as u64 + 1);
        });
        std::fs::remove_dir_all(&dir).ok();
        println!("| {} | {us:.0} |", n + 1);
        records.push(json_record(&[
            ("section", json_str("w1_recovery_replay")),
            ("workload", json_str("chain_facts")),
            ("n", n.to_string()),
            ("micros", format!("{us:.1}")),
        ]));
    }
    println!();
}

/// Interleaved A/B medians: alternates `rounds` pairs of
/// `median_micros(runs, ..)` calls between the two closures and takes
/// the median of each side's round medians. Back-to-back blocks (31×A
/// then 31×B) let clock-speed drift on a shared host masquerade as
/// sink overhead — a 4–5% phantom was measured that way; interleaving
/// puts both sides in every thermal regime.
fn interleaved_medians(
    rounds: usize,
    runs: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (f64, f64) {
    let med = |samples: &mut Vec<f64>| {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let (mut xs, mut ys) = (Vec::new(), Vec::new());
    for _ in 0..rounds {
        xs.push(median_micros(runs, &mut a));
        ys.push(median_micros(runs, &mut b));
    }
    (med(&mut xs), med(&mut ys))
}

/// The observability overhead guard: chain-128 semi-naive full closure
/// with the default disabled sink vs an installed [`NullSink`]. The
/// NullSink pays the full span/counter plumbing (clock reads, event
/// construction) but discards every event — its overhead is the cost of
/// *enabled* instrumentation, and the zero-cost claim for the *disabled*
/// default is that `baseline` equals the pre-observability engine. The
/// budget is ≤2% (DESIGN.md §12); measurements interleave in 3 rounds so
/// host drift cannot masquerade as overhead. The regression guard
/// compares the absolute medians, not the ratio — `overhead_pct` is a
/// derived, non-key field.
fn o1_obs_overhead(records: &mut Vec<String>) {
    println!(
        "## O1 — observability overhead, chain-128 semi-naive (µs, median of 3 × 11 interleaved)\n"
    );
    println!("| sink | µs | overhead |");
    println!("|------|----|----------|");
    let idb = prior_idb();
    let edb = chain_edb(128);
    let plan = ProgramPlan::compile(&idb);
    let q = Retrieve::new(parse_atom("prior(X, Y)").unwrap(), vec![]);
    let null_opts = EvalOptions::default().with_sink(ObsSink::new(Arc::new(NullSink)));
    let (baseline, with_null) = interleaved_medians(
        3,
        11,
        || {
            query::retrieve_compiled(
                &edb,
                &idb,
                &plan,
                &q,
                Strategy::SemiNaive,
                EvalOptions::default(),
            )
            .unwrap();
        },
        || {
            query::retrieve_compiled(
                &edb,
                &idb,
                &plan,
                &q,
                Strategy::SemiNaive,
                null_opts.clone(),
            )
            .unwrap();
        },
    );
    let overhead_pct = (with_null - baseline) / baseline * 100.0;
    println!("| disabled (default) | {baseline:.0} | — |");
    println!("| NullSink installed | {with_null:.0} | {overhead_pct:.2}% |");
    records.push(json_record(&[
        ("section", json_str("o1_null_sink_overhead")),
        ("workload", json_str("chain")),
        ("n", "128".to_string()),
        ("strategy", json_str("semi-naive")),
        ("baseline_micros", format!("{baseline:.1}")),
        ("null_sink_micros", format!("{with_null:.1}")),
        ("overhead_pct", format!("{overhead_pct:.2}")),
    ]));
    println!();
}

/// The metrics-aggregation overhead guard: the same chain-128 semi-naive
/// closure with a live [`MetricsSink`] — every span and counter lands in
/// sharded atomics and latency histograms — vs the disabled default. This
/// is the steady-state cost a long-running serving KB pays for
/// `enable_metrics()`; the budget is ≤3% (DESIGN.md §17). Interleaved
/// like O1, and guarded through the absolute medians.
fn o2_metrics_overhead(records: &mut Vec<String>) {
    use qdk_logic::metrics::{MetricsHub, MetricsSink};

    println!("## O2 — metrics aggregation overhead, chain-128 semi-naive (µs, median of 3 × 11 interleaved)\n");
    println!("| sink | µs | overhead |");
    println!("|------|----|----------|");
    let idb = prior_idb();
    let edb = chain_edb(128);
    let plan = ProgramPlan::compile(&idb);
    let q = Retrieve::new(parse_atom("prior(X, Y)").unwrap(), vec![]);
    let hub = Arc::new(MetricsHub::new());
    let metrics_opts = EvalOptions::default()
        .with_sink(ObsSink::new(Arc::new(MetricsSink::new(Arc::clone(&hub)))));
    let (baseline, with_metrics) = interleaved_medians(
        3,
        11,
        || {
            query::retrieve_compiled(
                &edb,
                &idb,
                &plan,
                &q,
                Strategy::SemiNaive,
                EvalOptions::default(),
            )
            .unwrap();
        },
        || {
            query::retrieve_compiled(
                &edb,
                &idb,
                &plan,
                &q,
                Strategy::SemiNaive,
                metrics_opts.clone(),
            )
            .unwrap();
        },
    );
    let overhead_pct = (with_metrics - baseline) / baseline * 100.0;
    println!("| disabled (default) | {baseline:.0} | — |");
    println!("| MetricsSink live | {with_metrics:.0} | {overhead_pct:.2}% |");
    records.push(json_record(&[
        ("section", json_str("o2_metrics_sink_overhead")),
        ("workload", json_str("chain")),
        ("n", "128".to_string()),
        ("strategy", json_str("semi-naive")),
        ("baseline_micros", format!("{baseline:.1}")),
        ("metrics_micros", format!("{with_metrics:.1}")),
        ("overhead_pct", format!("{overhead_pct:.2}")),
    ]));
    println!();
}

/// Incremental view maintenance vs full recomputation under fact churn:
/// the chain-128 closure served through the `KnowledgeBase`, with a
/// retract / query / reinsert / query cycle on the tail edge. The
/// `maintained` mode has the maintained store live — the retract runs
/// delete-and-rederive, the insert propagates a semi-naive delta, and
/// both queries project the maintained state without a fixpoint. The
/// `recompute` mode serves the identical churn the pre-maintenance way:
/// every query re-runs the full semi-naive fixpoint (compiled plan
/// cached — only the evaluation repeats). Both modes assert the full
/// closure row counts on every query, so the speedup is never bought
/// with wrong answers.
fn m1_churn(records: &mut Vec<String>) {
    use qdk_lang::KnowledgeBase;

    const N: usize = 128;
    const FULL_ROWS: usize = N * (N + 1) / 2;
    const CUT_ROWS: usize = (N - 1) * N / 2;

    let mut script = String::from(
        "predicate edge(F, T).\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- edge(X, Y), path(Y, Z).\n",
    );
    for i in 0..N {
        script.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
    }
    let q = Retrieve::new(parse_atom("path(X, Y)").unwrap(), vec![]);
    let cut = parse_atom(&format!("edge(n{}, n{N})", N - 1)).unwrap();

    println!(
        "## M1 — fact churn at chain-{N}: retract tail edge, query, reinsert, query (µs per cycle, median of 5)\n"
    );
    println!("| mode | µs/cycle | speedup |");
    println!("|------|----------|---------|");
    let cycle_us = |maintained: bool| {
        let mut kb = KnowledgeBase::new();
        kb.load(&script).unwrap();
        if maintained {
            kb.materialize_maintained().unwrap();
        }
        median_micros(5, || {
            kb.retract_fact(&cut).unwrap();
            assert_eq!(kb.retrieve(&q).unwrap().rows.len(), CUT_ROWS);
            kb.add_fact(&cut).unwrap();
            assert_eq!(kb.retrieve(&q).unwrap().rows.len(), FULL_ROWS);
        })
    };
    let maintained = cycle_us(true);
    let recompute = cycle_us(false);
    let speedup = recompute / maintained;
    println!("| maintained | {maintained:.0} | {speedup:.1}x |");
    println!("| recompute | {recompute:.0} | — |");
    for (mode, us) in [("maintained", maintained), ("recompute", recompute)] {
        let mut fields = vec![
            ("section", json_str("m1_churn")),
            ("workload", json_str("chain_tail_churn")),
            ("n", N.to_string()),
            ("mode", json_str(mode)),
            ("micros", format!("{us:.1}")),
        ];
        if mode == "maintained" {
            fields.push(("speedup", format!("{speedup:.2}")));
        }
        records.push(json_record(&fields));
    }
    println!();
}

/// Fields that are *measurements* (compared under tolerance); everything
/// else except `run_id` identifies the row.
const MEASUREMENTS: [&str; 6] = [
    "micros",
    "per_call_micros",
    "cached_micros",
    "baseline_micros",
    "null_sink_micros",
    "metrics_micros",
];

/// Fields that are neither measurements nor identity (derived ratios,
/// per-invocation tags).
const NON_KEY: [&str; 4] = ["run_id", "overhead_pct", "qps", "speedup"];

/// Parses the flat series rows this binary writes: one `{...}` object per
/// line, fields separated by `", "`, values either quoted identifiers or
/// bare numbers (no value ever contains a comma).
fn parse_records(json: &str) -> Vec<Vec<(String, String)>> {
    json.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with('{') {
                return None;
            }
            let body = line.trim_start_matches('{').trim_end_matches('}');
            let fields: Vec<(String, String)> = body
                .split(", ")
                .filter_map(|f| {
                    let (k, v) = f.split_once(": ")?;
                    Some((
                        k.trim_matches('"').to_string(),
                        v.trim_matches('"').to_string(),
                    ))
                })
                .collect();
            if fields.is_empty() {
                None
            } else {
                Some(fields)
            }
        })
        .collect()
}

/// The identity of a row: every non-measurement field, sorted, rendered
/// as `k=v` pairs.
fn row_key(fields: &[(String, String)]) -> String {
    let mut parts: Vec<String> = fields
        .iter()
        .filter(|(k, _)| !MEASUREMENTS.contains(&k.as_str()) && !NON_KEY.contains(&k.as_str()))
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    parts.sort();
    parts.join(" ")
}

fn row_measurements(fields: &[(String, String)]) -> Vec<(String, f64)> {
    fields
        .iter()
        .filter(|(k, _)| MEASUREMENTS.contains(&k.as_str()))
        .filter_map(|(k, v)| v.parse().ok().map(|n| (k.clone(), n)))
        .collect()
}

/// Compares fresh rows against a committed baseline file; any fresh
/// median more than `TOLERANCE_PCT` slower than its baseline counterpart
/// is a suspect. Returns `(compared, suspects)` where each suspect is
/// identified by `label / row key / measurement field`.
fn check_against(
    fresh: &[String],
    baseline_path: &str,
    label: &str,
) -> (usize, Vec<(String, String)>) {
    const TOLERANCE_PCT: f64 = 25.0;
    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        eprintln!("warning: no baseline at {baseline_path}; skipping {label}");
        return (0, Vec::new());
    };
    let baseline: std::collections::HashMap<String, Vec<(String, f64)>> = parse_records(&text)
        .iter()
        .map(|f| (row_key(f), row_measurements(f)))
        .collect();
    let (mut compared, mut missing) = (0usize, 0usize);
    let mut suspects = Vec::new();
    for rendered in fresh {
        let fields = match parse_records(rendered).pop() {
            Some(f) => f,
            None => continue,
        };
        let key = row_key(&fields);
        let Some(base) = baseline.get(&key) else {
            missing += 1;
            continue;
        };
        for (field, now) in row_measurements(&fields) {
            let Some((_, was)) = base.iter().find(|(k, _)| *k == field) else {
                continue;
            };
            compared += 1;
            let pct = (now - was) / was * 100.0;
            if pct > TOLERANCE_PCT {
                eprintln!("regression? [{label}] {key} {field}: {was:.1} -> {now:.1} (+{pct:.0}%)");
                suspects.push((format!("{label} / {key}"), field));
            }
        }
    }
    eprintln!(
        "{label}: {compared} measurement(s) compared, {} over tolerance, \
         {missing} fresh row(s) without a baseline",
        suspects.len()
    );
    (compared, suspects)
}

/// The rows every artifact-feeding section produced, one `Vec` per file.
struct SectionRows {
    retrieve: Vec<String>,
    describe: Vec<String>,
    wal: Vec<String>,
    concurrency: Vec<String>,
    churn: Vec<String>,
    obs: Vec<String>,
}

/// Runs every section that feeds the checked artifacts.
fn checked_sections() -> SectionRows {
    let mut rows = SectionRows {
        retrieve: Vec::new(),
        describe: Vec::new(),
        wal: Vec::new(),
        concurrency: Vec::new(),
        churn: Vec::new(),
        obs: Vec::new(),
    };
    p1_full_closure(&mut rows.retrieve);
    p1_bound_query(&mut rows.retrieve);
    j1_join_heavy(&mut rows.retrieve);
    compiled_vs_percall(&mut rows.retrieve);
    t1_retrieve_threads(&mut rows.retrieve);
    p2_sweeps(&mut rows.describe);
    t2_describe_threads(&mut rows.describe);
    e6_family(&mut rows.describe);
    p3_policies(&mut rows.describe);
    w1_durability(&mut rows.wal);
    c1_concurrency(&mut rows.concurrency);
    m1_churn(&mut rows.churn);
    o1_obs_overhead(&mut rows.obs);
    o2_metrics_overhead(&mut rows.obs);
    rows
}

/// One full measure-and-compare pass. Returns `(compared, suspects)`
/// across every artifact, or exits when there is nothing to compare.
fn check_pass(base: &str) -> (usize, Vec<(String, String)>) {
    let rows = checked_sections();
    let (cr, mut suspects) =
        check_against(&rows.retrieve, &format!("{base}/retrieve.json"), "retrieve");
    let (cd, sd) = check_against(&rows.describe, &format!("{base}/describe.json"), "describe");
    let (cw, sw) = check_against(&rows.wal, &format!("{base}/wal.json"), "wal");
    let (cc, sc) = check_against(
        &rows.concurrency,
        &format!("{base}/concurrency.json"),
        "concurrency",
    );
    let (cm, sm) = check_against(&rows.churn, &format!("{base}/churn.json"), "churn");
    let (co, so) = check_against(&rows.obs, &format!("{base}/obs.json"), "obs");
    suspects.extend(sd);
    suspects.extend(sw);
    suspects.extend(sc);
    suspects.extend(sm);
    suspects.extend(so);
    (cr + cd + cw + cc + cm + co, suspects)
}

/// The `--check` regression guard: medians within a 25% tolerance band of
/// the committed baselines pass. Direct medians on a busy box are noisy,
/// so a row only *fails* the check when it exceeds tolerance in two
/// independent measurement passes — a real regression reproduces, noise
/// does not.
fn run_check() {
    let base = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines");
    let (compared, suspects) = check_pass(base);
    if compared == 0 {
        eprintln!("error: --check compared nothing (missing or empty baselines)");
        std::process::exit(2);
    }
    if suspects.is_empty() {
        eprintln!("bench check passed: no median more than 25% over baseline");
        return;
    }
    eprintln!(
        "\nre-measuring to confirm {} suspect(s)...\n",
        suspects.len()
    );
    let (_, second) = check_pass(base);
    let confirmed: Vec<&(String, String)> =
        suspects.iter().filter(|s| second.contains(s)).collect();
    if confirmed.is_empty() {
        eprintln!("bench check passed: no suspect reproduced on re-measurement");
        return;
    }
    for (row, field) in &confirmed {
        eprintln!("REGRESSION (reproduced twice): {row} {field}");
    }
    eprintln!(
        "bench check FAILED: {} regression(s) beyond 25% in both passes",
        confirmed.len()
    );
    std::process::exit(1);
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");
    println!("# Experiment report (direct timings; see cargo bench for full statistics)\n");
    let run_id = format!(
        "{:x}",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    );
    if check_mode {
        run_check();
        return;
    }
    let rows = checked_sections();
    ablations();
    write_json("BENCH_retrieve.json", &rows.retrieve, &run_id);
    write_json("BENCH_describe.json", &rows.describe, &run_id);
    write_json("BENCH_obs.json", &rows.obs, &run_id);
    write_json("BENCH_wal.json", &rows.wal, &run_id);
    write_json("BENCH_concurrency.json", &rows.concurrency, &run_id);
    write_json("BENCH_churn.json", &rows.churn, &run_id);
}
