//! Property-based tests for the logic substrate.

use proptest::prelude::*;
use qdk_logic::{
    match_atom, parser, rename_rule_apart, subsume, unify_atoms, Atom, Const, Rule, Subst, Term,
    Var, VarGen,
};

/// Strategy for constants drawn from a small pool (small pools make
/// collisions — and therefore interesting unifications — likely).
fn arb_const() -> impl Strategy<Value = Const> {
    prop_oneof![
        (0i64..5).prop_map(Const::Int),
        prop_oneof![Just(3.3f64), Just(3.7), Just(4.0)].prop_map(Const::Num),
        prop_oneof![Just("a"), Just("b"), Just("databases")].prop_map(Const::sym),
    ]
}

fn arb_var() -> impl Strategy<Value = Var> {
    prop_oneof![Just("X"), Just("Y"), Just("Z"), Just("U"), Just("V")].prop_map(Var::new)
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_var().prop_map(Term::Var),
        arb_const().prop_map(Term::Const),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (
        prop_oneof![Just("p"), Just("q"), Just("r")],
        proptest::collection::vec(arb_term(), 0..4),
    )
        .prop_map(|(p, args)| Atom::new(p, args))
}

fn arb_rule() -> impl Strategy<Value = Rule> {
    (arb_atom(), proptest::collection::vec(arb_atom(), 0..4))
        .prop_map(|(head, body)| Rule::new(head, body))
}

proptest! {
    /// A successful unifier makes the two atoms syntactically equal.
    #[test]
    fn mgu_equalizes(a in arb_atom(), b in arb_atom()) {
        if let Some(s) = unify_atoms(&a, &b) {
            prop_assert_eq!(s.apply_atom(&a), s.apply_atom(&b));
        }
    }

    /// Unification is symmetric in success, and both orders equalize.
    #[test]
    fn unify_symmetric(a in arb_atom(), b in arb_atom()) {
        let ab = unify_atoms(&a, &b);
        let ba = unify_atoms(&b, &a);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(s1), Some(s2)) = (ab, ba) {
            prop_assert_eq!(s1.apply_atom(&a), s1.apply_atom(&b));
            prop_assert_eq!(s2.apply_atom(&a), s2.apply_atom(&b));
        }
    }

    /// The mgu is most general: any other unifier σ factors through it
    /// (checking the defining property on the two atoms).
    #[test]
    fn mgu_is_most_general(a in arb_atom(), b in arb_atom(), ground in arb_const()) {
        if let Some(mgu) = unify_atoms(&a, &b) {
            // Build a ground unifier by grounding everything after the mgu.
            let mut sigma = mgu.clone();
            let mut vars = Vec::new();
            a.collect_vars(&mut vars);
            b.collect_vars(&mut vars);
            for v in vars {
                let t = sigma.apply_term(&Term::Var(v.clone()));
                if let Term::Var(w) = t {
                    sigma.bind(w, Term::Const(ground.clone()));
                }
            }
            // sigma is a unifier of a and b that extends the mgu.
            prop_assert_eq!(sigma.apply_atom(&a), sigma.apply_atom(&b));
        }
    }

    /// Applying a substitution is idempotent (our substitutions are kept
    /// resolved).
    #[test]
    fn subst_application_idempotent(a in arb_atom(), bindings in proptest::collection::vec((arb_var(), arb_term()), 0..5)) {
        let mut s = Subst::new();
        for (v, t) in bindings {
            s.bind(v, t);
        }
        let once = s.apply_atom(&a);
        let twice = s.apply_atom(&once);
        prop_assert_eq!(once, twice);
    }

    /// Renaming apart yields a variant: it subsumes and is subsumed by the
    /// original rule.
    #[test]
    fn rename_apart_is_variant(r in arb_rule()) {
        let mut g = VarGen::new();
        let (r2, _) = rename_rule_apart(&r, &mut g);
        prop_assert!(subsume::rules_equivalent(&r, &r2));
    }

    /// θ-subsumption is reflexive and transitive on generated rules.
    #[test]
    fn subsumption_reflexive(r in arb_rule()) {
        prop_assert!(subsume::rule_subsumes(&r, &r));
    }

    #[test]
    fn subsumption_transitive(a in arb_rule(), b in arb_rule(), c in arb_rule()) {
        if subsume::rule_subsumes(&a, &b) && subsume::rule_subsumes(&b, &c) {
            prop_assert!(subsume::rule_subsumes(&a, &c));
        }
    }

    /// remove_subsumed output is an antichain: no survivor subsumes another.
    #[test]
    fn remove_subsumed_antichain(rules in proptest::collection::vec(arb_rule(), 0..8)) {
        let kept = subsume::remove_subsumed(rules);
        for (i, a) in kept.iter().enumerate() {
            for (j, b) in kept.iter().enumerate() {
                if i != j {
                    prop_assert!(!subsume::rule_subsumes(a, b),
                        "{a} subsumes {b}");
                }
            }
        }
    }

    /// An instance of an atom is matched by the original (matching is
    /// complete for instances).
    #[test]
    fn match_finds_instances(a in arb_atom(), bindings in proptest::collection::vec((arb_var(), arb_const()), 0..5)) {
        let mut s = Subst::new();
        for (v, c) in bindings {
            s.bind(v, Term::Const(c));
        }
        let instance = s.apply_atom(&a);
        // Standardize the general side apart to avoid shared variables.
        let mut g = VarGen::new();
        let (renamed, _) = rename_rule_apart(&Rule::new(a, vec![]), &mut g);
        let mut m = Subst::new();
        prop_assert!(match_atom(&renamed.head, &instance, &mut m));
        prop_assert_eq!(m.apply_atom(&renamed.head), instance);
    }

    /// Display → parse is the identity on rules (round-trip).
    #[test]
    fn display_parse_roundtrip(r in arb_rule()) {
        let printed = r.to_string();
        let reparsed = parser::parse_rule(&printed).unwrap();
        prop_assert_eq!(reparsed, r);
    }
}
