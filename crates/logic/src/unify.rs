//! Unification and one-way matching.

use crate::atom::Atom;
use crate::subst::Subst;
use crate::term::Term;

/// Unifies two terms under an existing substitution, extending it in place.
/// Returns `false` (substitution possibly partially extended — callers
/// should clone first if they need rollback) if the terms do not unify.
fn unify_term_into(a: &Term, b: &Term, s: &mut Subst) -> bool {
    let a = s.apply_term(a);
    let b = s.apply_term(b);
    match (&a, &b) {
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Var(v), t) | (t, Term::Var(v)) => s.bind(v.clone(), (*t).clone()),
    }
}

/// Computes a most general unifier of two terms, if one exists.
pub fn unify(a: &Term, b: &Term) -> Option<Subst> {
    let mut s = Subst::new();
    unify_term_into(a, b, &mut s).then_some(s)
}

/// Computes a most general unifier of two atoms, if one exists. The atoms
/// must share predicate symbol and arity.
pub fn unify_atoms(a: &Atom, b: &Atom) -> Option<Subst> {
    if !a.same_signature(b) {
        return None;
    }
    let mut s = Subst::new();
    for (x, y) in a.args.iter().zip(&b.args) {
        if !unify_term_into(x, y, &mut s) {
            return None;
        }
    }
    Some(s)
}

/// One-way matching of terms: finds a substitution binding only variables of
/// `general` such that `general·σ == specific`. Used for subsumption and
/// fact lookup, where the specific side must not be instantiated.
pub fn match_term(general: &Term, specific: &Term, s: &mut Subst) -> bool {
    match (general, specific) {
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Var(v), t) => match s.get(v) {
            Some(bound) => bound == t,
            None => s.bind(v.clone(), t.clone()),
        },
        (Term::Const(_), Term::Var(_)) => false,
    }
}

/// One-way matching of atoms: extends `s` so that `general·s == specific`,
/// binding only variables of `general`. Returns `false` on failure (callers
/// needing rollback should clone `s` first).
pub fn match_atom(general: &Atom, specific: &Atom, s: &mut Subst) -> bool {
    if !general.same_signature(specific) {
        return false;
    }
    general
        .args
        .iter()
        .zip(&specific.args)
        .all(|(g, sp)| match_term(g, sp, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;

    fn a(p: &str, args: Vec<Term>) -> Atom {
        Atom::new(p, args)
    }

    #[test]
    fn unify_var_with_const() {
        let s = unify(&Term::var("X"), &Term::sym("databases")).unwrap();
        assert_eq!(s.apply_term(&Term::var("X")), Term::sym("databases"));
    }

    #[test]
    fn unify_two_vars_is_mgu() {
        let s = unify(&Term::var("X"), &Term::var("Y")).unwrap();
        // One variable mapped to the other; applying makes them equal.
        assert_eq!(s.apply_term(&Term::var("X")), s.apply_term(&Term::var("Y")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn unify_conflicting_consts_fails() {
        assert!(unify(&Term::int(1), &Term::int(2)).is_none());
        assert!(unify(&Term::sym("a"), &Term::sym("b")).is_none());
    }

    #[test]
    fn unify_atoms_full() {
        let g = a(
            "complete",
            vec![Term::var("X"), Term::sym("db"), Term::var("Z")],
        );
        let h = a(
            "complete",
            vec![Term::sym("ann"), Term::var("W"), Term::int(3)],
        );
        let s = unify_atoms(&g, &h).unwrap();
        assert_eq!(s.apply_atom(&g), s.apply_atom(&h));
    }

    #[test]
    fn unify_atoms_shared_var_conflict() {
        // p(X, X) with p(1, 2) must fail.
        let g = a("p", vec![Term::var("X"), Term::var("X")]);
        let h = a("p", vec![Term::int(1), Term::int(2)]);
        assert!(unify_atoms(&g, &h).is_none());
        // p(X, X) with p(1, 1) must succeed.
        let h2 = a("p", vec![Term::int(1), Term::int(1)]);
        assert!(unify_atoms(&g, &h2).is_some());
    }

    #[test]
    fn unify_atoms_signature_mismatch() {
        let g = a("p", vec![Term::var("X")]);
        let h = a("q", vec![Term::var("X")]);
        assert!(unify_atoms(&g, &h).is_none());
        let h2 = a("p", vec![Term::var("X"), Term::var("Y")]);
        assert!(unify_atoms(&g, &h2).is_none());
    }

    #[test]
    fn unify_transitive_chain() {
        // p(X, Y, X) ≟ p(Y, 3, Z): X=Y, Y=3 ⇒ X=3, Z=X=3.
        let g = a("p", vec![Term::var("X"), Term::var("Y"), Term::var("X")]);
        let h = a("p", vec![Term::var("Y"), Term::int(3), Term::var("Z")]);
        let s = unify_atoms(&g, &h).unwrap();
        for v in ["X", "Y", "Z"] {
            assert_eq!(s.apply_term(&Term::var(v)), Term::int(3), "var {v}");
        }
    }

    #[test]
    fn match_is_one_way() {
        let g = a("p", vec![Term::var("X")]);
        let sp = a("p", vec![Term::var("Y")]);
        let mut s = Subst::new();
        // general var matches specific var (X ↦ Y)...
        assert!(match_atom(&g, &sp, &mut s));
        // ...but a general constant never matches a specific variable.
        let g2 = a("p", vec![Term::int(1)]);
        let mut s2 = Subst::new();
        assert!(!match_atom(&g2, &sp, &mut s2));
    }

    #[test]
    fn match_respects_prior_bindings() {
        let g = a("p", vec![Term::var("X"), Term::var("X")]);
        let sp = a("p", vec![Term::int(1), Term::int(2)]);
        let mut s = Subst::new();
        assert!(!match_atom(&g, &sp, &mut s));
        let sp2 = a("p", vec![Term::int(1), Term::int(1)]);
        let mut s2 = Subst::new();
        assert!(match_atom(&g, &sp2, &mut s2));
        assert_eq!(s2.apply_term(&Term::var("X")), Term::int(1));
    }

    #[test]
    fn mgu_is_most_general() {
        // For p(X) ≟ p(Y), any unifier factors through the mgu. We check a
        // representative case: the ground unifier {X↦1, Y↦1}.
        let g = a("p", vec![Term::var("X")]);
        let h = a("p", vec![Term::var("Y")]);
        let mgu = unify_atoms(&g, &h).unwrap();
        let ground: Subst = [(Var::new("X"), Term::int(1)), (Var::new("Y"), Term::int(1))]
            .into_iter()
            .collect();
        let composed = mgu.compose(&ground);
        assert_eq!(composed.apply_atom(&g), ground.apply_atom(&g));
        assert_eq!(composed.apply_atom(&h), ground.apply_atom(&h));
    }
}
