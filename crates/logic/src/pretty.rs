//! Paper-style pretty printing and canonical variable renaming.
//!
//! The default `Display` impls print ASCII datalog (`head :- body.`). This
//! module adds the paper's mathematical notation (`head ← b₁ ∧ b₂`) and a
//! canonicalizer that renames the machine-generated fresh variables in
//! knowledge answers back to the paper's friendly names (`X`, `Y`, `Z`, `U`,
//! `V`, `W`, `X1`, …), which is what makes a `describe` answer readable.

use crate::atom::{Atom, Literal};
use crate::clause::Rule;
use crate::subst::Subst;
use crate::term::{Term, Var};

/// The friendly variable names, in the order the paper tends to use them.
const FRIENDLY: &[&str] = &["X", "Y", "Z", "U", "V", "W"];

/// Renames the variables of a rule to canonical friendly names in order of
/// first occurrence (head first). Variables already bearing a friendly name
/// that does not clash keep it; fresh (`_`-prefixed) variables always get a
/// new name.
pub fn canonicalize_rule(rule: &Rule) -> Rule {
    let vars = rule.vars();
    let mut taken: Vec<String> = vars
        .iter()
        .filter(|v| !v.is_fresh())
        .map(|v| v.name().to_string())
        .collect();
    let mut renaming = Subst::new();
    let mut next_idx = 0usize;
    for v in &vars {
        if !v.is_fresh() {
            continue;
        }
        let name = loop {
            let candidate = friendly_name(next_idx);
            next_idx += 1;
            if !taken.contains(&candidate) {
                break candidate;
            }
        };
        taken.push(name.clone());
        renaming.bind(v.clone(), Term::Var(Var::new(&name)));
    }
    renaming.apply_rule(rule)
}

fn friendly_name(i: usize) -> String {
    if i < FRIENDLY.len() {
        FRIENDLY[i].to_string()
    } else {
        format!("{}{}", FRIENDLY[i % FRIENDLY.len()], i / FRIENDLY.len())
    }
}

/// Formats an atom in the paper's notation (identical to `Display` for
/// atoms; provided for symmetry).
pub fn paper_atom(a: &Atom) -> String {
    a.to_string()
}

/// Formats a literal in the paper's notation (`¬p(X)` for negation).
pub fn paper_literal(l: &Literal) -> String {
    if l.positive {
        l.atom.to_string()
    } else {
        format!("¬{}", l.atom)
    }
}

/// Formats a rule in the paper's notation: `head ← b₁ ∧ b₂ ∧ …`, or just
/// `head` for a bodyless rule.
pub fn paper_rule(r: &Rule) -> String {
    if r.body.is_empty() {
        return r.head.to_string();
    }
    let body: Vec<String> = r.body.iter().map(paper_literal).collect();
    format!("{} ← {}", r.head, body.join(" ∧ "))
}

/// Formats a rule canonically: variables renamed to friendly names, paper
/// notation. This is the rendering used for knowledge answers.
pub fn answer_rule(r: &Rule) -> String {
    paper_rule(&canonicalize_rule(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    #[test]
    fn paper_rule_uses_arrow_and_wedge() {
        let r = parse_rule("honor(X) :- student(X, Y, Z), Z > 3.7.").unwrap();
        assert_eq!(paper_rule(&r), "honor(X) ← student(X, Y, Z) ∧ (Z > 3.7)");
    }

    #[test]
    fn bodyless_rule_prints_head_only() {
        let r = parse_rule("reachable(a, b).").unwrap();
        assert_eq!(paper_rule(&r), "reachable(a, b)");
    }

    #[test]
    fn negation_prints_with_neg_sign() {
        let r = parse_rule("p(X) :- not q(X).").unwrap();
        assert_eq!(paper_rule(&r), "p(X) ← ¬q(X)");
    }

    #[test]
    fn canonicalize_renames_fresh_vars_in_order() {
        // `_`-prefixed variables cannot be parsed; build the rule directly.
        let rule = Rule::new(
            Atom::new(
                "can_ta",
                vec![Term::Var(Var::new("_3")), Term::sym("databases")],
            ),
            vec![Atom::new(
                "complete",
                vec![
                    Term::Var(Var::new("_3")),
                    Term::sym("databases"),
                    Term::Var(Var::new("_7")),
                    Term::Var(Var::new("_9")),
                ],
            )],
        );
        let c = canonicalize_rule(&rule);
        assert_eq!(
            c.to_string(),
            "can_ta(X, databases) :- complete(X, databases, Y, Z)."
        );
    }

    #[test]
    fn canonicalize_avoids_user_variable_clashes() {
        // User already uses X; fresh var must not become X.
        let rule = Rule::new(
            Atom::new("p", vec![Term::var("X")]),
            vec![Atom::new(
                "q",
                vec![Term::var("X"), Term::Var(Var::new("_0"))],
            )],
        );
        let c = canonicalize_rule(&rule);
        assert_eq!(c.to_string(), "p(X) :- q(X, Y).");
    }

    #[test]
    fn friendly_names_extend_with_indices() {
        assert_eq!(friendly_name(0), "X");
        assert_eq!(friendly_name(5), "W");
        assert_eq!(friendly_name(6), "X1");
        assert_eq!(friendly_name(11), "W1");
    }

    #[test]
    fn answer_rule_combines_canonicalization_and_notation() {
        let rule = Rule::new(
            Atom::new("honor", vec![Term::Var(Var::new("_5"))]),
            vec![
                Atom::new(
                    "student",
                    vec![
                        Term::Var(Var::new("_5")),
                        Term::Var(Var::new("_6")),
                        Term::Var(Var::new("_8")),
                    ],
                ),
                Atom::new(">", vec![Term::Var(Var::new("_8")), Term::num(3.7)]),
            ],
        );
        assert_eq!(
            answer_rule(&rule),
            "honor(X) ← student(X, Y, Z) ∧ (Z > 3.7)"
        );
    }
}
