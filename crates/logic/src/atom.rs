//! Atomic formulas and literals.

use crate::symbol::Sym;
use crate::term::{Term, Var};
use std::fmt;

/// The built-in comparison predicate names of the paper's EDB: `=`, `!=`,
/// `>`, `>=`, `<`, `<=` (§2.2 lists =, ≠, >, ≥, <, ≤).
pub const BUILTIN_PREDICATES: &[&str] = &["=", "!=", "<", "<=", ">", ">="];

/// An atomic formula: a predicate symbol applied to a list of terms.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: Sym,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(pred: impl Into<Sym>, args: Vec<Term>) -> Self {
        Atom {
            pred: pred.into(),
            args,
        }
    }

    /// The predicate's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// True if the predicate is one of the built-in comparisons.
    pub fn is_builtin(&self) -> bool {
        BUILTIN_PREDICATES.contains(&self.pred.as_str())
    }

    /// True if the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Appends every variable occurring in the atom (with duplicates, in
    /// argument order) to `out`.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        for t in &self.args {
            if let Term::Var(v) = t {
                out.push(v.clone());
            }
        }
    }

    /// The distinct variables of the atom, in order of first occurrence.
    pub fn vars(&self) -> Vec<Var> {
        let mut all = Vec::new();
        self.collect_vars(&mut all);
        let mut seen = Vec::new();
        for v in all {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// True if the atoms have the same predicate symbol and arity.
    pub fn same_signature(&self, other: &Atom) -> bool {
        self.pred == other.pred && self.arity() == other.arity()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_builtin() && self.args.len() == 2 {
            return write!(f, "({} {} {})", self.args[0], self.pred, self.args[1]);
        }
        if self.args.is_empty() {
            return write!(f, "{}", self.pred);
        }
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A literal: an atomic formula or its negation.
///
/// The paper's rule bodies and qualifiers are positive formulas; negation
/// appears only in the §6 extensions (`where not honor(X)`), so most code
/// paths require `positive == true` and reject negative literals early.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Literal {
    /// Polarity: `true` for an atom, `false` for its negation.
    pub positive: bool,
    /// The underlying atom.
    pub atom: Atom,
}

impl Literal {
    /// Creates a positive literal.
    pub fn pos(atom: Atom) -> Self {
        Literal {
            positive: true,
            atom,
        }
    }

    /// Creates a negative literal.
    pub fn neg(atom: Atom) -> Self {
        Literal {
            positive: false,
            atom,
        }
    }

    /// True if the literal's predicate is a built-in comparison.
    pub fn is_builtin(&self) -> bool {
        self.atom.is_builtin()
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.atom)
        } else {
            write!(f, "not {}", self.atom)
        }
    }
}

impl From<Atom> for Literal {
    fn from(atom: Atom) -> Self {
        Literal::pos(atom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn student_atom() -> Atom {
        Atom::new(
            "student",
            vec![Term::var("X"), Term::var("Y"), Term::var("Z")],
        )
    }

    #[test]
    fn display_ordinary_and_builtin() {
        assert_eq!(student_atom().to_string(), "student(X, Y, Z)");
        let cmp = Atom::new(">", vec![Term::var("Z"), Term::num(3.7)]);
        assert_eq!(cmp.to_string(), "(Z > 3.7)");
        assert!(cmp.is_builtin());
        assert!(!student_atom().is_builtin());
    }

    #[test]
    fn vars_are_deduplicated_in_order() {
        let a = Atom::new("p", vec![Term::var("Y"), Term::var("X"), Term::var("Y")]);
        let vs: Vec<String> = a.vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(vs, ["Y", "X"]);
    }

    #[test]
    fn groundness() {
        assert!(!student_atom().is_ground());
        let g = Atom::new("prereq", vec![Term::sym("databases"), Term::sym("ds")]);
        assert!(g.is_ground());
    }

    #[test]
    fn literal_display() {
        let l = Literal::neg(Atom::new("honor", vec![Term::var("X")]));
        assert_eq!(l.to_string(), "not honor(X)");
        let p = Literal::pos(Atom::new("honor", vec![Term::var("X")]));
        assert_eq!(p.to_string(), "honor(X)");
    }

    #[test]
    fn signatures() {
        let a = Atom::new("p", vec![Term::var("X")]);
        let b = Atom::new("p", vec![Term::int(1)]);
        let c = Atom::new("p", vec![Term::var("X"), Term::var("Y")]);
        assert!(a.same_signature(&b));
        assert!(!a.same_signature(&c));
    }
}
