//! θ-subsumption between clauses.
//!
//! A clause `C` θ-subsumes a clause `D` when there is a substitution σ with
//! `C·σ ⊆ D` (literal-wise). For the Horn rules of this system, `p ← φ`
//! subsumes `p' ← φ'` when a single σ maps the head of the first onto the
//! head of the second and every body literal of the first onto *some* body
//! literal of the second. Subsumption implies logical consequence, and the
//! paper (§3.2) defines an answer to a knowledge query to be *free of
//! redundancies* if none of its formulas is a logical consequence of
//! another — the describe engine uses this module to enforce that.

use crate::atom::Literal;
use crate::clause::Rule;
use crate::subst::Subst;
use crate::term::{Term, Var};
use crate::unify::match_atom;

/// Renames the variables of `rule` with names no other part of the system
/// generates (`_sub{i}`), so matching `general` against `specific` never
/// sees a shared variable. One-way matching records no binding for the
/// identity `v ↦ v`, which would otherwise let a shared variable match two
/// different terms.
fn standardize(rule: &Rule) -> Rule {
    let renaming: Subst = rule
        .vars()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, Term::Var(Var::new(&format!("_sub{i}")))))
        .collect();
    renaming.apply_rule(rule)
}

/// True if `general` θ-subsumes `specific`.
pub fn rule_subsumes(general: &Rule, specific: &Rule) -> bool {
    let general = standardize(general);
    let mut s = Subst::new();
    if !match_atom(&general.head, &specific.head, &mut s) {
        return false;
    }
    body_maps_into(&general.body, &specific.body, s)
}

/// True if the conjunction `general` maps into the conjunction `specific`
/// under some extension of the given substitution (each literal of
/// `general` matched to some literal of `specific`; repeats allowed).
pub fn body_subsumes(general: &[Literal], specific: &[Literal]) -> bool {
    // Reuse rule standardization by wrapping the literals in a dummy head.
    let dummy = crate::atom::Atom::new("_sub_head", vec![]);
    let wrapped = standardize(&Rule::with_literals(dummy, general.to_vec()));
    body_maps_into(&wrapped.body, specific, Subst::new())
}

fn body_maps_into(general: &[Literal], specific: &[Literal], s: Subst) -> bool {
    let Some((first, rest)) = general.split_first() else {
        return true;
    };
    for lit in specific {
        if lit.positive != first.positive {
            continue;
        }
        let mut s2 = s.clone();
        if match_atom(&first.atom, &lit.atom, &mut s2) && body_maps_into(rest, specific, s2) {
            return true;
        }
    }
    false
}

/// True if the two rules subsume each other (are equivalent up to variable
/// renaming and redundant literals).
pub fn rules_equivalent(a: &Rule, b: &Rule) -> bool {
    rule_subsumes(a, b) && rule_subsumes(b, a)
}

/// Removes from `rules` every rule that is θ-subsumed by another (keeping
/// the first of any equivalent pair). The relative order of survivors is
/// preserved. This implements the paper's redundancy-freedom requirement
/// for knowledge answers.
pub fn remove_subsumed(rules: Vec<Rule>) -> Vec<Rule> {
    let mut kept: Vec<Rule> = Vec::with_capacity(rules.len());
    'outer: for r in rules {
        // Drop r if something already kept subsumes it.
        for k in &kept {
            if rule_subsumes(k, &r) {
                continue 'outer;
            }
        }
        // Drop anything kept that r strictly subsumes.
        kept.retain(|k| !rule_subsumes(&r, k));
        kept.push(r);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::Term;

    fn r(src_head: Atom, body: Vec<Atom>) -> Rule {
        Rule::new(src_head, body)
    }

    fn a(p: &str, args: Vec<Term>) -> Atom {
        Atom::new(p, args)
    }

    #[test]
    fn identical_rules_subsume() {
        let x = r(
            a("honor", vec![Term::var("X")]),
            vec![a("student", vec![Term::var("X"), Term::var("Y")])],
        );
        assert!(rule_subsumes(&x, &x));
        assert!(rules_equivalent(&x, &x));
    }

    #[test]
    fn variant_rules_are_equivalent() {
        let x = r(
            a("p", vec![Term::var("X")]),
            vec![a("q", vec![Term::var("X"), Term::var("Y")])],
        );
        let y = r(
            a("p", vec![Term::var("A")]),
            vec![a("q", vec![Term::var("A"), Term::var("B")])],
        );
        assert!(rules_equivalent(&x, &y));
    }

    #[test]
    fn more_general_subsumes_instance() {
        // p(X) :- q(X, Y)  subsumes  p(X) :- q(X, databases).
        let gen = r(
            a("p", vec![Term::var("X")]),
            vec![a("q", vec![Term::var("X"), Term::var("Y")])],
        );
        let spec = r(
            a("p", vec![Term::var("X")]),
            vec![a("q", vec![Term::var("X"), Term::sym("databases")])],
        );
        assert!(rule_subsumes(&gen, &spec));
        assert!(!rule_subsumes(&spec, &gen));
    }

    #[test]
    fn shorter_body_subsumes_longer() {
        // p(X) :- q(X)  subsumes  p(X) :- q(X), r(X).
        let short = r(
            a("p", vec![Term::var("X")]),
            vec![a("q", vec![Term::var("X")])],
        );
        let long = r(
            a("p", vec![Term::var("X")]),
            vec![a("q", vec![Term::var("X")]), a("r", vec![Term::var("X")])],
        );
        assert!(rule_subsumes(&short, &long));
        assert!(!rule_subsumes(&long, &short));
    }

    #[test]
    fn shared_variable_blocks_subsumption() {
        // p(X) :- q(X, X)  does NOT subsume  p(X) :- q(X, Y).
        let diag = r(
            a("p", vec![Term::var("X")]),
            vec![a("q", vec![Term::var("X"), Term::var("X")])],
        );
        let gen = r(
            a("p", vec![Term::var("X")]),
            vec![a("q", vec![Term::var("X"), Term::var("Y")])],
        );
        assert!(!rule_subsumes(&diag, &gen));
        assert!(rule_subsumes(&gen, &diag));
    }

    #[test]
    fn negative_literals_only_match_negative() {
        let neg = Rule::with_literals(
            a("p", vec![Term::var("X")]),
            vec![Literal::neg(a("q", vec![Term::var("X")]))],
        );
        let pos = r(
            a("p", vec![Term::var("X")]),
            vec![a("q", vec![Term::var("X")])],
        );
        assert!(!rule_subsumes(&neg, &pos));
        assert!(!rule_subsumes(&pos, &neg));
        assert!(rule_subsumes(&neg, &neg));
    }

    #[test]
    fn remove_subsumed_keeps_most_general() {
        let gen = r(
            a("p", vec![Term::var("X")]),
            vec![a("q", vec![Term::var("X"), Term::var("Y")])],
        );
        let spec = r(
            a("p", vec![Term::var("X")]),
            vec![a("q", vec![Term::var("X"), Term::sym("db")])],
        );
        let other = r(
            a("p", vec![Term::var("X")]),
            vec![a("r", vec![Term::var("X")])],
        );
        let out = remove_subsumed(vec![spec.clone(), gen.clone(), other.clone()]);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&gen));
        assert!(out.contains(&other));
        assert!(!out.contains(&spec));
    }

    #[test]
    fn remove_subsumed_dedups_variants() {
        let x = r(
            a("p", vec![Term::var("X")]),
            vec![a("q", vec![Term::var("X"), Term::var("Y")])],
        );
        let y = r(
            a("p", vec![Term::var("A")]),
            vec![a("q", vec![Term::var("A"), Term::var("B")])],
        );
        let out = remove_subsumed(vec![x.clone(), y]);
        assert_eq!(out, vec![x]);
    }

    #[test]
    fn body_subsumes_conjunctions() {
        let g = vec![Literal::pos(a("q", vec![Term::var("X")]))];
        let s = vec![
            Literal::pos(a("q", vec![Term::sym("a")])),
            Literal::pos(a("r", vec![Term::sym("b")])),
        ];
        assert!(body_subsumes(&g, &s));
        assert!(!body_subsumes(&s, &g));
        assert!(body_subsumes(&[], &s));
    }
}
